//! CI perf snapshot: ingest throughput and point-lookup latency, inline vs
//! background maintenance, a maintenance-heavy scenario — many small
//! datasets against one shared [`MaintenanceRuntime`] vs inline — a
//! fairness scenario (hot flooding dataset vs quiet datasets on a
//! quota-limited runtime), a query-heavy scenario (serial vs `parallel(4)`
//! secondary range queries over a multi-component dataset on a sharded
//! buffer cache), and a repair-heavy scenario (standalone repair of an
//! update-heavy lazy dataset), a device sweep (the same inline ingest
//! on the hdd / ssd / nvme profiles), a multi-writer scenario
//! (1/2/4/8 writer threads committing `WriteBatch`es against one sharded,
//! WAL-backed dataset — the group-commit measurement), and a scan-heavy
//! scenario (serial vs `parallel(4)` filter scans on plain, prefix and
//! columnar leaf pages, with live on-disk bytes and cache
//! hit-rates), and an index-only scenario (cold-cache `index_only()`
//! secondary range queries per leaf encoding, comparing device bytes
//! read), written as JSON so the perf trajectory accumulates across
//! commits. Schema history is documented in `docs/OPERATIONS.md`
//! (`schema_version` 8: adds the `index_only` array, the columnar
//! `scan_heavy` row, and `lookup_allocs_per_op` on the variants).
//!
//! ```sh
//! cargo run -p lsm-bench --release --bin perf_snapshot
//! ```
//!
//! Writes `BENCH_ingest.json` to the current directory (override the path
//! with `BENCH_OUT`, the workload size with `LSM_BENCH_SCALE`). CI uploads
//! the file as a build artifact.

use lsm_bench::{
    pk_of, run_fairness_scenario, run_index_only_scenario, run_multi_writer_scenario,
    run_query_heavy_scenario, run_repair_heavy_scenario, run_scan_heavy_scenario,
    run_shared_runtime_scenario, scale, scaled, tweet_dataset_config, BenchDevice, Env, EnvConfig,
    FairnessRun, IndexOnlyRun, MultiWriterRun, QueryHeavyRun, RepairHeavyRun, ScanHeavyRun,
    SharedRuntimeRun,
};
use lsm_common::Value;
use lsm_engine::{Dataset, EngineConfig, MaintenanceMode, MaintenanceRuntime, StrategyKind};
use lsm_storage::LeafEncoding;
use lsm_workload::{Op, TweetConfig, UpdateDistribution, UpsertWorkload};
use std::sync::Arc;
use std::time::Instant;

// Count every heap allocation so the zero-copy fetch path's
// allocations-per-lookup lands in the perf trajectory.
#[global_allocator]
static ALLOC: lsm_bench::alloc_track::CountingAlloc = lsm_bench::alloc_track::CountingAlloc;

struct VariantResult {
    mode: &'static str,
    records: usize,
    ingest_wall_secs: f64,
    ingest_ops_per_sec: f64,
    quiesce_wall_secs: f64,
    lookup_wall_us: f64,
    lookup_allocs_per_op: f64,
    flushes: u64,
    merges: u64,
    flush_jobs: u64,
    merge_jobs: u64,
    backpressure_stalls: u64,
}

fn open(env: &Env, mode: MaintenanceMode, dataset_bytes: u64) -> Arc<Dataset> {
    let mut cfg = tweet_dataset_config(StrategyKind::Validation, dataset_bytes, 1);
    cfg.maintenance = mode;
    Dataset::open(env.storage.clone(), Some(env.log_storage.clone()), cfg).expect("dataset")
}

fn run(mode: &'static str, maintenance: MaintenanceMode, n: usize) -> VariantResult {
    run_on_device(mode, BenchDevice::Ssd, maintenance, n)
}

fn run_on_device(
    mode: &'static str,
    device: BenchDevice,
    maintenance: MaintenanceMode,
    n: usize,
) -> VariantResult {
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new_with_device(
        device,
        &EnvConfig {
            dataset_bytes,
            ..Default::default()
        },
    );
    let ds = open(&env, maintenance, dataset_bytes);
    let mut workload =
        UpsertWorkload::new(TweetConfig::default(), 0.5, UpdateDistribution::Uniform);

    let mut probe_keys = Vec::new();
    let start = Instant::now();
    for i in 0..n {
        let op = workload.next_op();
        if i % 37 == 0 {
            let r = match &op {
                Op::Insert(r) | Op::Upsert(r) => r,
            };
            probe_keys.push(pk_of(r));
        }
        lsm_bench::apply(&ds, &op);
    }
    let ingest_wall_secs = start.elapsed().as_secs_f64();

    let q = Instant::now();
    ds.maintenance().quiesce().expect("quiesce");
    let quiesce_wall_secs = q.elapsed().as_secs_f64();

    let l = Instant::now();
    let allocs_before = lsm_bench::alloc_track::allocations();
    let mut found = 0usize;
    for pk in &probe_keys {
        if ds.get(&Value::Int(*pk)).expect("lookup").is_some() {
            found += 1;
        }
    }
    let lookup_allocs = lsm_bench::alloc_track::allocations() - allocs_before;
    assert!(found > 0, "lookups found no records");
    let lookup_wall_us = l.elapsed().as_secs_f64() * 1e6 / probe_keys.len() as f64;
    let lookup_allocs_per_op = lookup_allocs as f64 / probe_keys.len() as f64;

    let snap = ds.stats().snapshot();
    VariantResult {
        mode,
        records: n,
        ingest_wall_secs,
        ingest_ops_per_sec: n as f64 / ingest_wall_secs,
        quiesce_wall_secs,
        lookup_wall_us,
        lookup_allocs_per_op,
        flushes: snap.flushes,
        merges: snap.merges,
        flush_jobs: snap.flush_jobs,
        merge_jobs: snap.merge_jobs,
        backpressure_stalls: snap.backpressure_stalls,
    }
}

struct MultiResult {
    mode: &'static str,
    datasets: usize,
    records_per_dataset: usize,
    run: SharedRuntimeRun,
}

fn json_multi(v: &MultiResult) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"mode\": \"{}\",\n",
            "      \"datasets\": {},\n",
            "      \"records_per_dataset\": {},\n",
            "      \"ingest_wall_secs\": {:.4},\n",
            "      \"ingest_ops_per_sec\": {:.1},\n",
            "      \"quiesce_wall_secs\": {:.4},\n",
            "      \"flush_jobs\": {},\n",
            "      \"merge_jobs\": {},\n",
            "      \"peak_workers\": {}\n",
            "    }}"
        ),
        v.mode,
        v.datasets,
        v.records_per_dataset,
        v.run.ingest_wall_secs,
        v.run.ingest_ops_per_sec,
        v.run.quiesce_wall_secs,
        v.run.flush_jobs,
        v.run.merge_jobs,
        v.run.peak_workers,
    )
}

fn json_fairness(f: &FairnessRun) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"mode\": \"hot-vs-quiet-quota1\",\n",
            "      \"hot_records\": {},\n",
            "      \"quiet_datasets\": {},\n",
            "      \"quiet_records_per_dataset\": {},\n",
            "      \"quiet_latency_secs_mean\": {:.4},\n",
            "      \"quiet_latency_secs_max\": {:.4},\n",
            "      \"hot_backlog_at_quiet_done\": {},\n",
            "      \"quota_deferrals\": {},\n",
            "      \"peak_workers\": {}\n",
            "    }}"
        ),
        f.hot_records,
        f.quiet_datasets,
        f.quiet_records_per_dataset,
        f.quiet_latency_secs_mean,
        f.quiet_latency_secs_max,
        f.hot_backlog_at_quiet_done,
        f.quota_deferrals,
        f.peak_workers,
    )
}

fn json_query_heavy(q: &QueryHeavyRun) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"mode\": \"serial-vs-parallel-{}\",\n",
            "      \"records\": {},\n",
            "      \"queries\": {},\n",
            "      \"components\": {},\n",
            "      \"cache_shards\": {},\n",
            "      \"rows\": {},\n",
            "      \"partitions\": {},\n",
            "      \"serial_wall_secs\": {:.4},\n",
            "      \"parallel_wall_secs\": {:.4},\n",
            "      \"serial_queries_per_sec\": {:.1},\n",
            "      \"parallel_queries_per_sec\": {:.1},\n",
            "      \"speedup\": {:.3}\n",
            "    }}"
        ),
        q.parallelism,
        q.records,
        q.queries,
        q.components,
        q.cache_shards,
        q.rows,
        q.partitions,
        q.serial_wall_secs,
        q.parallel_wall_secs,
        q.queries as f64 / q.serial_wall_secs.max(1e-9),
        q.queries as f64 / q.parallel_wall_secs.max(1e-9),
        q.speedup,
    )
}

fn json_scan_heavy(s: &ScanHeavyRun) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"mode\": \"filter-scan-{}\",\n",
            "      \"encoding\": \"{}\",\n",
            "      \"records\": {},\n",
            "      \"scans\": {},\n",
            "      \"parallelism\": {},\n",
            "      \"components\": {},\n",
            "      \"index_bytes\": {},\n",
            "      \"rows\": {},\n",
            "      \"partitions\": {},\n",
            "      \"serial_wall_secs\": {:.4},\n",
            "      \"parallel_wall_secs\": {:.4},\n",
            "      \"speedup\": {:.3},\n",
            "      \"serial_cache_hit_ratio\": {:.4},\n",
            "      \"parallel_cache_hit_ratio\": {:.4}\n",
            "    }}"
        ),
        s.encoding.name(),
        s.encoding.name(),
        s.records,
        s.scans,
        s.parallelism,
        s.components,
        s.index_bytes,
        s.rows,
        s.partitions,
        s.serial_wall_secs,
        s.parallel_wall_secs,
        s.speedup,
        s.serial_cache_hit_ratio,
        s.parallel_cache_hit_ratio,
    )
}

fn json_index_only(r: &IndexOnlyRun) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"mode\": \"index-only-{}\",\n",
            "      \"encoding\": \"{}\",\n",
            "      \"records\": {},\n",
            "      \"queries\": {},\n",
            "      \"index_bytes\": {},\n",
            "      \"bytes_read\": {},\n",
            "      \"rows\": {},\n",
            "      \"rows_per_sec\": {:.1},\n",
            "      \"wall_secs\": {:.4}\n",
            "    }}"
        ),
        r.encoding.name(),
        r.encoding.name(),
        r.records,
        r.queries,
        r.index_bytes,
        r.bytes_read,
        r.rows,
        r.rows_per_sec,
        r.wall_secs,
    )
}

fn json_repair_heavy(r: &RepairHeavyRun) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"mode\": \"standalone-repair\",\n",
            "      \"records\": {},\n",
            "      \"repair_wall_secs\": {:.4},\n",
            "      \"repair_sim_secs\": {:.4},\n",
            "      \"entries_scanned\": {},\n",
            "      \"keys_validated\": {},\n",
            "      \"invalidated\": {}\n",
            "    }}"
        ),
        r.records,
        r.repair_wall_secs,
        r.repair_sim_secs,
        r.entries_scanned,
        r.keys_validated,
        r.invalidated,
    )
}

fn json_multi_writer(m: &MultiWriterRun) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"mode\": \"writers-{}\",\n",
            "      \"writers\": {},\n",
            "      \"records\": {},\n",
            "      \"batch\": {},\n",
            "      \"ingest_wall_secs\": {:.4},\n",
            "      \"ingest_ops_per_sec\": {:.1},\n",
            "      \"backpressure_stalls\": {},\n",
            "      \"wal_groups\": {},\n",
            "      \"wal_records_per_group\": {:.2}\n",
            "    }}"
        ),
        m.writers,
        m.writers,
        m.records,
        m.batch,
        m.ingest_wall_secs,
        m.ingest_ops_per_sec,
        m.backpressure_stalls,
        m.wal_groups,
        m.wal_records_per_group,
    )
}

fn json_variant(v: &VariantResult) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"mode\": \"{}\",\n",
            "      \"records\": {},\n",
            "      \"ingest_wall_secs\": {:.4},\n",
            "      \"ingest_ops_per_sec\": {:.1},\n",
            "      \"quiesce_wall_secs\": {:.4},\n",
            "      \"point_lookup_us\": {:.3},\n",
            "      \"lookup_allocs_per_op\": {:.2},\n",
            "      \"flushes\": {},\n",
            "      \"merges\": {},\n",
            "      \"flush_jobs\": {},\n",
            "      \"merge_jobs\": {},\n",
            "      \"backpressure_stalls\": {}\n",
            "    }}"
        ),
        v.mode,
        v.records,
        v.ingest_wall_secs,
        v.ingest_ops_per_sec,
        v.quiesce_wall_secs,
        v.lookup_wall_us,
        v.lookup_allocs_per_op,
        v.flushes,
        v.merges,
        v.flush_jobs,
        v.merge_jobs,
        v.backpressure_stalls,
    )
}

fn main() {
    let n = scaled(40_000);
    let variants = [
        run("inline", MaintenanceMode::Inline, n),
        run(
            "background-2w",
            MaintenanceMode::Background { workers: 2 },
            n,
        ),
    ];

    // Maintenance-heavy scenario: many small datasets, inline vs one
    // shared 4-worker runtime serving all of them.
    let multi_datasets = 8;
    let n_per = scaled(40_000) / multi_datasets;
    let shared_rt = MaintenanceRuntime::start(
        EngineConfig::builder()
            .min_workers(1)
            .max_workers(4)
            .build()
            .expect("runtime config"),
    )
    .expect("runtime");
    let multi = [
        MultiResult {
            mode: "multi-inline",
            datasets: multi_datasets,
            records_per_dataset: n_per,
            run: run_shared_runtime_scenario(None, multi_datasets, n_per),
        },
        MultiResult {
            mode: "multi-shared-4w",
            datasets: multi_datasets,
            records_per_dataset: n_per,
            run: run_shared_runtime_scenario(Some(&shared_rt), multi_datasets, n_per),
        },
    ];

    // Fairness scenario (schema_version 3): one hot dataset floods a
    // quota-limited shared runtime while 9 quiet datasets each need a
    // flush — the starvation case the deficit-round-robin scheduler
    // bounds.
    let fairness = [run_fairness_scenario(9, scaled(30_000), scaled(3_000))];

    // Query-heavy scenario (schema_version 4): the same secondary range
    // queries serially and with parallel(4) over a multi-component dataset
    // on an 8-shard buffer cache — the read-path acceptance measurement.
    let query_heavy = [run_query_heavy_scenario(scaled(60_000), 24, 4)];

    // Repair-heavy scenario (schema_version 4): standalone repair of an
    // update-heavy lazy dataset, closing the ROADMAP CI item.
    let repair_heavy = [run_repair_heavy_scenario(scaled(40_000))];

    // Device sweep (schema_version 5): the same inline ingest on every
    // simulated device profile, so device-model changes show up in the
    // perf trajectory.
    let device_n = scaled(20_000);
    let device_sweep = [
        run_on_device("hdd", BenchDevice::Hdd, MaintenanceMode::Inline, device_n),
        run_on_device("ssd", BenchDevice::Ssd, MaintenanceMode::Inline, device_n),
        run_on_device("nvme", BenchDevice::Nvme, MaintenanceMode::Inline, device_n),
    ];

    // Multi-writer scenario (schema_version 6): 1/2/4/8 writer threads
    // committing WriteBatches against one sharded, WAL-backed dataset —
    // the group-commit acceptance measurement (`wal_records_per_group > 1`
    // once commits actually overlap).
    let mw_n = scaled(20_000);
    let multi_writer: Vec<MultiWriterRun> = [1usize, 2, 4, 8]
        .iter()
        .map(|&w| run_multi_writer_scenario(w, mw_n, 32))
        .collect();

    // Scan-heavy scenario (schema_version 7): serial vs parallel(4) filter
    // scans over the same dataset built with each leaf-page encoding — the
    // read-path + compression acceptance measurement (`index_bytes` for
    // the compressed encodings must undercut plain).
    let scan_heavy = [
        run_scan_heavy_scenario(scaled(60_000), 24, 4, LeafEncoding::Plain),
        run_scan_heavy_scenario(scaled(60_000), 24, 4, LeafEncoding::Prefix),
        run_scan_heavy_scenario(scaled(60_000), 24, 4, LeafEncoding::Columnar),
    ];

    // Index-only scenario (schema_version 8): cold-cache `index_only()`
    // secondary range queries per leaf encoding — the key-strip acceptance
    // measurement (`bytes_read` for columnar must undercut plain by >=20%).
    let index_only = [
        run_index_only_scenario(scaled(60_000), 24, LeafEncoding::Plain),
        run_index_only_scenario(scaled(60_000), 24, LeafEncoding::Prefix),
        run_index_only_scenario(scaled(60_000), 24, LeafEncoding::Columnar),
    ];

    let body: Vec<String> = variants.iter().map(json_variant).collect();
    let multi_body: Vec<String> = multi.iter().map(json_multi).collect();
    let fairness_body: Vec<String> = fairness.iter().map(json_fairness).collect();
    let query_body: Vec<String> = query_heavy.iter().map(json_query_heavy).collect();
    let repair_body: Vec<String> = repair_heavy.iter().map(json_repair_heavy).collect();
    let device_body: Vec<String> = device_sweep.iter().map(json_variant).collect();
    let mw_body: Vec<String> = multi_writer.iter().map(json_multi_writer).collect();
    let scan_body: Vec<String> = scan_heavy.iter().map(json_scan_heavy).collect();
    let index_only_body: Vec<String> = index_only.iter().map(json_index_only).collect();
    let json = format!(
        "{{\n  \"schema_version\": 8,\n  \"bench\": \"ingest\",\n  \"scale\": {},\n  \"variants\": [\n{}\n  ],\n  \"maintenance_heavy\": [\n{}\n  ],\n  \"fairness\": [\n{}\n  ],\n  \"query_heavy\": [\n{}\n  ],\n  \"repair_heavy\": [\n{}\n  ],\n  \"device_sweep\": [\n{}\n  ],\n  \"multi_writer\": [\n{}\n  ],\n  \"scan_heavy\": [\n{}\n  ],\n  \"index_only\": [\n{}\n  ]\n}}\n",
        scale(),
        body.join(",\n"),
        multi_body.join(",\n"),
        fairness_body.join(",\n"),
        query_body.join(",\n"),
        repair_body.join(",\n"),
        device_body.join(",\n"),
        mw_body.join(",\n"),
        scan_body.join(",\n"),
        index_only_body.join(",\n")
    );
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_ingest.json".into());
    std::fs::write(&out, &json).expect("write snapshot");
    println!("{json}");
    for v in &variants {
        eprintln!(
            "{}: {:.0} ops/s ingest, {:.2}us lookup, {} stalls",
            v.mode, v.ingest_ops_per_sec, v.lookup_wall_us, v.backpressure_stalls
        );
    }
    for m in &multi {
        eprintln!(
            "{}: {} datasets × {} recs, {:.0} ops/s aggregate, peak {} workers",
            m.mode, m.datasets, m.records_per_dataset, m.run.ingest_ops_per_sec, m.run.peak_workers
        );
    }
    for f in &fairness {
        eprintln!(
            "fairness: {} quiet × {} recs vs hot {} recs — quiet latency mean {:.3}s max {:.3}s, \
             {} quota deferrals, hot backlog {}",
            f.quiet_datasets,
            f.quiet_records_per_dataset,
            f.hot_records,
            f.quiet_latency_secs_mean,
            f.quiet_latency_secs_max,
            f.quota_deferrals,
            f.hot_backlog_at_quiet_done
        );
    }
    for q in &query_heavy {
        eprintln!(
            "query_heavy: {} queries × {} recs over {} components ({} cache shards) — \
             serial {:.3}s vs parallel({}) {:.3}s = {:.2}x ({} partitions)",
            q.queries,
            q.records,
            q.components,
            q.cache_shards,
            q.serial_wall_secs,
            q.parallelism,
            q.parallel_wall_secs,
            q.speedup,
            q.partitions
        );
    }
    for r in &repair_heavy {
        eprintln!(
            "repair_heavy: {} recs — repair {:.3}s wall / {:.3}s sim, {} scanned, {} invalidated",
            r.records, r.repair_wall_secs, r.repair_sim_secs, r.entries_scanned, r.invalidated
        );
    }
    for d in &device_sweep {
        eprintln!(
            "device_sweep {}: {:.0} ops/s ingest, {:.2}us lookup",
            d.mode, d.ingest_ops_per_sec, d.lookup_wall_us
        );
    }
    for m in &multi_writer {
        eprintln!(
            "multi_writer {}w: {:.0} ops/s, {} stalls, {} WAL groups ({:.1} recs/group)",
            m.writers,
            m.ingest_ops_per_sec,
            m.backpressure_stalls,
            m.wal_groups,
            m.wal_records_per_group
        );
    }
    for s in &scan_heavy {
        eprintln!(
            "scan_heavy {}: {} scans × {} recs, {} bytes on disk — serial {:.3}s vs \
             parallel({}) {:.3}s = {:.2}x ({} partitions, hit {:.2}/{:.2})",
            s.encoding.name(),
            s.scans,
            s.records,
            s.index_bytes,
            s.serial_wall_secs,
            s.parallelism,
            s.parallel_wall_secs,
            s.speedup,
            s.partitions,
            s.serial_cache_hit_ratio,
            s.parallel_cache_hit_ratio
        );
    }
    for r in &index_only {
        eprintln!(
            "index_only {}: {} queries x {} recs — {} bytes read ({} on disk), \
             {:.0} rows/s over {:.3}s",
            r.encoding.name(),
            r.queries,
            r.records,
            r.bytes_read,
            r.index_bytes,
            r.rows_per_sec,
            r.wall_secs
        );
    }
    eprintln!("wrote {out}");
}
