//! CI perf snapshot: ingest throughput and point-lookup latency, inline vs
//! background maintenance, written as JSON so the perf trajectory
//! accumulates across commits.
//!
//! ```sh
//! cargo run -p lsm-bench --release --bin perf_snapshot
//! ```
//!
//! Writes `BENCH_ingest.json` to the current directory (override the path
//! with `BENCH_OUT`, the workload size with `LSM_BENCH_SCALE`). CI uploads
//! the file as a build artifact.

use lsm_bench::{pk_of, scale, scaled, tweet_dataset_config, Env, EnvConfig};
use lsm_common::Value;
use lsm_engine::{Dataset, MaintenanceMode, StrategyKind};
use lsm_workload::{Op, TweetConfig, UpdateDistribution, UpsertWorkload};
use std::sync::Arc;
use std::time::Instant;

struct VariantResult {
    mode: &'static str,
    records: usize,
    ingest_wall_secs: f64,
    ingest_ops_per_sec: f64,
    quiesce_wall_secs: f64,
    lookup_wall_us: f64,
    flushes: u64,
    merges: u64,
    flush_jobs: u64,
    merge_jobs: u64,
    backpressure_stalls: u64,
}

fn open(env: &Env, mode: MaintenanceMode, dataset_bytes: u64) -> Arc<Dataset> {
    let mut cfg = tweet_dataset_config(StrategyKind::Validation, dataset_bytes, 1);
    cfg.maintenance = mode;
    Dataset::open(env.storage.clone(), Some(env.log_storage.clone()), cfg).expect("dataset")
}

fn run(mode: &'static str, maintenance: MaintenanceMode, n: usize) -> VariantResult {
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ssd: true,
        ..Default::default()
    });
    let ds = open(&env, maintenance, dataset_bytes);
    let mut workload =
        UpsertWorkload::new(TweetConfig::default(), 0.5, UpdateDistribution::Uniform);

    let mut probe_keys = Vec::new();
    let start = Instant::now();
    for i in 0..n {
        let op = workload.next_op();
        if i % 37 == 0 {
            let r = match &op {
                Op::Insert(r) | Op::Upsert(r) => r,
            };
            probe_keys.push(pk_of(r));
        }
        lsm_bench::apply(&ds, &op);
    }
    let ingest_wall_secs = start.elapsed().as_secs_f64();

    let q = Instant::now();
    ds.maintenance().quiesce().expect("quiesce");
    let quiesce_wall_secs = q.elapsed().as_secs_f64();

    let l = Instant::now();
    let mut found = 0usize;
    for pk in &probe_keys {
        if ds.get(&Value::Int(*pk)).expect("lookup").is_some() {
            found += 1;
        }
    }
    assert!(found > 0, "lookups found no records");
    let lookup_wall_us = l.elapsed().as_secs_f64() * 1e6 / probe_keys.len() as f64;

    let snap = ds.stats().snapshot();
    VariantResult {
        mode,
        records: n,
        ingest_wall_secs,
        ingest_ops_per_sec: n as f64 / ingest_wall_secs,
        quiesce_wall_secs,
        lookup_wall_us,
        flushes: snap.flushes,
        merges: snap.merges,
        flush_jobs: snap.flush_jobs,
        merge_jobs: snap.merge_jobs,
        backpressure_stalls: snap.backpressure_stalls,
    }
}

fn json_variant(v: &VariantResult) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"mode\": \"{}\",\n",
            "      \"records\": {},\n",
            "      \"ingest_wall_secs\": {:.4},\n",
            "      \"ingest_ops_per_sec\": {:.1},\n",
            "      \"quiesce_wall_secs\": {:.4},\n",
            "      \"point_lookup_us\": {:.3},\n",
            "      \"flushes\": {},\n",
            "      \"merges\": {},\n",
            "      \"flush_jobs\": {},\n",
            "      \"merge_jobs\": {},\n",
            "      \"backpressure_stalls\": {}\n",
            "    }}"
        ),
        v.mode,
        v.records,
        v.ingest_wall_secs,
        v.ingest_ops_per_sec,
        v.quiesce_wall_secs,
        v.lookup_wall_us,
        v.flushes,
        v.merges,
        v.flush_jobs,
        v.merge_jobs,
        v.backpressure_stalls,
    )
}

fn main() {
    let n = scaled(40_000);
    let variants = [
        run("inline", MaintenanceMode::Inline, n),
        run(
            "background-2w",
            MaintenanceMode::Background { workers: 2 },
            n,
        ),
    ];
    let body: Vec<String> = variants.iter().map(json_variant).collect();
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"bench\": \"ingest\",\n  \"scale\": {},\n  \"variants\": [\n{}\n  ]\n}}\n",
        scale(),
        body.join(",\n")
    );
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_ingest.json".into());
    std::fs::write(&out, &json).expect("write snapshot");
    println!("{json}");
    for v in &variants {
        eprintln!(
            "{}: {:.0} ops/s ingest, {:.2}us lookup, {} stalls",
            v.mode, v.ingest_ops_per_sec, v.lookup_wall_us, v.backpressure_stalls
        );
    }
    eprintln!("wrote {out}");
}
