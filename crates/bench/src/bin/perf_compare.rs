//! Compares two `BENCH_ingest.json` perf snapshots and fails (exit 1) on
//! regression: CI restores the previous run's snapshot from the actions
//! cache and gates the current one against it, so a perf cliff in any
//! tracked scenario blocks the merge instead of silently accumulating in
//! the artifact trail.
//!
//! ```sh
//! cargo run -p lsm-bench --release --bin perf_compare -- \
//!     baseline/BENCH_ingest.json BENCH_ingest.json
//! ```
//!
//! Tracked metrics (scenario rows are matched by their `mode` key; rows
//! missing from the baseline — new scenarios, schema upgrades — are
//! reported and skipped):
//!
//! | array        | metric                 | direction     |
//! |--------------|------------------------|---------------|
//! | `variants`   | `ingest_ops_per_sec`   | higher better |
//! | `variants`   | `point_lookup_us`      | lower better  |
//! | `variants`   | `lookup_allocs_per_op` | lower better  |
//! | `scan_heavy` | `index_bytes`          | lower better  |
//! | `scan_heavy` | serial rows per second | higher better |
//! | `index_only` | `bytes_read`           | lower better  |
//! | `index_only` | `rows_per_sec`         | higher better |
//!
//! A metric regresses when it is worse than the baseline by more than the
//! threshold (default 15%, override with `PERF_COMPARE_THRESHOLD`, e.g.
//! `0.15`). The parser handles exactly the JSON `perf_snapshot` emits — a
//! flat object of arrays of flat objects — with no external dependencies.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One scenario row: its array, its `mode` key, and its numeric fields.
#[derive(Debug, Default, Clone)]
struct Row {
    fields: BTreeMap<String, f64>,
}

/// Parses the snapshot's `"array": [ {..}, {..} ]` sections into
/// `(array name, mode) -> Row`. String fields other than `mode` are
/// ignored; numeric fields are collected.
fn parse(text: &str) -> BTreeMap<(String, String), Row> {
    let mut out = BTreeMap::new();
    let mut array: Option<String> = None;
    let mut row = Row::default();
    let mut mode: Option<String> = None;
    for raw in text.lines() {
        let line = raw.trim();
        if let Some(name) = line
            .strip_prefix('"')
            .and_then(|l| l.split_once('"'))
            .filter(|(_, rest)| rest.trim_end_matches(',').trim() == ": [")
            .map(|(name, _)| name)
        {
            array = Some(name.to_string());
        } else if line == "]" || line == "]," {
            array = None;
        } else if line == "{" {
            row = Row::default();
            mode = None;
        } else if (line == "}" || line == "},") && array.is_some() {
            if let (Some(a), Some(m)) = (&array, mode.take()) {
                out.insert((a.clone(), m), std::mem::take(&mut row));
            }
        } else if let Some((key, value)) = line.split_once(':') {
            let key = key.trim().trim_matches('"');
            let value = value.trim().trim_end_matches(',');
            if key == "mode" {
                mode = Some(value.trim_matches('"').to_string());
            } else if let Ok(v) = value.parse::<f64>() {
                row.fields.insert(key.to_string(), v);
            }
        }
    }
    out
}

/// Serial rows per second for a `scan_heavy` row, derived from its raw
/// fields (the snapshot records rows and wall seconds separately).
fn scan_serial_rows_per_sec(row: &Row) -> Option<f64> {
    let rows = row.fields.get("rows")?;
    let secs = row.fields.get("serial_wall_secs")?;
    Some(rows / secs.max(1e-9))
}

struct Check {
    array: &'static str,
    metric: &'static str,
    higher_is_better: bool,
    /// Derived metric; when set, `metric` is only a label.
    derive: Option<fn(&Row) -> Option<f64>>,
}

const CHECKS: &[Check] = &[
    Check {
        array: "variants",
        metric: "ingest_ops_per_sec",
        higher_is_better: true,
        derive: None,
    },
    Check {
        array: "variants",
        metric: "point_lookup_us",
        higher_is_better: false,
        derive: None,
    },
    Check {
        array: "variants",
        metric: "lookup_allocs_per_op",
        higher_is_better: false,
        derive: None,
    },
    Check {
        array: "scan_heavy",
        metric: "index_bytes",
        higher_is_better: false,
        derive: None,
    },
    Check {
        array: "scan_heavy",
        metric: "serial_rows_per_sec",
        higher_is_better: true,
        derive: Some(scan_serial_rows_per_sec),
    },
    Check {
        array: "index_only",
        metric: "bytes_read",
        higher_is_better: false,
        derive: None,
    },
    Check {
        array: "index_only",
        metric: "rows_per_sec",
        higher_is_better: true,
        derive: Some(|row| row.fields.get("rows_per_sec").copied()),
    },
];

fn value_of(row: &Row, check: &Check) -> Option<f64> {
    match check.derive {
        Some(f) => f(row),
        None => row.fields.get(check.metric).copied(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, current_path] = &args[..] else {
        eprintln!("usage: perf_compare <baseline.json> <current.json>");
        return ExitCode::from(2);
    };
    let threshold: f64 = std::env::var("PERF_COMPARE_THRESHOLD")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15);

    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(t) => parse(&t),
        Err(e) => {
            // First run, or the cache expired: nothing to gate against.
            eprintln!("no baseline at {baseline_path} ({e}); skipping comparison");
            return ExitCode::SUCCESS;
        }
    };
    let current = parse(&std::fs::read_to_string(current_path).expect("current snapshot"));

    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for check in CHECKS {
        for ((array, row_mode), cur_row) in &current {
            if array != check.array {
                continue;
            }
            let Some(cur) = value_of(cur_row, check) else {
                continue;
            };
            let key = (array.clone(), row_mode.clone());
            let Some(base) = baseline.get(&key).and_then(|r| value_of(r, check)) else {
                eprintln!(
                    "{array}/{row_mode} {}: no baseline value, skipping",
                    check.metric
                );
                continue;
            };
            compared += 1;
            // Relative change in the "worse" direction.
            let worse_by = if check.higher_is_better {
                (base - cur) / base.abs().max(1e-9)
            } else {
                (cur - base) / base.abs().max(1e-9)
            };
            let verdict = if worse_by > threshold {
                "REGRESSED"
            } else {
                "ok"
            };
            eprintln!(
                "{array}/{row_mode} {}: {base:.2} -> {cur:.2} ({:+.1}% worse) {verdict}",
                check.metric,
                worse_by * 100.0
            );
            if worse_by > threshold {
                regressions.push(format!(
                    "{array}/{row_mode} {}: {base:.2} -> {cur:.2}",
                    check.metric
                ));
            }
        }
    }

    if regressions.is_empty() {
        eprintln!(
            "perf_compare: {compared} metrics within {:.0}% of baseline",
            threshold * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "perf_compare: {} regression(s) beyond {:.0}%:",
            regressions.len(),
            threshold * 100.0
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        ExitCode::FAILURE
    }
}
