//! Shared harness for the figure-reproduction benchmarks.
//!
//! Every bench target in `benches/` regenerates one figure of Section 6.
//! The paper's testbed (80M tweets ≈ 30GB on a 7200rpm disk, 2GB buffer
//! cache, 128MB memory components, 1GB maximum mergeable components) is
//! scaled down by roughly 200× while preserving the *ratios* that shape the
//! results:
//!
//! | knob                     | paper    | here (default)        |
//! |--------------------------|----------|-----------------------|
//! | records                  | 80M      | ~100K (per bench)     |
//! | record size              | ~500B    | 500B                  |
//! | buffer cache / dataset   | ~6.7%    | same ratio            |
//! | memory comps / dataset   | ~0.4%    | ~1% (merge pacing)    |
//! | max mergeable / dataset  | ~3.3%    | ~5% (≈20 components)  |
//! | page size                | 128KB    | 128KB (≈260 recs/page)|
//! | bloom FPR                | 1%       | 1%                    |
//! | tiering size ratio       | 1.2      | 1.2                   |
//!
//! Results are reported in **simulated seconds** (the paper's y-axes) with
//! wall-clock seconds alongside. `EXPERIMENTS.md` records paper-vs-measured
//! shapes.

use lsm_common::{Record, Value};
use lsm_engine::{Dataset, DatasetConfig, MaintenanceRuntime, SecondaryIndexDef, StrategyKind};
use lsm_storage::{LeafEncoding, SimClock, Storage, StorageOptions};
use lsm_workload::{Op, TweetConfig, TweetGenerator, UpdateDistribution, UpsertWorkload};
use std::sync::Arc;

/// Allocation counting for the zero-copy acceptance numbers.
///
/// The tracker is a pass-through [`System`](std::alloc::System) allocator
/// that counts calls. It only counts when a binary registers it:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: lsm_bench::alloc_track::CountingAlloc =
///     lsm_bench::alloc_track::CountingAlloc;
/// ```
///
/// `perf_snapshot` registers it and reports allocations per point lookup;
/// in binaries that don't, [`allocations`](alloc_track::allocations) stays
/// at zero and derived metrics are reported as zero.
pub mod alloc_track {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// A counting pass-through over the system allocator.
    pub struct CountingAlloc;

    // SAFETY: delegates verbatim to `System`; the counter has no effect on
    // the returned memory.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    /// Heap allocations made so far by this process (0 unless the binary
    /// registered [`CountingAlloc`] as its global allocator).
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

/// Scale factor for bench sizes; override with `LSM_BENCH_SCALE` (e.g. 0.2
/// for a quick smoke run, 4.0 for a long run).
pub fn scale() -> f64 {
    std::env::var("LSM_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// `n` scaled by [`scale`].
pub fn scaled(n: usize) -> usize {
    ((n as f64) * scale()).max(16.0) as usize
}

/// A scaled experimental environment.
pub struct Env {
    /// Data device.
    pub storage: Arc<Storage>,
    /// Log device (separate disk, as in §6.1), sharing the same clock.
    pub log_storage: Arc<Storage>,
    /// Shared simulated clock.
    pub clock: SimClock,
}

/// Simulated device profile for an [`Env`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchDevice {
    /// 7200rpm disk: 128KB pages, expensive seeks (the paper's testbed).
    Hdd,
    /// SATA SSD: 32KB pages, cheap seeks.
    Ssd,
    /// NVMe flash: 16KB pages, near-free seeks.
    Nvme,
}

impl BenchDevice {
    /// All devices, in sweep order.
    pub const ALL: [BenchDevice; 3] = [BenchDevice::Hdd, BenchDevice::Ssd, BenchDevice::Nvme];

    /// Short name for report rows.
    pub fn name(self) -> &'static str {
        match self {
            BenchDevice::Hdd => "hdd",
            BenchDevice::Ssd => "ssd",
            BenchDevice::Nvme => "nvme",
        }
    }

    /// Storage options for this profile with `cache_bytes` of buffer cache.
    pub fn options(self, cache_bytes: usize) -> StorageOptions {
        match self {
            BenchDevice::Hdd => StorageOptions::hdd(cache_bytes),
            BenchDevice::Ssd => StorageOptions::ssd(cache_bytes),
            BenchDevice::Nvme => StorageOptions::nvme(cache_bytes),
        }
    }
}

/// Knobs for [`Env::new`].
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Expected dataset size in bytes (sizes the cache).
    pub dataset_bytes: u64,
    /// Buffer cache as a fraction of the dataset (paper: 2GB / 30GB).
    pub cache_fraction: f64,
    /// Use the SSD profile instead of HDD. Kept for the existing bench
    /// literals; [`Env::new_with_device`] overrides it for the three-way
    /// hdd/ssd/nvme sweeps.
    pub ssd: bool,
    /// Buffer-cache shards (1 = the classic single CLOCK; raise for
    /// parallel-query scenarios so readers stop serializing on one lock).
    pub cache_shards: usize,
    /// Leaf-page encoding for every B+-tree the run builds (`Plain` keeps
    /// the byte-for-byte legacy pages; `Prefix` turns on restart-point
    /// prefix compression).
    pub leaf_encoding: LeafEncoding,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            dataset_bytes: 50 * 1024 * 1024,
            cache_fraction: 0.067,
            ssd: false,
            cache_shards: 1,
            leaf_encoding: LeafEncoding::Plain,
        }
    }
}

impl Env {
    /// Creates a scaled environment on the device `cfg.ssd` picks.
    pub fn new(cfg: &EnvConfig) -> Self {
        let device = if cfg.ssd {
            BenchDevice::Ssd
        } else {
            BenchDevice::Hdd
        };
        Self::new_with_device(device, cfg)
    }

    /// Creates a scaled environment on an explicit device profile,
    /// ignoring `cfg.ssd`.
    pub fn new_with_device(device: BenchDevice, cfg: &EnvConfig) -> Self {
        let cache_bytes = (cfg.dataset_bytes as f64 * cfg.cache_fraction) as usize;
        let opts = StorageOptions {
            cache_shards: cfg.cache_shards.max(1),
            leaf_encoding: cfg.leaf_encoding,
            ..device.options(cache_bytes)
        };
        let clock = SimClock::new();
        let storage = Storage::with_clock(opts.clone(), clock.clone());
        let log_storage = Storage::with_clock(opts, clock.clone());
        Env {
            storage,
            log_storage,
            clock,
        }
    }
}

/// Builds the tweet dataset configuration of Section 6.1: secondary index
/// on `user_id`, range filter on `creation_time`.
pub fn tweet_dataset_config(
    strategy: StrategyKind,
    dataset_bytes: u64,
    num_secondaries: usize,
) -> DatasetConfig {
    let mut cfg = DatasetConfig::new(TweetGenerator::schema(), 0);
    cfg.strategy = strategy;
    cfg.filter_field = Some(3); // creation_time
    cfg.secondary_indexes = (0..num_secondaries)
        .map(|i| SecondaryIndexDef {
            name: if i == 0 {
                "user_id".into()
            } else {
                format!("user_id_{i}")
            },
            field: 1, // all on user_id, as in §6.3 ("adding more indexes")
        })
        .collect();
    cfg.memory_budget = (dataset_bytes / 100).max(256 * 1024) as usize;
    cfg.merge.max_mergeable_bytes = (dataset_bytes / 20).max(1024 * 1024);
    cfg
}

/// Opens a tweet dataset in `env`.
pub fn open_tweet_dataset(env: &Env, cfg: DatasetConfig) -> Arc<Dataset> {
    Dataset::open(env.storage.clone(), Some(env.log_storage.clone()), cfg)
        .expect("valid bench dataset")
}

/// Applies one workload op to the dataset.
pub fn apply(ds: &Dataset, op: &Op) {
    match op {
        Op::Insert(r) => {
            ds.insert(r).expect("insert");
        }
        Op::Upsert(r) => ds.upsert(r).expect("upsert"),
    }
}

/// Ingests `n` upsert ops, returning `(records, sim_minutes)` checkpoints —
/// the series plotted in Figures 13/14.
pub fn ingest_series(
    ds: &Dataset,
    workload: &mut UpsertWorkload,
    n: usize,
    checkpoints: usize,
) -> Vec<(u64, f64)> {
    let clock = ds.storage().clock().clone();
    let start = clock.now_secs();
    let mut series = Vec::new();
    let step = (n / checkpoints.max(1)).max(1);
    for i in 0..n {
        let op = workload.next_op();
        apply(ds, &op);
        if (i + 1) % step == 0 {
            series.push(((i + 1) as u64, (clock.now_secs() - start) / 60.0));
        }
    }
    series
}

/// Prepares a tweet dataset of `n` records with `update_ratio` updates,
/// returning the dataset and the generator used (for key access).
pub fn prepare_dataset(
    env: &Env,
    strategy: StrategyKind,
    dataset_bytes: u64,
    n: usize,
    update_ratio: f64,
    distribution: UpdateDistribution,
) -> (Arc<Dataset>, UpsertWorkload) {
    let cfg = tweet_dataset_config(strategy, dataset_bytes, 1);
    let ds = open_tweet_dataset(env, cfg);
    let mut workload = UpsertWorkload::new(TweetConfig::default(), update_ratio, distribution);
    for _ in 0..n {
        let op = workload.next_op();
        apply(&ds, &op);
    }
    ds.flush_all().expect("flush");
    (ds, workload)
}

/// What one maintenance-heavy multi-dataset run measured.
#[derive(Debug, Clone, Copy)]
pub struct SharedRuntimeRun {
    /// Wall seconds for the concurrent ingest phase.
    pub ingest_wall_secs: f64,
    /// Aggregate writer throughput across all datasets.
    pub ingest_ops_per_sec: f64,
    /// Wall seconds draining every dataset's background queue.
    pub quiesce_wall_secs: f64,
    /// Background flush jobs executed, summed over the datasets.
    pub flush_jobs: u64,
    /// Background merge jobs executed, summed over the datasets.
    pub merge_jobs: u64,
    /// The runtime's maintenance-thread high-water mark (0 inline).
    pub peak_workers: usize,
}

/// The maintenance-heavy scenario shared by `perf_snapshot` and the
/// `background_ingestion` bench: `datasets` small tweet datasets ingest
/// `n_per` upserts each on one writer thread apiece (distinct workload
/// seeds), either maintaining inline (`runtime` = `None` — every writer
/// pays its own flush/merge cost) or all registered on one shared
/// [`MaintenanceRuntime`].
pub fn run_shared_runtime_scenario(
    runtime: Option<&Arc<MaintenanceRuntime>>,
    datasets: usize,
    n_per: usize,
) -> SharedRuntimeRun {
    let dataset_bytes = (n_per as u64) * 550;
    let handles: Vec<Arc<Dataset>> = (0..datasets)
        .map(|_| {
            let env = Env::new(&EnvConfig {
                dataset_bytes,
                ssd: true,
                ..Default::default()
            });
            let mut cfg = tweet_dataset_config(StrategyKind::Validation, dataset_bytes, 1);
            // The scenario exists to exercise maintenance: size the budget
            // below the ingested data even at bench-smoke scale, where the
            // tweet config's 256KB floor would otherwise mean zero flushes.
            cfg.memory_budget = ((dataset_bytes / 16) as usize).max(16 * 1024);
            match runtime {
                Some(rt) => Dataset::open_with_runtime(
                    env.storage.clone(),
                    Some(env.log_storage.clone()),
                    cfg,
                    rt,
                )
                .expect("dataset"),
                None => Dataset::open(env.storage.clone(), Some(env.log_storage.clone()), cfg)
                    .expect("dataset"),
            }
        })
        .collect();

    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for (d, ds) in handles.iter().enumerate() {
            scope.spawn(move || {
                let mut workload = UpsertWorkload::new(
                    TweetConfig {
                        seed: d as u64 + 1,
                        ..TweetConfig::default()
                    },
                    0.5,
                    UpdateDistribution::Uniform,
                );
                for _ in 0..n_per {
                    apply(ds, &workload.next_op());
                }
            });
        }
    });
    let ingest_wall_secs = start.elapsed().as_secs_f64();
    let q = std::time::Instant::now();
    for ds in &handles {
        ds.maintenance().quiesce().expect("quiesce");
    }
    let quiesce_wall_secs = q.elapsed().as_secs_f64();

    let mut flush_jobs = 0;
    let mut merge_jobs = 0;
    for ds in &handles {
        let snap = ds.stats().snapshot();
        flush_jobs += snap.flush_jobs;
        merge_jobs += snap.merge_jobs;
    }
    SharedRuntimeRun {
        ingest_wall_secs,
        ingest_ops_per_sec: (datasets * n_per) as f64 / ingest_wall_secs,
        quiesce_wall_secs,
        flush_jobs,
        merge_jobs,
        peak_workers: runtime.map_or(0, |rt| rt.stats().peak_workers),
    }
}

/// What one multi-writer group-commit run measured: `writers` threads
/// committing [`WriteBatch`](lsm_engine::WriteBatch)es against ONE
/// sharded, WAL-backed dataset.
#[derive(Debug, Clone, Copy)]
pub struct MultiWriterRun {
    /// Concurrent writer threads (also the memtable shard count).
    pub writers: usize,
    /// Total records committed across all writers.
    pub records: usize,
    /// Records staged per `WriteBatch` commit.
    pub batch: usize,
    /// Wall seconds for the concurrent ingest phase.
    pub ingest_wall_secs: f64,
    /// Aggregate writer throughput.
    pub ingest_ops_per_sec: f64,
    /// Times a writer stalled on the hard memory ceiling.
    pub backpressure_stalls: u64,
    /// Leader-drained WAL group writes (each one page-sized device append).
    pub wal_groups: u64,
    /// Achieved group size: log records per device append. `> 1` whenever
    /// commits actually share groups.
    pub wal_records_per_group: f64,
}

/// The multi-writer scenario behind `perf_snapshot`'s `multi_writer`
/// section and the `group_commit` bench: one tweet dataset with
/// `memtable_shards = writers` and a WAL, hammered by `writers` threads
/// that each commit `n_total / writers` upserts in [`WriteBatch`]es of
/// `batch` records (distinct workload seeds per thread). Background
/// maintenance on two workers keeps flushes off the commit path; the WAL
/// is forced before reading the group counters so trailing staged records
/// are counted.
///
/// [`WriteBatch`]: lsm_engine::WriteBatch
pub fn run_multi_writer_scenario(writers: usize, n_total: usize, batch: usize) -> MultiWriterRun {
    assert!(writers > 0 && batch > 0);
    let dataset_bytes = (n_total as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ssd: true,
        ..Default::default()
    });
    let runtime = MaintenanceRuntime::start(
        lsm_engine::EngineConfig::builder()
            .min_workers(1)
            .max_workers(2)
            .build()
            .expect("engine config"),
    )
    .expect("runtime");
    let mut cfg = tweet_dataset_config(StrategyKind::Validation, dataset_bytes, 1);
    cfg.memtable_shards = writers;
    // As in the shared-runtime scenario: budget below the ingested data so
    // flushes churn under the writers even at bench-smoke scale.
    cfg.memory_budget = ((dataset_bytes / 16) as usize).max(16 * 1024);
    let ds = Dataset::open_with_runtime(
        env.storage.clone(),
        Some(env.log_storage.clone()),
        cfg,
        &runtime,
    )
    .expect("dataset");

    let n_per = n_total / writers;
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for w in 0..writers {
            let ds = &ds;
            scope.spawn(move || {
                let mut workload = UpsertWorkload::new(
                    TweetConfig {
                        seed: w as u64 + 1,
                        ..TweetConfig::default()
                    },
                    0.5,
                    UpdateDistribution::Uniform,
                );
                let mut done = 0;
                while done < n_per {
                    let take = batch.min(n_per - done);
                    let mut b = ds.batch();
                    for _ in 0..take {
                        b = match workload.next_op() {
                            Op::Insert(r) => b.insert(&r),
                            Op::Upsert(r) => b.upsert(&r),
                        };
                    }
                    b.commit().expect("batch commit");
                    done += take;
                }
            });
        }
    });
    let ingest_wall_secs = start.elapsed().as_secs_f64();
    ds.maintenance().quiesce().expect("quiesce");
    // Records still sitting in the staging page only become a counted
    // group once a leader writes them.
    ds.wal().expect("wal").force().expect("wal force");

    let snap = ds.stats().snapshot();
    MultiWriterRun {
        writers,
        records: n_per * writers,
        batch,
        ingest_wall_secs,
        ingest_ops_per_sec: (n_per * writers) as f64 / ingest_wall_secs,
        backpressure_stalls: snap.backpressure_stalls,
        wal_groups: snap.wal_groups,
        wal_records_per_group: if snap.wal_groups == 0 {
            0.0
        } else {
            snap.wal_grouped_records as f64 / snap.wal_groups as f64
        },
    }
}

/// What one fairness run measured: a hot flooding dataset vs a set of
/// quiet datasets on a shared, quota-limited runtime.
#[derive(Debug, Clone, Copy)]
pub struct FairnessRun {
    /// Records the hot dataset ingested.
    pub hot_records: usize,
    /// Number of quiet datasets.
    pub quiet_datasets: usize,
    /// Records each quiet dataset ingested.
    pub quiet_records_per_dataset: usize,
    /// Mean wall seconds a quiet dataset took to ingest its burst and
    /// drain its own background jobs while the hot dataset flooded.
    pub quiet_latency_secs_mean: f64,
    /// Worst-case quiet-dataset latency — the starvation signal: under
    /// fair scheduling it stays within a small factor of the mean.
    pub quiet_latency_secs_max: f64,
    /// Jobs the hot dataset still had queued or running when the last
    /// quiet dataset finished (> 0 means quiet progress happened under
    /// real contention).
    pub hot_backlog_at_quiet_done: usize,
    /// Times the per-dataset quota deferred a dataset with runnable work.
    pub quota_deferrals: u64,
    /// The runtime's maintenance-thread high-water mark.
    pub peak_workers: usize,
}

/// The fairness scenario shared by `perf_snapshot`: one hot dataset floods
/// a shared runtime (`max_workers` 4, per-dataset quota 1) from a
/// dedicated writer thread while `quiet` datasets each ingest a flush-
/// tripping burst and quiesce, one after another, measuring the latency
/// each experienced. Deficit-round-robin + the quota keep those latencies
/// bounded no matter how much work the hot dataset has queued.
pub fn run_fairness_scenario(quiet: usize, n_hot: usize, n_quiet: usize) -> FairnessRun {
    use lsm_engine::EngineConfig;
    let runtime = MaintenanceRuntime::start(
        EngineConfig::builder()
            .min_workers(2)
            .max_workers(4)
            .max_jobs_per_dataset(1)
            .build()
            .expect("runtime config"),
    )
    .expect("runtime");
    let mk = |n: usize, seed: u64| {
        let dataset_bytes = (n as u64) * 550;
        let env = Env::new(&EnvConfig {
            dataset_bytes,
            ssd: true,
            ..Default::default()
        });
        let mut cfg = tweet_dataset_config(StrategyKind::Validation, dataset_bytes, 1);
        cfg.memory_budget = ((dataset_bytes / 16) as usize).max(16 * 1024);
        let ds = Dataset::open_with_runtime(
            env.storage.clone(),
            Some(env.log_storage.clone()),
            cfg,
            &runtime,
        )
        .expect("dataset");
        let workload = UpsertWorkload::new(
            TweetConfig {
                seed,
                ..TweetConfig::default()
            },
            0.5,
            UpdateDistribution::Uniform,
        );
        (ds, workload)
    };
    let (hot, mut hot_workload) = mk(n_hot, 1);
    let quiet_handles: Vec<_> = (0..quiet).map(|d| mk(n_quiet, d as u64 + 2)).collect();

    let (latencies, hot_backlog) = std::thread::scope(|scope| {
        let hot_ref = &hot;
        scope.spawn(move || {
            for _ in 0..n_hot {
                apply(hot_ref, &hot_workload.next_op());
            }
        });
        let mut latencies = Vec::new();
        for (ds, workload) in quiet_handles {
            let mut workload = workload;
            let t0 = std::time::Instant::now();
            for _ in 0..n_quiet {
                apply(&ds, &workload.next_op());
            }
            ds.maintenance().quiesce().expect("quiesce");
            latencies.push(t0.elapsed().as_secs_f64());
        }
        let hot_id = hot_ref.runtime_dataset_id().expect("registered");
        let hot_backlog = runtime
            .stats()
            .per_dataset
            .iter()
            .find(|d| d.dataset == hot_id)
            .map(|d| d.queued + d.in_flight)
            .unwrap_or(0);
        (latencies, hot_backlog)
    });
    hot.maintenance().quiesce().expect("quiesce hot");
    let stats = runtime.stats();
    let mean = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    let max = latencies.iter().cloned().fold(0.0f64, f64::max);
    FairnessRun {
        hot_records: n_hot,
        quiet_datasets: quiet,
        quiet_records_per_dataset: n_quiet,
        quiet_latency_secs_mean: mean,
        quiet_latency_secs_max: max,
        hot_backlog_at_quiet_done: hot_backlog,
        quota_deferrals: stats.quota_deferrals,
        peak_workers: stats.peak_workers,
    }
}

/// What one query-heavy run measured: the same secondary range queries
/// executed serially and with `parallel(n)` over a pre-loaded
/// multi-component dataset on a sharded buffer cache.
#[derive(Debug, Clone, Copy)]
pub struct QueryHeavyRun {
    /// Records pre-loaded into the dataset.
    pub records: usize,
    /// Secondary range queries per pass.
    pub queries: usize,
    /// The `parallel(n)` fan-out measured against serial.
    pub parallelism: usize,
    /// Disk components of the secondary index at query time.
    pub components: usize,
    /// Buffer-cache shards configured on the data device.
    pub cache_shards: usize,
    /// Wall seconds for the serial pass.
    pub serial_wall_secs: f64,
    /// Wall seconds for the parallel pass (same queries, cold cache both).
    pub parallel_wall_secs: f64,
    /// `serial_wall_secs / parallel_wall_secs` — ≥ 1 means parallel won.
    pub speedup: f64,
    /// Rows returned per pass (asserted identical between the passes).
    pub rows: usize,
    /// Scan partitions actually planned across the parallel pass.
    pub partitions: u64,
}

/// The query-heavy scenario shared by `perf_snapshot` and the
/// `parallel_query` bench: pre-load a Validation tweet dataset with enough
/// flush/merge churn to leave several disk components, then run `queries`
/// secondary `user_id` range queries twice — serially and with
/// `parallel(n)` — from a cold cache each time, comparing wall-clock time.
/// Queries sweep rotating ~10% slices of the `user_id` domain: wide
/// analytical ranges whose scan and record-fetch work is what the
/// partitioned path spreads across cores.
pub fn run_query_heavy_scenario(n: usize, queries: usize, parallelism: usize) -> QueryHeavyRun {
    use lsm_workload::USER_ID_DOMAIN;
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ssd: true,
        cache_shards: 8,
        ..Default::default()
    });
    let mut cfg = tweet_dataset_config(StrategyKind::Validation, dataset_bytes, 1);
    // Size memory so the load leaves a real component stack behind.
    cfg.memory_budget = ((dataset_bytes / 24) as usize).max(64 * 1024);
    let ds = open_tweet_dataset(&env, cfg);
    let mut workload =
        UpsertWorkload::new(TweetConfig::default(), 0.3, UpdateDistribution::Uniform);
    for _ in 0..n {
        apply(&ds, &workload.next_op());
    }
    ds.flush_all().expect("flush");

    let slice = (USER_ID_DOMAIN / 10).max(1);
    let range_of = |q: usize| {
        let lo = (q as i64 * slice * 3) % (USER_ID_DOMAIN - slice);
        (lo, lo + slice - 1)
    };

    env.storage.clear_cache();
    let serial_t = std::time::Instant::now();
    let mut serial_rows = 0usize;
    for q in 0..queries {
        let (lo, hi) = range_of(q);
        serial_rows += ds
            .query("user_id")
            .range(lo, hi)
            .execute()
            .expect("serial query")
            .len();
    }
    let serial_wall_secs = serial_t.elapsed().as_secs_f64();

    env.storage.clear_cache();
    let before = ds.stats().snapshot();
    let par_t = std::time::Instant::now();
    let mut par_rows = 0usize;
    for q in 0..queries {
        let (lo, hi) = range_of(q);
        par_rows += ds
            .query("user_id")
            .range(lo, hi)
            .parallel(parallelism)
            .execute()
            .expect("parallel query")
            .len();
    }
    let parallel_wall_secs = par_t.elapsed().as_secs_f64();
    assert_eq!(serial_rows, par_rows, "parallel pass changed the answer");
    let snap = ds.stats().snapshot();

    QueryHeavyRun {
        records: n,
        queries,
        parallelism,
        components: ds
            .secondary("user_id")
            .expect("index")
            .tree
            .num_disk_components(),
        cache_shards: env.storage.cache_shards(),
        serial_wall_secs,
        parallel_wall_secs,
        speedup: serial_wall_secs / parallel_wall_secs.max(1e-9),
        rows: serial_rows,
        partitions: snap.query_partitions - before.query_partitions,
    }
}

/// What one scan-heavy run measured: the same `creation_time` filter scans
/// executed serially and with `parallel(n)` over a pre-loaded dataset built
/// with one leaf-page encoding.
#[derive(Debug, Clone, Copy)]
pub struct ScanHeavyRun {
    /// Records pre-loaded into the dataset.
    pub records: usize,
    /// Filter scans per pass.
    pub scans: usize,
    /// The `parallel(n)` fan-out measured against serial.
    pub parallelism: usize,
    /// Leaf-page encoding every B+-tree in the run was built with.
    pub encoding: LeafEncoding,
    /// Disk components of the primary index at scan time.
    pub components: usize,
    /// Live bytes on the data device after the load — the compression
    /// acceptance number (`Prefix` must come in under `Plain`).
    pub index_bytes: u64,
    /// Wall seconds for the serial pass.
    pub serial_wall_secs: f64,
    /// Wall seconds for the parallel pass (same scans, cold cache both).
    pub parallel_wall_secs: f64,
    /// `serial_wall_secs / parallel_wall_secs` — ≥ 1 means parallel won.
    pub speedup: f64,
    /// Rows matched per pass (asserted identical between the passes).
    pub rows: usize,
    /// Scan partitions actually planned across the parallel pass.
    pub partitions: u64,
    /// Buffer-cache hit ratio over the serial pass.
    pub serial_cache_hit_ratio: f64,
    /// Buffer-cache hit ratio over the parallel pass.
    pub parallel_cache_hit_ratio: f64,
}

/// The scan-heavy scenario shared by `perf_snapshot` and the filter-scan
/// benches: pre-load a Validation tweet dataset (leaving several disk
/// components) with `encoding` leaf pages, then run `scans` rotating ~10%
/// `creation_time` slices twice — serially and with `parallel(n)` — from a
/// cold cache each time. Besides the wall-clock comparison it records the
/// live on-disk bytes after the load, so the prefix encoding's size win
/// lands in the perf trajectory next to its scan cost.
pub fn run_scan_heavy_scenario(
    n: usize,
    scans: usize,
    parallelism: usize,
    encoding: LeafEncoding,
) -> ScanHeavyRun {
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ssd: true,
        cache_shards: 8,
        leaf_encoding: encoding,
        ..Default::default()
    });
    let mut cfg = tweet_dataset_config(StrategyKind::Validation, dataset_bytes, 1);
    // Size memory so the load leaves a real component stack behind.
    cfg.memory_budget = ((dataset_bytes / 24) as usize).max(64 * 1024);
    let ds = open_tweet_dataset(&env, cfg);
    let mut workload =
        UpsertWorkload::new(TweetConfig::default(), 0.3, UpdateDistribution::Uniform);
    for _ in 0..n {
        apply(&ds, &workload.next_op());
    }
    ds.flush_all().expect("flush");
    let index_bytes = env.storage.total_bytes();

    // `creation_time` is monotonic from 0, so the watermark is the domain.
    let max_time = workload.generator().time_watermark().max(1);
    let slice = (max_time / 10).max(1);
    let range_of = |s: usize| {
        let lo = (s as i64 * slice * 3) % (max_time - slice).max(1);
        (lo, lo + slice - 1)
    };

    env.storage.clear_cache();
    let io_start = env.storage.stats();
    let serial_t = std::time::Instant::now();
    let mut serial_rows = 0usize;
    for s in 0..scans {
        let (lo, hi) = range_of(s);
        serial_rows += ds
            .filter_scan()
            .range(lo, hi)
            .records()
            .expect("serial scan")
            .len();
    }
    let serial_wall_secs = serial_t.elapsed().as_secs_f64();
    let serial_io = env.storage.stats().since(&io_start);

    env.storage.clear_cache();
    let before = ds.stats().snapshot();
    let io_start = env.storage.stats();
    let par_t = std::time::Instant::now();
    let mut par_rows = 0usize;
    for s in 0..scans {
        let (lo, hi) = range_of(s);
        par_rows += ds
            .filter_scan()
            .range(lo, hi)
            .parallel(parallelism)
            .records()
            .expect("parallel scan")
            .len();
    }
    let parallel_wall_secs = par_t.elapsed().as_secs_f64();
    let parallel_io = env.storage.stats().since(&io_start);
    assert_eq!(serial_rows, par_rows, "parallel pass changed the answer");
    let snap = ds.stats().snapshot();

    ScanHeavyRun {
        records: n,
        scans,
        parallelism,
        encoding,
        components: ds.primary().num_disk_components(),
        index_bytes,
        serial_wall_secs,
        parallel_wall_secs,
        speedup: serial_wall_secs / parallel_wall_secs.max(1e-9),
        rows: serial_rows,
        partitions: snap.filter_scan_partitions - before.filter_scan_partitions,
        serial_cache_hit_ratio: serial_io.cache_hit_ratio(),
        parallel_cache_hit_ratio: parallel_io.cache_hit_ratio(),
    }
}

/// What one index-only run measured: secondary `user_id` range queries
/// answered from the index alone (no record fetch) over a dataset built
/// with one leaf-page encoding, from a cold cache.
#[derive(Debug, Clone, Copy)]
pub struct IndexOnlyRun {
    /// Records pre-loaded into the dataset.
    pub records: usize,
    /// Index-only queries per pass.
    pub queries: usize,
    /// Leaf-page encoding every B+-tree in the run was built with.
    pub encoding: LeafEncoding,
    /// Live bytes on the data device after the load.
    pub index_bytes: u64,
    /// Device bytes read during the cold-cache query pass — the
    /// compression acceptance number (`Columnar` must undercut `Plain`).
    pub bytes_read: u64,
    /// Primary keys returned per pass.
    pub rows: usize,
    /// Keys returned per wall-clock second over the pass.
    pub rows_per_sec: f64,
    /// Wall seconds for the pass.
    pub wall_secs: f64,
}

/// The index-only scenario: pre-load an Eager tweet dataset with
/// `encoding` leaf pages (several disk components), then answer rotating
/// ~10% `user_id` range queries with `index_only()` — primary keys
/// straight from the always-accurate secondary index, no validation and
/// no record fetch — from a cold cache. Every byte the pass reads is
/// index structure, so the bytes-read comparison across encodings is the
/// key-strip acceptance number: the prefix and columnar codecs shrink
/// what the device has to deliver.
pub fn run_index_only_scenario(n: usize, queries: usize, encoding: LeafEncoding) -> IndexOnlyRun {
    use lsm_workload::USER_ID_DOMAIN;
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ssd: true,
        cache_shards: 8,
        leaf_encoding: encoding,
        ..Default::default()
    });
    let mut cfg = tweet_dataset_config(StrategyKind::Eager, dataset_bytes, 1);
    // Size memory so the load leaves a real component stack behind.
    cfg.memory_budget = ((dataset_bytes / 24) as usize).max(64 * 1024);
    let ds = open_tweet_dataset(&env, cfg);
    let mut workload =
        UpsertWorkload::new(TweetConfig::default(), 0.3, UpdateDistribution::Uniform);
    for _ in 0..n {
        apply(&ds, &workload.next_op());
    }
    ds.flush_all().expect("flush");
    let index_bytes = env.storage.total_bytes();

    let slice = (USER_ID_DOMAIN / 10).max(1);
    let range_of = |q: usize| {
        let lo = (q as i64 * slice * 3) % (USER_ID_DOMAIN - slice);
        (lo, lo + slice - 1)
    };

    env.storage.clear_cache();
    let io_start = env.storage.stats();
    let t = std::time::Instant::now();
    let mut rows = 0usize;
    for q in 0..queries {
        let (lo, hi) = range_of(q);
        rows += ds
            .query("user_id")
            .range(lo, hi)
            .index_only()
            .execute()
            .expect("index-only query")
            .len();
    }
    let wall_secs = t.elapsed().as_secs_f64();
    let io = env.storage.stats().since(&io_start);

    IndexOnlyRun {
        records: n,
        queries,
        encoding,
        index_bytes,
        bytes_read: io.bytes_read,
        rows,
        rows_per_sec: rows as f64 / wall_secs.max(1e-9),
        wall_secs,
    }
}

/// What one repair-heavy run measured: standalone secondary-index repair
/// over a dataset whose lazy maintenance left many obsolete entries.
#[derive(Debug, Clone, Copy)]
pub struct RepairHeavyRun {
    /// Records ingested (50% updates, so roughly a third of secondary
    /// entries are obsolete).
    pub records: usize,
    /// Wall seconds for `repair_all`.
    pub repair_wall_secs: f64,
    /// Simulated seconds for `repair_all` (the paper's y-axis).
    pub repair_sim_secs: f64,
    /// Secondary entries scanned by the repair.
    pub entries_scanned: u64,
    /// Keys validated against the primary key index.
    pub keys_validated: u64,
    /// Obsolete entries invalidated.
    pub invalidated: u64,
}

/// The repair-heavy scenario: ingest an update-heavy Validation workload
/// with merge-time repair disabled (so obsolete entries accumulate), then
/// time one standalone `repair_all` pass.
pub fn run_repair_heavy_scenario(n: usize) -> RepairHeavyRun {
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ssd: true,
        ..Default::default()
    });
    let mut cfg = tweet_dataset_config(StrategyKind::Validation, dataset_bytes, 1);
    cfg.merge_repair = false;
    cfg.memory_budget = ((dataset_bytes / 24) as usize).max(64 * 1024);
    let ds = open_tweet_dataset(&env, cfg);
    let mut workload =
        UpsertWorkload::new(TweetConfig::default(), 0.5, UpdateDistribution::Uniform);
    for _ in 0..n {
        apply(&ds, &workload.next_op());
    }
    ds.flush_all().expect("flush");

    env.storage.clear_cache();
    let timer = Timer::start(&env.clock);
    let reports = ds.maintenance().repair_all().expect("repair");
    let (sim, wall) = timer.elapsed();
    let mut run = RepairHeavyRun {
        records: n,
        repair_wall_secs: wall,
        repair_sim_secs: sim,
        entries_scanned: 0,
        keys_validated: 0,
        invalidated: 0,
    };
    for r in &reports {
        run.entries_scanned += r.entries_scanned;
        run.keys_validated += r.keys_validated;
        run.invalidated += r.invalidated;
    }
    run
}

/// A stopwatch pairing simulated and wall-clock time.
pub struct Timer {
    clock: SimClock,
    sim_start: f64,
    wall_start: std::time::Instant,
}

impl Timer {
    /// Starts timing on `clock`.
    pub fn start(clock: &SimClock) -> Self {
        Timer {
            clock: clock.clone(),
            sim_start: clock.now_secs(),
            wall_start: std::time::Instant::now(),
        }
    }

    /// `(simulated seconds, wall seconds)` since start.
    pub fn elapsed(&self) -> (f64, f64) {
        (
            self.clock.now_secs() - self.sim_start,
            self.wall_start.elapsed().as_secs_f64(),
        )
    }
}

/// Prints a table header for a figure.
pub fn table_header(figure: &str, title: &str, columns: &[&str]) {
    println!();
    println!("=== {figure}: {title} ===");
    println!("{}", columns.join("\t"));
}

/// Prints one row of numbers.
pub fn row(label: &str, values: &[f64]) {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.3}")).collect();
    println!("{label}\t{}", cells.join("\t"));
}

/// Builds a `creation_time` range predicate selecting the most recent
/// `days` out of `total_days` over a dataset whose creation times span
/// `0..max_time`.
pub fn recent_time_range(
    max_time: i64,
    days: i64,
    total_days: i64,
) -> (Option<Value>, Option<Value>) {
    let lo = max_time - max_time * days / total_days;
    (Some(Value::Int(lo)), None)
}

/// Range predicate selecting the OLDEST `days` out of `total_days`.
pub fn old_time_range(max_time: i64, days: i64, total_days: i64) -> (Option<Value>, Option<Value>) {
    let hi = max_time * days / total_days;
    (None, Some(Value::Int(hi)))
}

/// Convenience: a record's primary key value.
pub fn pk_of(r: &Record) -> i64 {
    r.get(0).as_int().expect("int pk")
}
