//! Figure 19: query performance of range filters (Section 6.4.2).
//!
//! The dataset's `creation_time` is monotonically increasing, so components
//! are time-correlated and carry tight range filters. Queries select the
//! most recent or the oldest `d` days of a ~2-year span.
//!
//! Expected shape (paper): for recent-data queries all strategies prune
//! well (Mutable-bitmap slightly best: no reconciliation). For old-data
//! queries the Validation strategy loses all pruning (every newer component
//! must be read); Eager prunes only in the append-only case (updates widen
//! its filters); Mutable-bitmap prunes effectively in every setting.
//!
//! Every strategy row runs on both leaf-page encodings: pruning decisions
//! are encoding-independent, so the plain and prefix rows should track each
//! other, with prefix saving pages on whatever does get read.

use lsm_bench::{
    old_time_range, recent_time_range, row, scaled, table_header, Env, EnvConfig, Timer,
};
use lsm_engine::query::filter_scan_count;
use lsm_engine::{Dataset, StrategyKind};
use lsm_storage::LeafEncoding;
use lsm_workload::UpdateDistribution;
use std::sync::Arc;

const DAYS: [i64; 5] = [1, 7, 30, 180, 365];
const TOTAL_DAYS: i64 = 730;

fn prepare(
    strategy: StrategyKind,
    update_ratio: f64,
    n: usize,
    encoding: LeafEncoding,
) -> (Env, Arc<Dataset>, i64) {
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        leaf_encoding: encoding,
        ..Default::default()
    });
    let cfg = lsm_bench::tweet_dataset_config(strategy, dataset_bytes, 1);
    let ds = lsm_bench::open_tweet_dataset(&env, cfg);
    let mut workload = lsm_workload::UpsertWorkload::new(
        lsm_workload::TweetConfig::default(),
        update_ratio,
        UpdateDistribution::Uniform,
    );
    for _ in 0..n {
        lsm_bench::apply(&ds, &workload.next_op());
    }
    ds.flush_all().expect("flush");
    let max_time = workload.generator().time_watermark();
    (env, ds, max_time)
}

fn times(ds: &Dataset, max_time: i64, recent: bool) -> Vec<f64> {
    DAYS.iter()
        .map(|d| {
            let (lo, hi) = if recent {
                recent_time_range(max_time, *d, TOTAL_DAYS)
            } else {
                old_time_range(max_time, *d, TOTAL_DAYS)
            };
            // The paper measures with a clean cache (5 runs averaged).
            let reps = 2;
            let mut total = 0.0;
            for _ in 0..reps {
                ds.storage().clear_cache();
                let timer = Timer::start(ds.storage().clock());
                let r = filter_scan_count(ds, lo.as_ref(), hi.as_ref()).expect("scan");
                total += timer.elapsed().0;
                std::hint::black_box(r.matches);
            }
            total / reps as f64
        })
        .collect()
}

fn main() {
    let n = scaled(80_000);
    let configs: [(&str, f64, bool); 3] = [
        ("recent + 50% updates", 0.5, true),
        ("old + 0% updates", 0.0, false),
        ("old + 50% updates", 0.5, false),
    ];
    for (cname, ratio, recent) in configs {
        table_header(
            "Figure 19",
            &format!("range-filter scan sim-seconds, {cname} ({n} ops)"),
            &["strategy", "1d", "7d", "30d", "180d", "365d"],
        );
        for (label, strategy) in [
            ("eager", StrategyKind::Eager),
            ("validation", StrategyKind::Validation),
            ("mutable-bitmap", StrategyKind::MutableBitmap),
        ] {
            for encoding in [LeafEncoding::Plain, LeafEncoding::Prefix] {
                let (_env, ds, max_time) = prepare(strategy, ratio, n, encoding);
                row(
                    &format!("{label}/{}", encoding.name()),
                    &times(&ds, max_time, recent),
                );
            }
        }
    }
}
