//! Figure 13-style variant: upsert ingestion with maintenance inline on
//! the writer thread vs. on the background scheduler's worker pool.
//!
//! The paper's §5.3 machinery lets writers proceed while components are
//! rebuilt; this bench measures what that buys: with inline maintenance
//! every N-th upsert absorbs a full flush+merge, while in background mode
//! the writer only enqueues work and stalls at the hard memory ceiling.
//!
//! Reported per variant: cumulative wall-clock seconds at 25/50/75/100% of
//! the workload, wall seconds for the trailing quiesce (draining the queue
//! — zero inline), and writer-side throughput. Background mode is the
//! default configuration here; inline is the baseline it is compared
//! against.

use lsm_bench::{
    row, run_shared_runtime_scenario, scaled, table_header, tweet_dataset_config, Env, EnvConfig,
};
use lsm_engine::{Dataset, EngineConfig, MaintenanceMode, MaintenanceRuntime, StrategyKind};
use lsm_workload::{TweetConfig, UpdateDistribution, UpsertWorkload};
use std::sync::Arc;

fn open(env: &Env, mode: MaintenanceMode, dataset_bytes: u64) -> Arc<Dataset> {
    let mut cfg = tweet_dataset_config(StrategyKind::Validation, dataset_bytes, 1);
    cfg.maintenance = mode;
    Dataset::open(env.storage.clone(), Some(env.log_storage.clone()), cfg).expect("dataset")
}

fn run(mode: MaintenanceMode, n: usize) -> (Vec<f64>, f64, f64) {
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ssd: true,
        ..Default::default()
    });
    let ds = open(&env, mode, dataset_bytes);
    let mut workload =
        UpsertWorkload::new(TweetConfig::default(), 0.5, UpdateDistribution::Uniform);
    let start = std::time::Instant::now();
    let mut series = Vec::new();
    for i in 0..n {
        let op = workload.next_op();
        lsm_bench::apply(&ds, &op);
        if (i + 1) % (n / 4).max(1) == 0 {
            series.push(start.elapsed().as_secs_f64());
        }
    }
    let ingest_wall = start.elapsed().as_secs_f64();
    let q = std::time::Instant::now();
    ds.maintenance().quiesce().expect("quiesce");
    let quiesce_wall = q.elapsed().as_secs_f64();
    let throughput = n as f64 / ingest_wall;
    (series, quiesce_wall, throughput)
}

fn main() {
    let n = scaled(60_000);
    table_header(
        "Figure 13 (background variant)",
        &format!("upsert ingestion, inline vs background maintenance ({n} ops)"),
        &["variant", "25%", "50%", "75%", "100%", "quiesce", "ops/s"],
    );
    for (label, mode) in [
        (
            "background-2w (default)",
            MaintenanceMode::Background { workers: 2 },
        ),
        ("background-1w", MaintenanceMode::Background { workers: 1 }),
        ("background-4w", MaintenanceMode::Background { workers: 4 }),
        ("inline", MaintenanceMode::Inline),
    ] {
        let (series, quiesce, throughput) = run(mode, n);
        let mut values = series;
        values.push(quiesce);
        values.push(throughput);
        row(label, &values);
    }

    // Maintenance-heavy: 8 small datasets, inline vs one shared bounded
    // runtime (the per-dataset-pool design would run 16+ threads here; the
    // shared runtime is capped at 4).
    let datasets = 8;
    let n_per = scaled(40_000) / datasets;
    table_header(
        "Shared maintenance runtime",
        &format!("{datasets} datasets × {n_per} upserts each"),
        &["variant", "aggregate ops/s", "quiesce", "peak workers"],
    );
    let r = run_shared_runtime_scenario(None, datasets, n_per);
    row(
        "multi-inline",
        &[r.ingest_ops_per_sec, r.quiesce_wall_secs, 0.0],
    );
    let rt = MaintenanceRuntime::start(
        EngineConfig::builder()
            .min_workers(1)
            .max_workers(4)
            .build()
            .expect("runtime config"),
    )
    .expect("runtime");
    let r = run_shared_runtime_scenario(Some(&rt), datasets, n_per);
    row(
        "multi-shared-4w",
        &[
            r.ingest_ops_per_sec,
            r.quiesce_wall_secs,
            r.peak_workers as f64,
        ],
    );
}
