//! Criterion microbenchmark for the group-commit WAL and the `WriteBatch`
//! commit path (PR 7): the same upsert stream logged one WAL append per
//! record vs staged in `WriteBatch`es (one group append per batch), plus a
//! concurrent variant where four writers on a four-shard dataset share
//! leader-drained groups.
//!
//! The memory budget is left uncapped so the numbers isolate the commit
//! path (key locks + memtable insert + WAL) from flush and merge cost;
//! the `multi_writer` perf-snapshot scenario covers the full pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lsm_bench::{scaled, tweet_dataset_config, Env, EnvConfig};
use lsm_engine::{Dataset, StrategyKind};
use lsm_workload::{Op, TweetConfig, UpdateDistribution, UpsertWorkload};
use std::sync::Arc;
use std::time::Duration;

const BATCH: usize = 32;

fn ops(n: usize, seed: u64) -> Vec<Op> {
    let mut workload = UpsertWorkload::new(
        TweetConfig {
            seed,
            ..TweetConfig::default()
        },
        0.5,
        UpdateDistribution::Uniform,
    );
    (0..n).map(|_| workload.next_op()).collect()
}

fn open(shards: usize, n: usize) -> Arc<Dataset> {
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ssd: true,
        ..Default::default()
    });
    let mut cfg = tweet_dataset_config(StrategyKind::Validation, dataset_bytes, 1);
    cfg.memtable_shards = shards;
    cfg.memory_budget = usize::MAX; // commit path only: no flushes
    Dataset::open(env.storage.clone(), Some(env.log_storage.clone()), cfg).expect("dataset")
}

fn commit_batched(ds: &Dataset, ops: &[Op]) {
    for chunk in ops.chunks(BATCH) {
        let mut b = ds.batch();
        for op in chunk {
            b = match op {
                Op::Insert(r) => b.insert(r),
                Op::Upsert(r) => b.upsert(r),
            };
        }
        b.commit().expect("batch commit");
    }
}

fn bench_group_commit(c: &mut Criterion) {
    let n = scaled(4_000);
    let mut group = c.benchmark_group("group_commit");

    group.bench_function("single_op", |b| {
        b.iter_batched(
            || (open(1, n), ops(n, 1)),
            |(ds, ops)| {
                for op in &ops {
                    lsm_bench::apply(&ds, op);
                }
                ds.wal().expect("wal").force().expect("force");
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function(&format!("batch_{BATCH}"), |b| {
        b.iter_batched(
            || (open(1, n), ops(n, 1)),
            |(ds, ops)| {
                commit_batched(&ds, &ops);
                ds.wal().expect("wal").force().expect("force");
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function(&format!("batch_{BATCH}_4_writers"), |b| {
        b.iter_batched(
            || {
                let per_writer: Vec<Vec<Op>> = (0..4).map(|w| ops(n / 4, w as u64 + 1)).collect();
                (open(4, n), per_writer)
            },
            |(ds, per_writer)| {
                std::thread::scope(|scope| {
                    for ops in &per_writer {
                        let ds = &ds;
                        scope.spawn(move || commit_batched(ds, ops));
                    }
                });
                ds.wal().expect("wal").force().expect("force");
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();

    // Achieved group size, printed once from a fresh concurrent run: the
    // tentpole's acceptance signal (`> 1` record per device append).
    let ds = open(4, n);
    std::thread::scope(|scope| {
        for w in 0..4u64 {
            let ds = &ds;
            scope.spawn(move || commit_batched(ds, &ops(n / 4, w + 1)));
        }
    });
    ds.wal().expect("wal").force().expect("force");
    let snap = ds.stats().snapshot();
    println!(
        "group_commit/achieved_group_size: {:.1} records/append ({} groups for {} records)",
        snap.wal_grouped_records as f64 / snap.wal_groups.max(1) as f64,
        snap.wal_groups,
        snap.wal_grouped_records,
    );
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    targets = bench_group_commit
);
criterion_main!(benches);
