//! Ablation studies for design choices the paper fixes without sweeping:
//!
//! 1. **Merge policy** — tiering (the paper's §6.1 choice) vs leveling vs
//!    no merging at all, on ingestion and point-query cost.
//! 2. **Bloom filters** — point-lookup cost with standard, blocked, and no
//!    Bloom filters on the primary/pk components.
//! 3. **Query-driven repair** (our §7 future-work extension) — repeated
//!    query cost on an update-heavy dataset with and without it.

use lsm_bench::{apply, row, scaled, table_header, Env, EnvConfig, Timer};
use lsm_bloom::BloomKind;
use lsm_engine::query::ValidationMethod;
use lsm_engine::{Dataset, StrategyKind};
use lsm_tree::{LevelingPolicy, MergePolicy, NoMergePolicy, TieringPolicy};
use lsm_workload::{SelectivityQueries, TweetConfig, UpdateDistribution, UpsertWorkload};
use std::sync::Arc;

fn build(n: usize, bloom: BloomKind, with_merges: Option<&dyn MergePolicy>) -> (Env, Arc<Dataset>) {
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ..Default::default()
    });
    let mut cfg = lsm_bench::tweet_dataset_config(StrategyKind::Validation, dataset_bytes, 1);
    cfg.bloom_kind = bloom;
    // Disable the built-in merge pipeline (an unreachable trigger ratio);
    // we drive merges explicitly so the policy can vary.
    cfg.merge.max_mergeable_bytes = u64::MAX;
    cfg.merge.size_ratio = f64::INFINITY;
    let ds = lsm_bench::open_tweet_dataset(&env, cfg);
    let mut workload =
        UpsertWorkload::new(TweetConfig::default(), 0.1, UpdateDistribution::Uniform);
    for i in 0..n {
        apply(&ds, &workload.next_op());
        if i % 512 == 0 {
            if let Some(policy) = with_merges {
                while ds.primary().maybe_merge(policy).expect("merge") {}
                if let Some(pk) = ds.pk_index() {
                    while pk.maybe_merge(policy).expect("merge") {}
                }
                let sec = &ds.secondaries()[0].tree;
                while sec.maybe_merge(policy).expect("merge") {}
            }
        }
    }
    ds.flush_all().expect("flush");
    (env, ds)
}

fn point_query_time(ds: &Dataset) -> f64 {
    let mut q = SelectivityQueries::new(17);
    let reps = 5;
    let timer = Timer::start(ds.storage().clock());
    for _ in 0..reps {
        let (lo, hi) = q.user_id_range(0.0005);
        let res = ds
            .query("user_id")
            .range(lo, hi)
            .validation(ValidationMethod::Timestamp)
            .execute()
            .expect("query");
        std::hint::black_box(res.len());
    }
    timer.elapsed().0 / reps as f64
}

fn main() {
    let n = scaled(40_000);

    // ---- 1: merge policy -------------------------------------------------
    table_header(
        "Ablation 1",
        &format!("merge policy ({n} upserts, 10% updates)"),
        &["policy", "ingest_sim_min", "components", "query_sim_s"],
    );
    let tiering = TieringPolicy::new(u64::MAX);
    let leveling = LevelingPolicy { size_ratio: 10.0 };
    let policies: [(&str, Option<&dyn MergePolicy>); 3] = [
        ("tiering(1.2)", Some(&tiering)),
        ("leveling(10)", Some(&leveling)),
        ("no merging", Some(&NoMergePolicy)),
    ];
    for (label, policy) in policies {
        let (env, ds) = build(n, BloomKind::Standard, policy);
        let ingest_min = env.clock.now_secs() / 60.0;
        let comps = ds.primary().num_disk_components() as f64;
        let q = point_query_time(&ds);
        row(label, &[ingest_min, comps, q]);
    }

    // ---- 2: bloom filters ---------------------------------------------------
    table_header(
        "Ablation 2",
        &format!("bloom filter variant ({n} upserts; 0.05% point queries)"),
        &["bloom", "query_sim_s", "bloom_negatives_per_query"],
    );
    let tiering = TieringPolicy::new(u64::MAX);
    for (label, kind) in [
        ("standard", BloomKind::Standard),
        ("blocked", BloomKind::Blocked),
    ] {
        let (_env, ds) = build(n, kind, Some(&tiering));
        let neg0 = ds.storage().stats().bloom_negatives;
        let q = point_query_time(&ds);
        let negs = (ds.storage().stats().bloom_negatives - neg0) as f64 / 5.0;
        row(label, &[q, negs]);
    }

    // ---- 3: query-driven repair ------------------------------------------------
    table_header(
        "Ablation 3",
        "query-driven repair: same query repeated on an update-heavy dataset",
        &["variant", "run1_sim_ms", "run2_sim_ms", "run3_sim_ms"],
    );
    for (label, qdr) in [("off", false), ("on", true)] {
        let tiering = TieringPolicy::new(u64::MAX);
        let (_env, ds) = build(n, BloomKind::Standard, Some(&tiering));
        let mut q = SelectivityQueries::new(23);
        let (lo, hi) = q.user_id_range(0.05);
        let mut runs = Vec::new();
        for _ in 0..3 {
            let timer = Timer::start(ds.storage().clock());
            // Index-only isolates the validation cost that query-driven
            // repair amortizes (record fetches would dominate otherwise).
            let res = ds
                .query("user_id")
                .range(lo, hi)
                .index_only()
                .query_driven_repair(qdr)
                .execute()
                .expect("query");
            std::hint::black_box(res.len());
            runs.push(timer.elapsed().0 * 1e3); // milliseconds
        }
        row(label, &runs);
    }
}
