//! Figure 18: Timestamp validation under a small buffer cache
//! (Section 6.4.1).
//!
//! The paper shrinks the cache from 2GB to 512MB so the primary key index no
//! longer fits. Expected shape: the impact on Timestamp validation is
//! limited, because the pk index is far smaller than the primary index, so
//! validation adds only a small number of extra I/Os.

use lsm_bench::{row, scaled, table_header, Env, EnvConfig, Timer};
use lsm_engine::query::ValidationMethod;
use lsm_engine::{Dataset, StrategyKind};
use lsm_workload::{SelectivityQueries, UpdateDistribution};
use std::sync::Arc;

const SELECTIVITIES: [f64; 6] = [0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.01];

fn prepare(cache_fraction: f64, n: usize) -> (Env, Arc<Dataset>) {
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        cache_fraction,
        ssd: false,
        ..Default::default()
    });
    let cfg = lsm_bench::tweet_dataset_config(StrategyKind::Validation, dataset_bytes, 1);
    let ds = lsm_bench::open_tweet_dataset(&env, cfg);
    let mut workload = lsm_workload::UpsertWorkload::new(
        lsm_workload::TweetConfig::default(),
        0.0, // the paper's figure 18 dataset has no updates
        UpdateDistribution::Uniform,
    );
    for _ in 0..n {
        lsm_bench::apply(&ds, &workload.next_op());
    }
    ds.flush_all().expect("flush");
    (env, ds)
}

fn times(ds: &Dataset) -> Vec<f64> {
    SELECTIVITIES
        .iter()
        .map(|sel| {
            let mut q = SelectivityQueries::new((sel * 1e7) as u64);
            let reps = 3;
            let timer = Timer::start(ds.storage().clock());
            for _ in 0..reps {
                let (lo, hi) = q.user_id_range(*sel);
                let res = ds
                    .query("user_id")
                    .range(lo, hi)
                    .validation(ValidationMethod::Timestamp)
                    .execute()
                    .expect("query");
                std::hint::black_box(res.len());
            }
            timer.elapsed().0 / reps as f64
        })
        .collect()
}

fn main() {
    let n = scaled(80_000);
    table_header(
        "Figure 18",
        &format!("timestamp validation vs cache size ({n} records, no updates)"),
        &[
            "variant", "0.001%", "0.005%", "0.01%", "0.05%", "0.1%", "1%",
        ],
    );
    let (_e1, normal) = prepare(0.067, n); // the default 2GB-equivalent
    row("ts validation", &times(&normal));
    drop(normal);
    let (_e2, small) = prepare(0.017, n); // the 512MB-equivalent
    row("ts validation (small cache)", &times(&small));
}
