//! Figure 23: overhead of the Mutable-bitmap concurrency-control methods
//! (Section 6.6).
//!
//! Four components are merged while writers ingest at maximum speed.
//! Baseline = the same merge with no coordination. Because lock overhead is
//! real CPU work (not simulated I/O), this figure reports **wall-clock**
//! merge time.
//!
//! Expected shape (paper): the Side-file method is within noise of the
//! baseline; the Lock method is consistently slower (per-key latching);
//! the Lock method's gap narrows as records grow (locking is amortized
//! over larger copies) and it benefits from updates (deleted entries are
//! skipped during the merge, while the Side-file method applies them in
//! catch-up).

use lsm_bench::{row, scaled, table_header, Env, EnvConfig};
use lsm_common::{Record, Value};
use lsm_engine::cc::{merge_primary_with_cc, CcMethod};
use lsm_engine::{Dataset, StrategyKind};
use lsm_tree::MergeRange;
use lsm_workload::{TweetConfig, TweetGenerator};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct Setup {
    ds: Arc<Dataset>,
    gen: TweetGenerator,
    #[allow(dead_code)]
    env: Env,
}

/// Loads 4 components of `per_comp` records of ~`record_bytes` each.
fn load(per_comp: usize, record_bytes: usize) -> Setup {
    let dataset_bytes = (4 * per_comp * record_bytes) as u64;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ..Default::default()
    });
    let mut cfg = lsm_bench::tweet_dataset_config(StrategyKind::MutableBitmap, dataset_bytes, 0);
    cfg.memory_budget = usize::MAX; // flush manually into exactly 4 components
    let ds = Dataset::open(env.storage.clone(), None, cfg).expect("dataset");
    let mut gen = TweetGenerator::new(TweetConfig::with_record_bytes(record_bytes));
    for _ in 0..4 {
        for _ in 0..per_comp {
            ds.insert(&gen.next_new()).expect("insert");
        }
        ds.flush_all().expect("flush");
    }
    Setup { ds, gen, env }
}

/// Runs the merge under `method` with one writer thread upserting at max
/// speed; `update_ratio` of writer ops target keys in the merging
/// components. Returns wall seconds for the merge.
fn run(setup: &mut Setup, method: CcMethod, update_ratio: f64, record_bytes: usize) -> f64 {
    let ds = setup.ds.clone();
    let stop = Arc::new(AtomicBool::new(false));
    let writer_stop = stop.clone();
    let existing: Vec<i64> = (0..setup.gen.num_issued())
        .map(|i| setup.gen.issued_key(i))
        .collect();
    let writer_ds = ds.clone();
    let writer = std::thread::spawn(move || {
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut fresh: i64 = i64::MAX / 2;
        let msg = "m".repeat(record_bytes.saturating_sub(50).max(1));
        while !writer_stop.load(Ordering::Relaxed) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let frac = (x >> 11) as f64 / (1u64 << 53) as f64;
            let id = if frac < update_ratio && !existing.is_empty() {
                existing[(x % existing.len() as u64) as usize]
            } else {
                fresh += 1;
                fresh
            };
            let r = Record::new(vec![
                Value::Int(id),
                Value::Int((x % 100_000) as i64),
                Value::Str("CA".into()),
                Value::Int(0),
                Value::Str(msg.clone()),
            ]);
            writer_ds.upsert_no_maintenance(&r).expect("upsert");
        }
    });

    let range = MergeRange {
        start: 0,
        end: ds.primary().num_disk_components() - 1,
    };
    let wall = std::time::Instant::now();
    merge_primary_with_cc(&ds, range, method).expect("merge");
    let elapsed = wall.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer");
    elapsed
}

fn methods() -> [(&'static str, CcMethod); 3] {
    [
        ("baseline", CcMethod::Baseline),
        ("side-file", CcMethod::SideFile),
        ("lock", CcMethod::Lock),
    ]
}

fn main() {
    let base = scaled(30_000) / 4;

    // ---- 23a: update ratio sweep -------------------------------------------
    let ratios = [0.0, 0.2, 0.4, 0.8, 1.0];
    table_header(
        "Figure 23a",
        &format!("merge wall-seconds vs update ratio (4 x {base} records of 100B)"),
        &["method", "0%", "20%", "40%", "80%", "100%"],
    );
    for (label, method) in methods() {
        let times: Vec<f64> = ratios
            .iter()
            .map(|r| {
                let mut setup = load(base, 100);
                run(&mut setup, method, *r, 100)
            })
            .collect();
        row(label, &times);
    }

    // ---- 23b: record size sweep ---------------------------------------------
    let sizes = [20usize, 100, 200, 500, 1000];
    table_header(
        "Figure 23b",
        &format!("merge wall-seconds vs record size (4 x {base} records, 50% updates)"),
        &["method", "20B", "100B", "200B", "500B", "1000B"],
    );
    for (label, method) in methods() {
        let times: Vec<f64> = sizes
            .iter()
            .map(|s| {
                let mut setup = load(base, *s);
                run(&mut setup, method, 0.5, *s)
            })
            .collect();
        row(label, &times);
    }

    // ---- 23c: component size sweep -------------------------------------------
    let factors = [1usize, 2, 3, 4, 5];
    table_header(
        "Figure 23c",
        &format!("merge wall-seconds vs records per component ({base} x factor, 50% updates)"),
        &["method", "1x", "2x", "3x", "4x", "5x"],
    );
    for (label, method) in methods() {
        let times: Vec<f64> = factors
            .iter()
            .map(|f| {
                let mut setup = load(base * f, 100);
                run(&mut setup, method, 0.5, 100)
            })
            .collect();
        row(label, &times);
    }
}
