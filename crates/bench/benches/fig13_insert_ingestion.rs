//! Figure 13: insert ingestion with and without the primary key index.
//!
//! The insert workload checks key uniqueness before every insert; the check
//! can probe the primary index (full records, poorly cached) or the much
//! smaller primary key index. Duplicates (0% or 50%) are uniformly
//! distributed over past keys and must be rejected.
//!
//! Expected shape (paper): without the pk index, throughput collapses once
//! the dataset outgrows the cache; with it, throughput stays much higher.
//! Duplicate-heavy workloads are FASTER with the pk index (duplicates are
//! rejected without storing anything) and slower without it (the uniqueness
//! probe misses cache). The same ordering holds on SSD with smaller gaps.

use lsm_bench::{row, scaled, table_header, tweet_dataset_config, Env, EnvConfig, Timer};
use lsm_engine::{BatchOpResult, Dataset, StrategyKind};
use lsm_workload::{InsertWorkload, TweetConfig};

/// Records staged per [`WriteBatch`](lsm_engine::WriteBatch) commit — the
/// ingest path all the figure benches share since PR 7.
const BATCH: usize = 32;

fn run(with_pk_index: bool, dup_ratio: f64, ssd: bool, n: usize) -> Vec<f64> {
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ssd,
        ..Default::default()
    });
    let mut cfg = tweet_dataset_config(StrategyKind::Eager, dataset_bytes, 1);
    cfg.with_pk_index = with_pk_index;
    let ds =
        Dataset::open(env.storage.clone(), Some(env.log_storage.clone()), cfg).expect("dataset");
    let mut workload = InsertWorkload::new(TweetConfig::default(), dup_ratio);
    let timer = Timer::start(&env.clock);
    let mut series = Vec::new();
    let step = (n / 4).max(1);
    let mut batch = ds.batch();
    for i in 0..n {
        match workload.next_op() {
            lsm_workload::Op::Insert(r) => batch = batch.insert(&r),
            _ => unreachable!(),
        }
        // Commit at the batch size and at checkpoint boundaries so the
        // series still samples at exactly 25/50/75/100%. Duplicates come
        // back as staged `RejectedDuplicate` outcomes, not errors.
        if batch.len() == BATCH || (i + 1) % step == 0 {
            for out in batch.commit().expect("commit") {
                assert!(matches!(
                    out,
                    BatchOpResult::Inserted | BatchOpResult::RejectedDuplicate
                ));
            }
            batch = ds.batch();
        }
        if (i + 1) % step == 0 {
            series.push(timer.elapsed().0 / 60.0);
        }
    }
    if !batch.is_empty() {
        batch.commit().expect("commit");
    }
    series
}

fn main() {
    let n = scaled(60_000);
    for ssd in [false, true] {
        table_header(
            "Figure 13",
            &format!(
                "insert ingestion on {} ({n} ops; cumulative sim-minutes at 25/50/75/100%)",
                if ssd { "SSD" } else { "hard disk" }
            ),
            &["variant", "25%", "50%", "75%", "100%"],
        );
        for (label, with_pk, dup) in [
            ("pk-idx 0% dup", true, 0.0),
            ("pk-idx 50% dup", true, 0.5),
            ("no-pk-idx 0% dup", false, 0.0),
            ("no-pk-idx 50% dup", false, 0.5),
        ] {
            let series = run(with_pk, dup, ssd, n);
            row(label, &series);
        }
    }
}
