//! Criterion microbenchmarks for the CPU-level optimizations of Section 3.2
//! (real wall-clock, not simulated): standard vs blocked Bloom filter
//! probes, and cold B+-tree search vs the stateful cursor.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lsm_bloom::{BlockedBloom, BloomFilter, StandardBloom};
use lsm_btree::{BTree, BTreeBuilder, StatefulCursor};
use lsm_storage::{Storage, StorageOptions};

fn bench_bloom(c: &mut Criterion) {
    let n = 1_000_000usize;
    let mut standard = StandardBloom::new(n, 0.01);
    let mut blocked = BlockedBloom::new(n, 0.01);
    for i in 0..n as u64 {
        standard.insert(&i.to_le_bytes());
        blocked.insert(&i.to_le_bytes());
    }
    let mut group = c.benchmark_group("bloom_probe");
    let probe_keys: Vec<[u8; 8]> = (0..1024u64).map(|i| (i * 7919).to_le_bytes()).collect();
    group.bench_function("standard", |b| {
        b.iter(|| {
            let mut hits = 0;
            for k in &probe_keys {
                if standard.may_contain(k) {
                    hits += 1;
                }
            }
            std::hint::black_box(hits)
        })
    });
    group.bench_function("blocked", |b| {
        b.iter(|| {
            let mut hits = 0;
            for k in &probe_keys {
                if blocked.may_contain(k) {
                    hits += 1;
                }
            }
            std::hint::black_box(hits)
        })
    });
    group.finish();
}

fn build_tree(n: u32) -> BTree {
    let storage = Storage::new(StorageOptions {
        cache_pages: 1 << 20, // fully cached: measure CPU only
        ..StorageOptions::test()
    });
    let mut b = BTreeBuilder::new(storage);
    for i in 0..n {
        b.add(format!("key{i:08}").as_bytes(), b"v").unwrap();
    }
    b.finish().unwrap()
}

fn bench_btree_search(c: &mut Criterion) {
    let tree = build_tree(100_000);
    // Warm the cache.
    for i in (0..100_000).step_by(100) {
        tree.search(format!("key{i:08}").as_bytes()).unwrap();
    }
    let probes: Vec<String> = (0..100_000)
        .step_by(10)
        .map(|i| format!("key{i:08}"))
        .collect();
    let mut group = c.benchmark_group("btree_sorted_probes");
    group.bench_function("root_to_leaf", |b| {
        b.iter(|| {
            let mut found = 0;
            for p in &probes {
                if tree.search(p.as_bytes()).unwrap().is_some() {
                    found += 1;
                }
            }
            std::hint::black_box(found)
        })
    });
    group.bench_function("stateful_cursor", |b| {
        b.iter_batched(
            || StatefulCursor::new(&tree),
            |mut cursor| {
                let mut found = 0;
                for p in &probes {
                    if cursor.seek(p.as_bytes()).unwrap().is_some() {
                        found += 1;
                    }
                }
                std::hint::black_box(found)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bloom, bench_btree_search
}
criterion_main!(benches);
