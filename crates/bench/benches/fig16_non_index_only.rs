//! Figure 16: non-index-only secondary-index query performance
//! (Section 6.4.1).
//!
//! Datasets are prepared by upserting with actual update ratio 0% or 50%;
//! queries sweep selectivity 0.001%–1% and fetch full records.
//!
//! Expected shape (paper): with no updates, Direct validation ≈ Eager and
//! Timestamp validation pays a small extra validation cost. With 50%
//! updates and no repair, Direct wastes I/O fetching obsolete keys at low
//! selectivity; Timestamp validation filters them via the pk index; with
//! merge repair both validation methods approach Eager.

use lsm_bench::{prepare_dataset, row, scaled, table_header, Env, EnvConfig, Timer};
use lsm_engine::query::ValidationMethod;
use lsm_engine::{Dataset, StrategyKind};
use lsm_workload::{SelectivityQueries, UpdateDistribution};
use std::sync::Arc;

const SELECTIVITIES: [f64; 5] = [0.00001, 0.00005, 0.0001, 0.001, 0.01];
const LABELS: [&str; 5] = ["0.001%", "0.005%", "0.01%", "0.1%", "1%"];

pub fn query_times(ds: &Dataset, validation: ValidationMethod, index_only: bool) -> Vec<f64> {
    SELECTIVITIES
        .iter()
        .map(|sel| {
            let mut q = SelectivityQueries::new((sel * 1e7) as u64);
            let reps = 3;
            let timer = Timer::start(ds.storage().clock());
            for _ in 0..reps {
                let (lo, hi) = q.user_id_range(*sel);
                let mut query = ds.query("user_id").range(lo, hi).validation(validation);
                if index_only {
                    query = query.index_only();
                }
                let res = query.execute().expect("query");
                std::hint::black_box(res.len());
            }
            timer.elapsed().0 / reps as f64
        })
        .collect()
}

fn prepare(
    strategy: StrategyKind,
    update_ratio: f64,
    n: usize,
    repair: bool,
) -> (Env, Arc<Dataset>) {
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ..Default::default()
    });
    let mut c = lsm_bench::tweet_dataset_config(strategy, dataset_bytes, 1);
    c.merge_repair = repair;
    let ds = lsm_bench::open_tweet_dataset(&env, c);
    let mut workload = lsm_workload::UpsertWorkload::new(
        lsm_workload::TweetConfig::default(),
        update_ratio,
        UpdateDistribution::Uniform,
    );
    for _ in 0..n {
        lsm_bench::apply(&ds, &workload.next_op());
    }
    ds.flush_all().expect("flush");
    (env, ds)
}

fn main() {
    let n = scaled(80_000);
    for update_ratio in [0.0, 0.5] {
        table_header(
            "Figure 16",
            &format!(
                "non-index-only query sim-seconds, update ratio {:.0}% ({n} ops)",
                update_ratio * 100.0
            ),
            &[
                "variant", LABELS[0], LABELS[1], LABELS[2], LABELS[3], LABELS[4],
            ],
        );
        let (_e1, eager) = prepare(StrategyKind::Eager, update_ratio, n, false);
        row("eager", &query_times(&eager, ValidationMethod::None, false));
        drop(eager);
        let (_e2, no_repair) = prepare(StrategyKind::Validation, update_ratio, n, false);
        row(
            "direct (no repair)",
            &query_times(&no_repair, ValidationMethod::Direct, false),
        );
        row(
            "ts (no repair)",
            &query_times(&no_repair, ValidationMethod::Timestamp, false),
        );
        drop(no_repair);
        let (_e3, repaired) = prepare(StrategyKind::Validation, update_ratio, n, true);
        row(
            "direct",
            &query_times(&repaired, ValidationMethod::Direct, false),
        );
        row(
            "ts",
            &query_times(&repaired, ValidationMethod::Timestamp, false),
        );
    }
    let _ = prepare_dataset;
}
