//! Figure 22: repair with five secondary indexes, update ratio 10%
//! (Section 6.5).
//!
//! Secondary repair repairs each index in parallel (one thread per index,
//! as in the paper); primary repair pays more anti-matter insertions per
//! index. Expected shape (paper): both methods slow down with more indexes,
//! but secondary repair stays far below primary repair, and the Bloom
//! optimization reduces the per-index sorting further.

use lsm_bench::{apply, row, scaled, table_header, Env, EnvConfig, Timer};
use lsm_engine::{RepairPlan, StrategyKind};
use lsm_workload::{TweetConfig, UpdateDistribution, UpsertWorkload};

/// Repairs each secondary index and returns the **critical path**: the
/// paper repairs the five indexes in parallel (one thread each), and the
/// simulated clock accumulates total work, so the parallel wall-clock
/// equivalent is the maximum single-index repair time.
fn parallel_secondary_repair(ds: &lsm_engine::Dataset, plan: RepairPlan<'_>) -> f64 {
    let mut max = 0.0f64;
    for sec in ds.secondaries() {
        let timer = Timer::start(ds.storage().clock());
        plan.repair_index(&sec.name).expect("repair");
        let (sim, _) = timer.elapsed();
        max = max.max(sim);
    }
    max
}

fn run(method: &str, n: usize, checkpoints: usize) -> Vec<f64> {
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ..Default::default()
    });
    let mut cfg = lsm_bench::tweet_dataset_config(StrategyKind::Validation, dataset_bytes, 5);
    cfg.merge_repair = false;
    if method == "secondary repair (bf)" {
        // bf requires correlated merges + repair at every merge (§4.4).
        cfg.merge.correlated = true;
        cfg.repair_bloom_opt = true;
        cfg.merge_repair = true;
        // Blocked Bloom filters keep the per-key probe cost at one cache
        // miss, which is what makes the optimization pay off at this scale.
        cfg.bloom_kind = lsm_bloom::BloomKind::Blocked;
    }
    let ds = lsm_bench::open_tweet_dataset(&env, cfg);
    let mut workload =
        UpsertWorkload::new(TweetConfig::default(), 0.1, UpdateDistribution::Uniform);
    let step = n / checkpoints;
    let mut series = Vec::new();
    for _ in 0..checkpoints {
        for _ in 0..step {
            apply(&ds, &workload.next_op());
        }
        ds.flush_all().expect("flush");
        match method {
            "primary repair" => {
                let timer = Timer::start(&env.clock);
                ds.maintenance().repair_primary().expect("repair");
                series.push(timer.elapsed().0);
            }
            "secondary repair" => {
                series.push(parallel_secondary_repair(&ds, ds.maintenance().plan()));
            }
            "secondary repair (bf)" => {
                series.push(parallel_secondary_repair(
                    &ds,
                    ds.maintenance().plan().bloom(true),
                ));
            }
            _ => unreachable!(),
        }
    }
    series
}

fn main() {
    let n = scaled(40_000);
    table_header(
        "Figure 22",
        &format!("repair sim-seconds with 5 secondary indexes ({n} ops, 10% updates)"),
        &["method", "20%", "40%", "60%", "80%", "100%"],
    );
    for method in [
        "primary repair",
        "secondary repair",
        "secondary repair (bf)",
    ] {
        row(method, &run(method, n, 5));
    }
}
