//! Figure 21: repair with large (1KB) records, update ratio 10%
//! (Section 6.5).
//!
//! Expected shape (paper): large records hurt primary repair (it scans full
//! records) but leave secondary repair untouched (it reads only the
//! primary key index).

use lsm_bench::{apply, row, scaled, table_header, Env, EnvConfig, Timer};
use lsm_engine::StrategyKind;
use lsm_workload::{TweetConfig, UpdateDistribution, UpsertWorkload};

fn run(method: &str, n: usize, checkpoints: usize) -> Vec<f64> {
    let record_bytes = 1000u64;
    let dataset_bytes = (n as u64) * record_bytes;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ..Default::default()
    });
    let mut cfg = lsm_bench::tweet_dataset_config(StrategyKind::Validation, dataset_bytes, 1);
    cfg.merge_repair = false;
    if method == "secondary repair (bf)" {
        // bf requires correlated merges + repair at every merge (§4.4).
        cfg.merge.correlated = true;
        cfg.repair_bloom_opt = true;
        cfg.merge_repair = true;
        // Blocked Bloom filters keep the per-key probe cost at one cache
        // miss, which is what makes the optimization pay off at this scale.
        cfg.bloom_kind = lsm_bloom::BloomKind::Blocked;
    }
    let ds = lsm_bench::open_tweet_dataset(&env, cfg);
    let mut workload = UpsertWorkload::new(
        TweetConfig::with_record_bytes(record_bytes as usize),
        0.1,
        UpdateDistribution::Uniform,
    );
    let step = n / checkpoints;
    let mut series = Vec::new();
    for _ in 0..checkpoints {
        for _ in 0..step {
            apply(&ds, &workload.next_op());
        }
        ds.flush_all().expect("flush");
        let timer = Timer::start(&env.clock);
        match method {
            "primary repair" => {
                ds.maintenance().repair_primary().expect("repair");
            }
            "secondary repair" => {
                ds.maintenance().repair_all().expect("repair");
            }
            "secondary repair (bf)" => {
                ds.maintenance()
                    .plan()
                    .bloom(true)
                    .repair_all()
                    .expect("repair");
            }
            _ => unreachable!(),
        }
        series.push(timer.elapsed().0);
    }
    series
}

fn main() {
    let n = scaled(40_000);
    table_header(
        "Figure 21",
        &format!("repair sim-seconds with 1KB records ({n} ops, 10% updates)"),
        &["method", "20%", "40%", "60%", "80%", "100%"],
    );
    for method in [
        "primary repair",
        "secondary repair",
        "secondary repair (bf)",
    ] {
        row(method, &run(method, n, 5));
    }
}
