//! Parallel query execution: serial vs `parallel(n)` secondary range
//! queries over a pre-loaded multi-component dataset on a sharded buffer
//! cache (the PR-5 read-path tentpole; no paper figure — the paper's
//! experiments are single-threaded).
//!
//! Expected shape: wall-clock speedup approaching the smaller of `n` and
//! the machine's core count for scan-dominated ranges; simulated seconds
//! are *not* reported here because concurrent charges serialize onto one
//! simulated device, which models contention, not parallel hardware.

use lsm_bench::{row, run_query_heavy_scenario, scaled, table_header};

fn main() {
    let n = scaled(60_000);
    let queries = 12;
    table_header(
        "Parallel query",
        &format!("serial vs parallel wall-seconds ({n} records, {queries} queries)"),
        &["fan-out", "serial_s", "parallel_s", "speedup", "partitions"],
    );
    for parallelism in [2, 4] {
        let run = run_query_heavy_scenario(n, queries, parallelism);
        row(
            &format!("parallel({parallelism})"),
            &[
                run.serial_wall_secs,
                run.parallel_wall_secs,
                run.speedup,
                run.partitions as f64,
            ],
        );
    }
}
