//! Figure 15: impact of merge frequency and of the number of secondary
//! indexes on upsert ingestion (Section 6.3.2).
//!
//! (a) sweeps the maximum mergeable component size (the paper's 1GB–64GB,
//! scaled): smaller caps mean more merging for everyone, but the relative
//! ordering of the strategies is unchanged.
//! (b) sweeps the number of secondary indexes (1–5), adding the deleted-key
//! B+-tree baseline: more indexes hurt the lazy strategies more (their
//! bottleneck is flush/merge), and the deleted-key baseline pays much more
//! than the proposed repair.

use lsm_bench::{
    apply, open_tweet_dataset, row, scaled, table_header, tweet_dataset_config, Env, EnvConfig,
    Timer,
};
use lsm_engine::StrategyKind;
use lsm_workload::{TweetConfig, UpdateDistribution, UpsertWorkload};

fn run(
    strategy: StrategyKind,
    merge_repair: bool,
    n: usize,
    max_mergeable: u64,
    num_secondaries: usize,
) -> f64 {
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ..Default::default()
    });
    let mut cfg = tweet_dataset_config(strategy, dataset_bytes, num_secondaries);
    cfg.merge_repair = merge_repair;
    cfg.merge.max_mergeable_bytes = max_mergeable;
    let ds = open_tweet_dataset(&env, cfg);
    let mut workload =
        UpsertWorkload::new(TweetConfig::default(), 0.1, UpdateDistribution::Uniform);
    let timer = Timer::start(&env.clock);
    for _ in 0..n {
        apply(&ds, &workload.next_op());
    }
    timer.elapsed().0 / 60.0
}

fn main() {
    let n = scaled(40_000);
    let dataset_bytes = (n as u64) * 550;

    // ---- 15a: max mergeable component size ------------------------------
    // Scaled analogues of the paper's 1GB / 4GB / 16GB / 64GB.
    let caps: Vec<(String, u64)> = [50u64, 12, 3, 1]
        .iter()
        .map(|div| {
            let cap = (dataset_bytes / div).max(1024 * 1024);
            (format!("1/{div} dataset"), cap)
        })
        .collect();
    table_header(
        "Figure 15a",
        &format!("upsert sim-minutes vs max mergeable component size ({n} ops, 10% updates)"),
        &["strategy", &caps[0].0, &caps[1].0, &caps[2].0, &caps[3].0],
    );
    for (label, strategy, repair) in [
        ("eager", StrategyKind::Eager, false),
        ("validation", StrategyKind::Validation, true),
        ("validation (no repair)", StrategyKind::Validation, false),
        ("mutable-bitmap", StrategyKind::MutableBitmap, true),
    ] {
        let times: Vec<f64> = caps
            .iter()
            .map(|(_, cap)| run(strategy, repair, n, *cap, 1))
            .collect();
        row(label, &times);
    }

    // ---- 15b: number of secondary indexes --------------------------------
    table_header(
        "Figure 15b",
        &format!("upsert sim-minutes vs number of secondary indexes ({n} ops, 10% updates)"),
        &["strategy", "1", "2", "3", "4", "5"],
    );
    let default_cap = dataset_bytes / 20;
    for (label, strategy, repair) in [
        ("eager", StrategyKind::Eager, false),
        ("validation", StrategyKind::Validation, true),
        ("validation (no repair)", StrategyKind::Validation, false),
        ("deleted-key B+tree", StrategyKind::DeletedKeyBTree, true),
    ] {
        let times: Vec<f64> = (1..=5)
            .map(|k| run(strategy, repair, n, default_cap, k))
            .collect();
        row(label, &times);
    }
}
