//! Figure 12: effectiveness of the point-lookup optimizations (Section 6.2).
//!
//! Dataset: insert-only tweets (no updates), secondary index on `user_id`.
//! Variants are enabled cumulatively, as in the paper:
//! `naive` → `batch` → `batch/sLookup` → `batch/sLookup/bBF` → `+pID`.
//!
//! Expected shapes (paper):
//! * 12a (low selectivity): batching helps a little; everything else is
//!   noise — the time is dominated by the random reads themselves;
//! * 12b (high selectivity): naive lookup time explodes (random I/O across
//!   components); batching is the big win; sLookup/bBF shave CPU at high
//!   selectivity; a full scan wins beyond ~10-20%; pID gives little benefit;
//! * 12c: small batches already optimal for selective queries, a few MB
//!   suffice for non-selective ones;
//! * 12d: batching + re-sorting still beats no batching.

use lsm_bench::{
    open_tweet_dataset, pk_of, row, scaled, table_header, tweet_dataset_config, Env, EnvConfig,
    Timer,
};
use lsm_bloom::BloomKind;
use lsm_engine::query::{filter_scan_count, QueryOptions};
use lsm_engine::{Dataset, StrategyKind};
use lsm_workload::{SelectivityQueries, TweetConfig, TweetGenerator};
use std::sync::Arc;

struct Setup {
    ds: Arc<Dataset>,
    #[allow(dead_code)]
    env: Env,
}

fn build_dataset(n: usize, bloom: BloomKind) -> Setup {
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ..Default::default()
    });
    let mut cfg = tweet_dataset_config(StrategyKind::Eager, dataset_bytes, 1);
    cfg.bloom_kind = bloom;
    let ds = open_tweet_dataset(&env, cfg);
    let mut gen = TweetGenerator::new(TweetConfig::default());
    for _ in 0..n {
        ds.insert(&gen.next_new()).expect("insert");
    }
    ds.flush_all().expect("flush");
    Setup { ds, env }
}

/// Pre-generates `k` distinct ranges per selectivity so every variant runs
/// the same queries (the paper repeats queries with different predicates
/// until times stabilize).
fn ranges_for(sel: f64, k: usize) -> Vec<(i64, i64)> {
    let mut q = SelectivityQueries::new((sel * 1e7) as u64);
    (0..k).map(|_| q.user_id_range(sel)).collect()
}

/// Average simulated seconds over the given ranges.
fn run_query(ds: &Dataset, ranges: &[(i64, i64)], opts: &QueryOptions) -> f64 {
    let timer = Timer::start(ds.storage().clock());
    for (lo, hi) in ranges {
        // Seed every knob from the swept variant; the dataset is Eager, so
        // the default-resolved validation would be None anyway.
        let res = ds
            .query("user_id")
            .range(*lo, *hi)
            .with_options(*opts)
            .execute()
            .expect("query");
        std::hint::black_box(res.len());
    }
    let (sim, _) = timer.elapsed();
    sim / ranges.len() as f64
}

fn variants() -> Vec<(&'static str, bool, QueryOptions)> {
    // (label, needs_blocked_bloom_dataset, options)
    vec![
        ("naive", false, QueryOptions::naive()),
        (
            "batch",
            false,
            QueryOptions {
                batched: true,
                stateful: false,
                ..Default::default()
            },
        ),
        (
            "batch/sLookup",
            false,
            QueryOptions {
                batched: true,
                stateful: true,
                ..Default::default()
            },
        ),
        (
            "batch/sLookup/bBF",
            true,
            QueryOptions {
                batched: true,
                stateful: true,
                ..Default::default()
            },
        ),
        (
            "batch/sLookup/bBF/pID",
            true,
            QueryOptions {
                batched: true,
                stateful: true,
                propagate_component_ids: true,
                ..Default::default()
            },
        ),
    ]
}

fn main() {
    let n = scaled(100_000);
    let standard = build_dataset(n, BloomKind::Standard);
    let blocked = build_dataset(n, BloomKind::Blocked);
    let reps = 3;

    // ---- 12a: low selectivities ----------------------------------------
    let low = [0.00001, 0.00002, 0.00005, 0.0001, 0.00025];
    let low_ranges: Vec<_> = low.iter().map(|s| ranges_for(*s, reps)).collect();
    table_header(
        "Figure 12a",
        "low query selectivities (query sim-seconds)",
        &["variant", "0.001%", "0.002%", "0.005%", "0.01%", "0.025%"],
    );
    for (label, needs_blocked, opts) in variants() {
        let ds = if needs_blocked {
            &blocked.ds
        } else {
            &standard.ds
        };
        let times: Vec<f64> = low_ranges.iter().map(|r| run_query(ds, r, &opts)).collect();
        row(label, &times);
    }

    // ---- 12b: high selectivities + scan baseline -------------------------
    let high = [0.001, 0.01, 0.1, 0.2, 0.5];
    let high_ranges: Vec<_> = high.iter().map(|s| ranges_for(*s, reps)).collect();
    table_header(
        "Figure 12b",
        "high query selectivities (query sim-seconds)",
        &["variant", "0.1%", "1%", "10%", "20%", "50%"],
    );
    {
        // Full-scan baseline: flat across selectivities.
        standard.ds.storage().clear_cache();
        let timer = Timer::start(standard.ds.storage().clock());
        let report = filter_scan_count(&standard.ds, None, None).expect("scan");
        let (scan_time, _) = timer.elapsed();
        std::hint::black_box(report.matches);
        row("scan", &vec![scan_time; high.len()]);
    }
    for (label, needs_blocked, opts) in variants() {
        let ds = if needs_blocked {
            &blocked.ds
        } else {
            &standard.ds
        };
        let times: Vec<f64> = high_ranges
            .iter()
            .map(|r| run_query(ds, r, &opts))
            .collect();
        row(label, &times);
    }

    // ---- 12c: batch memory sweep ------------------------------------------
    let batch_sizes: [(&str, usize); 4] = [
        ("128KB", 128 * 1024),
        ("1MB", 1024 * 1024),
        ("4MB", 4 * 1024 * 1024),
        ("16MB", 16 * 1024 * 1024),
    ];
    table_header(
        "Figure 12c",
        "impact of batch memory size (query sim-seconds)",
        &["selectivity", "128KB", "1MB", "4MB", "16MB"],
    );
    for sel in [0.0001, 0.001, 0.01, 0.1] {
        let ranges = ranges_for(sel, reps);
        let times: Vec<f64> = batch_sizes
            .iter()
            .map(|(_, bytes)| {
                run_query(
                    &blocked.ds,
                    &ranges,
                    &QueryOptions {
                        batched: true,
                        stateful: true,
                        batch_bytes: *bytes,
                        ..Default::default()
                    },
                )
            })
            .collect();
        row(&format!("{}%", sel * 100.0), &times);
    }

    // ---- 12d: batching + sorting vs no batching ----------------------------
    table_header(
        "Figure 12d",
        "impact of sorting (query sim-seconds)",
        &["selectivity", "no_batching", "batching", "batching+sorting"],
    );
    for sel in [0.00001, 0.0001, 0.001, 0.01, 0.1] {
        let ranges = ranges_for(sel, reps);
        let no_batch = run_query(&blocked.ds, &ranges, &QueryOptions::naive());
        let batch = run_query(
            &blocked.ds,
            &ranges,
            &QueryOptions {
                batched: true,
                stateful: true,
                ..Default::default()
            },
        );
        let batch_sort = run_query(
            &blocked.ds,
            &ranges,
            &QueryOptions {
                batched: true,
                stateful: true,
                sort_output: true,
                ..Default::default()
            },
        );
        row(&format!("{}%", sel * 100.0), &[no_batch, batch, batch_sort]);
    }

    // Keep the datasets alive to the end (env owns the sim clock).
    std::hint::black_box(pk_of(
        &TweetGenerator::new(TweetConfig::default()).next_new(),
    ));
}
