//! Figure 20: index repair performance over time (Section 6.5).
//!
//! Ingestion runs with merge repair disabled; after every tenth of the
//! workload, ingestion pauses and a full repair brings the secondary index
//! up-to-date. Methods: DELI-style primary repair (with and without a
//! piggybacked full primary merge) vs the proposed secondary repair (with
//! and without the Bloom filter optimization).
//!
//! Expected shape (paper): secondary repair always beats primary repair
//! (it reads the small pk index, not full records); the Bloom optimization
//! reduces sorting/validation further; a primary merge helps subsequent
//! primary repairs under updates but costs extra in append-only workloads.

use lsm_bench::{apply, row, scaled, table_header, Env, EnvConfig, Timer};
use lsm_engine::StrategyKind;
use lsm_workload::{TweetConfig, UpdateDistribution, UpsertWorkload};

#[derive(Clone, Copy, PartialEq)]
enum Method {
    Primary { merge: bool },
    Secondary { bloom_opt: bool },
}

fn run(method: Method, update_ratio: f64, n: usize, checkpoints: usize) -> Vec<f64> {
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ..Default::default()
    });
    let mut cfg = lsm_bench::tweet_dataset_config(StrategyKind::Validation, dataset_bytes, 1);
    cfg.merge_repair = false;
    if let Method::Secondary { bloom_opt: true } = method {
        // The Bloom-filter optimization is only sound/effective when merges
        // are correlated AND every merge repairs the secondary indexes
        // (Section 4.4) — otherwise merged pk-index components span the
        // repaired-timestamp boundary and defeat pruning.
        cfg.merge.correlated = true;
        cfg.repair_bloom_opt = true;
        cfg.merge_repair = true;
        // Blocked Bloom filters keep the per-key probe cost at one cache
        // miss, which is what makes the optimization pay off at this scale.
        cfg.bloom_kind = lsm_bloom::BloomKind::Blocked;
    }
    let ds = lsm_bench::open_tweet_dataset(&env, cfg);
    let mut workload = UpsertWorkload::new(
        TweetConfig::default(),
        update_ratio,
        UpdateDistribution::Uniform,
    );
    let step = n / checkpoints;
    let mut series = Vec::new();
    for _ in 0..checkpoints {
        for _ in 0..step {
            apply(&ds, &workload.next_op());
        }
        ds.flush_all().expect("flush");
        let timer = Timer::start(&env.clock);
        match method {
            Method::Primary { merge } => {
                ds.maintenance()
                    .plan()
                    .with_merge(merge)
                    .repair_primary()
                    .expect("primary repair");
            }
            Method::Secondary { bloom_opt } => {
                ds.maintenance()
                    .plan()
                    .bloom(bloom_opt)
                    .repair_all()
                    .expect("secondary repair");
            }
        }
        series.push(timer.elapsed().0);
    }
    series
}

fn main() {
    let n = scaled(50_000);
    let checkpoints = 5;
    for update_ratio in [0.0, 0.5] {
        table_header(
            "Figure 20",
            &format!(
                "repair sim-seconds after each 20% of {n} ops, update ratio {:.0}%",
                update_ratio * 100.0
            ),
            &["method", "20%", "40%", "60%", "80%", "100%"],
        );
        for (label, method) in [
            ("primary repair", Method::Primary { merge: false }),
            ("primary repair (merge)", Method::Primary { merge: true }),
            ("secondary repair", Method::Secondary { bloom_opt: false }),
            (
                "secondary repair (bf)",
                Method::Secondary { bloom_opt: true },
            ),
        ] {
            row(label, &run(method, update_ratio, n, checkpoints));
        }
    }
}
