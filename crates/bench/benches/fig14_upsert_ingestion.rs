//! Figure 14: upsert ingestion performance of the maintenance strategies.
//!
//! Paper setup: 6-hour upsert runs, plotting total records ingested over
//! time for Eager, Validation (no repair), Validation, and Mutable-bitmap
//! under no updates / 50% uniform updates / 50% Zipf updates.
//!
//! Expected shape (paper): Eager is the slowest (point lookups per upsert);
//! Validation without repair is the fastest; Validation with merge repair
//! adds only a small overhead; Mutable-bitmap sits close to Validation —
//! all of the lazy strategies are several times faster than Eager.

use lsm_bench::{
    open_tweet_dataset, row, scaled, table_header, tweet_dataset_config, Env, EnvConfig, Timer,
};
use lsm_engine::StrategyKind;
use lsm_workload::{Op, TweetConfig, UpdateDistribution, UpsertWorkload};

/// Records staged per [`WriteBatch`](lsm_engine::WriteBatch) commit.
const BATCH: usize = 32;

fn run(
    strategy: StrategyKind,
    merge_repair: bool,
    update_ratio: f64,
    distribution: UpdateDistribution,
    n: usize,
) -> (f64, f64, u64) {
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ..Default::default()
    });
    let mut cfg = tweet_dataset_config(strategy, dataset_bytes, 1);
    cfg.merge_repair = merge_repair;
    let ds = open_tweet_dataset(&env, cfg);
    let mut workload = UpsertWorkload::new(TweetConfig::default(), update_ratio, distribution);
    let timer = Timer::start(&env.clock);
    let mut batch = ds.batch();
    for _ in 0..n {
        batch = match workload.next_op() {
            Op::Insert(r) => batch.insert(&r),
            Op::Upsert(r) => batch.upsert(&r),
        };
        if batch.len() == BATCH {
            batch.commit().expect("commit");
            batch = ds.batch();
        }
    }
    if !batch.is_empty() {
        batch.commit().expect("commit");
    }
    let (sim, wall) = timer.elapsed();
    (sim, wall, ds.stats().records_ingested())
}

fn main() {
    let n = scaled(60_000);
    let variants: [(&str, StrategyKind, bool); 4] = [
        ("eager", StrategyKind::Eager, false),
        ("validation (no repair)", StrategyKind::Validation, false),
        ("validation", StrategyKind::Validation, true),
        ("mutable-bitmap", StrategyKind::MutableBitmap, true),
    ];
    let workloads: [(&str, f64, UpdateDistribution); 3] = [
        ("no updates", 0.0, UpdateDistribution::Uniform),
        ("50% uniform", 0.5, UpdateDistribution::Uniform),
        ("50% zipf", 0.5, UpdateDistribution::Zipf),
    ];
    for (wname, ratio, dist) in workloads {
        table_header(
            "Figure 14",
            &format!("upsert ingestion, {wname} ({n} ops)"),
            &["strategy", "sim_minutes", "krec_per_sim_min", "wall_s"],
        );
        for (name, strategy, repair) in variants {
            let (sim, wall, recs) = run(strategy, repair, ratio, dist, n);
            let sim_min = sim / 60.0;
            row(
                name,
                &[sim_min, recs as f64 / 1000.0 / sim_min.max(1e-9), wall],
            );
        }
    }
}
