//! Figure 17: index-only secondary-index query performance (Section 6.4.1).
//!
//! Index-only queries return primary keys without fetching records; under
//! Eager the secondary scan alone suffices, while Timestamp validation adds
//! the sort + pk-index probing.
//!
//! Expected shape (paper, log scale): Eager is 3–5× faster than Timestamp
//! validation; merge repair helps validation both by raising repaired
//! timestamps (more pk-index pruning) and by removing obsolete entries.

use lsm_bench::{row, scaled, table_header, Env, EnvConfig, Timer};
use lsm_engine::query::ValidationMethod;
use lsm_engine::{Dataset, StrategyKind};
use lsm_workload::{SelectivityQueries, UpdateDistribution};
use std::sync::Arc;

const SELECTIVITIES: [f64; 5] = [0.00001, 0.00005, 0.0001, 0.001, 0.01];
const LABELS: [&str; 5] = ["0.001%", "0.005%", "0.01%", "0.1%", "1%"];

fn query_times(ds: &Dataset, validation: ValidationMethod) -> Vec<f64> {
    SELECTIVITIES
        .iter()
        .map(|sel| {
            let mut q = SelectivityQueries::new((sel * 1e7) as u64);
            let reps = 3;
            let timer = Timer::start(ds.storage().clock());
            for _ in 0..reps {
                let (lo, hi) = q.user_id_range(*sel);
                let res = ds
                    .query("user_id")
                    .range(lo, hi)
                    .index_only()
                    .validation(validation)
                    .execute()
                    .expect("query");
                std::hint::black_box(res.len());
            }
            timer.elapsed().0 / reps as f64
        })
        .collect()
}

fn prepare(
    strategy: StrategyKind,
    update_ratio: f64,
    n: usize,
    repair: bool,
) -> (Env, Arc<Dataset>) {
    let dataset_bytes = (n as u64) * 550;
    let env = Env::new(&EnvConfig {
        dataset_bytes,
        ..Default::default()
    });
    let mut c = lsm_bench::tweet_dataset_config(strategy, dataset_bytes, 1);
    c.merge_repair = repair;
    let ds = lsm_bench::open_tweet_dataset(&env, c);
    let mut workload = lsm_workload::UpsertWorkload::new(
        lsm_workload::TweetConfig::default(),
        update_ratio,
        UpdateDistribution::Uniform,
    );
    for _ in 0..n {
        lsm_bench::apply(&ds, &workload.next_op());
    }
    ds.flush_all().expect("flush");
    (env, ds)
}

fn main() {
    let n = scaled(80_000);
    for update_ratio in [0.0, 0.5] {
        table_header(
            "Figure 17",
            &format!(
                "index-only query sim-seconds, update ratio {:.0}% ({n} ops)",
                update_ratio * 100.0
            ),
            &[
                "variant", LABELS[0], LABELS[1], LABELS[2], LABELS[3], LABELS[4],
            ],
        );
        let (_e1, eager) = prepare(StrategyKind::Eager, update_ratio, n, false);
        row("eager", &query_times(&eager, ValidationMethod::None));
        drop(eager);
        let (_e2, no_repair) = prepare(StrategyKind::Validation, update_ratio, n, false);
        row(
            "ts (no repair)",
            &query_times(&no_repair, ValidationMethod::Timestamp),
        );
        drop(no_repair);
        let (_e3, repaired) = prepare(StrategyKind::Validation, update_ratio, n, true);
        row("ts", &query_times(&repaired, ValidationMethod::Timestamp));
    }
}
