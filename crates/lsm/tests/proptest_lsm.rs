//! Property tests: an LSM-tree under random interleavings of puts, deletes,
//! flushes, and merges behaves exactly like a BTreeMap model.

use lsm_storage::{Storage, StorageOptions};
use lsm_tree::{point_lookup, LsmEntry, LsmOptions, LsmTree, ScanOptions, TieringPolicy};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;

#[derive(Debug, Clone)]
enum OpKind {
    Put(u8, u8),
    Delete(u8),
    Flush,
    Merge,
}

fn arb_ops() -> impl Strategy<Value = Vec<OpKind>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| OpKind::Put(k, v)),
            2 => any::<u8>().prop_map(OpKind::Delete),
            1 => Just(OpKind::Flush),
            1 => Just(OpKind::Merge),
        ],
        0..120,
    )
}

fn key(k: u8) -> Vec<u8> {
    vec![b'k', k]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lsm_matches_model(ops in arb_ops()) {
        let tree = LsmTree::new(Storage::new(StorageOptions::test()), LsmOptions::default());
        let policy = TieringPolicy::new(u64::MAX);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut ts = 0u64;
        for op in &ops {
            ts += 1;
            match op {
                OpKind::Put(k, v) => {
                    tree.put(key(*k), LsmEntry::put_ts(vec![*v], ts), ts);
                    model.insert(key(*k), vec![*v]);
                }
                OpKind::Delete(k) => {
                    tree.put(key(*k), LsmEntry::anti_matter_ts(ts), ts);
                    model.remove(&key(*k));
                }
                OpKind::Flush => {
                    tree.flush().unwrap();
                }
                OpKind::Merge => {
                    tree.maybe_merge(&policy).unwrap();
                }
            }
        }

        // Point lookups agree for every possible key byte.
        for k in 0..=255u8 {
            let got = point_lookup(&tree, &key(k))
                .unwrap()
                .filter(|e| !e.anti_matter)
                .map(|e| e.value.into_bytes());
            prop_assert_eq!(got, model.get(&key(k)).cloned(), "key {}", k);
        }

        // A full reconciling scan agrees with the model.
        let mut scan = tree
            .scan(Bound::Unbounded, Bound::Unbounded, ScanOptions::default())
            .unwrap();
        let mut got = Vec::new();
        while let Some((k, e)) = scan.next_entry().unwrap() {
            got.push((k, e.value.into_bytes()));
        }
        let want: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn full_merge_drops_all_garbage(ops in arb_ops()) {
        // After flushing everything and merging to one component, the
        // component holds exactly the live keys (anti-matter and stale
        // versions all physically removed).
        let tree = LsmTree::new(Storage::new(StorageOptions::test()), LsmOptions::default());
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut ts = 0u64;
        for op in &ops {
            ts += 1;
            match op {
                OpKind::Put(k, v) => {
                    tree.put(key(*k), LsmEntry::put_ts(vec![*v], ts), ts);
                    model.insert(key(*k), vec![*v]);
                }
                OpKind::Delete(k) => {
                    tree.put(key(*k), LsmEntry::anti_matter_ts(ts), ts);
                    model.remove(&key(*k));
                }
                OpKind::Flush | OpKind::Merge => {
                    tree.flush().unwrap();
                }
            }
        }
        tree.flush().unwrap();
        let n = tree.num_disk_components();
        if n >= 2 {
            tree.merge_range(lsm_tree::MergeRange { start: 0, end: n - 1 }).unwrap();
            // A full merge (including the oldest component) physically drops
            // all anti-matter and stale versions: exactly the live keys stay.
            prop_assert_eq!(tree.disk_entries(), model.len() as u64);
        }
        prop_assert!(tree.num_disk_components() <= 1);
    }
}
