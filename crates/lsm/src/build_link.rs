//! Shared state between a component builder and concurrent writers
//! (Section 5.3).
//!
//! While a flush/merge rebuilds components whose bitmaps writers may mutate,
//! the old component(s) are pointed at a [`BuildLink`] so that a writer
//! deleting a key can also apply the delete to the new component. The two
//! concurrency-control methods use different parts of this structure:
//!
//! * **Lock method** (Figure 10): the builder publishes each scanned key
//!   (`publish_scanned`); a writer whose key is `<= ScannedKey` finds the
//!   key's position in the published prefix and registers a direct delete.
//! * **Side-file method** (Figure 11): writers append deleted keys to the
//!   side-file while it is open; the builder closes it in the catch-up phase,
//!   sorts it, and applies the deletes to the finished component.

use crate::component::DiskComponent;
use lsm_common::Key;
use parking_lot::Mutex;
use std::sync::Arc;

/// Shared builder/writer state for one in-progress flush or merge.
#[derive(Debug, Default)]
pub struct BuildLink {
    /// Lock method: keys copied into the new component so far, in ascending
    /// order — index in this vector is the key's ordinal in the new
    /// component. Guarded by a mutex: this *is* the lock overhead the paper
    /// measures against the Side-file method.
    scanned: Mutex<ScannedState>,
    /// Side-file method: deleted keys buffered during the build phase.
    side_file: Mutex<SideFile>,
    /// Once the build completes, the finished component: writers arriving
    /// after the side-file closed apply deletes here directly
    /// (Figure 11b lines 8-9).
    new_component: Mutex<Option<Arc<DiskComponent>>>,
}

#[derive(Debug, Default)]
struct ScannedState {
    keys: Vec<Key>,
    /// Deletes registered against already-scanned positions.
    direct_deletes: Vec<u64>,
}

#[derive(Debug, Default)]
struct SideFile {
    keys: Vec<Key>,
    closed: bool,
}

impl BuildLink {
    /// Creates a link for the Side-file method: the side-file starts open.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a link for the Lock method: the side-file is born closed, so
    /// writers fall through to direct deletes against the scanned prefix.
    pub fn new_lock_method() -> Self {
        let link = Self::default();
        link.side_file.lock().closed = true;
        link
    }

    /// Publishes the finished component (under the dataset drain lock, so
    /// no writer observes a closed side-file without it).
    pub fn set_new_component(&self, comp: Arc<DiskComponent>) {
        *self.new_component.lock() = Some(comp);
    }

    /// The finished component, if the build has completed.
    pub fn new_component(&self) -> Option<Arc<DiskComponent>> {
        self.new_component.lock().clone()
    }

    // ---- Lock method -----------------------------------------------------

    /// Builder: records that `key` was copied into the new component and
    /// returns its ordinal there. Also reports whether a writer already
    /// registered a direct delete for an earlier position (never true for
    /// the position being added).
    pub fn publish_scanned(&self, key: Key) -> u64 {
        let mut s = self.scanned.lock();
        debug_assert!(s.keys.last().is_none_or(|last| *last < key));
        s.keys.push(key);
        (s.keys.len() - 1) as u64
    }

    /// Writer (Lock method, Figure 10b lines 6-7): if `key` has already been
    /// scanned into the new component, registers a delete for it there and
    /// returns `true`.
    pub fn try_direct_delete(&self, key: &[u8]) -> bool {
        let mut s = self.scanned.lock();
        match s.keys.binary_search_by(|k| k.as_slice().cmp(key)) {
            Ok(idx) => {
                let idx = idx as u64;
                s.direct_deletes.push(idx);
                true
            }
            Err(_) => false,
        }
    }

    /// Writer (abort path): withdraws a previously registered direct delete.
    pub fn undo_direct_delete(&self, key: &[u8]) -> bool {
        let mut s = self.scanned.lock();
        if let Ok(idx) = s.keys.binary_search_by(|k| k.as_slice().cmp(key)) {
            let idx = idx as u64;
            if let Some(pos) = s.direct_deletes.iter().position(|&d| d == idx) {
                s.direct_deletes.swap_remove(pos);
                return true;
            }
        }
        false
    }

    /// Builder: drains the registered direct deletes (positions in the new
    /// component) once the build is finished.
    pub fn take_direct_deletes(&self) -> Vec<u64> {
        std::mem::take(&mut self.scanned.lock().direct_deletes)
    }

    /// The largest key scanned so far (`C'.ScannedKey`), if any.
    pub fn scanned_watermark(&self) -> Option<Key> {
        self.scanned.lock().keys.last().cloned()
    }

    // ---- Side-file method ------------------------------------------------

    /// Writer (Figure 11b line 7): appends a deleted key to the side-file.
    /// Fails (returns `false`) once the side-file is closed, in which case
    /// the writer must apply the delete to the new component directly.
    pub fn try_append_side_file(&self, key: Key) -> bool {
        let mut sf = self.side_file.lock();
        if sf.closed {
            return false;
        }
        sf.keys.push(key);
        true
    }

    /// Writer (abort path): appends an "anti-matter" undo of a previous
    /// side-file delete. Returns `false` if the side-file is closed.
    pub fn try_append_side_file_undo(&self, key: Key) -> bool {
        let mut sf = self.side_file.lock();
        if sf.closed {
            return false;
        }
        // An undo cancels the latest matching delete.
        if let Some(pos) = sf.keys.iter().rposition(|k| *k == key) {
            sf.keys.swap_remove(pos);
        }
        true
    }

    /// Builder (Figure 11a, catch-up phase): closes the side-file and
    /// returns its contents, sorted.
    pub fn close_side_file(&self) -> Vec<Key> {
        let mut sf = self.side_file.lock();
        sf.closed = true;
        let mut keys = std::mem::take(&mut sf.keys);
        keys.sort_unstable();
        keys
    }

    /// True once the side-file has been closed.
    pub fn side_file_closed(&self) -> bool {
        self.side_file.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_method_direct_delete_flow() {
        let link = BuildLink::new();
        assert_eq!(link.publish_scanned(b"a".to_vec()), 0);
        assert_eq!(link.publish_scanned(b"c".to_vec()), 1);
        assert_eq!(link.scanned_watermark().unwrap(), b"c".to_vec());

        // Key already scanned: direct delete lands.
        assert!(link.try_direct_delete(b"a"));
        // Key not yet scanned: writer only marks the old component.
        assert!(!link.try_direct_delete(b"d"));
        assert_eq!(link.take_direct_deletes(), vec![0]);
        assert!(link.take_direct_deletes().is_empty());
    }

    #[test]
    fn lock_method_undo() {
        let link = BuildLink::new();
        link.publish_scanned(b"a".to_vec());
        assert!(link.try_direct_delete(b"a"));
        assert!(link.undo_direct_delete(b"a"));
        assert!(!link.undo_direct_delete(b"a"));
        assert!(link.take_direct_deletes().is_empty());
    }

    #[test]
    fn side_file_flow() {
        let link = BuildLink::new();
        assert!(link.try_append_side_file(b"z".to_vec()));
        assert!(link.try_append_side_file(b"a".to_vec()));
        assert!(!link.side_file_closed());
        let drained = link.close_side_file();
        assert_eq!(drained, vec![b"a".to_vec(), b"z".to_vec()]);
        assert!(link.side_file_closed());
        // After close, writers must go to the new component directly.
        assert!(!link.try_append_side_file(b"b".to_vec()));
    }

    #[test]
    fn side_file_undo_cancels_delete() {
        let link = BuildLink::new();
        link.try_append_side_file(b"k".to_vec());
        assert!(link.try_append_side_file_undo(b"k".to_vec()));
        assert!(link.close_side_file().is_empty());
        assert!(!link.try_append_side_file_undo(b"k".to_vec()));
    }

    #[test]
    fn watermark_empty_initially() {
        let link = BuildLink::new();
        assert!(link.scanned_watermark().is_none());
        assert!(!link.try_direct_delete(b"x"));
    }
}
