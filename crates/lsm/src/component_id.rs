//! Component IDs: `(minTS, maxTS)` timestamp intervals.
//!
//! Each component is identified by the minimum and maximum ingestion
//! timestamps of the entries it holds (Section 3). IDs let the engine infer
//! recency ordering *across different indexes of the same dataset* — e.g.
//! that component 1-15 of a secondary index overlaps components 1-10 and
//! 11-15 of the primary index — which drives repair pruning (Section 4.4)
//! and the component-ID-propagation lookup optimization.

use lsm_common::Timestamp;
use std::fmt;

/// A `(minTS, maxTS)` interval, inclusive on both ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentId {
    /// Timestamp of the oldest entry.
    pub min_ts: Timestamp,
    /// Timestamp of the newest entry.
    pub max_ts: Timestamp,
}

impl ComponentId {
    /// Creates an ID; `min_ts` must not exceed `max_ts`.
    pub fn new(min_ts: Timestamp, max_ts: Timestamp) -> Self {
        assert!(min_ts <= max_ts, "invalid component id {min_ts}-{max_ts}");
        ComponentId { min_ts, max_ts }
    }

    /// The ID of a component formed by merging components with these IDs.
    pub fn merged(ids: impl IntoIterator<Item = ComponentId>) -> Option<ComponentId> {
        let mut out: Option<ComponentId> = None;
        for id in ids {
            out = Some(match out {
                None => id,
                Some(o) => ComponentId {
                    min_ts: o.min_ts.min(id.min_ts),
                    max_ts: o.max_ts.max(id.max_ts),
                },
            });
        }
        out
    }

    /// True if the two intervals intersect.
    pub fn overlaps(&self, other: &ComponentId) -> bool {
        self.min_ts <= other.max_ts && other.min_ts <= self.max_ts
    }

    /// True if every entry in `self` is strictly newer than every entry in
    /// `other`.
    pub fn strictly_newer_than(&self, other: &ComponentId) -> bool {
        self.min_ts > other.max_ts
    }

    /// True if the whole interval is at or before `ts`.
    pub fn at_or_before(&self, ts: Timestamp) -> bool {
        self.max_ts <= ts
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.min_ts, self.max_ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_semantics() {
        let a = ComponentId::new(1, 10);
        let b = ComponentId::new(11, 15);
        let c = ComponentId::new(1, 15);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(a.overlaps(&a));
        // Touching endpoints overlap (inclusive intervals).
        assert!(ComponentId::new(1, 5).overlaps(&ComponentId::new(5, 9)));
    }

    #[test]
    fn recency_ordering() {
        let old = ComponentId::new(1, 15);
        let new = ComponentId::new(16, 18);
        assert!(new.strictly_newer_than(&old));
        assert!(!old.strictly_newer_than(&new));
        assert!(!new.strictly_newer_than(&new));
    }

    #[test]
    fn merged_spans_inputs() {
        let m = ComponentId::merged([
            ComponentId::new(11, 15),
            ComponentId::new(1, 10),
            ComponentId::new(16, 18),
        ])
        .unwrap();
        assert_eq!(m, ComponentId::new(1, 18));
        assert!(ComponentId::merged([]).is_none());
    }

    #[test]
    fn pruning_predicate() {
        // Repair prunes primary-key-index components with maxTS <= repairedTS.
        let repaired_ts = 15;
        assert!(ComponentId::new(1, 10).at_or_before(repaired_ts));
        assert!(ComponentId::new(11, 15).at_or_before(repaired_ts));
        assert!(!ComponentId::new(11, 18).at_or_before(repaired_ts));
    }

    #[test]
    #[should_panic(expected = "invalid component id")]
    fn rejects_inverted_interval() {
        let _ = ComponentId::new(5, 1);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(ComponentId::new(1, 15).to_string(), "1-15");
    }
}
