//! Immutable LSM disk components.
//!
//! A disk component bundles (Section 3, Figure 1):
//! * a B+-tree over the component's entries,
//! * an optional Bloom filter on the stored keys,
//! * an optional range filter on the dataset's filter key,
//! * an optional validity bitmap (immutable after repair under the
//!   Validation strategy; writer-mutable under the Mutable-bitmap strategy),
//! * a repaired-timestamp watermark (Section 4.4),
//! * and, while a flush/merge is rebuilding it, a link to the in-progress
//!   successor used by the concurrency-control methods of Section 5.3.

use crate::bitmap::AtomicBitmap;
use crate::build_link::BuildLink;
use crate::component_id::ComponentId;
use crate::entry::LsmEntry;
use crate::range_filter::RangeFilter;
use lsm_bloom::BloomFilter;
use lsm_common::{Result, Timestamp};
use lsm_storage::Storage;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An immutable disk component of one LSM index.
pub struct DiskComponent {
    id: ComponentId,
    btree: lsm_btree::BTree,
    bloom: Option<Box<dyn BloomFilter>>,
    filter: Option<RangeFilter>,
    bitmap: RwLock<Option<Arc<AtomicBitmap>>>,
    /// Largest primary-key-index timestamp this component has been validated
    /// against (Section 4.4). Secondary-index components only.
    repaired_ts: AtomicU64,
    /// Link to the successor component being built from this one, if a
    /// flush/merge is in progress (Section 5.3).
    successor: RwLock<Option<Arc<BuildLink>>>,
    /// Set when a merge replaced this component: the backing file is
    /// destroyed once the last reference drops (see [`DiskComponent::retire`]).
    retired: std::sync::atomic::AtomicBool,
}

impl std::fmt::Debug for DiskComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskComponent")
            .field("id", &self.id)
            .field("entries", &self.num_entries())
            .field("bloom", &self.bloom.is_some())
            .field("filter", &self.filter)
            .finish()
    }
}

impl DiskComponent {
    /// Assembles a component from its parts (see `build::build_component`).
    pub fn new(
        id: ComponentId,
        btree: lsm_btree::BTree,
        bloom: Option<Box<dyn BloomFilter>>,
        filter: Option<RangeFilter>,
        bitmap: Option<Arc<AtomicBitmap>>,
    ) -> Self {
        DiskComponent {
            id,
            btree,
            bloom,
            filter,
            bitmap: RwLock::new(bitmap),
            repaired_ts: AtomicU64::new(0),
            successor: RwLock::new(None),
            retired: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// The component's `(minTS, maxTS)` ID.
    pub fn id(&self) -> ComponentId {
        self.id
    }

    /// The underlying B+-tree.
    pub fn btree(&self) -> &lsm_btree::BTree {
        &self.btree
    }

    /// Number of entries (including anti-matter and invalidated entries).
    pub fn num_entries(&self) -> u64 {
        self.btree.num_entries()
    }

    /// On-disk size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.btree.byte_size()
    }

    /// The range filter, if the index maintains one.
    pub fn range_filter(&self) -> Option<&RangeFilter> {
        self.filter.as_ref()
    }

    /// Tests the Bloom filter for `key`, charging the CPU model per probe
    /// (blocked filters charge one cache miss, standard filters `k`).
    /// Returns `true` if the key may be present (or no filter exists).
    pub fn bloom_may_contain(&self, storage: &Storage, key: &[u8]) -> bool {
        let Some(bloom) = &self.bloom else {
            return true;
        };
        let cpu = storage.cpu();
        let k = u64::from(bloom.num_probes());
        let cost = if bloom.is_blocked() {
            cpu.bloom_probe_miss_ns + (k - 1) * cpu.bloom_probe_hit_ns
        } else {
            k * cpu.bloom_probe_miss_ns
        };
        storage.charge_cpu(cost);
        let positive = bloom.may_contain(key);
        storage.raw_stats().record_bloom_check(!positive);
        positive
    }

    /// Batched Bloom probe: one [`BloomFilter::may_contain_batch`] call
    /// resolves every key's verdict (blocked filters use their two-pass
    /// cache-line layout), charged and recorded per key exactly like
    /// [`DiskComponent::bloom_may_contain`]. With no filter every verdict
    /// is `true` and nothing is charged.
    pub fn bloom_may_contain_batch(&self, storage: &Storage, keys: &[&[u8]], out: &mut Vec<bool>) {
        let Some(bloom) = &self.bloom else {
            out.clear();
            out.resize(keys.len(), true);
            return;
        };
        if keys.is_empty() {
            out.clear();
            return;
        }
        let cpu = storage.cpu();
        let k = u64::from(bloom.num_probes());
        let per_key = if bloom.is_blocked() {
            cpu.bloom_probe_miss_ns + (k - 1) * cpu.bloom_probe_hit_ns
        } else {
            k * cpu.bloom_probe_miss_ns
        };
        storage.charge_cpu(per_key * keys.len() as u64);
        bloom.may_contain_batch(keys, out);
        for positive in out.iter() {
            storage.raw_stats().record_bloom_check(!positive);
        }
    }

    /// True if the component has a Bloom filter.
    pub fn has_bloom(&self) -> bool {
        self.bloom.is_some()
    }

    /// Searches the B+-tree (no Bloom check). Returns the decoded entry and
    /// its ordinal position. The entry's value pins the cached leaf page —
    /// no copy until the caller asks for owned bytes.
    pub fn search(&self, key: &[u8]) -> Result<Option<(LsmEntry, u64)>> {
        match self.btree.search_pinned(key)? {
            None => Ok(None),
            Some((raw, ordinal)) => Ok(Some((LsmEntry::decode_slice(raw)?, ordinal))),
        }
    }

    /// The current validity bitmap, if any.
    pub fn bitmap(&self) -> Option<Arc<AtomicBitmap>> {
        self.bitmap.read().clone()
    }

    /// Installs (or replaces) the validity bitmap. Standalone repair
    /// (Section 4.4) replaces the bitmap of an existing component; the
    /// Mutable-bitmap strategy installs a shared bitmap at build time.
    /// Errors (rather than panicking — flushes and merges may run on
    /// background maintenance workers) if the bitmap does not cover every
    /// entry.
    pub fn set_bitmap(&self, bitmap: Arc<AtomicBitmap>) -> Result<()> {
        if bitmap.len() != self.num_entries() {
            return Err(lsm_common::Error::invalid(format!(
                "bitmap must cover every entry ({} bits for {} entries)",
                bitmap.len(),
                self.num_entries()
            )));
        }
        *self.bitmap.write() = Some(bitmap);
        Ok(())
    }

    /// Returns the validity bitmap, creating an all-zero one if absent —
    /// used by query-driven maintenance, which marks obsolete entries
    /// opportunistically as queries discover them.
    pub fn bitmap_or_create(&self) -> Arc<AtomicBitmap> {
        if let Some(b) = self.bitmap.read().clone() {
            return b;
        }
        let mut guard = self.bitmap.write();
        if let Some(b) = guard.clone() {
            return b;
        }
        let fresh = Arc::new(AtomicBitmap::new(self.num_entries()));
        *guard = Some(fresh.clone());
        fresh
    }

    /// True if the entry at `ordinal` is still valid (bit not set).
    pub fn is_valid(&self, ordinal: u64) -> bool {
        match &*self.bitmap.read() {
            Some(b) => !b.get(ordinal),
            None => true,
        }
    }

    /// Fraction of entries marked invalid (0.0 with no bitmap).
    pub fn invalid_fraction(&self) -> f64 {
        match &*self.bitmap.read() {
            Some(b) if !b.is_empty() => b.count_set() as f64 / b.len() as f64,
            _ => 0.0,
        }
    }

    /// The repaired-timestamp watermark (Section 4.4). Zero = never repaired.
    pub fn repaired_ts(&self) -> Timestamp {
        self.repaired_ts.load(Ordering::Acquire)
    }

    /// Raises the repaired-timestamp watermark.
    pub fn set_repaired_ts(&self, ts: Timestamp) {
        self.repaired_ts.fetch_max(ts, Ordering::AcqRel);
    }

    /// The in-progress successor build, if a flush/merge covering this
    /// component is running.
    pub fn successor(&self) -> Option<Arc<BuildLink>> {
        self.successor.read().clone()
    }

    /// Points this component at the successor being built from it
    /// (Figure 10a line 2 / Figure 11a line 4).
    pub fn set_successor(&self, link: Option<Arc<BuildLink>>) {
        *self.successor.write() = link;
    }

    /// Deletes the backing file (component dropped after a merge).
    pub fn destroy(&self) -> Result<()> {
        self.btree.destroy()
    }

    /// Marks the component for destruction when the last reference drops.
    /// Merges retire replaced components instead of destroying them
    /// eagerly, so a concurrent reader still holding the `Arc` (a point
    /// lookup, a scan, a mutable-bitmap delete probe) finishes against
    /// intact files.
    pub fn retire(&self) {
        self.retired.store(true, Ordering::Release);
    }
}

impl Drop for DiskComponent {
    fn drop(&mut self) {
        if self.retired.load(Ordering::Acquire) {
            let _ = self.btree.destroy();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_bloom::{BloomKind, StandardBloom};
    use lsm_btree::BTreeBuilder;
    use lsm_common::Value;
    use lsm_storage::StorageOptions;

    fn component(n: u32, with_bloom: bool) -> (Arc<Storage>, DiskComponent) {
        let storage = Storage::new(StorageOptions::test());
        let mut builder = BTreeBuilder::new(storage.clone());
        let mut bloom = StandardBloom::new(n as usize, 0.01);
        for i in 0..n {
            let key = format!("key{i:06}").into_bytes();
            let entry = LsmEntry::put_ts(format!("v{i}").into_bytes(), u64::from(i) + 1);
            builder.add(&key, &entry.encode()).unwrap();
            lsm_bloom::BloomFilter::insert(&mut bloom, &key);
        }
        let btree = builder.finish().unwrap();
        let c = DiskComponent::new(
            ComponentId::new(1, u64::from(n).max(1)),
            btree,
            with_bloom.then(|| Box::new(bloom) as Box<dyn BloomFilter>),
            Some(RangeFilter::new(Value::Int(0), Value::Int(100))),
            None,
        );
        (storage, c)
    }

    #[test]
    fn search_decodes_entries() {
        let (_s, c) = component(100, false);
        let (e, ord) = c.search(b"key000042").unwrap().unwrap();
        assert_eq!(e.value, b"v42");
        assert_eq!(e.ts, 43);
        assert_eq!(ord, 42);
        assert!(c.search(b"nope").unwrap().is_none());
    }

    #[test]
    fn bloom_prunes_absent_keys() {
        let (s, c) = component(1000, true);
        assert!(c.bloom_may_contain(&s, b"key000500"));
        let mut pruned = 0;
        for i in 0..1000 {
            if !c.bloom_may_contain(&s, format!("absent{i}").as_bytes()) {
                pruned += 1;
            }
        }
        assert!(pruned > 950, "pruned {pruned}");
        let snap = s.stats();
        assert!(snap.bloom_checks >= 1001);
        assert!(snap.bloom_negatives >= 950);
    }

    #[test]
    fn no_bloom_always_positive_and_uncharged() {
        let (s, c) = component(10, false);
        let before = s.stats();
        assert!(c.bloom_may_contain(&s, b"whatever"));
        let d = s.stats().since(&before);
        assert_eq!(d.bloom_checks, 0);
        assert_eq!(d.cpu_ns, 0);
    }

    #[test]
    fn bitmap_validity() {
        let (_s, c) = component(10, false);
        assert!(c.is_valid(3));
        assert_eq!(c.invalid_fraction(), 0.0);
        let bm = Arc::new(AtomicBitmap::new(10));
        bm.set(3);
        c.set_bitmap(bm).unwrap();
        assert!(!c.is_valid(3));
        assert!(c.is_valid(4));
        assert!((c.invalid_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn wrong_sized_bitmap_rejected() {
        let (_s, c) = component(10, false);
        let err = c.set_bitmap(Arc::new(AtomicBitmap::new(5))).unwrap_err();
        assert!(err.to_string().contains("bitmap must cover"), "{err}");
        assert!(c.bitmap().is_none());
    }

    #[test]
    fn repaired_ts_is_monotonic() {
        let (_s, c) = component(1, false);
        assert_eq!(c.repaired_ts(), 0);
        c.set_repaired_ts(15);
        c.set_repaired_ts(10); // must not go backwards
        assert_eq!(c.repaired_ts(), 15);
        c.set_repaired_ts(19);
        assert_eq!(c.repaired_ts(), 19);
    }

    #[test]
    fn blocked_bloom_charges_less_cpu() {
        let storage = Storage::new(StorageOptions::test());
        let n = 1000usize;
        let mut builder = BTreeBuilder::new(storage.clone());
        builder.add(b"k", &LsmEntry::put(vec![]).encode()).unwrap();
        let btree = builder.finish().unwrap();
        let mut blocked = lsm_bloom::build_filter(BloomKind::Blocked, n, 0.01);
        let mut standard = lsm_bloom::build_filter(BloomKind::Standard, n, 0.01);
        blocked.insert(b"k");
        standard.insert(b"k");

        let c_blocked = DiskComponent::new(
            ComponentId::new(1, 1),
            btree.clone(),
            Some(blocked),
            None,
            None,
        );
        let c_standard =
            DiskComponent::new(ComponentId::new(1, 1), btree, Some(standard), None, None);

        let before = storage.stats().cpu_ns;
        for i in 0..1000 {
            c_standard.bloom_may_contain(&storage, format!("a{i}").as_bytes());
        }
        let standard_cost = storage.stats().cpu_ns - before;
        let before = storage.stats().cpu_ns;
        for i in 0..1000 {
            c_blocked.bloom_may_contain(&storage, format!("a{i}").as_bytes());
        }
        let blocked_cost = storage.stats().cpu_ns - before;
        assert!(
            blocked_cost * 2 < standard_cost,
            "blocked {blocked_cost} standard {standard_cost}"
        );
    }
}
