//! Merge policies (Section 2.1, Section 6.1).
//!
//! The experiments use a **tiering** policy with size ratio 1.2 and a
//! maximum mergeable component size (1GB in the paper, scaled here): a
//! sequence of components is merged when the total size of the younger
//! components exceeds `ratio ×` the size of the oldest component in the
//! sequence; components larger than the cap are never merged again, so big
//! components accumulate over the experiment — which is exactly the effect
//! the paper wants to measure.
//!
//! A simple **leveling** policy is included for completeness, and the
//! dataset-level *correlated* policy (Sections 4.4, 5.1) is implemented in
//! the engine by applying one index's decision to all indexes of a dataset.

/// A merge decision: merge components `start..=end` (indices into an
/// oldest-first size list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MergeRange {
    /// Oldest component index (oldest-first ordering).
    pub start: usize,
    /// Newest component index, inclusive.
    pub end: usize,
}

/// Selects which disk components to merge, given their sizes oldest-first.
pub trait MergePolicy: Send + Sync {
    /// Returns the range to merge, or `None` if no merge is needed.
    fn select(&self, sizes_oldest_first: &[u64]) -> Option<MergeRange>;
}

/// Tiering ("prefix") merge policy with a size ratio and a mergeable cap.
#[derive(Debug, Clone)]
pub struct TieringPolicy {
    /// A sequence merges when younger components total more than
    /// `size_ratio ×` the oldest component of the sequence (1.2 in §6.1).
    pub size_ratio: f64,
    /// Components at least this large are never merged again (1GB in §6.1).
    pub max_mergeable_bytes: u64,
    /// Do not merge fewer than this many components (2 minimum).
    pub min_merge_components: usize,
}

impl TieringPolicy {
    /// The paper's configuration: ratio 1.2, with a scaled component cap.
    pub fn new(max_mergeable_bytes: u64) -> Self {
        TieringPolicy {
            size_ratio: 1.2,
            max_mergeable_bytes,
            min_merge_components: 2,
        }
    }
}

impl MergePolicy for TieringPolicy {
    fn select(&self, sizes: &[u64]) -> Option<MergeRange> {
        let n = sizes.len();
        for start in 0..n.saturating_sub(1) {
            let oldest = sizes[start];
            if oldest >= self.max_mergeable_bytes {
                continue; // frozen: too large to merge again
            }
            // All components younger than `start` are candidates (they are
            // newer, hence smaller than the cap unless a huge flush
            // happened; skip the sequence if any is frozen).
            if sizes[start + 1..]
                .iter()
                .any(|&s| s >= self.max_mergeable_bytes)
            {
                continue;
            }
            let younger: u64 = sizes[start + 1..].iter().sum();
            let count = n - start;
            if count >= self.min_merge_components.max(2)
                && younger as f64 >= self.size_ratio * oldest as f64
            {
                return Some(MergeRange { start, end: n - 1 });
            }
        }
        None
    }
}

/// Simple leveling policy: the newest component is merged into its
/// predecessor once it reaches `1/size_ratio` of the predecessor's size,
/// keeping one exponentially-growing component per level.
#[derive(Debug, Clone)]
pub struct LevelingPolicy {
    /// Size multiplier between adjacent levels.
    pub size_ratio: f64,
}

impl Default for LevelingPolicy {
    fn default() -> Self {
        LevelingPolicy { size_ratio: 10.0 }
    }
}

impl MergePolicy for LevelingPolicy {
    fn select(&self, sizes: &[u64]) -> Option<MergeRange> {
        let n = sizes.len();
        if n < 2 {
            return None;
        }
        let newest = sizes[n - 1];
        let prev = sizes[n - 2];
        if newest as f64 * self.size_ratio >= prev as f64 {
            Some(MergeRange {
                start: n - 2,
                end: n - 1,
            })
        } else {
            None
        }
    }
}

/// Never merges (used to isolate flush behaviour in tests/benches).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMergePolicy;

impl MergePolicy for NoMergePolicy {
    fn select(&self, _sizes: &[u64]) -> Option<MergeRange> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiering_triggers_when_younger_outweigh_oldest() {
        let p = TieringPolicy::new(u64::MAX);
        // Younger total 30 >= 1.2 * 20 → merge everything.
        assert_eq!(
            p.select(&[20, 10, 10, 10]),
            Some(MergeRange { start: 0, end: 3 })
        );
        // Younger total 10 < 1.2 * 20 → but suffix [10, 10]... the second
        // sequence: younger 10 < 1.2*10=12 → no merge anywhere.
        assert_eq!(p.select(&[20, 10]), None);
        // Equal pair: 10 < 12 → no. Triple: 20 >= 12 → merge from idx 0.
        assert_eq!(p.select(&[10, 10]), None);
        assert_eq!(
            p.select(&[10, 10, 10]),
            Some(MergeRange { start: 0, end: 2 })
        );
    }

    #[test]
    fn tiering_skips_frozen_components() {
        let p = TieringPolicy::new(100);
        // Component 0 is frozen (>= cap); the suffix [30, 20, 20] merges
        // from index 1: younger 40 >= 1.2*30.
        assert_eq!(
            p.select(&[500, 30, 20, 20]),
            Some(MergeRange { start: 1, end: 3 })
        );
        // Frozen component in the middle blocks sequences that include it.
        assert_eq!(p.select(&[30, 500, 20]), None);
    }

    #[test]
    fn tiering_needs_two_components() {
        let p = TieringPolicy::new(u64::MAX);
        assert_eq!(p.select(&[10]), None);
        assert_eq!(p.select(&[]), None);
    }

    #[test]
    fn leveling_merges_adjacent_pair() {
        let p = LevelingPolicy { size_ratio: 10.0 };
        // newest 10 * 10 >= 50 → merge the top pair.
        assert_eq!(
            p.select(&[500, 50, 10]),
            Some(MergeRange { start: 1, end: 2 })
        );
        // newest 1 * 10 < 50 → wait.
        assert_eq!(p.select(&[500, 50, 1]), None);
        assert_eq!(p.select(&[5]), None);
    }

    #[test]
    fn no_merge_policy_never_fires() {
        assert_eq!(NoMergePolicy.select(&[1, 1, 1, 1, 1]), None);
    }

    #[test]
    fn tiering_simulates_component_accumulation() {
        // Simulate repeated flushes of 10 units with a cap of 100: merged
        // components grow until they freeze, then new runs accumulate —
        // reproducing the paper's "components accumulate" setup.
        let p = TieringPolicy::new(100);
        let mut sizes: Vec<u64> = Vec::new();
        let mut frozen_seen = 0;
        for _ in 0..100 {
            sizes.push(10); // flush appends the newest (rightmost)
            while let Some(r) = p.select(&sizes) {
                let merged: u64 = sizes[r.start..=r.end].iter().sum();
                sizes.splice(r.start..=r.end, [merged]);
            }
            frozen_seen = frozen_seen.max(sizes.iter().filter(|&&s| s >= 100).count());
        }
        assert!(frozen_seen >= 2, "expected frozen components to accumulate");
        assert!(sizes.iter().filter(|&&s| s >= 100).count() >= 2);
    }
}
