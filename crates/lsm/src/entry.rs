//! LSM entries: values plus LSM bookkeeping.
//!
//! An LSM write never updates in place; it inserts a new entry that
//! overrides older entries with the same key. Deletes insert an
//! **anti-matter** entry (Section 2.1). Under the Validation strategy
//! (Section 4), entries additionally carry the ingestion **timestamp** used
//! by Timestamp Validation and index repair.
//!
//! Entries are serialized into the value slot of the component B+-trees:
//! `[flags u8][ts u64 BE, iff flags.HAS_TS][payload...]`.

use lsm_common::clock::NO_TIMESTAMP;
use lsm_common::{Bytes, Error, Result, Timestamp};
use lsm_storage::{PageSlice, ValueBuf};

const FLAG_ANTI_MATTER: u8 = 0b01;
const FLAG_HAS_TS: u8 = 0b10;

/// One LSM entry: a payload or an anti-matter tombstone, optionally
/// timestamped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsmEntry {
    /// True if this entry deletes the key.
    pub anti_matter: bool,
    /// Ingestion timestamp ([`NO_TIMESTAMP`] when the maintenance strategy
    /// does not store timestamps).
    pub ts: Timestamp,
    /// The stored value (empty for anti-matter entries and key-only
    /// indexes). Owned on the write path; pinned inside a cached page on
    /// the zero-copy lookup/scan paths.
    pub value: ValueBuf,
}

impl LsmEntry {
    /// A regular entry without a timestamp.
    pub fn put(value: Bytes) -> Self {
        LsmEntry {
            anti_matter: false,
            ts: NO_TIMESTAMP,
            value: value.into(),
        }
    }

    /// A regular entry with a timestamp (Validation strategy).
    pub fn put_ts(value: Bytes, ts: Timestamp) -> Self {
        LsmEntry {
            anti_matter: false,
            ts,
            value: value.into(),
        }
    }

    /// An anti-matter (delete) entry.
    pub fn anti_matter() -> Self {
        LsmEntry {
            anti_matter: true,
            ts: NO_TIMESTAMP,
            value: ValueBuf::empty(),
        }
    }

    /// A timestamped anti-matter entry.
    pub fn anti_matter_ts(ts: Timestamp) -> Self {
        LsmEntry {
            anti_matter: true,
            ts,
            value: ValueBuf::empty(),
        }
    }

    /// The same entry with the payload stripped — what the primary key
    /// index stores for a primary-index entry.
    pub fn key_only(&self) -> LsmEntry {
        LsmEntry {
            anti_matter: self.anti_matter,
            ts: self.ts,
            value: ValueBuf::empty(),
        }
    }

    /// Serializes the entry.
    pub fn encode(&self) -> Bytes {
        let has_ts = self.ts != NO_TIMESTAMP;
        let mut out = Vec::with_capacity(1 + if has_ts { 8 } else { 0 } + self.value.len());
        let mut flags = 0u8;
        if self.anti_matter {
            flags |= FLAG_ANTI_MATTER;
        }
        if has_ts {
            flags |= FLAG_HAS_TS;
        }
        out.push(flags);
        if has_ts {
            out.extend_from_slice(&self.ts.to_be_bytes());
        }
        out.extend_from_slice(&self.value);
        out
    }

    /// Deserializes an entry produced by [`LsmEntry::encode`], copying the
    /// payload into owned bytes (WAL replay, memtable paths).
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let (header, off) = Self::header_of(buf)?;
        Ok(LsmEntry {
            value: buf[off..].to_vec().into(),
            ..header
        })
    }

    /// Deserializes an entry whose encoded bytes are pinned inside a cached
    /// page: flags and timestamp are parsed out, and the payload stays a
    /// [`PageSlice`] into the same page — no allocation, no copy. This is
    /// the zero-copy twin of [`LsmEntry::decode`].
    pub fn decode_slice(raw: PageSlice) -> Result<Self> {
        let (header, off) = Self::header_of(&raw)?;
        Ok(LsmEntry {
            value: raw.slice_from(off).into(),
            ..header
        })
    }

    /// Deserializes from either representation: zero-copy when `raw` is
    /// pinned, copying (exactly like [`LsmEntry::decode`]) when owned.
    pub fn decode_buf(raw: ValueBuf) -> Result<Self> {
        match raw {
            ValueBuf::Owned(v) => Self::decode(&v),
            ValueBuf::Pinned(s) => Self::decode_slice(s),
        }
    }

    /// Parses flags and timestamp, returning the payload offset.
    fn header_of(buf: &[u8]) -> Result<(Self, usize)> {
        let flags = *buf
            .first()
            .ok_or_else(|| Error::corruption("empty lsm entry"))?;
        if flags & !(FLAG_ANTI_MATTER | FLAG_HAS_TS) != 0 {
            return Err(Error::corruption(format!("bad entry flags {flags:#x}")));
        }
        let (ts, off) = if flags & FLAG_HAS_TS != 0 {
            if buf.len() < 9 {
                return Err(Error::corruption("truncated entry timestamp"));
            }
            // INVARIANT: `buf.len() >= 9` was checked above; the slice is
            // exactly the 8 timestamp bytes.
            (Timestamp::from_be_bytes(buf[1..9].try_into().unwrap()), 9)
        } else {
            (NO_TIMESTAMP, 1)
        };
        Ok((
            LsmEntry {
                anti_matter: flags & FLAG_ANTI_MATTER != 0,
                ts,
                value: ValueBuf::empty(),
            },
            off,
        ))
    }

    /// Approximate in-memory footprint, for memory-budget accounting.
    pub fn mem_size(&self) -> usize {
        std::mem::size_of::<LsmEntry>() + self.value.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_put() {
        for e in [
            LsmEntry::put(b"record bytes".to_vec()),
            LsmEntry::put(Vec::new()),
            LsmEntry::put_ts(b"v".to_vec(), 42),
            LsmEntry::anti_matter(),
            LsmEntry::anti_matter_ts(7),
        ] {
            assert_eq!(LsmEntry::decode(&e.encode()).unwrap(), e, "{e:?}");
        }
    }

    #[test]
    fn untimestamped_entries_are_compact() {
        let e = LsmEntry::put(b"x".to_vec());
        assert_eq!(e.encode().len(), 2); // flags + payload
        let t = LsmEntry::put_ts(b"x".to_vec(), 1);
        assert_eq!(t.encode().len(), 10); // flags + ts + payload
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(LsmEntry::decode(&[]).is_err());
        assert!(LsmEntry::decode(&[0xF0]).is_err());
        assert!(LsmEntry::decode(&[FLAG_HAS_TS, 1, 2]).is_err());
    }

    #[test]
    fn mem_size_tracks_value() {
        let small = LsmEntry::put(vec![0; 10]);
        let big = LsmEntry::put(vec![0; 1000]);
        assert_eq!(big.mem_size() - small.mem_size(), 990);
    }
}
