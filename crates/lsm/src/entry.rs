//! LSM entries: values plus LSM bookkeeping.
//!
//! An LSM write never updates in place; it inserts a new entry that
//! overrides older entries with the same key. Deletes insert an
//! **anti-matter** entry (Section 2.1). Under the Validation strategy
//! (Section 4), entries additionally carry the ingestion **timestamp** used
//! by Timestamp Validation and index repair.
//!
//! Entries are serialized into the value slot of the component B+-trees:
//! `[flags u8][ts u64 BE, iff flags.HAS_TS][payload...]`.

use lsm_common::clock::NO_TIMESTAMP;
use lsm_common::{Bytes, Error, Result, Timestamp};

const FLAG_ANTI_MATTER: u8 = 0b01;
const FLAG_HAS_TS: u8 = 0b10;

/// One LSM entry: a payload or an anti-matter tombstone, optionally
/// timestamped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsmEntry {
    /// True if this entry deletes the key.
    pub anti_matter: bool,
    /// Ingestion timestamp ([`NO_TIMESTAMP`] when the maintenance strategy
    /// does not store timestamps).
    pub ts: Timestamp,
    /// The stored value (empty for anti-matter entries and key-only indexes).
    pub value: Bytes,
}

impl LsmEntry {
    /// A regular entry without a timestamp.
    pub fn put(value: Bytes) -> Self {
        LsmEntry {
            anti_matter: false,
            ts: NO_TIMESTAMP,
            value,
        }
    }

    /// A regular entry with a timestamp (Validation strategy).
    pub fn put_ts(value: Bytes, ts: Timestamp) -> Self {
        LsmEntry {
            anti_matter: false,
            ts,
            value,
        }
    }

    /// An anti-matter (delete) entry.
    pub fn anti_matter() -> Self {
        LsmEntry {
            anti_matter: true,
            ts: NO_TIMESTAMP,
            value: Vec::new(),
        }
    }

    /// A timestamped anti-matter entry.
    pub fn anti_matter_ts(ts: Timestamp) -> Self {
        LsmEntry {
            anti_matter: true,
            ts,
            value: Vec::new(),
        }
    }

    /// The same entry with the payload stripped — what the primary key
    /// index stores for a primary-index entry.
    pub fn key_only(&self) -> LsmEntry {
        LsmEntry {
            anti_matter: self.anti_matter,
            ts: self.ts,
            value: Vec::new(),
        }
    }

    /// Serializes the entry.
    pub fn encode(&self) -> Bytes {
        let has_ts = self.ts != NO_TIMESTAMP;
        let mut out = Vec::with_capacity(1 + if has_ts { 8 } else { 0 } + self.value.len());
        let mut flags = 0u8;
        if self.anti_matter {
            flags |= FLAG_ANTI_MATTER;
        }
        if has_ts {
            flags |= FLAG_HAS_TS;
        }
        out.push(flags);
        if has_ts {
            out.extend_from_slice(&self.ts.to_be_bytes());
        }
        out.extend_from_slice(&self.value);
        out
    }

    /// Deserializes an entry produced by [`LsmEntry::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let flags = *buf
            .first()
            .ok_or_else(|| Error::corruption("empty lsm entry"))?;
        if flags & !(FLAG_ANTI_MATTER | FLAG_HAS_TS) != 0 {
            return Err(Error::corruption(format!("bad entry flags {flags:#x}")));
        }
        let anti_matter = flags & FLAG_ANTI_MATTER != 0;
        let (ts, off) = if flags & FLAG_HAS_TS != 0 {
            if buf.len() < 9 {
                return Err(Error::corruption("truncated entry timestamp"));
            }
            // INVARIANT: `buf.len() >= 9` was checked above; the slice is
            // exactly the 8 timestamp bytes.
            (Timestamp::from_be_bytes(buf[1..9].try_into().unwrap()), 9)
        } else {
            (NO_TIMESTAMP, 1)
        };
        Ok(LsmEntry {
            anti_matter,
            ts,
            value: buf[off..].to_vec(),
        })
    }

    /// Approximate in-memory footprint, for memory-budget accounting.
    pub fn mem_size(&self) -> usize {
        std::mem::size_of::<LsmEntry>() + self.value.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_put() {
        for e in [
            LsmEntry::put(b"record bytes".to_vec()),
            LsmEntry::put(Vec::new()),
            LsmEntry::put_ts(b"v".to_vec(), 42),
            LsmEntry::anti_matter(),
            LsmEntry::anti_matter_ts(7),
        ] {
            assert_eq!(LsmEntry::decode(&e.encode()).unwrap(), e, "{e:?}");
        }
    }

    #[test]
    fn untimestamped_entries_are_compact() {
        let e = LsmEntry::put(b"x".to_vec());
        assert_eq!(e.encode().len(), 2); // flags + payload
        let t = LsmEntry::put_ts(b"x".to_vec(), 1);
        assert_eq!(t.encode().len(), 10); // flags + ts + payload
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(LsmEntry::decode(&[]).is_err());
        assert!(LsmEntry::decode(&[0xF0]).is_err());
        assert!(LsmEntry::decode(&[FLAG_HAS_TS, 1, 2]).is_err());
    }

    #[test]
    fn mem_size_tracks_value() {
        let small = LsmEntry::put(vec![0; 10]);
        let big = LsmEntry::put(vec![0; 1000]);
        assert_eq!(big.mem_size() - small.mem_size(), 990);
    }
}
