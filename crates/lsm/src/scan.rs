//! Range scans over LSM trees.
//!
//! A query over LSM data must reconcile entries with identical keys across
//! components: newer components override older ones and anti-matter entries
//! suppress deleted keys (Section 2.1). [`LsmScan`] is the reconciling
//! k-way merge used by queries and by component merges.
//!
//! The Mutable-bitmap strategy lets filter scans skip reconciliation
//! entirely (Section 6.4.2): because deletions are applied in place through
//! bitmaps, each surviving entry is the unique valid version of its key, so
//! components can be scanned one at a time — see
//! [`scan_components_sequential`].

use crate::bitmap::BitmapSnapshot;
use crate::component::DiskComponent;
use crate::entry::LsmEntry;
use lsm_btree::BTreeScan;
use lsm_common::{Key, Result};
use lsm_storage::Storage;
use std::ops::Bound;
use std::sync::Arc;

/// Options controlling scan semantics.
#[derive(Debug, Clone, Copy)]
pub struct ScanOptions {
    /// Emit anti-matter entries (merges need them; queries do not).
    pub emit_anti_matter: bool,
    /// Skip entries whose validity-bitmap bit is set.
    pub respect_bitmaps: bool,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            emit_anti_matter: false,
            respect_bitmaps: true,
        }
    }
}

enum Source {
    /// Snapshot of the memory component's range (newest; rank 0).
    Mem {
        entries: std::vec::IntoIter<(Key, LsmEntry)>,
    },
    /// One disk component.
    Disk {
        scan: BTreeScan,
        /// Frozen bitmap for this scan (Side-file method scans snapshots).
        bitmap: Option<BitmapSnapshot>,
    },
}

impl Source {
    fn next(&mut self, respect_bitmaps: bool) -> Result<Option<(Key, LsmEntry, u64)>> {
        match self {
            Source::Mem { entries } => Ok(entries.next().map(|(k, e)| (k, e, 0))),
            Source::Disk { scan, bitmap, .. } => loop {
                let Some((k, raw, ordinal)) = scan.next_entry_pinned()? else {
                    return Ok(None);
                };
                if respect_bitmaps {
                    if let Some(bm) = bitmap {
                        if bm.get(ordinal) {
                            continue; // invalidated entry
                        }
                    }
                }
                return Ok(Some((k, LsmEntry::decode_buf(raw)?, ordinal)));
            },
        }
    }
}

/// Head entry of one source, tagged with the source's recency rank
/// (0 = newest).
struct Head {
    key: Key,
    entry: LsmEntry,
    ordinal: u64,
    rank: usize,
}

/// Reconciling k-way merge scan.
pub struct LsmScan {
    storage: Arc<Storage>,
    sources: Vec<Source>,
    heads: Vec<Option<Head>>,
    opts: ScanOptions,
    started: bool,
    num_sources: usize,
}

impl LsmScan {
    /// Creates a scan over an explicit set of sources: an optional memory
    /// snapshot (treated as newest) plus disk components ordered
    /// newest-first, over key range `[lo, hi]`.
    pub fn new(
        storage: Arc<Storage>,
        mem_snapshot: Option<Vec<(Key, LsmEntry)>>,
        components: &[Arc<DiskComponent>],
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
        opts: ScanOptions,
    ) -> Result<Self> {
        let mut sources = Vec::with_capacity(components.len() + 1);
        if let Some(entries) = mem_snapshot {
            sources.push(Source::Mem {
                entries: entries.into_iter(),
            });
        }
        for comp in components {
            let scan = comp.btree().scan(lo, clone_bound(&hi))?;
            let bitmap = if opts.respect_bitmaps {
                comp.bitmap().map(|b| b.snapshot())
            } else {
                None
            };
            sources.push(Source::Disk { scan, bitmap });
        }
        let n = sources.len();
        Ok(LsmScan {
            storage,
            sources,
            heads: Vec::new(),
            opts,
            started: false,
            num_sources: n,
        })
    }

    /// Creates a scan with explicit bitmap snapshots per component (the
    /// Side-file method freezes bitmaps before scanning; Figure 11a line 3).
    pub fn with_bitmap_snapshots(
        storage: Arc<Storage>,
        components: &[(Arc<DiskComponent>, Option<BitmapSnapshot>)],
        opts: ScanOptions,
    ) -> Result<Self> {
        let mut sources = Vec::with_capacity(components.len());
        for (comp, snap) in components {
            let scan = comp.btree().scan_all()?;
            sources.push(Source::Disk {
                scan,
                bitmap: snap.clone(),
            });
        }
        let n = sources.len();
        Ok(LsmScan {
            storage,
            sources,
            heads: Vec::new(),
            opts,
            started: false,
            num_sources: n,
        })
    }

    fn prime(&mut self) -> Result<()> {
        self.heads = Vec::with_capacity(self.sources.len());
        for i in 0..self.sources.len() {
            let h = self.sources[i].next(self.opts.respect_bitmaps)?;
            self.heads.push(h.map(|(key, entry, ordinal)| Head {
                key,
                entry,
                ordinal,
                rank: i,
            }));
        }
        self.started = true;
        Ok(())
    }

    /// Returns the next reconciled entry: `(key, entry)` where `entry` is
    /// the newest version of `key`. Anti-matter entries are suppressed
    /// unless `emit_anti_matter` is set.
    pub fn next_entry(&mut self) -> Result<Option<(Key, LsmEntry)>> {
        loop {
            let Some((key, entry, _, _)) = self.next_reconciled()? else {
                return Ok(None);
            };
            if entry.anti_matter && !self.opts.emit_anti_matter {
                continue;
            }
            return Ok(Some((key, entry)));
        }
    }

    /// Like [`LsmScan::next_entry`] but also reports the winning source's
    /// rank (0 = newest source) and the entry's ordinal in that source —
    /// used by merges and repairs.
    pub fn next_reconciled(&mut self) -> Result<Option<(Key, LsmEntry, usize, u64)>> {
        if !self.started {
            self.prime()?;
        }
        // Find the smallest key; among ties the smallest rank (newest) wins.
        let mut winner: Option<usize> = None;
        for (i, head) in self.heads.iter().enumerate() {
            let Some(h) = head else { continue };
            match winner {
                None => winner = Some(i),
                Some(w) => {
                    // INVARIANT: `w` was only ever set for a `Some` head and
                    // no head is advanced during this scan.
                    let wh = self.heads[w].as_ref().unwrap();
                    if h.key < wh.key || (h.key == wh.key && h.rank < wh.rank) {
                        winner = Some(i);
                    }
                }
            }
        }
        let Some(w) = winner else { return Ok(None) };
        // INVARIANT: the winner index always points at a `Some` head.
        let win_key = self.heads[w].as_ref().unwrap().key.clone();

        // Charge the reconciliation cost: one heap round over the sources.
        let log_k = (usize::BITS - self.num_sources.leading_zeros()) as u64;
        self.storage
            .charge_cpu(self.storage.cpu().key_cmp_ns * log_k.max(1));

        // Advance every source sitting on the winning key; keep the winner.
        let mut result: Option<(Key, LsmEntry, usize, u64)> = None;
        for i in 0..self.heads.len() {
            let Some(head) = self.heads[i].take_if(|h| h.key == win_key) else {
                continue;
            };
            if i == w {
                result = Some((head.key, head.entry, head.rank, head.ordinal));
            }
            let next = self.sources[i].next(self.opts.respect_bitmaps)?;
            self.heads[i] = next.map(|(key, entry, ordinal)| Head {
                key,
                entry,
                ordinal,
                rank: i,
            });
        }
        Ok(result)
    }
}

fn clone_bound(b: &Bound<&[u8]>) -> Bound<Vec<u8>> {
    match b {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(k) => Bound::Included(k.to_vec()),
        Bound::Excluded(k) => Bound::Excluded(k.to_vec()),
    }
}

/// One sub-range of a partitioned scan: the keys in `lo..hi` (owned bounds,
/// ready to be borrowed via `Bound::as_ref`-style helpers for
/// [`LsmScan::new`]). Produced by [`LsmScan::partition_scan`]; the
/// partitions of one call are disjoint, ascending, and cover the planned
/// range exactly.
pub type ScanPartition = (Bound<Key>, Bound<Key>);

impl LsmScan {
    /// Plans a partitioned scan: splits `[lo, hi]` into at most `k`
    /// disjoint, covering sub-ranges along disk-component page boundaries,
    /// so `k` independent [`LsmScan`]s (one per sub-range, each over the
    /// same component list) together see exactly what one scan of the whole
    /// range would.
    ///
    /// Separator keys are taken from the leaf-page boundaries of the
    /// component with the most leaf pages — the best available proxy for
    /// the data distribution (every leaf holds roughly the same byte
    /// volume), at the cost of reading one (likely cached) leaf page per
    /// separator. With no disk components, a single-leaf range, or `k <= 1`
    /// the plan degenerates to one partition covering the whole range.
    pub fn partition_scan(
        components: &[Arc<DiskComponent>],
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
        k: usize,
    ) -> Result<Vec<ScanPartition>> {
        let whole = vec![(clone_bound(&lo), clone_bound(&hi))];
        if k <= 1 {
            return Ok(whole);
        }
        let Some(comp) = components.iter().max_by_key(|c| c.btree().num_leaves()) else {
            return Ok(whole);
        };
        let bt = comp.btree();
        if bt.num_leaves() < 2 {
            return Ok(whole);
        }
        let leaf_lo = match &lo {
            Bound::Unbounded => 0,
            Bound::Included(key) | Bound::Excluded(key) => bt.locate_leaf(key)?.unwrap_or(0),
        };
        let leaf_hi = match &hi {
            Bound::Unbounded => bt.num_leaves() - 1,
            Bound::Included(key) | Bound::Excluded(key) => {
                bt.locate_leaf(key)?.unwrap_or(bt.num_leaves() - 1)
            }
        };
        if leaf_hi <= leaf_lo {
            return Ok(whole);
        }
        let span = u64::from(leaf_hi - leaf_lo) + 1;
        let parts = (k as u64).min(span);
        let below_hi = |key: &[u8]| match &hi {
            Bound::Unbounded => true,
            Bound::Included(h) => key <= *h,
            Bound::Excluded(h) => key < *h,
        };
        let above_lo = |key: &[u8]| match &lo {
            Bound::Unbounded => true,
            Bound::Included(l) | Bound::Excluded(l) => key > *l,
        };
        let mut separators: Vec<Key> = Vec::with_capacity(parts as usize - 1);
        for i in 1..parts {
            let leaf = leaf_lo + (span * i / parts) as u32;
            let Some(first) = bt.leaf_first_key(leaf)? else {
                continue;
            };
            // Keep only separators strictly inside the range; duplicates
            // (possible when the range is dense on few leaves) are dropped.
            if above_lo(&first) && below_hi(&first) && separators.last() != Some(&first) {
                separators.push(first);
            }
        }
        let mut partitions = Vec::with_capacity(separators.len() + 1);
        let mut cur_lo = clone_bound(&lo);
        for sep in separators {
            partitions.push((cur_lo, Bound::Excluded(sep.clone())));
            cur_lo = Bound::Included(sep);
        }
        partitions.push((cur_lo, clone_bound(&hi)));
        Ok(partitions)
    }
}

/// Scans components one at a time with **no reconciliation** — the
/// Mutable-bitmap strategy's scan mode (Section 6.4.2). Entries arrive
/// grouped by component, not in global key order. `visit` receives
/// `(key, entry)` for every valid, non-anti-matter entry.
pub fn scan_components_sequential(
    mem_snapshot: Option<Vec<(Key, LsmEntry)>>,
    components: &[Arc<DiskComponent>],
    visit: impl FnMut(Key, LsmEntry),
) -> Result<()> {
    scan_components_sequential_range(
        mem_snapshot,
        components,
        Bound::Unbounded,
        Bound::Unbounded,
        visit,
    )
}

/// [`scan_components_sequential`] restricted to the key range `[lo, hi]` —
/// one partition of a partitioned filter scan. Disk components are scanned
/// with ranged B+-tree scans; memory entries are visited as given (the
/// caller slices its mem snapshot to the partition), still skipping
/// anti-matter.
pub fn scan_components_sequential_range(
    mem_snapshot: Option<Vec<(Key, LsmEntry)>>,
    components: &[Arc<DiskComponent>],
    lo: Bound<&[u8]>,
    hi: Bound<&[u8]>,
    visit: impl FnMut(Key, LsmEntry),
) -> Result<()> {
    let bitmaps: Vec<Option<BitmapSnapshot>> = components
        .iter()
        .map(|c| c.bitmap().map(|b| b.snapshot()))
        .collect();
    scan_components_sequential_frozen(mem_snapshot, components, &bitmaps, lo, hi, visit)
}

/// [`scan_components_sequential_range`] with **pre-frozen** bitmap
/// snapshots: `bitmaps[i]` pairs with `components[i]`.
///
/// Under the Mutable-bitmap strategy, a concurrent writer marks the old
/// on-disk version's bitmap bit *before* inserting the replacement into
/// the memory component; snapshotting a live bitmap after the memory
/// capture could therefore observe the mark without the replacement and
/// lose the record. Callers racing in-place deletes must freeze the
/// bitmaps atomically with the memory+disk capture (the filter-scan
/// capture does this under the dataset write lock) and every partition of
/// a partitioned scan must reuse the same frozen snapshots.
pub fn scan_components_sequential_frozen(
    mem_snapshot: Option<Vec<(Key, LsmEntry)>>,
    components: &[Arc<DiskComponent>],
    bitmaps: &[Option<BitmapSnapshot>],
    lo: Bound<&[u8]>,
    hi: Bound<&[u8]>,
    mut visit: impl FnMut(Key, LsmEntry),
) -> Result<()> {
    debug_assert_eq!(components.len(), bitmaps.len());
    if let Some(entries) = mem_snapshot {
        for (k, e) in entries {
            if !e.anti_matter {
                visit(k, e);
            }
        }
    }
    for (i, comp) in components.iter().enumerate() {
        let bitmap = bitmaps.get(i).and_then(|b| b.as_ref());
        let mut scan = comp.btree().scan(lo, clone_bound(&hi))?;
        while let Some((k, raw, ordinal)) = scan.next_entry_pinned()? {
            if let Some(bm) = bitmap {
                if bm.get(ordinal) {
                    continue;
                }
            }
            let entry = LsmEntry::decode_buf(raw)?;
            if !entry.anti_matter {
                visit(k, entry);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::AtomicBitmap;
    use crate::component_id::ComponentId;
    use crate::tree::ComponentBuilder;
    use lsm_storage::StorageOptions;

    fn storage() -> Arc<Storage> {
        Storage::new(StorageOptions::test())
    }

    fn build(
        storage: &Arc<Storage>,
        id: ComponentId,
        entries: &[(&str, LsmEntry)],
    ) -> Arc<DiskComponent> {
        let mut b = ComponentBuilder::new(storage.clone(), id, Default::default()).unwrap();
        for (k, e) in entries {
            b.add(k.as_bytes(), e).unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn newest_component_wins() {
        let s = storage();
        let old = build(
            &s,
            ComponentId::new(1, 5),
            &[
                ("a", LsmEntry::put(b"old-a".to_vec())),
                ("b", LsmEntry::put(b"old-b".to_vec())),
            ],
        );
        let new = build(
            &s,
            ComponentId::new(6, 9),
            &[("a", LsmEntry::put(b"new-a".to_vec()))],
        );
        // newest first
        let mut scan = LsmScan::new(
            s.clone(),
            None,
            &[new, old],
            Bound::Unbounded,
            Bound::Unbounded,
            ScanOptions::default(),
        )
        .unwrap();
        let (k1, e1) = scan.next_entry().unwrap().unwrap();
        assert_eq!(
            (k1.as_slice(), e1.value.as_slice()),
            (&b"a"[..], &b"new-a"[..])
        );
        let (k2, e2) = scan.next_entry().unwrap().unwrap();
        assert_eq!(
            (k2.as_slice(), e2.value.as_slice()),
            (&b"b"[..], &b"old-b"[..])
        );
        assert!(scan.next_entry().unwrap().is_none());
    }

    #[test]
    fn anti_matter_suppresses_and_can_be_emitted() {
        let s = storage();
        let old = build(
            &s,
            ComponentId::new(1, 5),
            &[("a", LsmEntry::put(b"v".to_vec()))],
        );
        let mem = vec![(b"a".to_vec(), LsmEntry::anti_matter())];

        let mut scan = LsmScan::new(
            s.clone(),
            Some(mem.clone()),
            std::slice::from_ref(&old),
            Bound::Unbounded,
            Bound::Unbounded,
            ScanOptions::default(),
        )
        .unwrap();
        assert!(scan.next_entry().unwrap().is_none());

        let mut scan = LsmScan::new(
            s.clone(),
            Some(mem),
            &[old],
            Bound::Unbounded,
            Bound::Unbounded,
            ScanOptions {
                emit_anti_matter: true,
                ..Default::default()
            },
        )
        .unwrap();
        let (_, e) = scan.next_entry().unwrap().unwrap();
        assert!(e.anti_matter);
        assert!(scan.next_entry().unwrap().is_none());
    }

    #[test]
    fn bitmap_invalidated_entries_skipped() {
        let s = storage();
        let comp = build(
            &s,
            ComponentId::new(1, 5),
            &[
                ("a", LsmEntry::put(b"1".to_vec())),
                ("b", LsmEntry::put(b"2".to_vec())),
                ("c", LsmEntry::put(b"3".to_vec())),
            ],
        );
        let bm = Arc::new(AtomicBitmap::new(3));
        bm.set(1); // invalidate "b"
        comp.set_bitmap(bm).unwrap();
        let mut scan = LsmScan::new(
            s.clone(),
            None,
            std::slice::from_ref(&comp),
            Bound::Unbounded,
            Bound::Unbounded,
            ScanOptions::default(),
        )
        .unwrap();
        let mut keys = Vec::new();
        while let Some((k, _)) = scan.next_entry().unwrap() {
            keys.push(k);
        }
        assert_eq!(keys, vec![b"a".to_vec(), b"c".to_vec()]);

        // respect_bitmaps=false sees everything (repair scans raw entries).
        let mut scan = LsmScan::new(
            s,
            None,
            &[comp],
            Bound::Unbounded,
            Bound::Unbounded,
            ScanOptions {
                respect_bitmaps: false,
                ..Default::default()
            },
        )
        .unwrap();
        let mut n = 0;
        while scan.next_entry().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn range_bounds_respected() {
        let s = storage();
        let comp = build(
            &s,
            ComponentId::new(1, 5),
            &[
                ("a", LsmEntry::put(vec![])),
                ("b", LsmEntry::put(vec![])),
                ("c", LsmEntry::put(vec![])),
                ("d", LsmEntry::put(vec![])),
            ],
        );
        let mut scan = LsmScan::new(
            s,
            None,
            &[comp],
            Bound::Included(b"b"),
            Bound::Excluded(b"d"),
            ScanOptions::default(),
        )
        .unwrap();
        let mut keys = Vec::new();
        while let Some((k, _)) = scan.next_entry().unwrap() {
            keys.push(k);
        }
        assert_eq!(keys, vec![b"b".to_vec(), b"c".to_vec()]);
    }

    fn bound_ref(b: &Bound<Key>) -> Bound<&[u8]> {
        match b {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(k) => Bound::Included(k.as_slice()),
            Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
        }
    }

    fn collect_range(
        s: &Arc<Storage>,
        comps: &[Arc<DiskComponent>],
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
    ) -> Vec<Key> {
        let mut scan =
            LsmScan::new(s.clone(), None, comps, lo, hi, ScanOptions::default()).unwrap();
        let mut keys = Vec::new();
        while let Some((k, _)) = scan.next_entry().unwrap() {
            keys.push(k);
        }
        keys
    }

    /// Partitioned scans must see exactly what one whole-range scan sees,
    /// in the same order, with disjoint ascending sub-ranges.
    #[test]
    fn partition_scan_covers_range_exactly() {
        let s = storage();
        // Two overlapping components, enough entries for many leaves.
        let mk = |lo: u32, hi: u32, id: ComponentId| {
            let entries: Vec<(String, LsmEntry)> = (lo..hi)
                .map(|i| (format!("k{i:06}"), LsmEntry::put(vec![b'v'; 40])))
                .collect();
            let refs: Vec<(&str, LsmEntry)> = entries
                .iter()
                .map(|(k, e)| (k.as_str(), e.clone()))
                .collect();
            build(&s, id, &refs)
        };
        let newer = mk(200, 700, ComponentId::new(1000, 1999));
        let older = mk(0, 1000, ComponentId::new(1, 999));
        let comps = vec![newer, older];

        for (lo, hi) in [
            (Bound::Unbounded, Bound::Unbounded),
            (
                Bound::Included(b"k000100".as_slice()),
                Bound::Excluded(b"k000900".as_slice()),
            ),
            (
                Bound::Included(b"k000450".as_slice()),
                Bound::Included(b"k000460".as_slice()),
            ),
        ] {
            let whole = collect_range(&s, &comps, lo, hi);
            for k in [1usize, 2, 4, 7] {
                let parts = LsmScan::partition_scan(&comps, lo, hi, k).unwrap();
                assert!(parts.len() <= k.max(1), "{k} -> {}", parts.len());
                let mut merged = Vec::new();
                for (plo, phi) in &parts {
                    merged.extend(collect_range(&s, &comps, bound_ref(plo), bound_ref(phi)));
                }
                assert_eq!(merged, whole, "k={k} lo={lo:?}");
            }
        }
    }

    #[test]
    fn partition_scan_degenerates_gracefully() {
        let s = storage();
        // No components: one partition covering the range.
        let parts = LsmScan::partition_scan(&[], Bound::Unbounded, Bound::Unbounded, 4).unwrap();
        assert_eq!(parts.len(), 1);
        // A single-leaf component cannot be split.
        let tiny = build(
            &s,
            ComponentId::new(1, 2),
            &[("a", LsmEntry::put(vec![])), ("b", LsmEntry::put(vec![]))],
        );
        let parts =
            LsmScan::partition_scan(&[tiny], Bound::Unbounded, Bound::Unbounded, 4).unwrap();
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn sequential_scan_visits_all_valid_entries() {
        let s = storage();
        let c1 = build(
            &s,
            ComponentId::new(1, 5),
            &[
                ("a", LsmEntry::put(b"1".to_vec())),
                ("b", LsmEntry::put(b"2".to_vec())),
            ],
        );
        let c2 = build(
            &s,
            ComponentId::new(6, 9),
            &[("c", LsmEntry::put(b"3".to_vec()))],
        );
        let bm = Arc::new(AtomicBitmap::new(2));
        bm.set(0); // "a" deleted in place
        c1.set_bitmap(bm).unwrap();
        let mem = vec![
            (b"d".to_vec(), LsmEntry::put(b"4".to_vec())),
            (b"e".to_vec(), LsmEntry::anti_matter()),
        ];
        let mut seen = Vec::new();
        scan_components_sequential(Some(mem), &[c2, c1], |k, _| seen.push(k)).unwrap();
        seen.sort();
        assert_eq!(seen, vec![b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]);
    }
}
