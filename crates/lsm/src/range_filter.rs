//! Component range filters (Section 3, Section 5).
//!
//! A range filter stores the minimum and maximum values of a designated
//! *filter key* (the paper's `creation_time`) over a component's records. A
//! scan with a predicate on the filter key prunes components whose filter
//! interval is disjoint from the query interval.
//!
//! How filters are *maintained* under updates is precisely what
//! distinguishes the maintenance strategies (Figures 3, 4, 9): the Eager
//! strategy widens the memory component's filter by old records' values; the
//! Validation strategy widens by new values only but loses pruning power on
//! old components; the Mutable-bitmap strategy keeps filters tight because
//! deletions act directly on old components through bitmaps.

use lsm_common::Value;

/// A closed interval `[min, max]` of filter-key values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeFilter {
    min: Value,
    max: Value,
}

impl RangeFilter {
    /// Creates a filter covering exactly `v`.
    pub fn of(v: Value) -> Self {
        RangeFilter {
            min: v.clone(),
            max: v,
        }
    }

    /// Creates a filter from explicit bounds (`min <= max`).
    pub fn new(min: Value, max: Value) -> Self {
        assert!(min <= max, "inverted range filter");
        RangeFilter { min, max }
    }

    /// Lower bound.
    pub fn min(&self) -> &Value {
        &self.min
    }

    /// Upper bound.
    pub fn max(&self) -> &Value {
        &self.max
    }

    /// Widens the interval to include `v`.
    pub fn widen(&mut self, v: &Value) {
        if *v < self.min {
            self.min = v.clone();
        }
        if *v > self.max {
            self.max = v.clone();
        }
    }

    /// Widens the interval to include all of `other`.
    pub fn union(&mut self, other: &RangeFilter) {
        self.widen(&other.min.clone());
        self.widen(&other.max.clone());
    }

    /// True if `[lo, hi]` (either bound optional) intersects this filter.
    /// A scan prunes the component when this returns `false`.
    pub fn overlaps(&self, lo: Option<&Value>, hi: Option<&Value>) -> bool {
        if let Some(lo) = lo {
            if *lo > self.max {
                return false;
            }
        }
        if let Some(hi) = hi {
            if *hi < self.min {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn of_and_widen() {
        let mut f = RangeFilter::of(v(2015));
        assert_eq!(f.min(), &v(2015));
        assert_eq!(f.max(), &v(2015));
        f.widen(&v(2018));
        f.widen(&v(2016)); // inside: no change
        assert_eq!(f.min(), &v(2015));
        assert_eq!(f.max(), &v(2018));
        f.widen(&v(2010));
        assert_eq!(f.min(), &v(2010));
    }

    #[test]
    fn overlap_pruning() {
        let f = RangeFilter::new(v(2015), v(2016));
        // Query: time < 2017  → [None, 2016]... intersects.
        assert!(f.overlaps(None, Some(&v(2016))));
        // Query: time > 2017 → [2017, None] ... disjoint, prune.
        assert!(!f.overlaps(Some(&v(2017)), None));
        // Touching bounds intersect.
        assert!(f.overlaps(Some(&v(2016)), None));
        assert!(f.overlaps(None, Some(&v(2015))));
        assert!(!f.overlaps(None, Some(&v(2014))));
        // Unbounded query always overlaps.
        assert!(f.overlaps(None, None));
    }

    #[test]
    fn union_covers_both() {
        let mut a = RangeFilter::new(v(1), v(5));
        let b = RangeFilter::new(v(10), v(20));
        a.union(&b);
        assert_eq!(a, RangeFilter::new(v(1), v(20)));
    }

    #[test]
    fn upsert_example_from_paper() {
        // Figure 3: memory filter maintained on both old (2015) and new
        // (2018) values under Eager...
        let mut eager = RangeFilter::of(v(2018));
        eager.widen(&v(2015));
        // Query "Time < 2017" must NOT prune the memory component.
        assert!(eager.overlaps(None, Some(&v(2016))));

        // ...but only on the new value under Validation/Mutable-bitmap
        // (Figures 4, 9): the same query prunes it.
        let lazy = RangeFilter::of(v(2018));
        assert!(!lazy.overlaps(None, Some(&v(2016))));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_bounds_panic() {
        let _ = RangeFilter::new(v(2), v(1));
    }
}
