//! LSM memory components.
//!
//! All writes land in the memory component first (Section 2.1); the engine
//! flushes it to a disk component when the dataset's shared memory budget is
//! exhausted. A memory component tracks the timestamp interval of its
//! entries (its component ID at flush time) and, for the primary index, a
//! mutable range filter.

use crate::component_id::ComponentId;
use crate::entry::LsmEntry;
use crate::range_filter::RangeFilter;
use lsm_common::{Key, Timestamp, Value};
use std::collections::BTreeMap;
use std::ops::Bound;

/// An in-memory, mutable LSM component.
#[derive(Debug, Default)]
pub struct MemComponent {
    map: BTreeMap<Key, LsmEntry>,
    /// Timestamp interval of the operations recorded here.
    min_ts: Timestamp,
    max_ts: Timestamp,
    /// Approximate heap bytes, for memory-budget accounting.
    bytes: usize,
    /// Range filter on the dataset's filter key, if configured.
    filter: Option<RangeFilter>,
}

impl MemComponent {
    /// Creates an empty memory component.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct keys present.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no entries are present.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate heap usage in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The component ID this component will carry when flushed.
    /// `None` while empty.
    pub fn id(&self) -> Option<ComponentId> {
        if self.is_empty() || self.max_ts == 0 {
            None
        } else {
            Some(ComponentId::new(self.min_ts, self.max_ts))
        }
    }

    /// Inserts or replaces the entry for `key`, recording the operation
    /// timestamp `op_ts` (used for the component ID even when the entry
    /// itself carries no timestamp). Returns the replaced entry, if any.
    pub fn put(&mut self, key: Key, entry: LsmEntry, op_ts: Timestamp) -> Option<LsmEntry> {
        if self.map.is_empty() || self.min_ts == 0 {
            self.min_ts = op_ts;
        }
        self.max_ts = self.max_ts.max(op_ts);
        let add = key.len() + entry.mem_size() + 64; // map node overhead
        let old = self.map.insert(key, entry);
        self.bytes += add;
        if let Some(o) = &old {
            self.bytes = self.bytes.saturating_sub(o.mem_size());
        }
        old
    }

    /// Looks up the entry for `key`.
    pub fn get(&self, key: &[u8]) -> Option<&LsmEntry> {
        self.map.get(key)
    }

    /// Iterates entries with keys in `[lo, hi]` in key order.
    pub fn range<'a>(
        &'a self,
        lo: Bound<&'a [u8]>,
        hi: Bound<&'a [u8]>,
    ) -> impl Iterator<Item = (&'a Key, &'a LsmEntry)> + 'a {
        let lo = map_bound(lo);
        let hi = map_bound(hi);
        self.map.range::<[u8], _>((lo, hi))
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &LsmEntry)> {
        self.map.iter()
    }

    /// Widens the range filter to include `v` (creating it if absent).
    pub fn widen_filter(&mut self, v: &Value) {
        match &mut self.filter {
            Some(f) => f.widen(v),
            None => self.filter = Some(RangeFilter::of(v.clone())),
        }
    }

    /// The current range filter.
    pub fn filter(&self) -> Option<&RangeFilter> {
        self.filter.as_ref()
    }

    /// Clears the component back to empty (after a successful flush).
    pub fn clear(&mut self) {
        self.map.clear();
        self.min_ts = 0;
        self.max_ts = 0;
        self.bytes = 0;
        self.filter = None;
    }
}

fn map_bound(b: Bound<&[u8]>) -> Bound<&[u8]> {
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        s.as_bytes().to_vec()
    }

    #[test]
    fn put_get_replace() {
        let mut m = MemComponent::new();
        assert!(m.put(k("a"), LsmEntry::put(b"1".to_vec()), 1).is_none());
        let old = m.put(k("a"), LsmEntry::put(b"2".to_vec()), 2).unwrap();
        assert_eq!(old.value, b"1");
        assert_eq!(m.get(b"a").unwrap().value, b"2");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn anti_matter_replaces_put() {
        let mut m = MemComponent::new();
        m.put(k("a"), LsmEntry::put(b"1".to_vec()), 1);
        m.put(k("a"), LsmEntry::anti_matter(), 2);
        assert!(m.get(b"a").unwrap().anti_matter);
    }

    #[test]
    fn id_tracks_op_timestamps() {
        let mut m = MemComponent::new();
        assert!(m.id().is_none());
        m.put(k("a"), LsmEntry::put(vec![]), 16);
        m.put(k("b"), LsmEntry::put(vec![]), 18);
        assert_eq!(m.id().unwrap(), ComponentId::new(16, 18));
    }

    #[test]
    fn range_iterates_in_order() {
        let mut m = MemComponent::new();
        for s in ["d", "a", "c", "b"] {
            m.put(k(s), LsmEntry::put(vec![]), 1);
        }
        let keys: Vec<_> = m
            .range(Bound::Included(b"b"), Bound::Excluded(b"d"))
            .map(|(key, _)| String::from_utf8(key.clone()).unwrap())
            .collect();
        assert_eq!(keys, vec!["b", "c"]);
        let all: Vec<_> = m.iter().map(|(key, _)| key.clone()).collect();
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn bytes_grow_and_clear() {
        let mut m = MemComponent::new();
        m.put(k("a"), LsmEntry::put(vec![0; 100]), 1);
        let b1 = m.bytes();
        assert!(b1 > 100);
        m.put(k("b"), LsmEntry::put(vec![0; 100]), 2);
        assert!(m.bytes() > b1);
        m.clear();
        assert_eq!(m.bytes(), 0);
        assert!(m.is_empty());
        assert!(m.id().is_none());
        assert!(m.filter().is_none());
    }

    #[test]
    fn filter_widening() {
        let mut m = MemComponent::new();
        assert!(m.filter().is_none());
        m.widen_filter(&Value::Int(2018));
        m.widen_filter(&Value::Int(2015));
        let f = m.filter().unwrap();
        assert_eq!(f.min(), &Value::Int(2015));
        assert_eq!(f.max(), &Value::Int(2018));
    }
}
