//! The LSM-tree: a memory component plus an ordered list of immutable disk
//! components, with flush and merge machinery.
//!
//! This is the per-index structure of Figure 1; the engine crate composes
//! one primary index, one primary key index, and N secondary indexes over
//! these trees and layers the maintenance strategies on top.

use crate::component::DiskComponent;
use crate::component_id::ComponentId;
use crate::entry::LsmEntry;
use crate::memtable::MemComponent;
use crate::merge_policy::{MergePolicy, MergeRange};
use crate::range_filter::RangeFilter;
use crate::scan::{LsmScan, ScanOptions};
use lsm_bloom::{build_filter, BloomFilter, BloomKind};
use lsm_btree::BTreeBuilder;
use lsm_common::{Error, Key, Result, Timestamp, Value};
use lsm_storage::Storage;
use parking_lot::{Mutex, RwLock};
use std::ops::Bound;
use std::sync::Arc;

/// Per-index configuration.
#[derive(Debug, Clone)]
pub struct LsmOptions {
    /// Index name (diagnostics only).
    pub name: String,
    /// Build a Bloom filter per disk component (primary / primary key
    /// indexes in the paper; secondary indexes have none).
    pub with_bloom: bool,
    /// Which Bloom filter variant to build.
    pub bloom_kind: BloomKind,
    /// Bloom filter false-positive rate (1% in §6.1).
    pub bloom_fpr: f64,
    /// Attach a zeroed mutable bitmap to every new disk component
    /// (Mutable-bitmap strategy).
    pub mutable_bitmaps: bool,
}

impl Default for LsmOptions {
    fn default() -> Self {
        LsmOptions {
            name: "lsm".into(),
            with_bloom: true,
            bloom_kind: BloomKind::Standard,
            bloom_fpr: 0.01,
            mutable_bitmaps: false,
        }
    }
}

/// Builds one disk component from a sorted entry stream.
///
/// Used by flushes, merges, and the repair/concurrency-control paths in the
/// engine, which need per-entry control (ordinals, build links).
pub struct ComponentBuilder {
    storage: Arc<Storage>,
    id: ComponentId,
    btree: BTreeBuilder,
    bloom: Option<Box<dyn BloomFilter>>,
    filter: Option<RangeFilter>,
    make_mutable_bitmap: bool,
}

/// Options for [`ComponentBuilder`].
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Build a Bloom filter over the keys.
    pub with_bloom: bool,
    /// Bloom variant.
    pub bloom_kind: BloomKind,
    /// Bloom false-positive rate.
    pub bloom_fpr: f64,
    /// Expected number of keys (Bloom sizing).
    pub expected_keys: usize,
    /// Range filter carried by the new component.
    pub filter: Option<RangeFilter>,
    /// Attach an all-zero mutable bitmap on finish.
    pub make_mutable_bitmap: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            with_bloom: true,
            bloom_kind: BloomKind::Standard,
            bloom_fpr: 0.01,
            expected_keys: 1024,
            filter: None,
            make_mutable_bitmap: false,
        }
    }
}

impl ComponentBuilder {
    /// Starts building a component with the given ID.
    pub fn new(storage: Arc<Storage>, id: ComponentId, opts: BuildOptions) -> Result<Self> {
        let bloom = opts
            .with_bloom
            .then(|| build_filter(opts.bloom_kind, opts.expected_keys, opts.bloom_fpr));
        Ok(ComponentBuilder {
            btree: BTreeBuilder::new(storage.clone()),
            storage,
            id,
            bloom,
            filter: opts.filter,
            make_mutable_bitmap: opts.make_mutable_bitmap,
        })
    }

    /// Appends an entry (keys strictly ascending) and returns its ordinal
    /// position in the new component.
    pub fn add(&mut self, key: &[u8], entry: &LsmEntry) -> Result<u64> {
        let ordinal = self.btree.next_ordinal();
        self.btree.add(key, &entry.encode())?;
        if let Some(bloom) = &mut self.bloom {
            bloom.insert(key);
        }
        // Streaming cost of pushing one entry through the build pipeline.
        self.storage.charge_cpu(self.storage.cpu().sort_entry_ns);
        Ok(ordinal)
    }

    /// Entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.btree.num_entries()
    }

    /// Finalizes the component.
    pub fn finish(self) -> Result<DiskComponent> {
        let n = self.btree.num_entries();
        let btree = self.btree.finish()?;
        let bitmap = self
            .make_mutable_bitmap
            .then(|| Arc::new(crate::bitmap::AtomicBitmap::new(n)));
        Ok(DiskComponent::new(
            self.id,
            btree,
            self.bloom,
            self.filter,
            bitmap,
        ))
    }
}

/// A captured in-memory run (key-ordered, active merged over sealed) plus
/// the disk component list — see [`LsmTree::mem_and_disk_snapshot_if`].
pub type TreeSnapshot = (Option<Vec<(Key, LsmEntry)>>, Vec<Arc<DiskComponent>>);

/// An LSM-tree index.
pub struct LsmTree {
    opts: LsmOptions,
    storage: Arc<Storage>,
    mem: Mutex<MemComponent>,
    /// Memory component sealed for an in-progress flush. Writers fill a
    /// fresh active component while the builder turns this immutable
    /// snapshot into a disk component; readers see both (active wins).
    sealed: RwLock<Option<Arc<MemComponent>>>,
    /// Disk components, newest first (as drawn in Figure 1, reading
    /// right-to-left).
    disk: RwLock<Vec<Arc<DiskComponent>>>,
}

impl std::fmt::Debug for LsmTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmTree")
            .field("name", &self.opts.name)
            .field("disk_components", &self.disk.read().len())
            .finish()
    }
}

impl LsmTree {
    /// Creates an empty tree.
    pub fn new(storage: Arc<Storage>, opts: LsmOptions) -> Self {
        LsmTree {
            opts,
            storage,
            mem: Mutex::new(MemComponent::new()),
            sealed: RwLock::new(None),
            disk: RwLock::new(Vec::new()),
        }
    }

    /// The tree's configuration.
    pub fn options(&self) -> &LsmOptions {
        &self.opts
    }

    /// The storage device.
    pub fn storage(&self) -> &Arc<Storage> {
        &self.storage
    }

    // ---- memory component -------------------------------------------------

    /// Writes an entry into the memory component. `op_ts` is the operation
    /// timestamp used for the component ID. Returns the replaced entry.
    pub fn put(&self, key: Key, entry: LsmEntry, op_ts: Timestamp) -> Option<LsmEntry> {
        self.storage.charge_cpu(self.storage.cpu().memtable_op_ns);
        self.mem.lock().put(key, entry, op_ts)
    }

    /// Reads the memory component: the active component first, then the
    /// sealed snapshot of an in-progress flush (the active entry, being
    /// newer, shadows the sealed one).
    pub fn mem_get(&self, key: &[u8]) -> Option<LsmEntry> {
        self.storage.charge_cpu(self.storage.cpu().memtable_op_ns);
        if let Some(e) = self.mem.lock().get(key).cloned() {
            return Some(e);
        }
        self.sealed
            .read()
            .as_ref()
            .and_then(|s| s.get(key).cloned())
    }

    /// Reads the *active* memory component only — writers that must
    /// distinguish "replaced in place" from "immutable, mid-flush" (the
    /// Mutable-bitmap delete probe) use this together with
    /// [`LsmTree::sealed_get`].
    pub fn mem_get_active(&self, key: &[u8]) -> Option<LsmEntry> {
        self.storage.charge_cpu(self.storage.cpu().memtable_op_ns);
        self.mem.lock().get(key).cloned()
    }

    /// Reads the sealed (flushing) snapshot only.
    pub fn sealed_get(&self, key: &[u8]) -> Option<LsmEntry> {
        self.sealed
            .read()
            .as_ref()
            .and_then(|s| s.get(key).cloned())
    }

    /// True if a sealed snapshot is pending (a flush is mid-build, or a
    /// previous flush attempt failed and should be retried).
    pub fn has_sealed(&self) -> bool {
        self.sealed.read().is_some()
    }

    /// Approximate size of the *active* memory component in bytes (the
    /// flush-trigger metric; a sealed snapshot is already on its way out).
    pub fn mem_bytes(&self) -> usize {
        self.mem.lock().bytes()
    }

    /// Approximate bytes of the sealed (flushing) snapshot, if any — memory
    /// that is still held but no longer accepts writes. Backpressure counts
    /// this on top of [`LsmTree::mem_bytes`].
    pub fn sealed_bytes(&self) -> usize {
        self.sealed.read().as_ref().map_or(0, |s| s.bytes())
    }

    /// Number of keys buffered in memory (active + sealed).
    pub fn mem_len(&self) -> usize {
        self.mem.lock().len() + self.sealed.read().as_ref().map_or(0, |s| s.len())
    }

    /// Widens the memory component's range filter.
    pub fn widen_mem_filter(&self, v: &Value) {
        self.mem.lock().widen_filter(v);
    }

    /// The in-memory range filter: the union of the active component's
    /// filter and the sealed snapshot's, so filter pruning never hides
    /// entries that are mid-flush.
    pub fn mem_filter(&self) -> Option<RangeFilter> {
        let active = self.mem.lock().filter().cloned();
        let sealed = self
            .sealed
            .read()
            .as_ref()
            .and_then(|s| s.filter().cloned());
        match (active, sealed) {
            (Some(mut a), Some(s)) => {
                a.union(&s);
                Some(a)
            }
            (a, s) => a.or(s),
        }
    }

    /// Copies the in-memory entries in `[lo, hi]` in key order, merging the
    /// active component over the sealed snapshot (active entries win).
    ///
    /// The active lock is taken FIRST and held while the sealed slot is
    /// read — the same order `seal_mem` uses for its transition — so the
    /// snapshot can never observe the torn state where entries have left
    /// the active component but the sealed slot still reads empty.
    pub fn mem_snapshot_range(&self, lo: Bound<&[u8]>, hi: Bound<&[u8]>) -> Vec<(Key, LsmEntry)> {
        let mem = self.mem.lock();
        let sealed = self.sealed.read().clone();
        let active: Vec<(Key, LsmEntry)> = mem
            .range(lo, hi)
            .map(|(k, e)| (k.clone(), e.clone()))
            .collect();
        drop(mem);
        merge_mem_runs(active, sealed, lo, hi)
    }

    /// An atomically consistent view of the tree: the merged in-memory
    /// entries of `[lo, hi]` plus the disk components, captured so that an
    /// entry mid-flush appears in exactly one of the two (lock order
    /// mem → sealed → disk matches `seal_mem` and `install_sealed`, whose
    /// transitions therefore cannot interleave with the capture). Scans
    /// that do NOT reconcile duplicates (the Mutable-bitmap filter scan)
    /// need this; reconciling readers can capture memory and disk
    /// separately.
    ///
    /// `include_mem` is evaluated under the capture locks against the
    /// in-memory range filter (active ∪ sealed, so it describes exactly
    /// the entries being captured) and the captured disk-component list
    /// (so strategy rules like "read memory whenever an older component
    /// is read" can be decided atomically); returning `false` skips
    /// materializing the memory run — the filter-scan prune. `None` means
    /// no entries are buffered.
    pub fn mem_and_disk_snapshot_if(
        &self,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
        include_mem: impl FnOnce(Option<&RangeFilter>, &[Arc<DiskComponent>]) -> bool,
    ) -> TreeSnapshot {
        let mem = self.mem.lock();
        let sealed_guard = self.sealed.read();
        let disk = self.disk.read().clone();
        let mut filter = mem.filter().cloned();
        if let Some(sf) = sealed_guard.as_ref().and_then(|s| s.filter()) {
            match &mut filter {
                Some(f) => f.union(sf),
                None => filter = Some(sf.clone()),
            }
        }
        let has_entries = !mem.is_empty() || sealed_guard.is_some();
        let snapshot = (has_entries && include_mem(filter.as_ref(), &disk)).then(|| {
            let active: Vec<(Key, LsmEntry)> = mem
                .range(lo, hi)
                .map(|(k, e)| (k.clone(), e.clone()))
                .collect();
            merge_mem_runs(active, sealed_guard.clone(), lo, hi)
        });
        drop(sealed_guard);
        drop(mem);
        (snapshot, disk)
    }

    /// [`LsmTree::mem_and_disk_snapshot_if`] with the memory run always
    /// included.
    pub fn mem_and_disk_snapshot(
        &self,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
    ) -> (Vec<(Key, LsmEntry)>, Vec<Arc<DiskComponent>>) {
        let (snapshot, disk) = self.mem_and_disk_snapshot_if(lo, hi, |_, _| true);
        (snapshot.unwrap_or_default(), disk)
    }

    /// Discards the memory components (crash simulation in recovery tests).
    pub fn clear_mem(&self) {
        self.mem.lock().clear();
        *self.sealed.write() = None;
    }

    // ---- disk components ---------------------------------------------------

    /// Disk components, newest first.
    pub fn disk_components(&self) -> Vec<Arc<DiskComponent>> {
        self.disk.read().clone()
    }

    /// Number of disk components.
    pub fn num_disk_components(&self) -> usize {
        self.disk.read().len()
    }

    /// Total bytes across disk components.
    pub fn disk_bytes(&self) -> u64 {
        self.disk.read().iter().map(|c| c.byte_size()).sum()
    }

    /// Total entries across disk components.
    pub fn disk_entries(&self) -> u64 {
        self.disk.read().iter().map(|c| c.num_entries()).sum()
    }

    /// Pushes a component as the newest (recovery / tests).
    pub fn push_newest(&self, comp: Arc<DiskComponent>) {
        self.disk.write().insert(0, comp);
    }

    /// Removes the newest disk component and destroys its files. Crash
    /// recovery uses this to roll back a torn flush install — a component
    /// published by a crash-interrupted flush whose sibling indexes never
    /// installed theirs; the WAL still covers its committed entries.
    pub fn uninstall_newest(&self) -> Option<ComponentId> {
        let comp = {
            let mut disk = self.disk.write();
            if disk.is_empty() {
                return None;
            }
            disk.remove(0)
        };
        let id = comp.id();
        comp.retire();
        Some(id)
    }

    /// Builds (without installing) a component that mirrors `source`'s
    /// physical entries — same keys, timestamps and anti-matter flags, with
    /// empty values — in `source`'s exact entry order. Crash recovery uses
    /// this to redo the primary-key-index side of a correlated merge from
    /// the completed primary side: mirroring guarantees the
    /// ordinal-for-ordinal alignment the shared-bitmap design requires,
    /// which re-merging the pk index's own (bitmap-filtered) inputs cannot.
    pub fn mirror_component(&self, source: &Arc<DiskComponent>) -> Result<Arc<DiskComponent>> {
        let mut builder = ComponentBuilder::new(
            self.storage.clone(),
            source.id(),
            BuildOptions {
                with_bloom: self.opts.with_bloom,
                bloom_kind: self.opts.bloom_kind,
                bloom_fpr: self.opts.bloom_fpr,
                expected_keys: source.num_entries() as usize,
                filter: source.range_filter().cloned(),
                make_mutable_bitmap: self.opts.mutable_bitmaps,
            },
        )?;
        let mut scan = LsmScan::new(
            self.storage.clone(),
            None,
            std::slice::from_ref(source),
            Bound::Unbounded,
            Bound::Unbounded,
            ScanOptions {
                emit_anti_matter: true,
                respect_bitmaps: false,
            },
        )?;
        while let Some((k, e)) = scan.next_entry()? {
            builder.add(
                &k,
                &LsmEntry {
                    value: Vec::new(),
                    ..e
                },
            )?;
        }
        Ok(Arc::new(builder.finish()?))
    }

    /// Seals the active memory component for flushing: writers continue
    /// into a fresh active component while [`LsmTree::flush_sealed`] builds
    /// the snapshot into a disk component. Returns `false` (and seals
    /// nothing) if the active component is empty. Errors if a sealed
    /// snapshot is already pending — callers must serialize flushes (the
    /// engine holds a per-dataset flush lock).
    pub fn seal_mem(&self) -> Result<bool> {
        let mut mem = self.mem.lock();
        if mem.id().is_none() {
            return Ok(false);
        }
        let mut sealed = self.sealed.write();
        if sealed.is_some() {
            return Err(Error::invalid(format!(
                "{}: flush already in progress (sealed snapshot pending)",
                self.opts.name
            )));
        }
        *sealed = Some(Arc::new(std::mem::take(&mut *mem)));
        Ok(true)
    }

    /// Builds the sealed snapshot into a disk component and installs it as
    /// the newest. Returns `None` when no snapshot is sealed. The snapshot
    /// stays visible to readers throughout, so there is no window where its
    /// entries are neither in memory nor on disk.
    pub fn flush_sealed(&self) -> Result<Option<Arc<DiskComponent>>> {
        match self.build_sealed()? {
            None => Ok(None),
            Some(comp) => {
                self.install_sealed(comp.clone());
                Ok(Some(comp))
            }
        }
    }

    /// Builds the sealed snapshot into a disk component WITHOUT installing
    /// it — the engine uses this when the component needs preparation
    /// before becoming visible (shared-bitmap attachment, routed deletes
    /// of the Mutable-bitmap strategy), followed by
    /// [`LsmTree::install_sealed`].
    pub fn build_sealed(&self) -> Result<Option<Arc<DiskComponent>>> {
        let Some(snapshot) = self.sealed.read().clone() else {
            return Ok(None);
        };
        let id = snapshot.id().ok_or_else(|| {
            Error::invalid(format!("{}: sealed an empty snapshot", self.opts.name))
        })?;
        let mut builder = ComponentBuilder::new(
            self.storage.clone(),
            id,
            BuildOptions {
                with_bloom: self.opts.with_bloom,
                bloom_kind: self.opts.bloom_kind,
                bloom_fpr: self.opts.bloom_fpr,
                expected_keys: snapshot.len(),
                filter: snapshot.filter().cloned(),
                make_mutable_bitmap: self.opts.mutable_bitmaps,
            },
        )?;
        for (k, e) in snapshot.iter() {
            builder.add(k, e)?;
        }
        let comp = Arc::new(builder.finish()?);
        Ok(Some(comp))
    }

    /// Publishes a component built by [`LsmTree::build_sealed`] and
    /// releases the sealed snapshot. The sealed lock is held across the
    /// disk insert (lock order sealed → disk), and the component is
    /// inserted before the snapshot clears: a reconciling reader that
    /// captures memory first either sees the entries in the sealed
    /// snapshot, on disk, or both (never neither), while the atomic
    /// [`LsmTree::mem_and_disk_snapshot`] capture sees them exactly once.
    pub fn install_sealed(&self, comp: Arc<DiskComponent>) {
        let mut sealed = self.sealed.write();
        self.disk.write().insert(0, comp);
        *sealed = None;
    }

    /// Flushes the memory component into a new disk component.
    /// Returns `None` if the memory component was empty. A snapshot left
    /// sealed by a previous failed attempt is flushed first, so transient
    /// build errors stay retryable.
    pub fn flush(&self) -> Result<Option<Arc<DiskComponent>>> {
        if self.has_sealed() {
            self.flush_sealed()?;
        }
        if !self.seal_mem()? {
            return Ok(None);
        }
        self.flush_sealed()
    }

    // ---- merging -----------------------------------------------------------

    /// Applies `policy` to the current disk components; returns the chosen
    /// range (oldest-first indexing) without performing the merge.
    pub fn select_merge(&self, policy: &dyn MergePolicy) -> Option<MergeRange> {
        let disk = self.disk.read();
        let sizes: Vec<u64> = disk.iter().rev().map(|c| c.byte_size()).collect();
        policy.select(&sizes)
    }

    /// Components of `range` (oldest-first indexing), returned newest-first.
    /// Returns an empty vector when the range no longer fits the component
    /// list (a stale plan after a concurrent merge).
    pub fn components_in_range(&self, range: MergeRange) -> Vec<Arc<DiskComponent>> {
        let disk = self.disk.read();
        let n = disk.len();
        if range.end >= n || range.start > range.end {
            return Vec::new();
        }
        // oldest-first index i ↔ newest-first index n-1-i
        let lo = n - 1 - range.end;
        let hi = n - 1 - range.start;
        disk[lo..=hi].to_vec()
    }

    /// True if `range` includes the oldest disk component (anti-matter can
    /// then be dropped by the merge).
    pub fn range_includes_oldest(&self, range: MergeRange) -> bool {
        range.start == 0
    }

    /// Merges the components in `range` into one new component.
    ///
    /// Reconciles duplicate keys (newest wins), drops entries invalidated by
    /// bitmaps, and drops anti-matter if the range includes the oldest
    /// component. Returns the new component after swapping it in and
    /// destroying the inputs.
    pub fn merge_range(&self, range: MergeRange) -> Result<Arc<DiskComponent>> {
        let inputs = self.components_in_range(range);
        if inputs.len() < 2 {
            return Err(Error::invalid("merge needs at least two components"));
        }
        let drop_anti = self.range_includes_oldest(range);
        let id = ComponentId::merged(inputs.iter().map(|c| c.id()))
            .ok_or_else(|| Error::invalid("merge inputs carry no component IDs"))?;
        let mut filter: Option<RangeFilter> = None;
        for c in &inputs {
            if let Some(f) = c.range_filter() {
                match &mut filter {
                    None => filter = Some(f.clone()),
                    Some(acc) => acc.union(f),
                }
            }
        }
        let expected: u64 = inputs.iter().map(|c| c.num_entries()).sum();
        let mut builder = ComponentBuilder::new(
            self.storage.clone(),
            id,
            BuildOptions {
                with_bloom: self.opts.with_bloom,
                bloom_kind: self.opts.bloom_kind,
                bloom_fpr: self.opts.bloom_fpr,
                expected_keys: expected as usize,
                filter,
                make_mutable_bitmap: self.opts.mutable_bitmaps,
            },
        )?;
        let mut scan = LsmScan::new(
            self.storage.clone(),
            None,
            &inputs,
            Bound::Unbounded,
            Bound::Unbounded,
            ScanOptions {
                emit_anti_matter: true,
                respect_bitmaps: true,
            },
        )?;
        while let Some((k, e)) = scan.next_entry()? {
            if e.anti_matter && drop_anti {
                continue;
            }
            builder.add(&k, &e)?;
        }
        let new_comp = Arc::new(builder.finish()?);
        self.replace_range(range, new_comp.clone(), true)?;
        Ok(new_comp)
    }

    /// Replaces the components of `range` with `new_comp`, optionally
    /// retiring the old components (their files are destroyed once the last
    /// concurrent reader drops its reference).
    pub fn replace_range(
        &self,
        range: MergeRange,
        new_comp: Arc<DiskComponent>,
        destroy_old: bool,
    ) -> Result<()> {
        let removed: Vec<Arc<DiskComponent>> = {
            let mut disk = self.disk.write();
            let n = disk.len();
            if range.end >= n {
                return Err(Error::invalid(format!(
                    "{}: merge range {}..={} out of bounds ({n} components)",
                    self.opts.name, range.start, range.end
                )));
            }
            let lo = n - 1 - range.end;
            let hi = n - 1 - range.start;
            disk.splice(lo..=hi, [new_comp]).collect()
        };
        if destroy_old {
            for c in removed {
                c.retire();
            }
        }
        Ok(())
    }

    /// Runs one round of policy-driven merging. Returns `true` if a merge
    /// was performed.
    pub fn maybe_merge(&self, policy: &dyn MergePolicy) -> Result<bool> {
        match self.select_merge(policy) {
            Some(range) => {
                self.merge_range(range)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    // ---- scans --------------------------------------------------------------

    /// Reconciling scan over the whole tree (memory + all disk components).
    pub fn scan(&self, lo: Bound<&[u8]>, hi: Bound<&[u8]>, opts: ScanOptions) -> Result<LsmScan> {
        let mem = self.mem_snapshot_range(lo, hi);
        let disk = self.disk_components();
        LsmScan::new(
            self.storage.clone(),
            (!mem.is_empty()).then_some(mem),
            &disk,
            lo,
            hi,
            opts,
        )
    }
}

/// Merges the active-component run over the sealed snapshot's `[lo, hi]`
/// range; both are key-ordered, and the active entry wins a collision.
fn merge_mem_runs(
    active: Vec<(Key, LsmEntry)>,
    sealed: Option<Arc<MemComponent>>,
    lo: Bound<&[u8]>,
    hi: Bound<&[u8]>,
) -> Vec<(Key, LsmEntry)> {
    let Some(sealed) = sealed else {
        return active;
    };
    let mut out = Vec::with_capacity(active.len() + sealed.len());
    let mut old = sealed.range(lo, hi).peekable();
    for (k, e) in active {
        while let Some((ok, _)) = old.peek() {
            match ok.as_slice().cmp(&k) {
                std::cmp::Ordering::Less => {
                    let (ok, oe) = old.next().unwrap();
                    out.push((ok.clone(), oe.clone()));
                }
                std::cmp::Ordering::Equal => {
                    old.next(); // shadowed by the active entry
                }
                std::cmp::Ordering::Greater => break,
            }
        }
        out.push((k, e));
    }
    for (ok, oe) in old {
        out.push((ok.clone(), oe.clone()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge_policy::TieringPolicy;
    use lsm_storage::StorageOptions;

    fn tree() -> LsmTree {
        LsmTree::new(Storage::new(StorageOptions::test()), LsmOptions::default())
    }

    fn key(i: u32) -> Key {
        format!("k{i:06}").into_bytes()
    }

    #[test]
    fn flush_moves_mem_to_disk() {
        let t = tree();
        assert!(t.flush().unwrap().is_none());
        for i in 0..100 {
            t.put(key(i), LsmEntry::put(vec![b'v']), u64::from(i) + 1);
        }
        assert_eq!(t.mem_len(), 100);
        let c = t.flush().unwrap().unwrap();
        assert_eq!(c.num_entries(), 100);
        assert_eq!(c.id(), ComponentId::new(1, 100));
        assert_eq!(t.mem_len(), 0);
        assert_eq!(t.num_disk_components(), 1);
    }

    #[test]
    fn merge_reconciles_and_drops_anti_matter() {
        let t = tree();
        // Component 1: keys 0..10
        for i in 0..10 {
            t.put(key(i), LsmEntry::put(b"v1".to_vec()), u64::from(i) + 1);
        }
        t.flush().unwrap().unwrap();
        // Component 2: overwrite key 3, delete key 5.
        t.put(key(3), LsmEntry::put(b"v2".to_vec()), 20);
        t.put(key(5), LsmEntry::anti_matter(), 21);
        t.flush().unwrap().unwrap();
        assert_eq!(t.num_disk_components(), 2);

        let merged = t.merge_range(MergeRange { start: 0, end: 1 }).unwrap();
        assert_eq!(t.num_disk_components(), 1);
        // key 5 dropped (merge includes oldest), key 3 has new value.
        assert_eq!(merged.num_entries(), 9);
        let (e, _) = merged.search(&key(3)).unwrap().unwrap();
        assert_eq!(e.value, b"v2");
        assert!(merged.search(&key(5)).unwrap().is_none());
        assert_eq!(merged.id(), ComponentId::new(1, 21));
    }

    #[test]
    fn partial_merge_keeps_anti_matter() {
        let t = tree();
        for i in 0..5 {
            t.put(key(i), LsmEntry::put(b"v".to_vec()), u64::from(i) + 1);
        }
        t.flush().unwrap();
        t.put(key(1), LsmEntry::anti_matter(), 10);
        t.flush().unwrap();
        t.put(key(2), LsmEntry::put(b"w".to_vec()), 20);
        t.flush().unwrap();
        // Merge only the two NEWEST components (range excludes oldest).
        let merged = t.merge_range(MergeRange { start: 1, end: 2 }).unwrap();
        // Anti-matter for key 1 must survive to suppress the base version.
        let (e, _) = merged.search(&key(1)).unwrap().unwrap();
        assert!(e.anti_matter);
        assert_eq!(t.num_disk_components(), 2);
    }

    #[test]
    fn policy_driven_merging_converges() {
        let t = tree();
        let policy = TieringPolicy::new(u64::MAX);
        let mut ts = 1u64;
        for round in 0..6 {
            for i in 0..50 {
                t.put(key(round * 50 + i), LsmEntry::put(vec![0; 32]), ts);
                ts += 1;
            }
            t.flush().unwrap();
            while t.maybe_merge(&policy).unwrap() {}
        }
        // With an uncapped tiering policy everything collapses to few
        // components, and all data is present.
        assert!(t.num_disk_components() <= 3);
        assert_eq!(t.disk_entries(), 300);
    }

    #[test]
    fn scan_sees_mem_and_disk_reconciled() {
        let t = tree();
        t.put(key(1), LsmEntry::put(b"disk".to_vec()), 1);
        t.put(key(2), LsmEntry::put(b"disk".to_vec()), 2);
        t.flush().unwrap();
        t.put(key(1), LsmEntry::put(b"mem".to_vec()), 3);
        t.put(key(3), LsmEntry::anti_matter(), 4);

        let mut scan = t
            .scan(Bound::Unbounded, Bound::Unbounded, ScanOptions::default())
            .unwrap();
        let (k, e) = scan.next_entry().unwrap().unwrap();
        assert_eq!((k, e.value), (key(1), b"mem".to_vec()));
        let (k, e) = scan.next_entry().unwrap().unwrap();
        assert_eq!((k, e.value), (key(2), b"disk".to_vec()));
        assert!(scan.next_entry().unwrap().is_none());
    }

    #[test]
    fn mutable_bitmaps_created_when_configured() {
        let t = LsmTree::new(
            Storage::new(StorageOptions::test()),
            LsmOptions {
                mutable_bitmaps: true,
                ..Default::default()
            },
        );
        t.put(key(1), LsmEntry::put(vec![]), 1);
        let c = t.flush().unwrap().unwrap();
        let bm = c.bitmap().expect("mutable bitmap attached");
        assert_eq!(bm.len(), 1);
        assert_eq!(bm.count_set(), 0);
    }

    #[test]
    fn merge_physically_removes_bitmap_invalidated_entries() {
        let t = tree();
        for i in 0..4 {
            t.put(key(i), LsmEntry::put(b"v".to_vec()), u64::from(i) + 1);
        }
        t.flush().unwrap();
        t.put(key(9), LsmEntry::put(b"v".to_vec()), 9);
        t.flush().unwrap();
        // Invalidate key 2 in the older component via a bitmap.
        let comps = t.disk_components();
        let older = &comps[1];
        let bm = Arc::new(crate::bitmap::AtomicBitmap::new(older.num_entries()));
        let (_, ord) = older.search(&key(2)).unwrap().unwrap();
        bm.set(ord);
        older.set_bitmap(bm).unwrap();

        let merged = t.merge_range(MergeRange { start: 0, end: 1 }).unwrap();
        assert_eq!(merged.num_entries(), 4); // 0,1,3,9
        assert!(merged.search(&key(2)).unwrap().is_none());
    }

    #[test]
    fn merged_filter_is_union_of_inputs() {
        let t = tree();
        t.put(key(1), LsmEntry::put(vec![]), 1);
        t.widen_mem_filter(&Value::Int(2015));
        t.flush().unwrap();
        t.put(key(2), LsmEntry::put(vec![]), 2);
        t.widen_mem_filter(&Value::Int(2018));
        t.flush().unwrap();
        let merged = t.merge_range(MergeRange { start: 0, end: 1 }).unwrap();
        let f = merged.range_filter().unwrap();
        assert_eq!(f.min(), &Value::Int(2015));
        assert_eq!(f.max(), &Value::Int(2018));
    }

    #[test]
    fn mem_filter_snapshot_on_flush() {
        let t = tree();
        t.put(key(1), LsmEntry::put(vec![]), 1);
        t.widen_mem_filter(&Value::Int(7));
        let c = t.flush().unwrap().unwrap();
        assert!(c.range_filter().is_some());
        assert!(t.mem_filter().is_none(), "filter reset after flush");
    }
}
