//! The LSM-tree: a memory component plus an ordered list of immutable disk
//! components, with flush and merge machinery.
//!
//! This is the per-index structure of Figure 1; the engine crate composes
//! one primary index, one primary key index, and N secondary indexes over
//! these trees and layers the maintenance strategies on top.

use crate::component::DiskComponent;
use crate::component_id::ComponentId;
use crate::entry::LsmEntry;
use crate::memtable::MemComponent;
use crate::merge_policy::{MergePolicy, MergeRange};
use crate::range_filter::RangeFilter;
use crate::scan::{LsmScan, ScanOptions};
use lsm_bloom::{build_filter, BloomFilter, BloomKind};
use lsm_btree::BTreeBuilder;
use lsm_common::{Error, Key, Result, Timestamp, Value};
use lsm_storage::Storage;
use parking_lot::{Mutex, RwLock};
use std::ops::Bound;
use std::sync::Arc;

/// Per-index configuration.
#[derive(Debug, Clone)]
pub struct LsmOptions {
    /// Index name (diagnostics only).
    pub name: String,
    /// Build a Bloom filter per disk component (primary / primary key
    /// indexes in the paper; secondary indexes have none).
    pub with_bloom: bool,
    /// Which Bloom filter variant to build.
    pub bloom_kind: BloomKind,
    /// Bloom filter false-positive rate (1% in §6.1).
    pub bloom_fpr: f64,
    /// Attach a zeroed mutable bitmap to every new disk component
    /// (Mutable-bitmap strategy).
    pub mutable_bitmaps: bool,
}

impl Default for LsmOptions {
    fn default() -> Self {
        LsmOptions {
            name: "lsm".into(),
            with_bloom: true,
            bloom_kind: BloomKind::Standard,
            bloom_fpr: 0.01,
            mutable_bitmaps: false,
        }
    }
}

/// Builds one disk component from a sorted entry stream.
///
/// Used by flushes, merges, and the repair/concurrency-control paths in the
/// engine, which need per-entry control (ordinals, build links).
pub struct ComponentBuilder {
    storage: Arc<Storage>,
    id: ComponentId,
    btree: BTreeBuilder,
    bloom: Option<Box<dyn BloomFilter>>,
    filter: Option<RangeFilter>,
    make_mutable_bitmap: bool,
}

/// Options for [`ComponentBuilder`].
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Build a Bloom filter over the keys.
    pub with_bloom: bool,
    /// Bloom variant.
    pub bloom_kind: BloomKind,
    /// Bloom false-positive rate.
    pub bloom_fpr: f64,
    /// Expected number of keys (Bloom sizing).
    pub expected_keys: usize,
    /// Range filter carried by the new component.
    pub filter: Option<RangeFilter>,
    /// Attach an all-zero mutable bitmap on finish.
    pub make_mutable_bitmap: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            with_bloom: true,
            bloom_kind: BloomKind::Standard,
            bloom_fpr: 0.01,
            expected_keys: 1024,
            filter: None,
            make_mutable_bitmap: false,
        }
    }
}

impl ComponentBuilder {
    /// Starts building a component with the given ID.
    pub fn new(storage: Arc<Storage>, id: ComponentId, opts: BuildOptions) -> Result<Self> {
        let bloom = opts
            .with_bloom
            .then(|| build_filter(opts.bloom_kind, opts.expected_keys, opts.bloom_fpr));
        Ok(ComponentBuilder {
            btree: BTreeBuilder::new(storage.clone()),
            storage,
            id,
            bloom,
            filter: opts.filter,
            make_mutable_bitmap: opts.make_mutable_bitmap,
        })
    }

    /// Appends an entry (keys strictly ascending) and returns its ordinal
    /// position in the new component.
    pub fn add(&mut self, key: &[u8], entry: &LsmEntry) -> Result<u64> {
        let ordinal = self.btree.next_ordinal();
        self.btree.add(key, &entry.encode())?;
        if let Some(bloom) = &mut self.bloom {
            bloom.insert(key);
        }
        // Streaming cost of pushing one entry through the build pipeline.
        self.storage.charge_cpu(self.storage.cpu().sort_entry_ns);
        Ok(ordinal)
    }

    /// Entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.btree.num_entries()
    }

    /// Finalizes the component.
    pub fn finish(self) -> Result<DiskComponent> {
        let n = self.btree.num_entries();
        let btree = self.btree.finish()?;
        let bitmap = self
            .make_mutable_bitmap
            .then(|| Arc::new(crate::bitmap::AtomicBitmap::new(n)));
        Ok(DiskComponent::new(
            self.id,
            btree,
            self.bloom,
            self.filter,
            bitmap,
        ))
    }
}

/// An LSM-tree index.
pub struct LsmTree {
    opts: LsmOptions,
    storage: Arc<Storage>,
    mem: Mutex<MemComponent>,
    /// Disk components, newest first (as drawn in Figure 1, reading
    /// right-to-left).
    disk: RwLock<Vec<Arc<DiskComponent>>>,
}

impl std::fmt::Debug for LsmTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmTree")
            .field("name", &self.opts.name)
            .field("disk_components", &self.disk.read().len())
            .finish()
    }
}

impl LsmTree {
    /// Creates an empty tree.
    pub fn new(storage: Arc<Storage>, opts: LsmOptions) -> Self {
        LsmTree {
            opts,
            storage,
            mem: Mutex::new(MemComponent::new()),
            disk: RwLock::new(Vec::new()),
        }
    }

    /// The tree's configuration.
    pub fn options(&self) -> &LsmOptions {
        &self.opts
    }

    /// The storage device.
    pub fn storage(&self) -> &Arc<Storage> {
        &self.storage
    }

    // ---- memory component -------------------------------------------------

    /// Writes an entry into the memory component. `op_ts` is the operation
    /// timestamp used for the component ID. Returns the replaced entry.
    pub fn put(&self, key: Key, entry: LsmEntry, op_ts: Timestamp) -> Option<LsmEntry> {
        self.storage.charge_cpu(self.storage.cpu().memtable_op_ns);
        self.mem.lock().put(key, entry, op_ts)
    }

    /// Reads the memory component.
    pub fn mem_get(&self, key: &[u8]) -> Option<LsmEntry> {
        self.storage.charge_cpu(self.storage.cpu().memtable_op_ns);
        self.mem.lock().get(key).cloned()
    }

    /// Approximate memory component size in bytes.
    pub fn mem_bytes(&self) -> usize {
        self.mem.lock().bytes()
    }

    /// Number of keys in the memory component.
    pub fn mem_len(&self) -> usize {
        self.mem.lock().len()
    }

    /// Widens the memory component's range filter.
    pub fn widen_mem_filter(&self, v: &Value) {
        self.mem.lock().widen_filter(v);
    }

    /// The memory component's range filter.
    pub fn mem_filter(&self) -> Option<RangeFilter> {
        self.mem.lock().filter().cloned()
    }

    /// Copies the memory component's entries in `[lo, hi]`, in key order.
    pub fn mem_snapshot_range(&self, lo: Bound<&[u8]>, hi: Bound<&[u8]>) -> Vec<(Key, LsmEntry)> {
        let mem = self.mem.lock();
        mem.range(lo, hi)
            .map(|(k, e)| (k.clone(), e.clone()))
            .collect()
    }

    /// Discards the memory component (crash simulation in recovery tests).
    pub fn clear_mem(&self) {
        self.mem.lock().clear();
    }

    // ---- disk components ---------------------------------------------------

    /// Disk components, newest first.
    pub fn disk_components(&self) -> Vec<Arc<DiskComponent>> {
        self.disk.read().clone()
    }

    /// Number of disk components.
    pub fn num_disk_components(&self) -> usize {
        self.disk.read().len()
    }

    /// Total bytes across disk components.
    pub fn disk_bytes(&self) -> u64 {
        self.disk.read().iter().map(|c| c.byte_size()).sum()
    }

    /// Total entries across disk components.
    pub fn disk_entries(&self) -> u64 {
        self.disk.read().iter().map(|c| c.num_entries()).sum()
    }

    /// Pushes a component as the newest (recovery / tests).
    pub fn push_newest(&self, comp: Arc<DiskComponent>) {
        self.disk.write().insert(0, comp);
    }

    /// Flushes the memory component into a new disk component.
    /// Returns `None` if the memory component was empty.
    pub fn flush(&self) -> Result<Option<Arc<DiskComponent>>> {
        let mut mem = self.mem.lock();
        let Some(id) = mem.id() else {
            return Ok(None);
        };
        let mut builder = ComponentBuilder::new(
            self.storage.clone(),
            id,
            BuildOptions {
                with_bloom: self.opts.with_bloom,
                bloom_kind: self.opts.bloom_kind,
                bloom_fpr: self.opts.bloom_fpr,
                expected_keys: mem.len(),
                filter: mem.filter().cloned(),
                make_mutable_bitmap: self.opts.mutable_bitmaps,
            },
        )?;
        for (k, e) in mem.iter() {
            builder.add(k, e)?;
        }
        let comp = Arc::new(builder.finish()?);
        mem.clear();
        self.disk.write().insert(0, comp.clone());
        Ok(Some(comp))
    }

    // ---- merging -----------------------------------------------------------

    /// Applies `policy` to the current disk components; returns the chosen
    /// range (oldest-first indexing) without performing the merge.
    pub fn select_merge(&self, policy: &dyn MergePolicy) -> Option<MergeRange> {
        let disk = self.disk.read();
        let sizes: Vec<u64> = disk.iter().rev().map(|c| c.byte_size()).collect();
        policy.select(&sizes)
    }

    /// Components of `range` (oldest-first indexing), returned newest-first.
    pub fn components_in_range(&self, range: MergeRange) -> Vec<Arc<DiskComponent>> {
        let disk = self.disk.read();
        let n = disk.len();
        // oldest-first index i ↔ newest-first index n-1-i
        let lo = n - 1 - range.end;
        let hi = n - 1 - range.start;
        disk[lo..=hi].to_vec()
    }

    /// True if `range` includes the oldest disk component (anti-matter can
    /// then be dropped by the merge).
    pub fn range_includes_oldest(&self, range: MergeRange) -> bool {
        range.start == 0
    }

    /// Merges the components in `range` into one new component.
    ///
    /// Reconciles duplicate keys (newest wins), drops entries invalidated by
    /// bitmaps, and drops anti-matter if the range includes the oldest
    /// component. Returns the new component after swapping it in and
    /// destroying the inputs.
    pub fn merge_range(&self, range: MergeRange) -> Result<Arc<DiskComponent>> {
        let inputs = self.components_in_range(range);
        if inputs.len() < 2 {
            return Err(Error::invalid("merge needs at least two components"));
        }
        let drop_anti = self.range_includes_oldest(range);
        let id = ComponentId::merged(inputs.iter().map(|c| c.id())).expect("non-empty merge input");
        let mut filter: Option<RangeFilter> = None;
        for c in &inputs {
            if let Some(f) = c.range_filter() {
                match &mut filter {
                    None => filter = Some(f.clone()),
                    Some(acc) => acc.union(f),
                }
            }
        }
        let expected: u64 = inputs.iter().map(|c| c.num_entries()).sum();
        let mut builder = ComponentBuilder::new(
            self.storage.clone(),
            id,
            BuildOptions {
                with_bloom: self.opts.with_bloom,
                bloom_kind: self.opts.bloom_kind,
                bloom_fpr: self.opts.bloom_fpr,
                expected_keys: expected as usize,
                filter,
                make_mutable_bitmap: self.opts.mutable_bitmaps,
            },
        )?;
        let mut scan = LsmScan::new(
            self.storage.clone(),
            None,
            &inputs,
            Bound::Unbounded,
            Bound::Unbounded,
            ScanOptions {
                emit_anti_matter: true,
                respect_bitmaps: true,
            },
        )?;
        while let Some((k, e)) = scan.next_entry()? {
            if e.anti_matter && drop_anti {
                continue;
            }
            builder.add(&k, &e)?;
        }
        let new_comp = Arc::new(builder.finish()?);
        self.replace_range(range, new_comp.clone(), true)?;
        Ok(new_comp)
    }

    /// Replaces the components of `range` with `new_comp`, optionally
    /// destroying the old files.
    pub fn replace_range(
        &self,
        range: MergeRange,
        new_comp: Arc<DiskComponent>,
        destroy_old: bool,
    ) -> Result<()> {
        let removed: Vec<Arc<DiskComponent>> = {
            let mut disk = self.disk.write();
            let n = disk.len();
            assert!(range.end < n, "merge range out of bounds");
            let lo = n - 1 - range.end;
            let hi = n - 1 - range.start;
            disk.splice(lo..=hi, [new_comp]).collect()
        };
        if destroy_old {
            for c in removed {
                c.destroy()?;
            }
        }
        Ok(())
    }

    /// Runs one round of policy-driven merging. Returns `true` if a merge
    /// was performed.
    pub fn maybe_merge(&self, policy: &dyn MergePolicy) -> Result<bool> {
        match self.select_merge(policy) {
            Some(range) => {
                self.merge_range(range)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    // ---- scans --------------------------------------------------------------

    /// Reconciling scan over the whole tree (memory + all disk components).
    pub fn scan(&self, lo: Bound<&[u8]>, hi: Bound<&[u8]>, opts: ScanOptions) -> Result<LsmScan> {
        let mem = self.mem_snapshot_range(lo, hi);
        let disk = self.disk_components();
        LsmScan::new(
            self.storage.clone(),
            (!mem.is_empty()).then_some(mem),
            &disk,
            lo,
            hi,
            opts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge_policy::TieringPolicy;
    use lsm_storage::StorageOptions;

    fn tree() -> LsmTree {
        LsmTree::new(Storage::new(StorageOptions::test()), LsmOptions::default())
    }

    fn key(i: u32) -> Key {
        format!("k{i:06}").into_bytes()
    }

    #[test]
    fn flush_moves_mem_to_disk() {
        let t = tree();
        assert!(t.flush().unwrap().is_none());
        for i in 0..100 {
            t.put(key(i), LsmEntry::put(vec![b'v']), u64::from(i) + 1);
        }
        assert_eq!(t.mem_len(), 100);
        let c = t.flush().unwrap().unwrap();
        assert_eq!(c.num_entries(), 100);
        assert_eq!(c.id(), ComponentId::new(1, 100));
        assert_eq!(t.mem_len(), 0);
        assert_eq!(t.num_disk_components(), 1);
    }

    #[test]
    fn merge_reconciles_and_drops_anti_matter() {
        let t = tree();
        // Component 1: keys 0..10
        for i in 0..10 {
            t.put(key(i), LsmEntry::put(b"v1".to_vec()), u64::from(i) + 1);
        }
        t.flush().unwrap().unwrap();
        // Component 2: overwrite key 3, delete key 5.
        t.put(key(3), LsmEntry::put(b"v2".to_vec()), 20);
        t.put(key(5), LsmEntry::anti_matter(), 21);
        t.flush().unwrap().unwrap();
        assert_eq!(t.num_disk_components(), 2);

        let merged = t.merge_range(MergeRange { start: 0, end: 1 }).unwrap();
        assert_eq!(t.num_disk_components(), 1);
        // key 5 dropped (merge includes oldest), key 3 has new value.
        assert_eq!(merged.num_entries(), 9);
        let (e, _) = merged.search(&key(3)).unwrap().unwrap();
        assert_eq!(e.value, b"v2");
        assert!(merged.search(&key(5)).unwrap().is_none());
        assert_eq!(merged.id(), ComponentId::new(1, 21));
    }

    #[test]
    fn partial_merge_keeps_anti_matter() {
        let t = tree();
        for i in 0..5 {
            t.put(key(i), LsmEntry::put(b"v".to_vec()), u64::from(i) + 1);
        }
        t.flush().unwrap();
        t.put(key(1), LsmEntry::anti_matter(), 10);
        t.flush().unwrap();
        t.put(key(2), LsmEntry::put(b"w".to_vec()), 20);
        t.flush().unwrap();
        // Merge only the two NEWEST components (range excludes oldest).
        let merged = t.merge_range(MergeRange { start: 1, end: 2 }).unwrap();
        // Anti-matter for key 1 must survive to suppress the base version.
        let (e, _) = merged.search(&key(1)).unwrap().unwrap();
        assert!(e.anti_matter);
        assert_eq!(t.num_disk_components(), 2);
    }

    #[test]
    fn policy_driven_merging_converges() {
        let t = tree();
        let policy = TieringPolicy::new(u64::MAX);
        let mut ts = 1u64;
        for round in 0..6 {
            for i in 0..50 {
                t.put(key(round * 50 + i), LsmEntry::put(vec![0; 32]), ts);
                ts += 1;
            }
            t.flush().unwrap();
            while t.maybe_merge(&policy).unwrap() {}
        }
        // With an uncapped tiering policy everything collapses to few
        // components, and all data is present.
        assert!(t.num_disk_components() <= 3);
        assert_eq!(t.disk_entries(), 300);
    }

    #[test]
    fn scan_sees_mem_and_disk_reconciled() {
        let t = tree();
        t.put(key(1), LsmEntry::put(b"disk".to_vec()), 1);
        t.put(key(2), LsmEntry::put(b"disk".to_vec()), 2);
        t.flush().unwrap();
        t.put(key(1), LsmEntry::put(b"mem".to_vec()), 3);
        t.put(key(3), LsmEntry::anti_matter(), 4);

        let mut scan = t
            .scan(Bound::Unbounded, Bound::Unbounded, ScanOptions::default())
            .unwrap();
        let (k, e) = scan.next_entry().unwrap().unwrap();
        assert_eq!((k, e.value), (key(1), b"mem".to_vec()));
        let (k, e) = scan.next_entry().unwrap().unwrap();
        assert_eq!((k, e.value), (key(2), b"disk".to_vec()));
        assert!(scan.next_entry().unwrap().is_none());
    }

    #[test]
    fn mutable_bitmaps_created_when_configured() {
        let t = LsmTree::new(
            Storage::new(StorageOptions::test()),
            LsmOptions {
                mutable_bitmaps: true,
                ..Default::default()
            },
        );
        t.put(key(1), LsmEntry::put(vec![]), 1);
        let c = t.flush().unwrap().unwrap();
        let bm = c.bitmap().expect("mutable bitmap attached");
        assert_eq!(bm.len(), 1);
        assert_eq!(bm.count_set(), 0);
    }

    #[test]
    fn merge_physically_removes_bitmap_invalidated_entries() {
        let t = tree();
        for i in 0..4 {
            t.put(key(i), LsmEntry::put(b"v".to_vec()), u64::from(i) + 1);
        }
        t.flush().unwrap();
        t.put(key(9), LsmEntry::put(b"v".to_vec()), 9);
        t.flush().unwrap();
        // Invalidate key 2 in the older component via a bitmap.
        let comps = t.disk_components();
        let older = &comps[1];
        let bm = Arc::new(crate::bitmap::AtomicBitmap::new(older.num_entries()));
        let (_, ord) = older.search(&key(2)).unwrap().unwrap();
        bm.set(ord);
        older.set_bitmap(bm);

        let merged = t.merge_range(MergeRange { start: 0, end: 1 }).unwrap();
        assert_eq!(merged.num_entries(), 4); // 0,1,3,9
        assert!(merged.search(&key(2)).unwrap().is_none());
    }

    #[test]
    fn merged_filter_is_union_of_inputs() {
        let t = tree();
        t.put(key(1), LsmEntry::put(vec![]), 1);
        t.widen_mem_filter(&Value::Int(2015));
        t.flush().unwrap();
        t.put(key(2), LsmEntry::put(vec![]), 2);
        t.widen_mem_filter(&Value::Int(2018));
        t.flush().unwrap();
        let merged = t.merge_range(MergeRange { start: 0, end: 1 }).unwrap();
        let f = merged.range_filter().unwrap();
        assert_eq!(f.min(), &Value::Int(2015));
        assert_eq!(f.max(), &Value::Int(2018));
    }

    #[test]
    fn mem_filter_snapshot_on_flush() {
        let t = tree();
        t.put(key(1), LsmEntry::put(vec![]), 1);
        t.widen_mem_filter(&Value::Int(7));
        let c = t.flush().unwrap().unwrap();
        assert!(c.range_filter().is_some());
        assert!(t.mem_filter().is_none(), "filter reset after flush");
    }
}
