//! The LSM-tree: a memory component plus an ordered list of immutable disk
//! components, with flush and merge machinery.
//!
//! This is the per-index structure of Figure 1; the engine crate composes
//! one primary index, one primary key index, and N secondary indexes over
//! these trees and layers the maintenance strategies on top.
//!
//! # Sharded memory components
//!
//! The active memory component can be split into `mem_shards` hash shards
//! (default 1 — one `BTreeMap` under one mutex, the classic shape).
//! Writers hash their key to a shard and contend only with writers on the
//! same shard, so concurrent ingest scales with cores the way the sharded
//! buffer cache made reads scale. A key always hashes to the same shard,
//! so all versions of a key live in one shard and per-key recency is
//! preserved.
//!
//! Sealing is atomic across shards: [`LsmTree::seal_mem`] locks every
//! shard (in index order) and captures one **sealed generation** — the
//! per-shard immutable runs plus the generation's component ID, the
//! `(minTS, maxTS)` interval across *all* shards. Each non-empty shard run
//! is built into its own disk component (in parallel when there are
//! several), and every component of the generation carries the *shared
//! generation ID*: the engine seals all indexes under its drain lock, so
//! generations are temporally disjoint and interval-based recovery
//! reasoning (torn-install rollback, merged-interval containment) keeps
//! working unchanged. Merge selection groups consecutive same-ID
//! components back into generations and only ever merges whole
//! generations, which keeps merged intervals distinguishable from flush
//! generations.

use crate::component::DiskComponent;
use crate::component_id::ComponentId;
use crate::entry::LsmEntry;
use crate::memtable::MemComponent;
use crate::merge_policy::{MergePolicy, MergeRange};
use crate::range_filter::RangeFilter;
use crate::scan::{LsmScan, ScanOptions};
use lsm_bloom::{build_filter, BloomFilter, BloomKind};
use lsm_btree::BTreeBuilder;
use lsm_common::{Error, Key, Result, Timestamp, Value};
use lsm_storage::Storage;
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::ops::Bound;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Per-index configuration.
#[derive(Debug, Clone)]
pub struct LsmOptions {
    /// Index name (diagnostics only).
    pub name: String,
    /// Build a Bloom filter per disk component (primary / primary key
    /// indexes in the paper; secondary indexes have none).
    pub with_bloom: bool,
    /// Which Bloom filter variant to build.
    pub bloom_kind: BloomKind,
    /// Bloom filter false-positive rate (1% in §6.1).
    pub bloom_fpr: f64,
    /// Attach a zeroed mutable bitmap to every new disk component
    /// (Mutable-bitmap strategy).
    pub mutable_bitmaps: bool,
    /// Hash shards for the active memory component (at least 1). `1` is
    /// byte-identical to the unsharded tree; larger values let concurrent
    /// writers on different shards proceed without contending.
    pub mem_shards: usize,
}

impl Default for LsmOptions {
    fn default() -> Self {
        LsmOptions {
            name: "lsm".into(),
            with_bloom: true,
            bloom_kind: BloomKind::Standard,
            bloom_fpr: 0.01,
            mutable_bitmaps: false,
            mem_shards: 1,
        }
    }
}

/// Builds one disk component from a sorted entry stream.
///
/// Used by flushes, merges, and the repair/concurrency-control paths in the
/// engine, which need per-entry control (ordinals, build links).
pub struct ComponentBuilder {
    storage: Arc<Storage>,
    id: ComponentId,
    btree: BTreeBuilder,
    bloom: Option<Box<dyn BloomFilter>>,
    filter: Option<RangeFilter>,
    make_mutable_bitmap: bool,
}

/// Options for [`ComponentBuilder`].
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Build a Bloom filter over the keys.
    pub with_bloom: bool,
    /// Bloom variant.
    pub bloom_kind: BloomKind,
    /// Bloom false-positive rate.
    pub bloom_fpr: f64,
    /// Expected number of keys (Bloom sizing).
    pub expected_keys: usize,
    /// Range filter carried by the new component.
    pub filter: Option<RangeFilter>,
    /// Attach an all-zero mutable bitmap on finish.
    pub make_mutable_bitmap: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            with_bloom: true,
            bloom_kind: BloomKind::Standard,
            bloom_fpr: 0.01,
            expected_keys: 1024,
            filter: None,
            make_mutable_bitmap: false,
        }
    }
}

impl ComponentBuilder {
    /// Starts building a component with the given ID.
    pub fn new(storage: Arc<Storage>, id: ComponentId, opts: BuildOptions) -> Result<Self> {
        let bloom = opts
            .with_bloom
            .then(|| build_filter(opts.bloom_kind, opts.expected_keys, opts.bloom_fpr));
        Ok(ComponentBuilder {
            btree: BTreeBuilder::new(storage.clone()),
            storage,
            id,
            bloom,
            filter: opts.filter,
            make_mutable_bitmap: opts.make_mutable_bitmap,
        })
    }

    /// Appends an entry (keys strictly ascending) and returns its ordinal
    /// position in the new component.
    pub fn add(&mut self, key: &[u8], entry: &LsmEntry) -> Result<u64> {
        let ordinal = self.btree.next_ordinal();
        self.btree.add(key, &entry.encode())?;
        if let Some(bloom) = &mut self.bloom {
            bloom.insert(key);
        }
        // Streaming cost of pushing one entry through the build pipeline.
        self.storage.charge_cpu(self.storage.cpu().sort_entry_ns);
        Ok(ordinal)
    }

    /// Entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.btree.num_entries()
    }

    /// Finalizes the component.
    pub fn finish(self) -> Result<DiskComponent> {
        let n = self.btree.num_entries();
        let btree = self.btree.finish()?;
        let bitmap = self
            .make_mutable_bitmap
            .then(|| Arc::new(crate::bitmap::AtomicBitmap::new(n)));
        Ok(DiskComponent::new(
            self.id,
            btree,
            self.bloom,
            self.filter,
            bitmap,
        ))
    }
}

/// A captured in-memory run (key-ordered, active merged over sealed) plus
/// the disk component list — see [`LsmTree::mem_and_disk_snapshot_if`].
pub type TreeSnapshot = (Option<Vec<(Key, LsmEntry)>>, Vec<Arc<DiskComponent>>);

/// One atomically sealed memory generation: the per-shard immutable runs
/// (indexed like the active shard vector; `None` = shard was empty) and
/// the generation's component ID — the timestamp interval across all
/// shards, shared by every disk component the generation builds.
#[derive(Debug)]
struct SealedGen {
    id: ComponentId,
    shards: Vec<Option<Arc<MemComponent>>>,
}

impl SealedGen {
    fn runs(&self) -> impl Iterator<Item = &Arc<MemComponent>> {
        self.shards.iter().flatten()
    }

    fn bytes(&self) -> usize {
        self.runs().map(|s| s.bytes()).sum()
    }

    fn len(&self) -> usize {
        self.runs().map(|s| s.len()).sum()
    }
}

/// An LSM-tree index.
pub struct LsmTree {
    opts: LsmOptions,
    storage: Arc<Storage>,
    /// Active memory component, hash-sharded by key. Writers lock exactly
    /// one shard; whole-tree captures lock all shards in index order.
    mem: Vec<Mutex<MemComponent>>,
    /// Aggregate bytes across the active shards, maintained under the
    /// shard locks — the flush-trigger metric must stay cheap to read on
    /// every write without touching N mutexes.
    mem_bytes_total: AtomicUsize,
    /// Memory generation sealed for an in-progress flush. Writers fill
    /// fresh active shards while the builder turns these immutable
    /// snapshots into disk components; readers see both (active wins).
    sealed: RwLock<Option<Arc<SealedGen>>>,
    /// Disk components, newest first (as drawn in Figure 1, reading
    /// right-to-left).
    disk: RwLock<Vec<Arc<DiskComponent>>>,
}

impl std::fmt::Debug for LsmTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmTree")
            .field("name", &self.opts.name)
            .field("mem_shards", &self.mem.len())
            .field("disk_components", &self.disk.read().len())
            .finish()
    }
}

impl LsmTree {
    /// Creates an empty tree.
    pub fn new(storage: Arc<Storage>, opts: LsmOptions) -> Self {
        let shards = opts.mem_shards.max(1);
        LsmTree {
            opts,
            storage,
            mem: (0..shards)
                .map(|_| Mutex::new(MemComponent::new()))
                .collect(),
            mem_bytes_total: AtomicUsize::new(0),
            sealed: RwLock::new(None),
            disk: RwLock::new(Vec::new()),
        }
    }

    /// The tree's configuration.
    pub fn options(&self) -> &LsmOptions {
        &self.opts
    }

    /// The storage device.
    pub fn storage(&self) -> &Arc<Storage> {
        &self.storage
    }

    /// Number of active memory shards.
    pub fn mem_shards(&self) -> usize {
        self.mem.len()
    }

    /// The shard `key` hashes to (FNV-1a; stable across seals, so every
    /// version of a key lives in the same shard).
    fn shard_of(&self, key: &[u8]) -> usize {
        let n = self.mem.len();
        if n == 1 {
            return 0;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % n as u64) as usize
    }

    /// Locks every shard, in index order (the one multi-shard lock order,
    /// shared by seals and whole-tree captures; single-shard writers take
    /// one of these and therefore cannot deadlock against it).
    fn lock_all_shards(&self) -> Vec<parking_lot::MutexGuard<'_, MemComponent>> {
        // Same-class multi-acquisition, always in index order — sanctioned
        // via the detector's escape hatch (ARCHITECTURE.md, "Lock
        // hierarchy": mem-shard rank, ordered within the class).
        parking_lot::ordered_acquisition(|| self.mem.iter().map(|m| m.lock()).collect())
    }

    // ---- memory component -------------------------------------------------

    /// Writes an entry into the memory component. `op_ts` is the operation
    /// timestamp used for the component ID. Returns the replaced entry.
    pub fn put(&self, key: Key, entry: LsmEntry, op_ts: Timestamp) -> Option<LsmEntry> {
        self.storage.charge_cpu(self.storage.cpu().memtable_op_ns);
        let shard = self.shard_of(&key);
        let mut mem = self.mem[shard].lock();
        let before = mem.bytes();
        let old = mem.put(key, entry, op_ts);
        let after = mem.bytes();
        drop(mem);
        if after >= before {
            self.mem_bytes_total
                .fetch_add(after - before, Ordering::Relaxed);
        } else {
            self.mem_bytes_total
                .fetch_sub(before - after, Ordering::Relaxed);
        }
        old
    }

    /// Reads the memory component: the active shard first, then the sealed
    /// snapshot of an in-progress flush (the active entry, being newer,
    /// shadows the sealed one).
    pub fn mem_get(&self, key: &[u8]) -> Option<LsmEntry> {
        self.storage.charge_cpu(self.storage.cpu().memtable_op_ns);
        let shard = self.shard_of(key);
        if let Some(e) = self.mem[shard].lock().get(key).cloned() {
            return Some(e);
        }
        self.sealed
            .read()
            .as_ref()
            .and_then(|g| g.shards[shard].as_ref())
            .and_then(|s| s.get(key).cloned())
    }

    /// Reads the *active* memory component only — writers that must
    /// distinguish "replaced in place" from "immutable, mid-flush" (the
    /// Mutable-bitmap delete probe) use this together with
    /// [`LsmTree::sealed_get`].
    pub fn mem_get_active(&self, key: &[u8]) -> Option<LsmEntry> {
        self.storage.charge_cpu(self.storage.cpu().memtable_op_ns);
        self.mem[self.shard_of(key)].lock().get(key).cloned()
    }

    /// Reads the sealed (flushing) snapshot only.
    pub fn sealed_get(&self, key: &[u8]) -> Option<LsmEntry> {
        let shard = self.shard_of(key);
        self.sealed
            .read()
            .as_ref()
            .and_then(|g| g.shards[shard].as_ref())
            .and_then(|s| s.get(key).cloned())
    }

    /// True if a sealed generation is pending (a flush is mid-build, or a
    /// previous flush attempt failed and should be retried).
    pub fn has_sealed(&self) -> bool {
        self.sealed.read().is_some()
    }

    /// Approximate size of the *active* memory component in bytes, across
    /// all shards (the flush-trigger metric; a sealed generation is
    /// already on its way out). Lock-free: maintained as an aggregate so
    /// the per-write budget check does not serialize the shards it just
    /// unserialized.
    pub fn mem_bytes(&self) -> usize {
        self.mem_bytes_total.load(Ordering::Relaxed)
    }

    /// Approximate bytes of the sealed (flushing) generation, if any —
    /// memory that is still held but no longer accepts writes.
    /// Backpressure counts this on top of [`LsmTree::mem_bytes`].
    pub fn sealed_bytes(&self) -> usize {
        self.sealed.read().as_ref().map_or(0, |g| g.bytes())
    }

    /// Number of keys buffered in memory (active + sealed).
    pub fn mem_len(&self) -> usize {
        let active: usize = self.mem.iter().map(|m| m.lock().len()).sum();
        active + self.sealed.read().as_ref().map_or(0, |g| g.len())
    }

    /// Widens the memory component's range filter. `key` routes the update
    /// to the entry's shard, so each shard's filter describes exactly the
    /// entries that will flush with it.
    pub fn widen_mem_filter(&self, key: &[u8], v: &Value) {
        self.mem[self.shard_of(key)].lock().widen_filter(v);
    }

    /// The in-memory range filter: the union over every active shard and
    /// the sealed generation's runs, so filter pruning never hides entries
    /// that are buffered or mid-flush.
    pub fn mem_filter(&self) -> Option<RangeFilter> {
        let mut acc: Option<RangeFilter> = None;
        let mut fold = |f: &RangeFilter| match &mut acc {
            Some(a) => a.union(f),
            None => acc = Some(f.clone()),
        };
        for m in &self.mem {
            if let Some(f) = m.lock().filter() {
                fold(f);
            }
        }
        if let Some(gen) = self.sealed.read().as_ref() {
            for run in gen.runs() {
                if let Some(f) = run.filter() {
                    fold(f);
                }
            }
        }
        acc
    }

    /// Copies the in-memory entries in `[lo, hi]` in key order, merging the
    /// active shards over the sealed generation (active entries win).
    ///
    /// All shard locks are taken FIRST (in index order) and held while the
    /// sealed slot is read — the same order `seal_mem` uses for its
    /// transition — so the snapshot can never observe the torn state where
    /// entries have left the active shards but the sealed slot still reads
    /// empty.
    pub fn mem_snapshot_range(&self, lo: Bound<&[u8]>, hi: Bound<&[u8]>) -> Vec<(Key, LsmEntry)> {
        let guards = self.lock_all_shards();
        let sealed = self.sealed.read().clone();
        let runs = Self::capture_mem_runs(&guards, sealed.as_deref(), lo, hi);
        drop(guards);
        interleave_disjoint_runs(runs)
    }

    /// Per-shard merged runs (active over sealed) of `[lo, hi]`, captured
    /// under the shard guards. Shards hold disjoint key sets, so the final
    /// view is a plain ordered interleave of these runs.
    fn capture_mem_runs(
        guards: &[parking_lot::MutexGuard<'_, MemComponent>],
        sealed: Option<&SealedGen>,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
    ) -> Vec<Vec<(Key, LsmEntry)>> {
        guards
            .iter()
            .enumerate()
            .map(|(i, mem)| {
                let active: Vec<(Key, LsmEntry)> = mem
                    .range(lo, hi)
                    .map(|(k, e)| (k.clone(), e.clone()))
                    .collect();
                let run = sealed.and_then(|g| g.shards[i].clone());
                merge_mem_runs(active, run, lo, hi)
            })
            .collect()
    }

    /// An atomically consistent view of the tree: the merged in-memory
    /// entries of `[lo, hi]` plus the disk components, captured so that an
    /// entry mid-flush appears in exactly one of the two (lock order
    /// shards → sealed → disk matches `seal_mem` and `install_sealed`,
    /// whose transitions therefore cannot interleave with the capture).
    /// Scans that do NOT reconcile duplicates (the Mutable-bitmap filter
    /// scan) need this; reconciling readers can capture memory and disk
    /// separately.
    ///
    /// `include_mem` is evaluated under the capture locks against the
    /// in-memory range filter (active ∪ sealed, so it describes exactly
    /// the entries being captured) and the captured disk-component list
    /// (so strategy rules like "read memory whenever an older component
    /// is read" can be decided atomically); returning `false` skips
    /// materializing the memory run — the filter-scan prune. `None` means
    /// no entries are buffered.
    pub fn mem_and_disk_snapshot_if(
        &self,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
        include_mem: impl FnOnce(Option<&RangeFilter>, &[Arc<DiskComponent>]) -> bool,
    ) -> TreeSnapshot {
        let guards = self.lock_all_shards();
        let sealed_guard = self.sealed.read();
        let disk = self.disk.read().clone();
        let mut filter: Option<RangeFilter> = None;
        let mut fold = |f: &RangeFilter| match &mut filter {
            Some(acc) => acc.union(f),
            None => filter = Some(f.clone()),
        };
        for mem in &guards {
            if let Some(f) = mem.filter() {
                fold(f);
            }
        }
        if let Some(gen) = sealed_guard.as_ref() {
            for run in gen.runs() {
                if let Some(f) = run.filter() {
                    fold(f);
                }
            }
        }
        let has_entries = guards.iter().any(|m| !m.is_empty()) || sealed_guard.is_some();
        let snapshot = (has_entries && include_mem(filter.as_ref(), &disk)).then(|| {
            let runs = Self::capture_mem_runs(&guards, sealed_guard.as_deref(), lo, hi);
            interleave_disjoint_runs(runs)
        });
        drop(sealed_guard);
        drop(guards);
        (snapshot, disk)
    }

    /// [`LsmTree::mem_and_disk_snapshot_if`] with the memory run always
    /// included.
    pub fn mem_and_disk_snapshot(
        &self,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
    ) -> (Vec<(Key, LsmEntry)>, Vec<Arc<DiskComponent>>) {
        let (snapshot, disk) = self.mem_and_disk_snapshot_if(lo, hi, |_, _| true);
        (snapshot.unwrap_or_default(), disk)
    }

    /// Discards the memory components (crash simulation in recovery tests).
    pub fn clear_mem(&self) {
        for m in &self.mem {
            m.lock().clear();
        }
        self.mem_bytes_total.store(0, Ordering::Relaxed);
        *self.sealed.write() = None;
    }

    // ---- disk components ---------------------------------------------------

    /// Disk components, newest first.
    pub fn disk_components(&self) -> Vec<Arc<DiskComponent>> {
        self.disk.read().clone()
    }

    /// Number of disk components.
    pub fn num_disk_components(&self) -> usize {
        self.disk.read().len()
    }

    /// Total bytes across disk components.
    pub fn disk_bytes(&self) -> u64 {
        self.disk.read().iter().map(|c| c.byte_size()).sum()
    }

    /// Total entries across disk components.
    pub fn disk_entries(&self) -> u64 {
        self.disk.read().iter().map(|c| c.num_entries()).sum()
    }

    /// Pushes a component as the newest (recovery / tests).
    pub fn push_newest(&self, comp: Arc<DiskComponent>) {
        self.disk.write().insert(0, comp);
    }

    /// Removes the newest disk component and destroys its files. Crash
    /// recovery uses this to roll back a torn flush install — a component
    /// published by a crash-interrupted flush whose sibling indexes never
    /// installed theirs; the WAL still covers its committed entries. A
    /// sharded generation rolls back one component per call: every
    /// component of the torn generation postdates the sibling index, so
    /// the recovery loop peels them all.
    pub fn uninstall_newest(&self) -> Option<ComponentId> {
        let comp = {
            let mut disk = self.disk.write();
            if disk.is_empty() {
                return None;
            }
            disk.remove(0)
        };
        let id = comp.id();
        comp.retire();
        Some(id)
    }

    /// Builds (without installing) a component that mirrors `source`'s
    /// physical entries — same keys, timestamps and anti-matter flags, with
    /// empty values — in `source`'s exact entry order. Crash recovery uses
    /// this to redo the primary-key-index side of a correlated merge from
    /// the completed primary side: mirroring guarantees the
    /// ordinal-for-ordinal alignment the shared-bitmap design requires,
    /// which re-merging the pk index's own (bitmap-filtered) inputs cannot.
    pub fn mirror_component(&self, source: &Arc<DiskComponent>) -> Result<Arc<DiskComponent>> {
        let mut builder = ComponentBuilder::new(
            self.storage.clone(),
            source.id(),
            BuildOptions {
                with_bloom: self.opts.with_bloom,
                bloom_kind: self.opts.bloom_kind,
                bloom_fpr: self.opts.bloom_fpr,
                expected_keys: source.num_entries() as usize,
                filter: source.range_filter().cloned(),
                make_mutable_bitmap: self.opts.mutable_bitmaps,
            },
        )?;
        let mut scan = LsmScan::new(
            self.storage.clone(),
            None,
            std::slice::from_ref(source),
            Bound::Unbounded,
            Bound::Unbounded,
            ScanOptions {
                emit_anti_matter: true,
                respect_bitmaps: false,
            },
        )?;
        while let Some((k, e)) = scan.next_entry()? {
            builder.add(
                &k,
                &LsmEntry {
                    value: lsm_storage::ValueBuf::empty(),
                    ..e
                },
            )?;
        }
        Ok(Arc::new(builder.finish()?))
    }

    /// Seals the active memory shards for flushing — atomically, under
    /// every shard lock, so no operation is ever split across the seal:
    /// writers continue into fresh active shards while
    /// [`LsmTree::flush_sealed`] builds the generation into disk
    /// components. Returns `false` (and seals nothing) if every shard is
    /// empty. Errors if a sealed generation is already pending — callers
    /// must serialize flushes (the engine holds a per-dataset flush lock).
    pub fn seal_mem(&self) -> Result<bool> {
        let mut guards = self.lock_all_shards();
        let mut min_ts = Timestamp::MAX;
        let mut max_ts = 0;
        for g in &guards {
            if let Some(id) = g.id() {
                min_ts = min_ts.min(id.min_ts);
                max_ts = max_ts.max(id.max_ts);
            }
        }
        if max_ts == 0 {
            return Ok(false);
        }
        let mut sealed = self.sealed.write();
        if sealed.is_some() {
            return Err(Error::invalid(format!(
                "{}: flush already in progress (sealed snapshot pending)",
                self.opts.name
            )));
        }
        let shards: Vec<Option<Arc<MemComponent>>> = guards
            .iter_mut()
            .map(|g| g.id().is_some().then(|| Arc::new(std::mem::take(&mut **g))))
            .collect();
        self.mem_bytes_total.store(0, Ordering::Relaxed);
        *sealed = Some(Arc::new(SealedGen {
            id: ComponentId::new(min_ts, max_ts),
            shards,
        }));
        Ok(true)
    }

    /// Builds the sealed generation into disk components (one per
    /// non-empty shard, each stamped with the shared generation ID) and
    /// installs them as the newest. Returns an empty vector when nothing
    /// is sealed. The generation stays visible to readers throughout, so
    /// there is no window where its entries are neither in memory nor on
    /// disk.
    pub fn flush_sealed(&self) -> Result<Vec<Arc<DiskComponent>>> {
        let comps = self.build_sealed()?;
        if self.has_sealed() {
            self.install_sealed(comps.clone());
        }
        Ok(comps)
    }

    /// Builds the sealed generation's disk components WITHOUT installing
    /// them — the engine uses this when the components need preparation
    /// before becoming visible (shared-bitmap attachment, routed deletes
    /// of the Mutable-bitmap strategy), followed by
    /// [`LsmTree::install_sealed`]. Components are returned in shard
    /// order; when several shards have runs they are built in parallel on
    /// scoped threads, each inheriting this thread's I/O throttles.
    pub fn build_sealed(&self) -> Result<Vec<Arc<DiskComponent>>> {
        let Some(gen) = self.sealed.read().clone() else {
            return Ok(Vec::new());
        };
        let gen_id = gen.id;
        let runs: Vec<&Arc<MemComponent>> = gen.runs().collect();
        if runs.len() <= 1 {
            return runs
                .into_iter()
                .map(|run| self.build_run(gen_id, run))
                .collect();
        }
        let (read_t, write_t) = lsm_storage::throttle::current_throttles();
        std::thread::scope(|scope| {
            let handles: Vec<_> = runs
                .into_iter()
                .map(|run| {
                    let read_t = read_t.clone();
                    let write_t = write_t.clone();
                    scope.spawn(move || {
                        lsm_storage::throttle::with_throttles(read_t, write_t, || {
                            self.build_run(gen_id, run)
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        })
    }

    /// Builds one shard run into a disk component carrying the
    /// generation's shared ID.
    fn build_run(&self, id: ComponentId, snapshot: &MemComponent) -> Result<Arc<DiskComponent>> {
        let mut builder = ComponentBuilder::new(
            self.storage.clone(),
            id,
            BuildOptions {
                with_bloom: self.opts.with_bloom,
                bloom_kind: self.opts.bloom_kind,
                bloom_fpr: self.opts.bloom_fpr,
                expected_keys: snapshot.len(),
                filter: snapshot.filter().cloned(),
                make_mutable_bitmap: self.opts.mutable_bitmaps,
            },
        )?;
        for (k, e) in snapshot.iter() {
            builder.add(k, e)?;
        }
        Ok(Arc::new(builder.finish()?))
    }

    /// Publishes the components built by [`LsmTree::build_sealed`] (the
    /// whole generation at once, preserving shard order) and releases the
    /// sealed generation. The sealed lock is held across the disk insert
    /// (lock order sealed → disk), and the components are inserted before
    /// the generation clears: a reconciling reader that captures memory
    /// first either sees the entries in the sealed generation, on disk, or
    /// both (never neither), while the atomic
    /// [`LsmTree::mem_and_disk_snapshot`] capture sees them exactly once.
    pub fn install_sealed(&self, comps: Vec<Arc<DiskComponent>>) {
        let mut sealed = self.sealed.write();
        self.disk.write().splice(0..0, comps);
        *sealed = None;
    }

    /// Flushes the memory component into new disk components.
    /// Returns `None` if the memory component was empty, otherwise the
    /// first (shard-order) component of the new generation — with one
    /// shard, the generation's only component. A generation left sealed
    /// by a previous failed attempt is flushed first, so transient build
    /// errors stay retryable.
    pub fn flush(&self) -> Result<Option<Arc<DiskComponent>>> {
        if self.has_sealed() {
            self.flush_sealed()?;
        }
        if !self.seal_mem()? {
            return Ok(None);
        }
        Ok(self.flush_sealed()?.into_iter().next())
    }

    // ---- merging -----------------------------------------------------------

    /// Oldest-first component index ranges grouped into generations: runs
    /// of consecutive components sharing a ComponentId are the per-shard
    /// outputs of one sealed generation. Merged components carry unique
    /// spanning intervals and group alone.
    fn generation_groups(disk: &[Arc<DiskComponent>]) -> Vec<(usize, usize, u64)> {
        let mut groups: Vec<(usize, usize, u64)> = Vec::new();
        for (i, c) in disk.iter().rev().enumerate() {
            match groups.last_mut() {
                Some(g) if disk[disk.len() - 1 - g.1].id() == c.id() => {
                    g.1 = i;
                    g.2 += c.byte_size();
                }
                _ => groups.push((i, i, c.byte_size())),
            }
        }
        groups
    }

    /// Applies `policy` to the current disk components; returns the chosen
    /// range (oldest-first indexing) without performing the merge. The
    /// policy sees one size per *generation* and selected ranges always
    /// cover whole generations, so a merge never splits the per-shard
    /// siblings of one flush (and a merged interval therefore always spans
    /// at least two generations, keeping it distinguishable from any flush
    /// generation's interval — recovery relies on that).
    pub fn select_merge(&self, policy: &dyn MergePolicy) -> Option<MergeRange> {
        let disk = self.disk.read();
        let groups = Self::generation_groups(&disk);
        let sizes: Vec<u64> = groups.iter().map(|g| g.2).collect();
        let r = policy.select(&sizes)?;
        Some(MergeRange {
            start: groups[r.start].0,
            end: groups[r.end].1,
        })
    }

    /// Components of `range` (oldest-first indexing), returned newest-first.
    /// Returns an empty vector when the range no longer fits the component
    /// list (a stale plan after a concurrent merge).
    pub fn components_in_range(&self, range: MergeRange) -> Vec<Arc<DiskComponent>> {
        let disk = self.disk.read();
        let n = disk.len();
        if range.end >= n || range.start > range.end {
            return Vec::new();
        }
        // oldest-first index i ↔ newest-first index n-1-i
        let lo = n - 1 - range.end;
        let hi = n - 1 - range.start;
        disk[lo..=hi].to_vec()
    }

    /// True if `range` includes the oldest disk component (anti-matter can
    /// then be dropped by the merge).
    pub fn range_includes_oldest(&self, range: MergeRange) -> bool {
        range.start == 0
    }

    /// Merges the components in `range` into one new component.
    ///
    /// Reconciles duplicate keys (newest wins), drops entries invalidated by
    /// bitmaps, and drops anti-matter if the range includes the oldest
    /// component. Returns the new component after swapping it in and
    /// destroying the inputs.
    pub fn merge_range(&self, range: MergeRange) -> Result<Arc<DiskComponent>> {
        let inputs = self.components_in_range(range);
        if inputs.len() < 2 {
            return Err(Error::invalid("merge needs at least two components"));
        }
        let drop_anti = self.range_includes_oldest(range);
        let id = ComponentId::merged(inputs.iter().map(|c| c.id()))
            .ok_or_else(|| Error::invalid("merge inputs carry no component IDs"))?;
        let mut filter: Option<RangeFilter> = None;
        for c in &inputs {
            if let Some(f) = c.range_filter() {
                match &mut filter {
                    None => filter = Some(f.clone()),
                    Some(acc) => acc.union(f),
                }
            }
        }
        let expected: u64 = inputs.iter().map(|c| c.num_entries()).sum();
        let mut builder = ComponentBuilder::new(
            self.storage.clone(),
            id,
            BuildOptions {
                with_bloom: self.opts.with_bloom,
                bloom_kind: self.opts.bloom_kind,
                bloom_fpr: self.opts.bloom_fpr,
                expected_keys: expected as usize,
                filter,
                make_mutable_bitmap: self.opts.mutable_bitmaps,
            },
        )?;
        let mut scan = LsmScan::new(
            self.storage.clone(),
            None,
            &inputs,
            Bound::Unbounded,
            Bound::Unbounded,
            ScanOptions {
                emit_anti_matter: true,
                respect_bitmaps: true,
            },
        )?;
        while let Some((k, e)) = scan.next_entry()? {
            if e.anti_matter && drop_anti {
                continue;
            }
            builder.add(&k, &e)?;
        }
        let new_comp = Arc::new(builder.finish()?);
        self.replace_range(range, new_comp.clone(), true)?;
        Ok(new_comp)
    }

    /// Replaces the components of `range` with `new_comp`, optionally
    /// retiring the old components (their files are destroyed once the last
    /// concurrent reader drops its reference).
    pub fn replace_range(
        &self,
        range: MergeRange,
        new_comp: Arc<DiskComponent>,
        destroy_old: bool,
    ) -> Result<()> {
        let removed: Vec<Arc<DiskComponent>> = {
            let mut disk = self.disk.write();
            let n = disk.len();
            if range.end >= n {
                return Err(Error::invalid(format!(
                    "{}: merge range {}..={} out of bounds ({n} components)",
                    self.opts.name, range.start, range.end
                )));
            }
            let lo = n - 1 - range.end;
            let hi = n - 1 - range.start;
            disk.splice(lo..=hi, [new_comp]).collect()
        };
        if destroy_old {
            for c in removed {
                c.retire();
            }
        }
        Ok(())
    }

    /// Runs one round of policy-driven merging. Returns `true` if a merge
    /// was performed.
    pub fn maybe_merge(&self, policy: &dyn MergePolicy) -> Result<bool> {
        match self.select_merge(policy) {
            Some(range) => {
                self.merge_range(range)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    // ---- scans --------------------------------------------------------------

    /// Reconciling scan over the whole tree (memory + all disk components).
    pub fn scan(&self, lo: Bound<&[u8]>, hi: Bound<&[u8]>, opts: ScanOptions) -> Result<LsmScan> {
        let mem = self.mem_snapshot_range(lo, hi);
        let disk = self.disk_components();
        LsmScan::new(
            self.storage.clone(),
            (!mem.is_empty()).then_some(mem),
            &disk,
            lo,
            hi,
            opts,
        )
    }
}

/// Merges the active-shard run over the same shard's sealed run `[lo, hi]`
/// range; both are key-ordered, and the active entry wins a collision.
fn merge_mem_runs(
    active: Vec<(Key, LsmEntry)>,
    sealed: Option<Arc<MemComponent>>,
    lo: Bound<&[u8]>,
    hi: Bound<&[u8]>,
) -> Vec<(Key, LsmEntry)> {
    let Some(sealed) = sealed else {
        return active;
    };
    let mut out = Vec::with_capacity(active.len() + sealed.len());
    let mut old = sealed.range(lo, hi).peekable();
    for (k, e) in active {
        while let Some((ok, _)) = old.peek() {
            match ok.as_slice().cmp(&k) {
                std::cmp::Ordering::Less => {
                    // INVARIANT: `peek()` just returned `Some`, so `next()`
                    // yields that same element.
                    let (ok, oe) = old.next().unwrap();
                    out.push((ok.clone(), oe.clone()));
                }
                std::cmp::Ordering::Equal => {
                    old.next(); // shadowed by the active entry
                }
                std::cmp::Ordering::Greater => break,
            }
        }
        out.push((k, e));
    }
    for (ok, oe) in old {
        out.push((ok.clone(), oe.clone()));
    }
    out
}

/// Interleaves key-ordered runs with pairwise-disjoint key sets (the
/// per-shard memory runs) into one ordered run.
fn interleave_disjoint_runs(runs: Vec<Vec<(Key, LsmEntry)>>) -> Vec<(Key, LsmEntry)> {
    let mut queues: Vec<VecDeque<(Key, LsmEntry)>> = runs
        .into_iter()
        .filter(|r| !r.is_empty())
        .map(VecDeque::from)
        .collect();
    if queues.len() == 1 {
        // INVARIANT: length is exactly 1, so the pop yields the only queue.
        return queues.pop().unwrap().into();
    }
    let mut out = Vec::with_capacity(queues.iter().map(VecDeque::len).sum());
    loop {
        let mut best: Option<usize> = None;
        for (i, q) in queues.iter().enumerate() {
            if let Some((k, _)) = q.front() {
                best = match best {
                    // INVARIANT: `b` was only ever set for a queue with a
                    // non-empty front, and nothing is popped in this scan.
                    Some(b) if queues[b].front().unwrap().0 <= *k => Some(b),
                    _ => Some(i),
                };
            }
        }
        let Some(b) = best else { break };
        // INVARIANT: `best` points at a queue seen non-empty in the scan
        // just above; nothing was popped since.
        out.push(queues[b].pop_front().unwrap());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge_policy::TieringPolicy;
    use lsm_storage::StorageOptions;

    fn tree() -> LsmTree {
        LsmTree::new(Storage::new(StorageOptions::test()), LsmOptions::default())
    }

    fn sharded_tree(shards: usize) -> LsmTree {
        LsmTree::new(
            Storage::new(StorageOptions::test()),
            LsmOptions {
                mem_shards: shards,
                ..Default::default()
            },
        )
    }

    fn key(i: u32) -> Key {
        format!("k{i:06}").into_bytes()
    }

    #[test]
    fn flush_moves_mem_to_disk() {
        let t = tree();
        assert!(t.flush().unwrap().is_none());
        for i in 0..100 {
            t.put(key(i), LsmEntry::put(vec![b'v']), u64::from(i) + 1);
        }
        assert_eq!(t.mem_len(), 100);
        let c = t.flush().unwrap().unwrap();
        assert_eq!(c.num_entries(), 100);
        assert_eq!(c.id(), ComponentId::new(1, 100));
        assert_eq!(t.mem_len(), 0);
        assert_eq!(t.num_disk_components(), 1);
    }

    #[test]
    fn merge_reconciles_and_drops_anti_matter() {
        let t = tree();
        // Component 1: keys 0..10
        for i in 0..10 {
            t.put(key(i), LsmEntry::put(b"v1".to_vec()), u64::from(i) + 1);
        }
        t.flush().unwrap().unwrap();
        // Component 2: overwrite key 3, delete key 5.
        t.put(key(3), LsmEntry::put(b"v2".to_vec()), 20);
        t.put(key(5), LsmEntry::anti_matter(), 21);
        t.flush().unwrap().unwrap();
        assert_eq!(t.num_disk_components(), 2);

        let merged = t.merge_range(MergeRange { start: 0, end: 1 }).unwrap();
        assert_eq!(t.num_disk_components(), 1);
        // key 5 dropped (merge includes oldest), key 3 has new value.
        assert_eq!(merged.num_entries(), 9);
        let (e, _) = merged.search(&key(3)).unwrap().unwrap();
        assert_eq!(e.value, b"v2");
        assert!(merged.search(&key(5)).unwrap().is_none());
        assert_eq!(merged.id(), ComponentId::new(1, 21));
    }

    #[test]
    fn partial_merge_keeps_anti_matter() {
        let t = tree();
        for i in 0..5 {
            t.put(key(i), LsmEntry::put(b"v".to_vec()), u64::from(i) + 1);
        }
        t.flush().unwrap();
        t.put(key(1), LsmEntry::anti_matter(), 10);
        t.flush().unwrap();
        t.put(key(2), LsmEntry::put(b"w".to_vec()), 20);
        t.flush().unwrap();
        // Merge only the two NEWEST components (range excludes oldest).
        let merged = t.merge_range(MergeRange { start: 1, end: 2 }).unwrap();
        // Anti-matter for key 1 must survive to suppress the base version.
        let (e, _) = merged.search(&key(1)).unwrap().unwrap();
        assert!(e.anti_matter);
        assert_eq!(t.num_disk_components(), 2);
    }

    #[test]
    fn policy_driven_merging_converges() {
        let t = tree();
        let policy = TieringPolicy::new(u64::MAX);
        let mut ts = 1u64;
        for round in 0..6 {
            for i in 0..50 {
                t.put(key(round * 50 + i), LsmEntry::put(vec![0; 32]), ts);
                ts += 1;
            }
            t.flush().unwrap();
            while t.maybe_merge(&policy).unwrap() {}
        }
        // With an uncapped tiering policy everything collapses to few
        // components, and all data is present.
        assert!(t.num_disk_components() <= 3);
        assert_eq!(t.disk_entries(), 300);
    }

    #[test]
    fn scan_sees_mem_and_disk_reconciled() {
        let t = tree();
        t.put(key(1), LsmEntry::put(b"disk".to_vec()), 1);
        t.put(key(2), LsmEntry::put(b"disk".to_vec()), 2);
        t.flush().unwrap();
        t.put(key(1), LsmEntry::put(b"mem".to_vec()), 3);
        t.put(key(3), LsmEntry::anti_matter(), 4);

        let mut scan = t
            .scan(Bound::Unbounded, Bound::Unbounded, ScanOptions::default())
            .unwrap();
        let (k, e) = scan.next_entry().unwrap().unwrap();
        assert_eq!((k, e.value.into_bytes()), (key(1), b"mem".to_vec()));
        let (k, e) = scan.next_entry().unwrap().unwrap();
        assert_eq!((k, e.value.into_bytes()), (key(2), b"disk".to_vec()));
        assert!(scan.next_entry().unwrap().is_none());
    }

    #[test]
    fn mutable_bitmaps_created_when_configured() {
        let t = LsmTree::new(
            Storage::new(StorageOptions::test()),
            LsmOptions {
                mutable_bitmaps: true,
                ..Default::default()
            },
        );
        t.put(key(1), LsmEntry::put(vec![]), 1);
        let c = t.flush().unwrap().unwrap();
        let bm = c.bitmap().expect("mutable bitmap attached");
        assert_eq!(bm.len(), 1);
        assert_eq!(bm.count_set(), 0);
    }

    #[test]
    fn merge_physically_removes_bitmap_invalidated_entries() {
        let t = tree();
        for i in 0..4 {
            t.put(key(i), LsmEntry::put(b"v".to_vec()), u64::from(i) + 1);
        }
        t.flush().unwrap();
        t.put(key(9), LsmEntry::put(b"v".to_vec()), 9);
        t.flush().unwrap();
        // Invalidate key 2 in the older component via a bitmap.
        let comps = t.disk_components();
        let older = &comps[1];
        let bm = Arc::new(crate::bitmap::AtomicBitmap::new(older.num_entries()));
        let (_, ord) = older.search(&key(2)).unwrap().unwrap();
        bm.set(ord);
        older.set_bitmap(bm).unwrap();

        let merged = t.merge_range(MergeRange { start: 0, end: 1 }).unwrap();
        assert_eq!(merged.num_entries(), 4); // 0,1,3,9
        assert!(merged.search(&key(2)).unwrap().is_none());
    }

    #[test]
    fn merged_filter_is_union_of_inputs() {
        let t = tree();
        t.put(key(1), LsmEntry::put(vec![]), 1);
        t.widen_mem_filter(&key(1), &Value::Int(2015));
        t.flush().unwrap();
        t.put(key(2), LsmEntry::put(vec![]), 2);
        t.widen_mem_filter(&key(2), &Value::Int(2018));
        t.flush().unwrap();
        let merged = t.merge_range(MergeRange { start: 0, end: 1 }).unwrap();
        let f = merged.range_filter().unwrap();
        assert_eq!(f.min(), &Value::Int(2015));
        assert_eq!(f.max(), &Value::Int(2018));
    }

    #[test]
    fn mem_filter_snapshot_on_flush() {
        let t = tree();
        t.put(key(1), LsmEntry::put(vec![]), 1);
        t.widen_mem_filter(&key(1), &Value::Int(7));
        let c = t.flush().unwrap().unwrap();
        assert!(c.range_filter().is_some());
        assert!(t.mem_filter().is_none(), "filter reset after flush");
    }

    // ---- sharded memory components ----------------------------------------

    #[test]
    fn sharded_puts_and_gets_roundtrip() {
        let t = sharded_tree(4);
        for i in 0..200 {
            t.put(key(i), LsmEntry::put(vec![i as u8]), u64::from(i) + 1);
        }
        assert_eq!(t.mem_len(), 200);
        for i in 0..200 {
            assert_eq!(t.mem_get(&key(i)).unwrap().value, vec![i as u8]);
        }
        // Replacement stays within the key's shard and wins.
        t.put(key(7), LsmEntry::put(b"new".to_vec()), 300);
        assert_eq!(t.mem_get(&key(7)).unwrap().value, b"new");
        assert_eq!(t.mem_len(), 200);
    }

    #[test]
    fn sharded_flush_components_share_the_generation_id() {
        let t = sharded_tree(4);
        for i in 0..100 {
            t.put(key(i), LsmEntry::put(vec![b'v']), u64::from(i) + 1);
        }
        t.flush().unwrap().unwrap();
        let comps = t.disk_components();
        assert!(comps.len() > 1, "expected several shard components");
        assert!(comps.len() <= 4);
        for c in &comps {
            assert_eq!(c.id(), ComponentId::new(1, 100), "shared generation id");
        }
        let total: u64 = comps.iter().map(|c| c.num_entries()).sum();
        assert_eq!(total, 100);
        assert_eq!(t.mem_len(), 0);
        // Every key remains reachable in exactly one shard component.
        for i in 0..100 {
            let hits = comps
                .iter()
                .filter(|c| c.search(&key(i)).unwrap().is_some())
                .count();
            assert_eq!(hits, 1, "key {i} in exactly one shard component");
        }
    }

    #[test]
    fn sharded_snapshot_is_globally_key_ordered() {
        let t = sharded_tree(3);
        for i in (0..60).rev() {
            t.put(key(i), LsmEntry::put(vec![]), u64::from(60 - i));
        }
        // Seal mid-stream, then overwrite a few keys in the fresh shards.
        t.seal_mem().unwrap();
        t.put(key(5), LsmEntry::put(b"new".to_vec()), 100);
        t.put(key(40), LsmEntry::anti_matter(), 101);
        let snap = t.mem_snapshot_range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(snap.len(), 60);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "ordered");
        let e5 = snap.iter().find(|(k, _)| k == &key(5)).unwrap();
        assert_eq!(e5.1.value, b"new", "active shadows sealed");
        let e40 = snap.iter().find(|(k, _)| k == &key(40)).unwrap();
        assert!(e40.1.anti_matter);
        t.flush_sealed().unwrap();
        assert!(!t.has_sealed());
    }

    #[test]
    fn sharded_merge_selection_covers_whole_generations() {
        let t = sharded_tree(4);
        let policy = TieringPolicy::new(u64::MAX);
        let mut ts = 1u64;
        for _ in 0..3 {
            for i in 0..80 {
                t.put(key(i), LsmEntry::put(vec![0; 16]), ts);
                ts += 1;
            }
            t.flush().unwrap();
        }
        let n = t.num_disk_components();
        assert!(n > 3, "three generations of shard components");
        let range = t.select_merge(&policy).expect("generations mergeable");
        assert_eq!((range.start, range.end), (0, n - 1), "whole generations");
        let merged = t.merge_range(range).unwrap();
        assert_eq!(t.num_disk_components(), 1);
        assert_eq!(merged.num_entries(), 80, "duplicates reconciled");
    }

    #[test]
    fn single_generation_is_never_selected_for_merge() {
        // A lone sharded generation must not merge with itself: its merged
        // interval would equal the generation's, and recovery could no
        // longer tell a merged component from a flush generation.
        let t = sharded_tree(4);
        let policy = TieringPolicy::new(u64::MAX);
        for i in 0..80 {
            t.put(key(i), LsmEntry::put(vec![0; 16]), u64::from(i) + 1);
        }
        t.flush().unwrap();
        assert!(t.num_disk_components() > 1);
        assert!(t.select_merge(&policy).is_none());
    }

    #[test]
    fn shard_one_matches_unsharded_layout() {
        // memtable_shards = 1 must be byte-identical to the historical
        // unsharded tree: one component per flush, exact interval ids.
        let t = sharded_tree(1);
        for i in 0..50 {
            t.put(key(i), LsmEntry::put(vec![b'x']), u64::from(i) + 1);
        }
        let c = t.flush().unwrap().unwrap();
        assert_eq!(t.num_disk_components(), 1);
        assert_eq!(c.id(), ComponentId::new(1, 50));
        assert_eq!(c.num_entries(), 50);
    }

    #[test]
    fn sharded_mem_bytes_tracks_all_shards() {
        let t = sharded_tree(4);
        assert_eq!(t.mem_bytes(), 0);
        for i in 0..40 {
            t.put(key(i), LsmEntry::put(vec![0; 50]), u64::from(i) + 1);
        }
        let total = t.mem_bytes();
        assert!(total > 40 * 50, "aggregate covers every shard: {total}");
        t.seal_mem().unwrap();
        assert_eq!(t.mem_bytes(), 0, "sealed bytes move out of the active sum");
        assert!(t.sealed_bytes() >= total);
        t.flush_sealed().unwrap();
        assert_eq!(t.sealed_bytes(), 0);
    }
}
