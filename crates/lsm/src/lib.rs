//! LSM-trees with the auxiliary machinery of Luo & Carey (VLDB 2019).
//!
//! This crate implements the per-index structure of the paper's storage
//! architecture (Section 3, Figure 1): an in-memory component plus immutable
//! disk components, each a bulk-loaded B+-tree with an optional Bloom
//! filter, range filter, and validity bitmap; component IDs as
//! `(minTS, maxTS)` intervals; flush and merge operations under tiering /
//! leveling policies; reconciling range scans; and the point-lookup
//! algorithms of Section 3.2 (naive, batched, stateful-cursor,
//! component-ID-pruned).
//!
//! The engine crate (`lsm-engine`) composes these trees into datasets —
//! primary index + primary key index + secondary indexes — and implements
//! the maintenance strategies on top.

#![warn(missing_docs)]

pub mod bitmap;
pub mod build_link;
pub mod component;
pub mod component_id;
pub mod entry;
pub mod lookup;
pub mod memtable;
pub mod merge_policy;
pub mod range_filter;
pub mod scan;
pub mod tree;

pub use bitmap::{AtomicBitmap, BitmapSnapshot};
pub use build_link::BuildLink;
pub use component::DiskComponent;
pub use component_id::ComponentId;
pub use entry::LsmEntry;
pub use lookup::{
    locate_valid, lookup_sorted, lookup_sorted_view, newest_disk_version_after,
    newest_version_after, point_lookup, LookupOptions,
};
pub use memtable::MemComponent;
pub use merge_policy::{LevelingPolicy, MergePolicy, MergeRange, NoMergePolicy, TieringPolicy};
pub use range_filter::RangeFilter;
pub use scan::{
    scan_components_sequential, scan_components_sequential_frozen,
    scan_components_sequential_range, LsmScan, ScanOptions, ScanPartition,
};
pub use tree::{BuildOptions, ComponentBuilder, LsmOptions, LsmTree};
