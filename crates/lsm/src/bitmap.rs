//! Validity bitmaps over component entries.
//!
//! Both proposed maintenance strategies mark obsolete entries with one bit
//! per entry, indexed by the entry's ordinal position in the component:
//!
//! * the Validation strategy's *immutable* bitmap is produced by an index
//!   repair operation (Section 4.4, Figure 7) and never changes afterwards;
//! * the Mutable-bitmap strategy's bitmap is mutated in place by writers,
//!   with the crucial simple semantics of Section 5.1: committed writers
//!   only flip bits 0 → 1 (delete); only transaction aborts flip 1 → 0.
//!
//! [`AtomicBitmap`] supports both: lock-free concurrent bit sets/unsets via
//! CAS, and cheap snapshots (used by the Side-file concurrency-control
//! method to freeze component contents during a merge).

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-size concurrent bitmap; bit = 1 means "entry invalid/deleted".
#[derive(Debug)]
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
    len: u64,
}

impl AtomicBitmap {
    /// Creates an all-zero bitmap over `len` entries.
    pub fn new(len: u64) -> Self {
        let words = (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        AtomicBitmap { words, len }
    }

    /// Number of entries covered.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the bitmap covers zero entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `pos`.
    pub fn get(&self, pos: u64) -> bool {
        assert!(pos < self.len, "bitmap index {pos} out of {}", self.len);
        self.words[(pos / 64) as usize].load(Ordering::Acquire) & (1 << (pos % 64)) != 0
    }

    /// Sets bit `pos` to 1 (marks the entry deleted). Returns `true` if the
    /// bit changed (i.e. this caller performed the delete).
    pub fn set(&self, pos: u64) -> bool {
        assert!(pos < self.len, "bitmap index {pos} out of {}", self.len);
        let mask = 1u64 << (pos % 64);
        let prev = self.words[(pos / 64) as usize].fetch_or(mask, Ordering::AcqRel);
        prev & mask == 0
    }

    /// Clears bit `pos` back to 0 (transaction abort). Returns `true` if the
    /// bit changed.
    pub fn unset(&self, pos: u64) -> bool {
        assert!(pos < self.len, "bitmap index {pos} out of {}", self.len);
        let mask = 1u64 << (pos % 64);
        let prev = self.words[(pos / 64) as usize].fetch_and(!mask, Ordering::AcqRel);
        prev & mask != 0
    }

    /// Number of set (invalid) bits.
    pub fn count_set(&self) -> u64 {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Acquire).count_ones() as u64)
            .sum()
    }

    /// Takes an immutable point-in-time copy.
    pub fn snapshot(&self) -> BitmapSnapshot {
        BitmapSnapshot {
            words: self
                .words
                .iter()
                .map(|w| w.load(Ordering::Acquire))
                .collect(),
            len: self.len,
        }
    }
}

/// An immutable copy of an [`AtomicBitmap`], used by the Side-file method to
/// scan old components without interference from concurrent deletes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitmapSnapshot {
    words: Vec<u64>,
    len: u64,
}

impl BitmapSnapshot {
    /// An all-zero snapshot (for components that have no bitmap).
    pub fn zeroes(len: u64) -> Self {
        BitmapSnapshot {
            words: vec![0; len.div_ceil(64) as usize],
            len,
        }
    }

    /// Number of entries covered.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the snapshot covers zero entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `pos`.
    pub fn get(&self, pos: u64) -> bool {
        assert!(pos < self.len, "bitmap index {pos} out of {}", self.len);
        self.words[(pos / 64) as usize] & (1 << (pos % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_set(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn set_get_unset() {
        let b = AtomicBitmap::new(130);
        assert!(!b.get(0));
        assert!(!b.get(129));
        assert!(b.set(129));
        assert!(b.get(129));
        assert!(!b.set(129)); // already set
        assert!(b.unset(129));
        assert!(!b.get(129));
        assert!(!b.unset(129)); // already clear
        assert_eq!(b.count_set(), 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_bounds_panics() {
        AtomicBitmap::new(10).get(10);
    }

    #[test]
    fn snapshot_is_point_in_time() {
        let b = AtomicBitmap::new(100);
        b.set(5);
        let snap = b.snapshot();
        b.set(6);
        assert!(snap.get(5));
        assert!(!snap.get(6));
        assert!(b.get(6));
        assert_eq!(snap.count_set(), 1);
        assert_eq!(b.count_set(), 2);
    }

    #[test]
    fn zeroes_snapshot() {
        let z = BitmapSnapshot::zeroes(77);
        assert_eq!(z.len(), 77);
        assert_eq!(z.count_set(), 0);
        assert!(!z.get(76));
    }

    #[test]
    fn concurrent_sets_each_win_once() {
        let b = Arc::new(AtomicBitmap::new(1024));
        let mut handles = vec![];
        let wins = Arc::new(AtomicU64::new(0));
        for _ in 0..4 {
            let b = b.clone();
            let wins = wins.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1024 {
                    if b.set(i) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Exactly one thread wins each bit: writer/writer races on the same
        // byte are resolved by CAS, per Section 5.2.
        assert_eq!(wins.load(Ordering::Relaxed), 1024);
        assert_eq!(b.count_set(), 1024);
    }

    #[test]
    fn empty_bitmap() {
        let b = AtomicBitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_set(), 0);
        assert!(b.snapshot().is_empty());
    }
}
