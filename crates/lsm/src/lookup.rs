//! Point lookups: single, naive-sorted, and batched (Section 3.2).
//!
//! The paper's central query-processing contribution is an efficient way to
//! fetch many records by primary key after a secondary-index search:
//!
//! * **naive**: keys are sorted, but each key is probed through all LSM
//!   components before moving to the next key — the device head bounces
//!   between component files, turning every read into a random I/O;
//! * **batched**: keys are split into batches and, per batch, components
//!   are probed *one at a time*, newest to oldest, each component's pages
//!   being touched in ascending key order — sequential where density allows;
//! * per-component probes optionally use the **stateful cursor** with
//!   exponential search, and Bloom filters (standard or **blocked**) gate
//!   every component probe;
//! * **component-ID propagation** ("pID", after Jia): a per-key timestamp
//!   interval (the ID of the secondary-index component the key was found
//!   in) prunes primary components whose ID interval is disjoint.

use crate::component::DiskComponent;
use crate::component_id::ComponentId;
use crate::entry::LsmEntry;
use crate::tree::LsmTree;
use lsm_btree::StatefulCursor;
use lsm_common::{Key, Result, Timestamp};
use std::sync::Arc;

/// Options for [`lookup_sorted`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LookupOptions<'a> {
    /// Probe components one at a time per batch (vs per key).
    pub batched: bool,
    /// Keys per batch when `batched` (0 = one single batch).
    pub keys_per_batch: usize,
    /// Use the stateful B+-tree cursor with exponential search.
    pub stateful: bool,
    /// Per-key component-ID hints, parallel to the key slice ("pID").
    /// A component is skipped for a key when their intervals are disjoint.
    pub id_hints: Option<&'a [ComponentId]>,
}

/// Result of a sorted multi-key lookup: `(index into the key slice, entry)`
/// for every key resolved to a live value, in retrieval order (not
/// necessarily key order when batching).
pub type FoundEntries = Vec<(usize, LsmEntry)>;

/// Looks up one key: memory component first, then disk components newest to
/// oldest, gated by Bloom filters. Returns the newest version — which may
/// be an anti-matter entry; callers decide what deletion means. Entries
/// invalidated by a validity bitmap are treated as deleted (`None`).
pub fn point_lookup(tree: &LsmTree, key: &[u8]) -> Result<Option<LsmEntry>> {
    if let Some(e) = tree.mem_get(key) {
        return Ok(Some(e));
    }
    let storage = tree.storage();
    for comp in tree.disk_components() {
        if !comp.bloom_may_contain(storage, key) {
            continue;
        }
        if let Some((entry, ordinal)) = comp.search(key)? {
            if !comp.is_valid(ordinal) {
                return Ok(None);
            }
            return Ok(Some(entry));
        }
    }
    Ok(None)
}

/// The newest version of `key` among components strictly newer than
/// `prune_ts` (plus the memory component). This is the primary-key-index
/// probe used by Timestamp Validation and index repair (Section 4.3/4.4):
/// components with `maxTS <= prune_ts` are pruned.
pub fn newest_version_after(
    tree: &LsmTree,
    key: &[u8],
    prune_ts: Timestamp,
) -> Result<Option<LsmEntry>> {
    if let Some(e) = tree.mem_get(key) {
        return Ok(Some(e));
    }
    let storage = tree.storage();
    for comp in tree.disk_components() {
        if comp.id().at_or_before(prune_ts) {
            continue;
        }
        if !comp.bloom_may_contain(storage, key) {
            continue;
        }
        if let Some((entry, _)) = comp.search(key)? {
            return Ok(Some(entry));
        }
    }
    Ok(None)
}

/// Like [`newest_version_after`] but searching disk components only —
/// index repair (Section 4.4) validates against flushed state and advances
/// the repaired timestamp to the newest unpruned disk component.
pub fn newest_disk_version_after(
    tree: &LsmTree,
    key: &[u8],
    prune_ts: Timestamp,
) -> Result<Option<LsmEntry>> {
    let storage = tree.storage();
    for comp in tree.disk_components() {
        if comp.id().at_or_before(prune_ts) {
            continue;
        }
        if !comp.bloom_may_contain(storage, key) {
            continue;
        }
        if let Some((entry, _)) = comp.search(key)? {
            return Ok(Some(entry));
        }
    }
    Ok(None)
}

/// Locates the valid (bitmap-live, non-anti-matter) disk entry for `key`,
/// returning its component and ordinal — the Mutable-bitmap strategy's
/// delete/upsert probe (Section 5.2): "search the primary key index to
/// locate the position of the deleted key".
pub fn locate_valid(
    tree: &LsmTree,
    key: &[u8],
) -> Result<Option<(Arc<DiskComponent>, u64, LsmEntry)>> {
    let storage = tree.storage();
    for comp in tree.disk_components() {
        if !comp.bloom_may_contain(storage, key) {
            continue;
        }
        if let Some((entry, ordinal)) = comp.search(key)? {
            if !comp.is_valid(ordinal) || entry.anti_matter {
                return Ok(None); // deleted already; older versions are stale
            }
            return Ok(Some((comp, ordinal, entry)));
        }
    }
    Ok(None)
}

/// Fetches many keys (must be sorted ascending). See [`LookupOptions`].
///
/// The memory component is read live through `tree` and the disk-component
/// list is captured *after* the memory pass, so an entry mid-flush is seen
/// in memory or on disk (never neither). Every call builds its own
/// per-component stateful cursors — concurrent callers (parallel query
/// partitions fetching their own sorted batches) share no cursor state.
pub fn lookup_sorted(
    tree: &LsmTree,
    keys: &[Key],
    opts: &LookupOptions<'_>,
) -> Result<FoundEntries> {
    let mut found: FoundEntries = Vec::new();
    if keys.is_empty() {
        return Ok(found);
    }
    // The memory component is always checked first (it is the newest);
    // the disk list is captured after, closing the flush-install window.
    let unresolved = resolve_mem(keys, |k| tree.mem_get(k), &mut found);
    let components = tree.disk_components();
    lookup_disk(
        tree.storage(),
        &components,
        keys,
        &unresolved,
        opts,
        &mut found,
    )?;
    Ok(found)
}

/// [`lookup_sorted`] over an explicit snapshot — a key-ordered in-memory
/// run plus a disk-component list, e.g. one captured atomically with
/// [`LsmTree::mem_and_disk_snapshot`].
///
/// Parallel queries fetch candidate batches per partition against one
/// shared snapshot: every partition resolves against the same component
/// list (so an entry mid-flush is seen exactly once, and component-ID
/// pruning agrees across partitions), while each call still builds its own
/// stateful cursors — no cursor is ever shared across partitions.
pub fn lookup_sorted_view(
    storage: &Arc<lsm_storage::Storage>,
    mem: Option<&[(Key, LsmEntry)]>,
    components: &[Arc<DiskComponent>],
    keys: &[Key],
    opts: &LookupOptions<'_>,
) -> Result<FoundEntries> {
    let mut found: FoundEntries = Vec::new();
    if keys.is_empty() {
        return Ok(found);
    }
    let mem_get = |key: &[u8]| {
        let run = mem?;
        run.binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|idx| run[idx].1.clone())
    };
    let unresolved = resolve_mem(keys, mem_get, &mut found);
    lookup_disk(storage, components, keys, &unresolved, opts, &mut found)?;
    Ok(found)
}

/// Resolves the keys found in memory into `found`; returns the indices
/// still unresolved, in ascending key order.
fn resolve_mem(
    keys: &[Key],
    mem_get: impl Fn(&[u8]) -> Option<LsmEntry>,
    found: &mut FoundEntries,
) -> Vec<usize> {
    debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys must be sorted");
    let mut unresolved: Vec<usize> = Vec::with_capacity(keys.len());
    for (i, key) in keys.iter().enumerate() {
        match mem_get(key) {
            Some(e) if e.anti_matter => {} // deleted: resolved, no result
            Some(e) => found.push((i, e)),
            None => unresolved.push(i),
        }
    }
    unresolved
}

/// The disk half of a sorted lookup: probes `components` (newest first)
/// for the still-unresolved keys, batched or naive per `opts`.
fn lookup_disk(
    storage: &Arc<lsm_storage::Storage>,
    components: &[Arc<DiskComponent>],
    keys: &[Key],
    unresolved: &[usize],
    opts: &LookupOptions<'_>,
    found: &mut FoundEntries,
) -> Result<()> {
    if opts.batched {
        let batch = if opts.keys_per_batch == 0 {
            unresolved.len().max(1)
        } else {
            opts.keys_per_batch
        };
        for chunk in unresolved.chunks(batch) {
            lookup_batch(storage, keys, chunk, components, opts, found)?;
        }
    } else {
        // Naive: per key, walk the components newest → oldest.
        for &i in unresolved {
            let key = &keys[i];
            for comp in components {
                if let Some(hints) = opts.id_hints {
                    if !comp.id().overlaps(&hints[i]) {
                        continue;
                    }
                }
                if !comp.bloom_may_contain(storage, key) {
                    continue;
                }
                if let Some((entry, ordinal)) = comp.search(key)? {
                    if comp.is_valid(ordinal) && !entry.anti_matter {
                        found.push((i, entry));
                    }
                    break; // resolved (live, deleted, or invalidated)
                }
            }
        }
    }
    Ok(())
}

/// One batch of the batched algorithm (Section 3.2): probe each component
/// once, in ascending key order, dropping resolved keys as we go.
fn lookup_batch(
    storage: &Arc<lsm_storage::Storage>,
    keys: &[Key],
    batch: &[usize],
    components: &[Arc<DiskComponent>],
    opts: &LookupOptions<'_>,
    found: &mut FoundEntries,
) -> Result<()> {
    let mut remaining: Vec<usize> = batch.to_vec();
    for comp in components {
        if remaining.is_empty() {
            break;
        }
        // Batched Bloom pre-pass: probe every key that survives
        // component-ID pruning in ONE filter call, so blocked filters can
        // resolve all block loads before the in-block probes (and the
        // B+-tree probe loop below stays branch-simple). Pruned keys are
        // never probed, so the bloom-check stats match the naive path.
        let candidates: Vec<&[u8]> = remaining
            .iter()
            .filter(|&&i| {
                opts.id_hints
                    .is_none_or(|hints| comp.id().overlaps(&hints[i]))
            })
            .map(|&i| keys[i].as_slice())
            .collect();
        let mut verdicts: Vec<bool> = Vec::new();
        comp.bloom_may_contain_batch(storage, &candidates, &mut verdicts);
        let mut vi = 0usize;
        let mut cursor = opts.stateful.then(|| StatefulCursor::new(comp.btree()));
        let mut still_unresolved: Vec<usize> = Vec::with_capacity(remaining.len());
        for &i in &remaining {
            let key = &keys[i];
            if let Some(hints) = opts.id_hints {
                if !comp.id().overlaps(&hints[i]) {
                    still_unresolved.push(i);
                    continue;
                }
            }
            let positive = verdicts[vi];
            vi += 1;
            if !positive {
                still_unresolved.push(i);
                continue;
            }
            let hit = match &mut cursor {
                Some(c) => c.seek_pinned(key)?,
                None => comp.btree().search_pinned(key)?,
            };
            match hit {
                Some((raw, ordinal)) => {
                    let entry = LsmEntry::decode_slice(raw)?;
                    if comp.is_valid(ordinal) && !entry.anti_matter {
                        found.push((i, entry));
                    }
                    // resolved either way: newest version seen
                }
                None => still_unresolved.push(i),
            }
        }
        remaining = still_unresolved;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{LsmOptions, LsmTree};
    use lsm_storage::{Storage, StorageOptions};

    fn key(i: u32) -> Key {
        format!("k{i:06}").into_bytes()
    }

    /// Three disk components + a memtable:
    ///   comp ids 1-300 (keys 0..300), 301-400 (100..200 overwritten),
    ///   401-450 (250..300 deleted), mem: key 0 overwritten.
    fn sample_tree() -> LsmTree {
        let t = LsmTree::new(Storage::new(StorageOptions::test()), LsmOptions::default());
        let mut ts = 1;
        for i in 0..300 {
            t.put(key(i), LsmEntry::put(b"v1".to_vec()), ts);
            ts += 1;
        }
        t.flush().unwrap();
        for i in 100..200 {
            t.put(key(i), LsmEntry::put(b"v2".to_vec()), ts);
            ts += 1;
        }
        t.flush().unwrap();
        for i in 250..300 {
            t.put(key(i), LsmEntry::anti_matter(), ts);
            ts += 1;
        }
        t.flush().unwrap();
        t.put(key(0), LsmEntry::put(b"mem".to_vec()), ts);
        t
    }

    #[test]
    fn point_lookup_sees_newest_version() {
        let t = sample_tree();
        assert_eq!(point_lookup(&t, &key(0)).unwrap().unwrap().value, b"mem");
        assert_eq!(point_lookup(&t, &key(50)).unwrap().unwrap().value, b"v1");
        assert_eq!(point_lookup(&t, &key(150)).unwrap().unwrap().value, b"v2");
        assert!(point_lookup(&t, &key(270)).unwrap().unwrap().anti_matter);
        assert!(point_lookup(&t, &key(999)).unwrap().is_none());
    }

    fn check_all_modes(t: &LsmTree, keys: Vec<Key>, expect: &[(u32, &[u8])]) {
        for (batched, stateful) in [(false, false), (true, false), (true, true)] {
            let opts = LookupOptions {
                batched,
                stateful,
                keys_per_batch: 7,
                id_hints: None,
            };
            let mut got: Vec<(Key, Vec<u8>)> = lookup_sorted(t, &keys, &opts)
                .unwrap()
                .into_iter()
                .map(|(i, e)| (keys[i].clone(), e.value.into_bytes()))
                .collect();
            got.sort();
            let mut want: Vec<(Key, Vec<u8>)> =
                expect.iter().map(|(i, v)| (key(*i), v.to_vec())).collect();
            want.sort();
            assert_eq!(got, want, "batched={batched} stateful={stateful}");
        }
    }

    #[test]
    fn lookup_sorted_modes_agree() {
        let t = sample_tree();
        let keys: Vec<Key> = vec![
            key(0),   // mem version
            key(50),  // v1
            key(120), // v2
            key(260), // deleted
            key(999), // absent
        ];
        check_all_modes(&t, keys, &[(0, b"mem"), (50, b"v1"), (120, b"v2")]);
    }

    #[test]
    fn batched_does_fewer_random_reads_than_naive() {
        // Keys striped across 4 components (key i lives in component i % 4),
        // so a sorted probe stream alternates between component files under
        // the naive algorithm but walks each file in order when batched —
        // the exact effect of Section 3.2 / Figure 12.
        let t = LsmTree::new(Storage::new(StorageOptions::test()), LsmOptions::default());
        let n = 2000u32;
        let mut ts = 1;
        for stripe in 0..4 {
            for i in (0..n).filter(|i| i % 4 == stripe) {
                t.put(key(i), LsmEntry::put(vec![b'x'; 100]), ts);
                ts += 1;
            }
            t.flush().unwrap();
        }
        let keys: Vec<Key> = (0..n).map(key).collect();
        let s = t.storage().clone();

        s.clear_cache();
        let before = s.stats();
        let res = lookup_sorted(&t, &keys, &LookupOptions::default()).unwrap();
        assert_eq!(res.len(), n as usize);
        let naive = s.stats().since(&before);

        s.clear_cache();
        let before = s.stats();
        let res = lookup_sorted(
            &t,
            &keys,
            &LookupOptions {
                batched: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(res.len(), n as usize);
        let batched = s.stats().since(&before);

        assert!(
            batched.rand_reads * 2 < naive.rand_reads,
            "batched {} vs naive {}",
            batched.rand_reads,
            naive.rand_reads
        );
        // Batching changes the ORDER of page accesses, not the pages;
        // leaf-page volume is the same (router pages may differ via cache).
        assert!(batched.seq_reads > naive.seq_reads);
    }

    #[test]
    fn id_hints_prune_components() {
        let t = sample_tree();
        let s = t.storage().clone();
        // Key 50 only exists in component 1-300; hint it tightly so the
        // other components are pruned without bloom checks.
        let keys = vec![key(50)];
        let hints = vec![ComponentId::new(10, 20)];
        let before = s.stats();
        let res = lookup_sorted(
            &t,
            &keys,
            &LookupOptions {
                batched: true,
                id_hints: Some(&hints),
                ..Default::default()
            },
        )
        .unwrap();
        let d = s.stats().since(&before);
        assert_eq!(res.len(), 1);
        // Only the one overlapping component was bloom-checked.
        assert_eq!(d.bloom_checks, 1);
    }

    #[test]
    fn newest_version_after_prunes_old_components() {
        let t = sample_tree();
        // Key 50 was written at ts 51 in component 1-300. Pruning at
        // ts >= 300 hides it.
        assert!(newest_version_after(&t, &key(50), 300).unwrap().is_none());
        assert!(newest_version_after(&t, &key(50), 0).unwrap().is_some());
        // Key 150's newest version (ts ~ 351) survives pruning at 300.
        let e = newest_version_after(&t, &key(150), 300).unwrap().unwrap();
        assert_eq!(e.value, b"v2");
        // Mem entries are always visible.
        assert!(newest_version_after(&t, &key(0), u64::MAX)
            .unwrap()
            .is_some());
    }

    #[test]
    fn locate_valid_finds_live_disk_entries() {
        let t = sample_tree();
        let (comp, ordinal, e) = locate_valid(&t, &key(150)).unwrap().unwrap();
        assert_eq!(e.value, b"v2");
        assert!(comp.is_valid(ordinal));
        // Deleted key: the anti-matter entry is newest → None.
        assert!(locate_valid(&t, &key(260)).unwrap().is_none());
        assert!(locate_valid(&t, &key(12345)).unwrap().is_none());
    }

    #[test]
    fn locate_valid_respects_bitmaps() {
        let t = sample_tree();
        let (comp, ordinal, _) = locate_valid(&t, &key(40)).unwrap().unwrap();
        let bm = Arc::new(crate::bitmap::AtomicBitmap::new(comp.num_entries()));
        bm.set(ordinal);
        comp.set_bitmap(bm).unwrap();
        assert!(locate_valid(&t, &key(40)).unwrap().is_none());
        // point_lookup treats the invalidated entry as deleted too.
        assert!(point_lookup(&t, &key(40)).unwrap().is_none());
    }

    #[test]
    fn empty_inputs() {
        let t = sample_tree();
        assert!(lookup_sorted(&t, &[], &LookupOptions::default())
            .unwrap()
            .is_empty());
    }

    /// The snapshot-view lookup must agree with the live lookup when handed
    /// an atomically captured view of the same tree.
    #[test]
    fn lookup_view_matches_live_lookup() {
        use std::ops::Bound;
        let t = sample_tree();
        let keys: Vec<Key> = vec![key(0), key(50), key(120), key(260), key(999)];
        let (mem, comps) = t.mem_and_disk_snapshot(Bound::Unbounded, Bound::Unbounded);
        for (batched, stateful) in [(false, false), (true, false), (true, true)] {
            let opts = LookupOptions {
                batched,
                stateful,
                keys_per_batch: 3,
                id_hints: None,
            };
            let mut live: Vec<(usize, Vec<u8>)> = lookup_sorted(&t, &keys, &opts)
                .unwrap()
                .into_iter()
                .map(|(i, e)| (i, e.value.into_bytes()))
                .collect();
            let mut view: Vec<(usize, Vec<u8>)> =
                lookup_sorted_view(t.storage(), Some(&mem), &comps, &keys, &opts)
                    .unwrap()
                    .into_iter()
                    .map(|(i, e)| (i, e.value.into_bytes()))
                    .collect();
            live.sort();
            view.sort();
            assert_eq!(live, view, "batched={batched} stateful={stateful}");
        }
        // An empty mem view resolves everything on disk (key 0's mem
        // version disappears, exposing the disk version).
        let found = lookup_sorted_view(
            t.storage(),
            None,
            &comps,
            &[key(0)],
            &LookupOptions::default(),
        )
        .unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].1.value, b"v1");
    }
}
