//! Synthetic workloads for the experimental evaluation (Section 6.1).
//!
//! YCSB has no secondary keys or secondary-index queries, so the paper uses
//! a synthetic tweet generator; this crate reimplements it along with the
//! insert/upsert drivers (duplicate ratio, update ratio, uniform vs
//! Zipf-skewed updates) and selectivity-controlled query generators.

pub mod drivers;
pub mod tweet;
pub mod zipf;

pub use drivers::{InsertWorkload, Op, SelectivityQueries, UpdateDistribution, UpsertWorkload};
pub use tweet::{TweetConfig, TweetGenerator, USER_ID_DOMAIN};
pub use zipf::ZipfSampler;
