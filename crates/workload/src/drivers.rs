//! Workload drivers: the insert and upsert streams of Sections 6.3.1/6.3.2.

use crate::tweet::{TweetConfig, TweetGenerator, USER_ID_DOMAIN};
use crate::zipf::ZipfSampler;
use lsm_common::Record;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How update targets are chosen among past keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateDistribution {
    /// All past keys equally likely.
    Uniform,
    /// Recent keys more likely (Zipf, theta 0.99, as in YCSB).
    Zipf,
}

/// One workload operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Insert a record (may carry a duplicate key under the insert
    /// workload's duplicate ratio).
    Insert(Record),
    /// Upsert a record (replaces any existing record with the same key).
    Upsert(Record),
}

impl Op {
    /// The record carried by the operation.
    pub fn record(&self) -> &Record {
        match self {
            Op::Insert(r) | Op::Upsert(r) => r,
        }
    }
}

/// Insert workload with a duplicate ratio (Section 6.3.1): duplicates are
/// uniformly chosen among all past keys and should be *rejected* by the
/// engine's key-uniqueness check.
#[derive(Debug)]
pub struct InsertWorkload {
    gen: TweetGenerator,
    rng: StdRng,
    duplicate_ratio: f64,
}

impl InsertWorkload {
    /// Creates the workload.
    pub fn new(cfg: TweetConfig, duplicate_ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&duplicate_ratio));
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0xDEAD_BEEF);
        InsertWorkload {
            gen: TweetGenerator::new(cfg),
            rng,
            duplicate_ratio,
        }
    }

    /// Next operation.
    pub fn next_op(&mut self) -> Op {
        let n = self.gen.num_issued();
        if n > 0 && self.rng.gen_bool(self.duplicate_ratio) {
            let idx = self.rng.gen_range(0..n);
            Op::Insert(self.gen.next_update_of(idx))
        } else {
            Op::Insert(self.gen.next_new())
        }
    }

    /// The underlying generator (for key inspection in tests/benches).
    pub fn generator(&self) -> &TweetGenerator {
        &self.gen
    }
}

/// Upsert workload with an update ratio and distribution (Section 6.3.2).
#[derive(Debug)]
pub struct UpsertWorkload {
    gen: TweetGenerator,
    rng: StdRng,
    update_ratio: f64,
    distribution: UpdateDistribution,
    zipf: ZipfSampler,
}

impl UpsertWorkload {
    /// Creates the workload (update ratio 0.1 and uniform distribution are
    /// the paper's defaults).
    pub fn new(cfg: TweetConfig, update_ratio: f64, distribution: UpdateDistribution) -> Self {
        assert!((0.0..=1.0).contains(&update_ratio));
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0xFEED_F00D);
        UpsertWorkload {
            gen: TweetGenerator::new(cfg),
            rng,
            update_ratio,
            distribution,
            zipf: ZipfSampler::new(0.99),
        }
    }

    /// Next operation.
    pub fn next_op(&mut self) -> Op {
        let n = self.gen.num_issued();
        if n > 0 && self.rng.gen_bool(self.update_ratio) {
            let idx = match self.distribution {
                UpdateDistribution::Uniform => self.rng.gen_range(0..n),
                UpdateDistribution::Zipf => {
                    self.zipf.grow_to(n as u64);
                    // Rank 1 = most recent = highest index.
                    let rank = self.zipf.sample(&mut self.rng);
                    n - rank as usize
                }
            };
            Op::Upsert(self.gen.next_update_of(idx))
        } else {
            Op::Upsert(self.gen.next_new())
        }
    }

    /// The underlying generator.
    pub fn generator(&self) -> &TweetGenerator {
        &self.gen
    }
}

/// Generates secondary-index range predicates on `user_id` with a controlled
/// selectivity (fraction of the `[0, 100K)` domain — with uniformly
/// distributed user ids this approximates the fraction of records selected).
#[derive(Debug)]
pub struct SelectivityQueries {
    rng: StdRng,
}

impl SelectivityQueries {
    /// Creates the query generator.
    pub fn new(seed: u64) -> Self {
        SelectivityQueries {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Returns an inclusive `user_id` range selecting about `selectivity`
    /// (e.g. `0.001` = 0.1%) of the domain, with a random start.
    pub fn user_id_range(&mut self, selectivity: f64) -> (i64, i64) {
        let width = ((USER_ID_DOMAIN as f64 * selectivity).round() as i64).max(1);
        let start = self.rng.gen_range(0..=(USER_ID_DOMAIN - width));
        (start, start + width - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TweetConfig {
        TweetConfig {
            msg_min: 5,
            msg_max: 5,
            seed: 11,
        }
    }

    #[test]
    fn insert_workload_duplicate_ratio() {
        let mut w = InsertWorkload::new(cfg(), 0.5);
        let mut seen = std::collections::HashSet::new();
        let mut dups = 0;
        for _ in 0..2000 {
            let op = w.next_op();
            let id = op.record().get(0).as_int().unwrap();
            if !seen.insert(id) {
                dups += 1;
            }
        }
        let ratio = dups as f64 / 2000.0;
        assert!((0.4..0.6).contains(&ratio), "duplicate ratio {ratio}");
    }

    #[test]
    fn zero_duplicate_ratio_is_all_fresh() {
        let mut w = InsertWorkload::new(cfg(), 0.0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            assert!(seen.insert(w.next_op().record().get(0).as_int().unwrap()));
        }
    }

    #[test]
    fn upsert_update_ratio() {
        let mut w = UpsertWorkload::new(cfg(), 0.3, UpdateDistribution::Uniform);
        let mut seen = std::collections::HashSet::new();
        let mut updates = 0;
        for _ in 0..2000 {
            let op = w.next_op();
            assert!(matches!(op, Op::Upsert(_)));
            if !seen.insert(op.record().get(0).as_int().unwrap()) {
                updates += 1;
            }
        }
        let ratio = updates as f64 / 2000.0;
        assert!((0.2..0.4).contains(&ratio), "update ratio {ratio}");
    }

    #[test]
    fn zipf_updates_prefer_recent_keys() {
        let mut w = UpsertWorkload::new(cfg(), 0.5, UpdateDistribution::Zipf);
        // Ingest a base population first.
        let mut order: Vec<i64> = Vec::new();
        let mut recent_updates = 0u32;
        let mut total_updates = 0u32;
        for _ in 0..5000 {
            let op = w.next_op();
            let id = op.record().get(0).as_int().unwrap();
            if let Some(pos) = order.iter().rposition(|&k| k == id) {
                total_updates += 1;
                // "Recent" = newest 10% at the time of the update.
                if pos >= order.len().saturating_sub(order.len() / 10) {
                    recent_updates += 1;
                }
            } else {
                order.push(id);
            }
        }
        assert!(total_updates > 100);
        let frac = recent_updates as f64 / total_updates as f64;
        assert!(frac > 0.5, "recent-update fraction {frac}");
    }

    #[test]
    fn selectivity_ranges() {
        let mut q = SelectivityQueries::new(5);
        for sel in [0.001, 0.01, 0.1, 0.5] {
            let (lo, hi) = q.user_id_range(sel);
            assert!(lo >= 0 && hi < USER_ID_DOMAIN && lo <= hi);
            let width = (hi - lo + 1) as f64 / USER_ID_DOMAIN as f64;
            assert!((width - sel).abs() < 0.001, "sel {sel} width {width}");
        }
    }
}
