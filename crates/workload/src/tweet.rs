//! The synthetic tweet generator of Section 6.1.
//!
//! Each tweet has a random 64-bit `id` (primary key), a `user_id` uniform in
//! `[0, 100K)` (the secondary key used for controlled-selectivity queries),
//! a `location` (two-letter state), a monotonically increasing
//! `creation_time` (the range-filter key), and a random `message` of
//! 450–550 bytes (configurable, so scaled-down benches can use smaller
//! records, and Figure 21/23 can use larger ones).

use lsm_common::{FieldType, Record, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Domain of the `user_id` attribute (0..100K in the paper).
pub const USER_ID_DOMAIN: i64 = 100_000;

const STATES: &[&str] = &[
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL", "IN", "IA", "KS",
    "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY",
    "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV",
    "WI", "WY",
];

/// Configuration for [`TweetGenerator`].
#[derive(Debug, Clone)]
pub struct TweetConfig {
    /// Minimum message length in bytes.
    pub msg_min: usize,
    /// Maximum message length in bytes.
    pub msg_max: usize,
    /// RNG seed (generators are deterministic given a seed).
    pub seed: u64,
}

impl Default for TweetConfig {
    fn default() -> Self {
        TweetConfig {
            msg_min: 450,
            msg_max: 550,
            seed: 42,
        }
    }
}

impl TweetConfig {
    /// Configuration producing records of roughly `bytes` each (message
    /// padded/truncated accordingly; other fields are ~50 bytes).
    pub fn with_record_bytes(bytes: usize) -> Self {
        let msg = bytes.saturating_sub(50).max(1);
        TweetConfig {
            msg_min: msg,
            msg_max: msg,
            seed: 42,
        }
    }
}

/// Generates tweets with unique random primary keys.
#[derive(Debug)]
pub struct TweetGenerator {
    cfg: TweetConfig,
    rng: StdRng,
    /// Primary keys issued so far, in ingestion order (index = recency rank
    /// from the back). Updates sample from this.
    issued: Vec<i64>,
    /// Monotonic creation-time counter.
    next_time: i64,
    used: std::collections::HashSet<i64>,
}

impl TweetGenerator {
    /// Creates a generator.
    pub fn new(cfg: TweetConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        TweetGenerator {
            cfg,
            rng,
            issued: Vec::new(),
            next_time: 0,
            used: std::collections::HashSet::new(),
        }
    }

    /// The tweet schema.
    pub fn schema() -> Schema {
        Schema::new(vec![
            ("id", FieldType::Int),
            ("user_id", FieldType::Int),
            ("location", FieldType::Str),
            ("creation_time", FieldType::Int),
            ("message", FieldType::Str),
        ])
        .expect("valid tweet schema")
    }

    /// Number of distinct keys issued.
    pub fn num_issued(&self) -> usize {
        self.issued.len()
    }

    /// The `i`-th issued primary key (ingestion order).
    pub fn issued_key(&self, i: usize) -> i64 {
        self.issued[i]
    }

    /// Generates a brand-new tweet with a fresh random primary key.
    pub fn next_new(&mut self) -> Record {
        let id = loop {
            let id = self.rng.gen::<i64>().abs();
            if self.used.insert(id) {
                break id;
            }
        };
        self.issued.push(id);
        self.record_with_id(id)
    }

    /// Generates a tweet whose primary key duplicates/updates the issued key
    /// at `index` (the record content is fresh — an update changes all
    /// non-key attributes except `creation_time`'s monotonicity).
    pub fn next_update_of(&mut self, index: usize) -> Record {
        let id = self.issued[index];
        self.record_with_id(id)
    }

    fn record_with_id(&mut self, id: i64) -> Record {
        let user_id = self.rng.gen_range(0..USER_ID_DOMAIN);
        let location = STATES[self.rng.gen_range(0..STATES.len())];
        let t = self.next_time;
        self.next_time += 1;
        let len = if self.cfg.msg_min >= self.cfg.msg_max {
            self.cfg.msg_min
        } else {
            self.rng.gen_range(self.cfg.msg_min..=self.cfg.msg_max)
        };
        let msg: String = (0..len)
            .map(|_| char::from(self.rng.gen_range(b'a'..=b'z')))
            .collect();
        Record::new(vec![
            Value::Int(id),
            Value::Int(user_id),
            Value::Str(location.to_owned()),
            Value::Int(t),
            Value::Str(msg),
        ])
    }

    /// The current creation-time watermark (max issued + 1).
    pub fn time_watermark(&self) -> i64 {
        self.next_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_tweets_have_unique_ids_and_monotonic_time() {
        let mut g = TweetGenerator::new(TweetConfig {
            msg_min: 10,
            msg_max: 20,
            seed: 1,
        });
        let mut prev_time = -1i64;
        let mut ids = std::collections::HashSet::new();
        for _ in 0..1000 {
            let r = g.next_new();
            let id = r.get(0).as_int().unwrap();
            assert!(ids.insert(id));
            let t = r.get(3).as_int().unwrap();
            assert!(t > prev_time);
            prev_time = t;
        }
        assert_eq!(g.num_issued(), 1000);
    }

    #[test]
    fn records_conform_to_schema_and_size() {
        let mut g = TweetGenerator::new(TweetConfig::default());
        let schema = TweetGenerator::schema();
        for _ in 0..10 {
            let r = g.next_new();
            schema.check(&r).unwrap();
            let bytes = r.encode().len();
            assert!((450..=650).contains(&bytes), "record size {bytes}");
        }
    }

    #[test]
    fn updates_reuse_issued_keys() {
        let mut g = TweetGenerator::new(TweetConfig {
            msg_min: 5,
            msg_max: 5,
            seed: 3,
        });
        g.next_new();
        g.next_new();
        let key0 = g.issued_key(0);
        let upd = g.next_update_of(0);
        assert_eq!(upd.get(0).as_int().unwrap(), key0);
        // Updates still advance creation time.
        assert_eq!(upd.get(3).as_int().unwrap(), 2);
    }

    #[test]
    fn user_ids_cover_domain_uniformly() {
        let mut g = TweetGenerator::new(TweetConfig {
            msg_min: 1,
            msg_max: 1,
            seed: 9,
        });
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            let r = g.next_new();
            let uid = r.get(1).as_int().unwrap();
            assert!((0..USER_ID_DOMAIN).contains(&uid));
            buckets[(uid * 10 / USER_ID_DOMAIN) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((700..1300).contains(&b), "bucket {i}: {b}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = TweetGenerator::new(TweetConfig::default());
        let mut b = TweetGenerator::new(TweetConfig::default());
        for _ in 0..5 {
            assert_eq!(a.next_new(), b.next_new());
        }
    }

    #[test]
    fn record_bytes_config() {
        let mut g = TweetGenerator::new(TweetConfig::with_record_bytes(1000));
        let r = g.next_new();
        let bytes = r.encode().len();
        assert!((950..1100).contains(&bytes), "{bytes}");
    }
}
