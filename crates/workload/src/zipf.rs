//! Zipfian sampling over a growing population.
//!
//! The paper's skewed upsert workload updates *recently ingested* keys more
//! frequently, following a Zipf distribution with theta 0.99 as in YCSB
//! (Section 6.3.2). Rank 1 is the most recent key; the probability of rank
//! `r` is proportional to `1/r^theta`.
//!
//! The population grows as ingestion proceeds, so the harmonic normalizer
//! `zeta(n)` is maintained incrementally.

use rand::Rng;

/// Zipfian rank sampler with incremental population growth.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    theta: f64,
    n: u64,
    zeta_n: f64,
}

impl ZipfSampler {
    /// Creates a sampler with the YCSB-style skew parameter (0.99).
    pub fn new(theta: f64) -> Self {
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        ZipfSampler {
            theta,
            n: 0,
            zeta_n: 0.0,
        }
    }

    /// Current population size.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Grows the population to `n` (no-op if already at least `n`).
    pub fn grow_to(&mut self, n: u64) {
        while self.n < n {
            self.n += 1;
            self.zeta_n += 1.0 / (self.n as f64).powf(self.theta);
        }
    }

    /// Samples a rank in `1..=n` (1 = most probable / most recent).
    /// Uses inverse-CDF sampling on the continuous approximation, which is
    /// accurate for theta < 1 and large n, then clamps into range.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        assert!(self.n > 0, "sample from empty population");
        // Continuous approximation: zeta(n) ≈ n^(1-θ)/(1-θ) + C. Invert
        // u·zeta(n) = r^(1-θ)/(1-θ) for r.
        let u: f64 = rng.gen_range(0.0..1.0);
        let one_minus = 1.0 - self.theta;
        let target = u * self.zeta_n * one_minus;
        let r = target.powf(1.0 / one_minus).ceil() as u64;
        r.clamp(1, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn skew_favours_low_ranks() {
        let mut z = ZipfSampler::new(0.99);
        z.grow_to(10_000);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut top_100 = 0u64;
        for _ in 0..n {
            if z.sample(&mut rng) <= 100 {
                top_100 += 1;
            }
        }
        // Under Zipf(0.99) the top 1% of ranks gets a large share of mass;
        // under uniform it would get 1%.
        let frac = top_100 as f64 / n as f64;
        assert!(frac > 0.3, "top-100 fraction {frac}");
    }

    #[test]
    fn samples_stay_in_range() {
        let mut z = ZipfSampler::new(0.5);
        z.grow_to(10);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            assert!((1..=10).contains(&r));
        }
    }

    #[test]
    fn growth_is_monotonic_and_idempotent() {
        let mut z = ZipfSampler::new(0.99);
        z.grow_to(100);
        let zeta_100 = z.zeta_n;
        z.grow_to(50); // no-op
        assert_eq!(z.population(), 100);
        assert_eq!(z.zeta_n, zeta_100);
        z.grow_to(200);
        assert!(z.zeta_n > zeta_100);
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        let z = ZipfSampler::new(0.99);
        let mut rng = StdRng::seed_from_u64(1);
        z.sample(&mut rng);
    }
}
