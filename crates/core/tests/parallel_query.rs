//! Parallel-vs-serial equivalence oracle.
//!
//! A randomized workload (inserts, upserts, deletes, interleaved flushes,
//! plus an unflushed tail) is mirrored into a `BTreeMap` oracle; the same
//! query set then runs through the serial collecting path, the parallel
//! collecting path, and the parallel stream, across the Eager, Validation,
//! and Mutable-bitmap strategies. All three must return *identical* results
//! in primary-key order, matching the oracle — including while background
//! maintenance churns components underneath the queries.

use lsm_common::{FieldType, Record, Schema, Value};
use lsm_engine::{
    Dataset, DatasetConfig, EngineConfig, MaintenanceRuntime, QueryResult, SecondaryIndexDef,
    StrategyKind,
};
use lsm_storage::{Storage, StorageOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(vec![("id", FieldType::Int), ("val", FieldType::Int)]).unwrap()
}

fn rec(id: i64, val: i64) -> Record {
    Record::new(vec![Value::Int(id), Value::Int(val)])
}

fn storage() -> Arc<Storage> {
    Storage::new(StorageOptions {
        cache_shards: 4,
        ..StorageOptions::test()
    })
}

fn config(strategy: StrategyKind) -> DatasetConfig {
    let mut cfg = DatasetConfig::new(schema(), 0);
    cfg.strategy = strategy;
    cfg.memory_budget = usize::MAX; // flushes under test control
    cfg.secondary_indexes = vec![SecondaryIndexDef {
        name: "val".into(),
        field: 1,
    }];
    cfg
}

/// Applies a deterministic random workload to `ds` and the oracle map.
fn apply_workload(ds: &Dataset, oracle: &mut BTreeMap<i64, i64>, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for round in 0..6 {
        for _ in 0..250 {
            let id = rng.gen_range(0..1200i64);
            if rng.gen_bool(0.15) {
                ds.delete(&Value::Int(id)).unwrap();
                oracle.remove(&id);
            } else {
                let val = rng.gen_range(0..100i64);
                ds.upsert(&rec(id, val)).unwrap();
                oracle.insert(id, val);
            }
        }
        if round < 5 {
            ds.flush_all().unwrap(); // the last round stays in memory
        }
    }
}

/// The oracle's answer: ids with `val ∈ [lo, hi]`, ascending.
fn expected(oracle: &BTreeMap<i64, i64>, lo: i64, hi: i64) -> Vec<i64> {
    oracle
        .iter()
        .filter(|(_, v)| (lo..=hi).contains(v))
        .map(|(k, _)| *k)
        .collect()
}

fn ids_of(res: &QueryResult) -> Vec<i64> {
    res.records()
        .iter()
        .map(|r| r.get(0).as_int().unwrap())
        .collect()
}

/// Runs one query three ways and checks all of them against the oracle.
fn check_range(ds: &Dataset, oracle: &BTreeMap<i64, i64>, lo: i64, hi: i64, n: usize) {
    let want = expected(oracle, lo, hi);

    let serial = ds
        .query("val")
        .range(lo, hi)
        .sort_output(true)
        .execute()
        .unwrap();
    let par = ds.query("val").range(lo, hi).parallel(n).execute().unwrap();
    let streamed: Vec<Record> = ds
        .query("val")
        .range(lo, hi)
        .parallel(n)
        .stream()
        .unwrap()
        .collect::<lsm_common::Result<Vec<_>>>()
        .unwrap();

    assert_eq!(ids_of(&serial), want, "serial vs oracle [{lo},{hi}]");
    assert_eq!(
        serial, par,
        "parallel({n}).execute() differs from serial [{lo},{hi}]"
    );
    assert_eq!(
        serial.records(),
        streamed.as_slice(),
        "parallel({n}).stream() differs from serial [{lo},{hi}]"
    );
    let par_ids = ids_of(&par);
    assert!(
        par_ids.windows(2).all(|w| w[0] < w[1]),
        "parallel output not strictly pk-ordered [{lo},{hi}]"
    );
}

fn check_all_ranges(ds: &Dataset, oracle: &BTreeMap<i64, i64>, n: usize) {
    for (lo, hi) in [(0, 99), (10, 30), (42, 42), (95, 99), (500, 600)] {
        check_range(ds, oracle, lo, hi, n);
    }
}

#[test]
fn parallel_matches_serial_across_strategies() {
    for (seed, strategy) in [
        (11, StrategyKind::Eager),
        (12, StrategyKind::Validation),
        (13, StrategyKind::MutableBitmap),
    ] {
        let ds = Dataset::open(storage(), None, config(strategy)).unwrap();
        let mut oracle = BTreeMap::new();
        apply_workload(&ds, &mut oracle, seed);
        for n in [2, 3, 7] {
            check_all_ranges(&ds, &oracle, n);
        }
        // parallel(1) and a parallel query on an unknown index behave
        // like their serial counterparts.
        check_range(&ds, &oracle, 10, 30, 1);
        assert!(ds.query("nope").parallel(4).execute().is_err());
    }
}

#[test]
fn parallel_index_only_and_limit_match_serial() {
    let ds = Dataset::open(storage(), None, config(StrategyKind::Validation)).unwrap();
    let mut oracle = BTreeMap::new();
    apply_workload(&ds, &mut oracle, 99);

    let want = expected(&oracle, 20, 60);
    let serial = ds
        .query("val")
        .range(20, 60)
        .index_only()
        .execute()
        .unwrap();
    let par = ds
        .query("val")
        .range(20, 60)
        .index_only()
        .parallel(3)
        .execute()
        .unwrap();
    let keys: Vec<i64> = par.keys().iter().map(|k| k.as_int().unwrap()).collect();
    assert_eq!(keys, want, "parallel index-only vs oracle");
    assert_eq!(serial.keys(), par.keys(), "index-only serial vs parallel");

    // Limited queries stay pk-ordered and cap the fan-in.
    let limited = ds
        .query("val")
        .range(20, 60)
        .parallel(3)
        .limit(7)
        .execute()
        .unwrap();
    assert_eq!(ids_of(&limited), want[..7.min(want.len())].to_vec());

    // Streaming an index-only parallel query is rejected like the serial
    // stream.
    assert!(ds
        .query("val")
        .range(20, 60)
        .index_only()
        .parallel(3)
        .stream()
        .is_err());
}

#[test]
fn parallel_query_driven_repair_marks_apply_once() {
    let ds = Dataset::open(storage(), None, config(StrategyKind::Validation)).unwrap();
    let mut oracle = BTreeMap::new();
    apply_workload(&ds, &mut oracle, 7);

    // A repair-marking parallel query returns correct results...
    let want = expected(&oracle, 0, 99);
    let res = ds
        .query("val")
        .range(0, 99)
        .query_driven_repair(true)
        .parallel(3)
        .execute()
        .unwrap();
    assert_eq!(ids_of(&res), want);
    // ...and leaves obsolescence marks behind: the updated/deleted keys'
    // stale entries are now invalidated in their secondary components.
    let marked: u64 = ds
        .secondary("val")
        .unwrap()
        .tree
        .disk_components()
        .iter()
        .filter_map(|c| c.bitmap().map(|b| b.count_set()))
        .sum();
    assert!(marked > 0, "repair-marking query left no bitmap marks");
    // A second identical query (serial, also repair-marking) still agrees.
    let again = ds
        .query("val")
        .range(0, 99)
        .query_driven_repair(true)
        .sort_output(true)
        .execute()
        .unwrap();
    assert_eq!(ids_of(&again), want);
}

/// Queries race background flushes and merges driven by a churn writer
/// that re-upserts records with UNCHANGED values: the logical content is
/// constant, so serial, parallel, and stream must keep agreeing with the
/// oracle throughout, on both Validation and Mutable-bitmap datasets.
#[test]
fn parallel_matches_serial_under_background_maintenance() {
    for strategy in [StrategyKind::Validation, StrategyKind::MutableBitmap] {
        let runtime = MaintenanceRuntime::start(
            EngineConfig::builder()
                .workers(2)
                .query_workers(2)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut cfg = config(strategy);
        cfg.memory_budget = 24 * 1024; // churn trips background flushes
        cfg.memory_ceiling = Some(usize::MAX);
        let ds = Dataset::open_with_runtime(storage(), None, cfg, &runtime).unwrap();
        assert!(
            ds.query_pool().is_some(),
            "runtime pool reaches the dataset"
        );
        assert_eq!(ds.query_pool().unwrap().workers(), 2);

        let mut oracle = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..1500 {
            let id = rng.gen_range(0..800i64);
            let val = rng.gen_range(0..100i64);
            ds.upsert(&rec(id, val)).unwrap();
            oracle.insert(id, val);
        }
        ds.maintenance().quiesce().unwrap();

        let pairs: Vec<(i64, i64)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let ds_ref = &ds;
            let stop_ref = &stop;
            let churn = scope.spawn(move || {
                let mut i = 0usize;
                while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                    let (id, val) = pairs[i % pairs.len()];
                    ds_ref.upsert(&rec(id, val)).unwrap();
                    i += 1;
                }
            });
            for round in 0..8 {
                let lo = (round % 4) * 20;
                check_range(ds_ref, &oracle, lo, lo + 25, 3);
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            churn.join().unwrap();
        });
        ds.maintenance().quiesce().unwrap();
        check_all_ranges(&ds, &oracle, 4);
        let snap = ds.stats().snapshot();
        assert!(snap.parallel_queries > 0);
        assert!(snap.query_partitions >= snap.parallel_queries);
    }
}
