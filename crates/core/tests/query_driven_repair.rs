//! Tests for query-driven maintenance — the paper's Section 7 future-work
//! direction ("let queries drive the maintenance of auxiliary structures,
//! as suggested by database cracking"): Timestamp validation records proven
//! obsolete entries in the source component's bitmap, so later queries skip
//! them and the next merge removes them physically.

use lsm_common::{FieldType, Record, Schema, Value};
use lsm_engine::query::{QueryResult, ValidationMethod};
use lsm_engine::{Dataset, DatasetConfig, SecondaryIndexDef, StrategyKind};
use lsm_storage::{Storage, StorageOptions};
use lsm_tree::MergeRange;
use std::sync::Arc;

fn dataset() -> Arc<Dataset> {
    let schema = Schema::new(vec![("id", FieldType::Int), ("group", FieldType::Int)]).unwrap();
    let mut cfg = DatasetConfig::new(schema, 0);
    cfg.strategy = StrategyKind::Validation;
    cfg.merge_repair = false;
    cfg.memory_budget = usize::MAX;
    cfg.secondary_indexes = vec![SecondaryIndexDef {
        name: "group".into(),
        field: 1,
    }];
    Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap()
}

fn rec(id: i64, group: i64) -> Record {
    Record::new(vec![Value::Int(id), Value::Int(group)])
}

/// A group query with Timestamp validation (explicit for the plain case so
/// both sides of the comparisons validate the same way; query-driven repair
/// resolves to Timestamp on its own).
fn group_result(ds: &Dataset, group: i64, query_driven: bool) -> QueryResult {
    ds.query("group")
        .eq(group)
        .validation(ValidationMethod::Timestamp)
        .query_driven_repair(query_driven)
        .sort_output(true)
        .execute()
        .unwrap()
}

/// 100 records in group 1, then 40 of them moved to group 2 — the group-1
/// index entries for those 40 are obsolete.
fn setup() -> Arc<Dataset> {
    let ds = dataset();
    for i in 0..100 {
        ds.insert(&rec(i, 1)).unwrap();
    }
    ds.flush_all().unwrap();
    for i in 0..40 {
        ds.upsert(&rec(i, 2)).unwrap();
    }
    ds.flush_all().unwrap();
    ds
}

fn group1(ds: &Dataset, query_driven: bool) -> Vec<i64> {
    group_result(ds, 1, query_driven)
        .records()
        .iter()
        .map(|r| r.get(0).as_int().unwrap())
        .collect()
}

#[test]
fn queries_mark_obsolete_entries() {
    let ds = setup();
    let sec = &ds.secondaries()[0].tree;
    let before: u64 = sec
        .disk_components()
        .iter()
        .filter_map(|c| c.bitmap().map(|b| b.count_set()))
        .sum();
    assert_eq!(before, 0);

    let res = group1(&ds, true);
    assert_eq!(res, (40..100).collect::<Vec<_>>());

    // The 40 obsolete group-1 entries are now bitmap-marked.
    let after: u64 = sec
        .disk_components()
        .iter()
        .filter_map(|c| c.bitmap().map(|b| b.count_set()))
        .sum();
    assert_eq!(after, 40);
}

#[test]
fn second_query_validates_nothing_extra() {
    let ds = setup();
    // First query pays the validation; the second skips marked entries —
    // measured through the pk-index bloom checks it no longer performs.
    group1(&ds, true);
    let before = ds.storage().stats().bloom_checks;
    let res = group1(&ds, true);
    assert_eq!(res.len(), 60);
    let validation_checks = ds.storage().stats().bloom_checks - before;
    // Without query-driven repair the same query re-validates all 100
    // candidates every time.
    let ds2 = setup();
    group1(&ds2, false);
    let before2 = ds2.storage().stats().bloom_checks;
    group1(&ds2, false);
    let validation_checks_plain = ds2.storage().stats().bloom_checks - before2;
    assert!(
        validation_checks < validation_checks_plain,
        "{validation_checks} !< {validation_checks_plain}"
    );
}

#[test]
fn answers_identical_with_and_without() {
    let ds_a = setup();
    let ds_b = setup();
    for g in [1i64, 2] {
        let a = group_result(&ds_a, g, true);
        let b = group_result(&ds_b, g, false);
        assert_eq!(a, b, "group {g}");
    }
}

#[test]
fn merge_physically_removes_query_marked_entries() {
    let ds = setup();
    group1(&ds, true);
    let sec = &ds.secondaries()[0].tree;
    let n = sec.num_disk_components();
    sec.merge_range(MergeRange {
        start: 0,
        end: n - 1,
    })
    .unwrap();
    // 100 original + 40 re-inserts = 140 entries; 40 marked obsolete are
    // dropped by the merge: 100 live entries remain.
    assert_eq!(sec.disk_entries(), 100);
    assert_eq!(group1(&ds, true), (40..100).collect::<Vec<_>>());
}

#[test]
fn memory_entries_are_never_marked() {
    let ds = dataset();
    for i in 0..10 {
        ds.insert(&rec(i, 1)).unwrap();
    }
    // Updates stay in memory; query-driven repair must not touch anything.
    for i in 0..5 {
        ds.upsert(&rec(i, 2)).unwrap();
    }
    let res = group1(&ds, true);
    assert_eq!(res, (5..10).collect::<Vec<_>>());
}
