//! Acceptance tests for the fluent query & maintenance API:
//!
//! * `QueryBuilder` default resolution produces correct answers for all
//!   four maintenance strategies with zero manually-set validation options;
//! * `RecordStream` yields exactly the records of `execute()` on a
//!   100k-record dataset while holding at most one batch in memory.

use lsm_common::{FieldType, Record, Schema, Value};
use lsm_engine::{Dataset, DatasetConfig, SecondaryIndexDef, StrategyKind};
use lsm_storage::{Storage, StorageOptions};
use std::collections::BTreeMap;
use std::sync::Arc;

fn dataset(strategy: StrategyKind, memory_budget: usize) -> Arc<Dataset> {
    let schema = Schema::new(vec![("id", FieldType::Int), ("group", FieldType::Int)]).unwrap();
    let mut cfg = DatasetConfig::new(schema, 0);
    cfg.strategy = strategy;
    cfg.memory_budget = memory_budget;
    cfg.merge.max_mergeable_bytes = u64::MAX;
    cfg.secondary_indexes = vec![SecondaryIndexDef {
        name: "group".into(),
        field: 1,
    }];
    Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap()
}

fn rec(id: i64, group: i64) -> Record {
    Record::new(vec![Value::Int(id), Value::Int(group)])
}

fn all_strategies() -> [StrategyKind; 4] {
    [
        StrategyKind::Eager,
        StrategyKind::Validation,
        StrategyKind::MutableBitmap,
        StrategyKind::DeletedKeyBTree,
    ]
}

/// A mixed workload with flushes, updates that move records between groups,
/// and deletes — exactly the shapes that expose stale secondary entries.
fn ingest_mixed(ds: &Dataset) -> BTreeMap<i64, i64> {
    let mut oracle = BTreeMap::new();
    for i in 0..600 {
        ds.insert(&rec(i, i % 10)).unwrap();
        oracle.insert(i, i % 10);
    }
    ds.flush_all().unwrap();
    for i in 0..200 {
        let g = 10 + i % 5;
        ds.upsert(&rec(i, g)).unwrap();
        oracle.insert(i, g);
    }
    ds.flush_all().unwrap();
    for i in 300..360 {
        ds.delete(&Value::Int(i)).unwrap();
        oracle.remove(&i);
    }
    // Leave some updates in memory too.
    for i in 400..450 {
        ds.upsert(&rec(i, 20)).unwrap();
        oracle.insert(i, 20);
    }
    oracle
}

fn oracle_ids(oracle: &BTreeMap<i64, i64>, lo: i64, hi: i64) -> Vec<i64> {
    oracle
        .iter()
        .filter(|(_, g)| (lo..=hi).contains(*g))
        .map(|(id, _)| *id)
        .collect()
}

/// The headline acceptance test: `Dataset::query` with **zero**
/// manually-set validation options answers correctly for every strategy.
#[test]
fn default_resolution_correct_across_all_strategies() {
    for strategy in all_strategies() {
        let ds = dataset(strategy, usize::MAX);
        let oracle = ingest_mixed(&ds);
        for (lo, hi) in [(0, 9), (10, 14), (20, 20), (0, 99)] {
            let want = oracle_ids(&oracle, lo, hi);

            // Record query, builder defaults only.
            let res = ds
                .query("group")
                .range(lo, hi)
                .sort_output(true)
                .execute()
                .unwrap();
            let got: Vec<i64> = res
                .records()
                .iter()
                .map(|r| r.get(0).as_int().unwrap())
                .collect();
            assert_eq!(got, want, "{strategy:?} records, group in [{lo},{hi}]");

            // Index-only query, builder defaults only.
            let res = ds
                .query("group")
                .range(lo, hi)
                .index_only()
                .execute()
                .unwrap();
            let mut got: Vec<i64> = res.keys().iter().map(|k| k.as_int().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, want, "{strategy:?} keys, group in [{lo},{hi}]");
        }

        // eq + limit compose with the defaults.
        let want = oracle_ids(&oracle, 20, 20);
        let res = ds
            .query("group")
            .eq(20)
            .sort_output(true)
            .limit(10)
            .execute()
            .unwrap();
        assert_eq!(res.len(), want.len().min(10), "{strategy:?} limited eq");
    }
}

/// Repair through the maintenance facade (strategy-aware defaults) must not
/// change any answers.
#[test]
fn maintenance_facade_preserves_answers() {
    for strategy in all_strategies() {
        let ds = dataset(strategy, usize::MAX);
        let oracle = ingest_mixed(&ds);
        ds.flush_all().unwrap();
        if strategy == StrategyKind::Eager {
            // Eager has nothing to repair; the facade still flushes/merges.
            ds.maintenance().run_merges().unwrap();
        } else {
            let reports = ds.maintenance().repair_all().unwrap();
            assert_eq!(reports.len(), 1, "{strategy:?}");
            ds.maintenance().run_merges().unwrap();
        }
        for (lo, hi) in [(0, 9), (10, 14), (20, 20)] {
            let res = ds
                .query("group")
                .range(lo, hi)
                .sort_output(true)
                .execute()
                .unwrap();
            let got: Vec<i64> = res
                .records()
                .iter()
                .map(|r| r.get(0).as_int().unwrap())
                .collect();
            assert_eq!(got, oracle_ids(&oracle, lo, hi), "{strategy:?} post-repair");
        }
    }
}

/// One secondary index can be repaired on its own, with and without a
/// piggybacked merge.
#[test]
fn repair_index_variants() {
    let ds = dataset(StrategyKind::Validation, usize::MAX);
    ingest_mixed(&ds);
    ds.flush_all().unwrap();

    let standalone = ds.maintenance().repair_index("group").unwrap();
    assert!(standalone.entries_scanned > 0);
    assert!(standalone.invalidated > 0);

    let merged = ds
        .maintenance()
        .plan()
        .with_merge(true)
        .repair_index("group")
        .unwrap();
    assert!(merged.entries_scanned > 0);
    assert_eq!(ds.secondaries()[0].tree.num_disk_components(), 1);

    assert!(ds.maintenance().repair_index("nope").is_err());
}

/// The streaming acceptance test: on a 100k-record dataset, `stream()`
/// yields exactly what `execute()` collects, in primary-key order, while
/// never holding more than one batch of records.
#[test]
fn stream_matches_execute_with_bounded_batches() {
    let n: i64 = 100_000;
    let groups = 50;
    let ds = dataset(StrategyKind::Validation, 512 * 1024);
    for i in 0..n {
        ds.insert(&rec(i, i % groups)).unwrap();
    }
    // Move some records between groups so validation has real work.
    for i in 0..2_000 {
        ds.upsert(&rec(i * 17 % n, (i % groups) + groups)).unwrap();
    }
    ds.flush_all().unwrap();

    // ~20% of the dataset: groups 0..10 (minus the moved records).
    let small_batch = 16 * 1024; // force many record-fetch batches
    let query = || {
        ds.query("group")
            .range(0, 9)
            .batch_bytes(small_batch)
            .sort_output(true)
    };
    let collected = query().execute().unwrap();
    assert!(
        collected.len() > 10_000,
        "query too selective: {}",
        collected.len()
    );

    let mut stream = query().stream().unwrap();
    assert!(
        stream.keys_per_batch() < collected.len() / 10,
        "batches too large to prove boundedness: {} keys/batch for {} results",
        stream.keys_per_batch(),
        collected.len()
    );
    let mut streamed = Vec::new();
    for item in &mut stream {
        streamed.push(item.unwrap());
    }

    // Identical results, identical (primary-key) order.
    assert_eq!(streamed.len(), collected.len());
    assert_eq!(streamed, collected.records().to_vec());

    // Bounded memory: many batches, none larger than the configured cap.
    assert!(
        stream.batches_fetched() > 10,
        "only {} batches",
        stream.batches_fetched()
    );
    assert!(
        stream.peak_batch_len() <= stream.keys_per_batch(),
        "peak batch {} exceeds cap {}",
        stream.peak_batch_len(),
        stream.keys_per_batch()
    );
}

/// Streaming honours limits, agrees with execute() under every lookup
/// mode, and refuses index-only queries.
#[test]
fn stream_modes_and_limits() {
    let ds = dataset(StrategyKind::Validation, usize::MAX);
    for i in 0..3_000 {
        ds.insert(&rec(i, i % 7)).unwrap();
        if i % 500 == 0 {
            ds.flush_all().unwrap();
        }
    }
    ds.flush_all().unwrap();

    let base: Vec<Record> = ds
        .query("group")
        .range(2, 3)
        .sort_output(true)
        .execute()
        .unwrap()
        .records()
        .to_vec();

    // Naive, batched, and pID streams all agree with the collecting path.
    for (naive, pid) in [(true, false), (false, false), (false, true)] {
        let mut q = ds.query("group").range(2, 3).batch_bytes(4 * 1024);
        if naive {
            q = q.naive();
        }
        q = q.propagate_component_ids(pid);
        let streamed: Vec<Record> = q.stream().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(streamed, base, "naive={naive} pid={pid}");
    }

    // Limit truncates the stream.
    let limited: Vec<Record> = ds
        .query("group")
        .range(2, 3)
        .batch_bytes(4 * 1024)
        .limit(11)
        .stream()
        .unwrap()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(limited, base[..11].to_vec());

    // Index-only queries have no record stream.
    assert!(ds.query("group").eq(1).index_only().stream().is_err());
    // Unknown index: the builder fails fast.
    assert!(ds.query("nope").eq(1).stream().is_err());
}

/// `limit(n)` must stop the record fetch early, not fetch everything and
/// truncate: a tightly limited query reads far fewer pages than the full
/// query over the same range.
#[test]
fn limit_stops_fetching_early() {
    let ds = dataset(StrategyKind::Validation, 256 * 1024);
    for i in 0..20_000 {
        ds.insert(&rec(i, i % 4)).unwrap();
    }
    ds.flush_all().unwrap();

    ds.storage().clear_cache();
    let before = ds.storage().stats();
    let full = ds
        .query("group")
        .eq(1)
        .batch_bytes(16 * 1024)
        .execute()
        .unwrap();
    let full_io = ds.storage().stats().since(&before);
    assert_eq!(full.len(), 5_000);

    ds.storage().clear_cache();
    let before = ds.storage().stats();
    let limited = ds
        .query("group")
        .eq(1)
        .batch_bytes(16 * 1024)
        .limit(20)
        .execute()
        .unwrap();
    let limited_io = ds.storage().stats().since(&before);
    assert_eq!(limited.len(), 20);
    // The limited run still scans the secondary index and validates
    // candidates, but fetches only one record batch.
    let full_reads = full_io.rand_reads + full_io.seq_reads;
    let limited_reads = limited_io.rand_reads + limited_io.seq_reads;
    assert!(
        limited_reads * 2 < full_reads,
        "limited {limited_reads} reads vs full {full_reads}"
    );
    // Limited results are a prefix of the pk-ordered full result.
    let sorted = ds.query("group").eq(1).sort_output(true).execute().unwrap();
    assert_eq!(limited.records(), &sorted.records()[..20]);
}

/// Repair on a dataset without a primary key index (a valid Eager
/// configuration) returns a recoverable error instead of panicking.
#[test]
fn repair_without_pk_index_errors_cleanly() {
    let schema = Schema::new(vec![("id", FieldType::Int), ("group", FieldType::Int)]).unwrap();
    let mut cfg = DatasetConfig::new(schema, 0);
    cfg.strategy = StrategyKind::Eager;
    cfg.with_pk_index = false;
    cfg.secondary_indexes = vec![SecondaryIndexDef {
        name: "group".into(),
        field: 1,
    }];
    let ds = Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap();
    ds.insert(&rec(1, 1)).unwrap();
    ds.flush_all().unwrap();
    assert!(ds.maintenance().repair_all().is_err());
    assert!(ds.maintenance().repair_index("group").is_err());
}
