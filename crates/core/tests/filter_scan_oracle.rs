//! Filter-scan differential oracle.
//!
//! A randomized workload (inserts, upserts, deletes, interleaved flushes,
//! plus an unflushed tail) is mirrored into a `BTreeMap`; the same
//! filter predicates then run through the serial collecting path, the
//! partitioned path at several fan-outs, and both streams, across all four
//! maintenance strategies and all three leaf-page encodings. Every path must
//! return *identical* records in primary-key order, matching the mirror —
//! including while background flushes, merges, and delete traffic churn
//! components underneath the scans.

use lsm_common::{Record, Result, Schema, Value};
use lsm_engine::{Dataset, DatasetConfig, EngineConfig, MaintenanceRuntime, StrategyKind};
use lsm_storage::{LeafEncoding, Storage, StorageOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(vec![
        ("id", lsm_common::FieldType::Int),
        ("time", lsm_common::FieldType::Int),
    ])
    .unwrap()
}

fn rec(id: i64, t: i64) -> Record {
    Record::new(vec![Value::Int(id), Value::Int(t)])
}

fn storage(encoding: LeafEncoding) -> Arc<Storage> {
    Storage::new(StorageOptions {
        cache_shards: 4,
        leaf_encoding: encoding,
        ..StorageOptions::test()
    })
}

fn config(strategy: StrategyKind) -> DatasetConfig {
    let mut cfg = DatasetConfig::new(schema(), 0);
    cfg.strategy = strategy;
    cfg.filter_field = Some(1);
    cfg.memory_budget = usize::MAX; // flushes under test control
    cfg
}

fn all_strategies() -> [StrategyKind; 4] {
    [
        StrategyKind::Eager,
        StrategyKind::Validation,
        StrategyKind::MutableBitmap,
        StrategyKind::DeletedKeyBTree,
    ]
}

/// Applies a deterministic random workload to `ds` and the mirror map
/// (`id -> time`).
fn apply_workload(ds: &Dataset, mirror: &mut BTreeMap<i64, i64>, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for round in 0..6 {
        for _ in 0..250 {
            let id = rng.gen_range(0..1200i64);
            if rng.gen_bool(0.15) {
                ds.delete(&Value::Int(id)).unwrap();
                mirror.remove(&id);
            } else {
                let t = rng.gen_range(0..1000i64);
                ds.upsert(&rec(id, t)).unwrap();
                mirror.insert(id, t);
            }
        }
        if round < 5 {
            ds.flush_all().unwrap(); // the last round stays in memory
        }
    }
}

/// The mirror's answer: full records with `time ∈ [lo, hi]`, pk-ascending.
fn expected(mirror: &BTreeMap<i64, i64>, lo: Option<i64>, hi: Option<i64>) -> Vec<Record> {
    mirror
        .iter()
        .filter(|(_, t)| lo.is_none_or(|l| **t >= l) && hi.is_none_or(|h| **t <= h))
        .map(|(id, t)| rec(*id, *t))
        .collect()
}

/// Runs one predicate through every execution path at fan-outs `ns` and
/// checks each against the mirror.
fn check_range(
    ds: &Dataset,
    mirror: &BTreeMap<i64, i64>,
    lo: Option<i64>,
    hi: Option<i64>,
    ns: &[usize],
    label: &str,
) {
    let want = expected(mirror, lo, hi);
    let scan = || {
        let mut b = ds.filter_scan();
        if let Some(l) = lo {
            b = b.range_from(l);
        }
        if let Some(h) = hi {
            b = b.range_to(h);
        }
        b
    };

    let serial = scan().records().unwrap();
    assert_eq!(serial, want, "{label}: serial vs mirror [{lo:?},{hi:?}]");
    let ids: Vec<i64> = serial.iter().map(|r| r.get(0).as_int().unwrap()).collect();
    assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "{label}: serial output not strictly pk-ordered [{lo:?},{hi:?}]"
    );
    assert_eq!(
        scan().count().unwrap().matches,
        want.len() as u64,
        "{label}: count vs mirror [{lo:?},{hi:?}]"
    );
    let streamed: Vec<Record> = scan().stream().unwrap().collect::<Result<_>>().unwrap();
    assert_eq!(
        streamed, serial,
        "{label}: stream vs serial [{lo:?},{hi:?}]"
    );

    for &n in ns {
        let par = scan().parallel(n).records().unwrap();
        assert_eq!(
            par, serial,
            "{label}: parallel({n}) vs serial [{lo:?},{hi:?}]"
        );
        let report = scan().parallel(n).count().unwrap();
        assert_eq!(report.matches, want.len() as u64, "{label}: parallel({n})");
        assert!(
            report.partitions >= 1 && report.partitions <= n as u64,
            "{label}: parallel({n}) planned {} partitions",
            report.partitions
        );
        let pstream: Vec<Record> = scan()
            .parallel(n)
            .stream()
            .unwrap()
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(
            pstream, serial,
            "{label}: parallel({n}) stream vs serial [{lo:?},{hi:?}]"
        );
    }
}

const RANGES: [(Option<i64>, Option<i64>); 6] = [
    (None, None),
    (None, Some(199)),
    (Some(300), Some(700)),
    (Some(900), None),
    (Some(424), Some(424)),
    (Some(2000), Some(3000)), // empty
];

#[test]
fn filter_scan_matches_oracle_across_strategies_and_encodings() {
    for encoding in [
        LeafEncoding::Plain,
        LeafEncoding::Prefix,
        LeafEncoding::Columnar,
    ] {
        for (i, strategy) in all_strategies().into_iter().enumerate() {
            let ds = Dataset::open(storage(encoding), None, config(strategy)).unwrap();
            let mut mirror = BTreeMap::new();
            apply_workload(&ds, &mut mirror, 31 + i as u64);
            let label = format!("{strategy:?}/{}", encoding.name());
            for (lo, hi) in RANGES {
                check_range(&ds, &mirror, lo, hi, &[1, 2, 3, 7], &label);
            }
        }
    }
}

/// Scans race background flushes, merges, and delete traffic driven by a
/// churn writer whose operations leave the logical content unchanged:
/// every path must keep agreeing with the mirror throughout, on all three leaf
/// encodings.
#[test]
fn filter_scan_matches_oracle_under_background_churn() {
    for encoding in [
        LeafEncoding::Plain,
        LeafEncoding::Prefix,
        LeafEncoding::Columnar,
    ] {
        for strategy in [StrategyKind::Validation, StrategyKind::MutableBitmap] {
            let runtime = MaintenanceRuntime::start(
                EngineConfig::builder()
                    .workers(2)
                    .query_workers(2)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            let mut cfg = config(strategy);
            cfg.memory_budget = 24 * 1024; // churn trips background flushes
            cfg.memory_ceiling = Some(usize::MAX);
            let ds = Dataset::open_with_runtime(storage(encoding), None, cfg, &runtime).unwrap();

            let mut mirror = BTreeMap::new();
            let mut rng = StdRng::seed_from_u64(57);
            for _ in 0..1500 {
                let id = rng.gen_range(0..800i64);
                let t = rng.gen_range(0..1000i64);
                ds.upsert(&rec(id, t)).unwrap();
                mirror.insert(id, t);
            }
            ds.maintenance().quiesce().unwrap();

            let pairs: Vec<(i64, i64)> = mirror.iter().map(|(k, v)| (*k, *v)).collect();
            let label = format!("churn/{strategy:?}/{}", encoding.name());
            let stop = std::sync::atomic::AtomicBool::new(false);
            std::thread::scope(|scope| {
                let ds_ref = &ds;
                let stop_ref = &stop;
                // If an assertion below panics, the unwind still has to get
                // past the scope's implicit join — raise the stop flag on
                // the way out so the churn writer exits instead of hanging
                // the test forever.
                struct StopOnUnwind<'a>(&'a std::sync::atomic::AtomicBool);
                impl Drop for StopOnUnwind<'_> {
                    fn drop(&mut self) {
                        self.0.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                }
                let _stop_guard = StopOnUnwind(stop_ref);
                let churn = scope.spawn(move || {
                    // Re-upserts with unchanged values plus insert+delete of
                    // transient ids far outside the mirror's domain: flushes,
                    // merges, and anti-matter churn through the components
                    // without ever changing the queryable content.
                    let mut i = 0usize;
                    while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                        let (id, t) = pairs[i % pairs.len()];
                        ds_ref.upsert(&rec(id, t)).unwrap();
                        if i.is_multiple_of(5) {
                            let ghost = 100_000 + (i % 7) as i64;
                            ds_ref.upsert(&rec(ghost, 50_000)).unwrap();
                            ds_ref.delete(&Value::Int(ghost)).unwrap();
                        }
                        i += 1;
                    }
                });
                // Bounded predicates only while the churn writer runs: the
                // transient records' filter value (50 000) is outside every
                // queried range, so mid-flight ghosts cannot match.
                for round in 0..8i64 {
                    let lo = (round % 4) * 200;
                    check_range(&ds, &mirror, Some(lo), Some(lo + 250), &[3], &label);
                }
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
                churn.join().unwrap();
            });
            // Clear any ghost left live by the final churn iteration, then
            // the full sweep — unbounded predicate included — must agree.
            for ghost in 100_000..100_007i64 {
                ds.delete(&Value::Int(ghost)).unwrap();
            }
            ds.maintenance().quiesce().unwrap();
            for (lo, hi) in RANGES {
                check_range(&ds, &mirror, lo, hi, &[2, 7], &label);
            }
            let snap = ds.stats().snapshot();
            assert!(snap.parallel_filter_scans > 0, "{label}");
            assert!(
                snap.filter_scan_partitions >= snap.parallel_filter_scans,
                "{label}"
            );
            assert!(snap.flush_jobs > 0, "{label}: churn never flushed");
        }
    }
}
