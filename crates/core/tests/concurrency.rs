//! Integration tests for the Section 5.3 concurrency-control methods:
//! merges of mutable-bitmap components racing with live writers.

use lsm_common::{FieldType, Record, Schema, Value};
use lsm_engine::cc::{merge_primary_with_cc, CcMethod};
use lsm_engine::{Dataset, DatasetConfig, StrategyKind};
use lsm_storage::{Storage, StorageOptions};
use lsm_tree::MergeRange;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(vec![("id", FieldType::Int), ("v", FieldType::Int)]).unwrap()
}

fn dataset() -> Arc<Dataset> {
    let mut cfg = DatasetConfig::new(schema(), 0);
    cfg.strategy = StrategyKind::MutableBitmap;
    cfg.memory_budget = usize::MAX; // flush manually
    cfg.secondary_indexes = vec![];
    Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap()
}

fn rec(id: i64, v: i64) -> Record {
    Record::new(vec![Value::Int(id), Value::Int(v)])
}

/// Loads `comps` components of `per_comp` records each.
fn load(ds: &Dataset, comps: i64, per_comp: i64) {
    for c in 0..comps {
        for i in 0..per_comp {
            ds.insert(&rec(c * per_comp + i, 0)).unwrap();
        }
        ds.flush_all().unwrap();
    }
}

/// Every record must read back with its latest value after a cc merge that
/// raced concurrent upserts.
fn run_concurrent_merge(method: CcMethod) {
    let ds = dataset();
    let n_comps = 4i64;
    let per_comp = 500i64;
    load(&ds, n_comps, per_comp);
    let total = n_comps * per_comp;
    assert_eq!(ds.primary().num_disk_components(), n_comps as usize);

    let stop = Arc::new(AtomicBool::new(false));
    let writer_ds = ds.clone();
    let writer_stop = stop.clone();
    // A writer upserting random-ish keys at max speed while the merge runs.
    let writer = std::thread::spawn(move || {
        let mut updated = Vec::new();
        let mut x: i64 = 12345;
        let mut round: i64 = 1;
        while !writer_stop.load(Ordering::Relaxed) {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let id = x.rem_euclid(total);
            writer_ds.upsert_no_maintenance(&rec(id, round)).unwrap();
            updated.push((id, round));
            round += 1;
        }
        updated
    });

    // Merge all four components under the chosen method.
    let range = MergeRange {
        start: 0,
        end: n_comps as usize - 1,
    };
    let new_comp = merge_primary_with_cc(&ds, range, method).unwrap();
    stop.store(true, Ordering::Relaxed);
    let updates = writer.join().unwrap();
    assert!(!updates.is_empty(), "writer made progress during the merge");
    assert!(new_comp.num_entries() > 0);
    assert_eq!(ds.primary().num_disk_components(), 1);

    // Correctness: every key's latest value is visible; no resurrections.
    let mut latest: std::collections::HashMap<i64, i64> = std::collections::HashMap::new();
    for (id, round) in updates {
        latest.insert(id, round);
    }
    for id in 0..total {
        let want = latest.get(&id).copied().unwrap_or(0);
        let got = ds
            .get(&Value::Int(id))
            .unwrap()
            .unwrap_or_else(|| panic!("id {id} vanished"))
            .get(1)
            .as_int()
            .unwrap();
        assert_eq!(got, want, "id {id} under {method:?}");
    }
}

#[test]
fn lock_method_merge_with_concurrent_writers() {
    run_concurrent_merge(CcMethod::Lock);
}

#[test]
fn side_file_method_merge_with_concurrent_writers() {
    run_concurrent_merge(CcMethod::SideFile);
}

#[test]
fn quiescent_merges_agree_across_methods() {
    // Without concurrent writers, all three methods produce identical
    // component contents.
    let mut results = Vec::new();
    for method in [CcMethod::Baseline, CcMethod::Lock, CcMethod::SideFile] {
        let ds = dataset();
        load(&ds, 3, 200);
        // Delete some keys and update others first.
        for id in 0..50 {
            ds.delete(&Value::Int(id * 7 % 600)).unwrap();
        }
        for id in 0..50 {
            ds.upsert(&rec(id * 11 % 600, 9)).unwrap();
        }
        ds.flush_all().unwrap();
        let range = MergeRange {
            start: 0,
            end: ds.primary().num_disk_components() - 1,
        };
        let comp = merge_primary_with_cc(&ds, range, method).unwrap();
        let mut contents = Vec::new();
        let mut scan = comp.btree().scan_all().unwrap();
        while let Some((k, v, _)) = scan.next_entry().unwrap() {
            contents.push((k, v));
        }
        results.push((method, contents));
    }
    let (m0, base) = &results[0];
    for (m, contents) in &results[1..] {
        assert_eq!(contents, base, "{m:?} vs {m0:?}");
    }
}

#[test]
fn deletes_during_merge_reach_the_new_component() {
    // Deterministic interleaving: start a Lock-method merge, but perform the
    // racing delete between the build and catch-up phases by hooking the
    // writer between two explicit merges.
    let ds = dataset();
    load(&ds, 2, 100);
    // Delete key 5 (lives in component 0) while NO merge runs: plain bitmap.
    ds.delete(&Value::Int(5)).unwrap();
    let range = MergeRange { start: 0, end: 1 };
    merge_primary_with_cc(&ds, range, CcMethod::Lock).unwrap();
    assert!(ds.get(&Value::Int(5)).unwrap().is_none());
    // Deletes after the merge work against the merged component.
    ds.delete(&Value::Int(6)).unwrap();
    assert!(ds.get(&Value::Int(6)).unwrap().is_none());
    assert!(ds.get(&Value::Int(7)).unwrap().is_some());
}

#[test]
fn pk_index_stays_paired_after_cc_merge() {
    let ds = dataset();
    load(&ds, 3, 100);
    let range = MergeRange { start: 0, end: 2 };
    merge_primary_with_cc(&ds, range, CcMethod::SideFile).unwrap();
    let p = ds.primary().disk_components();
    let k = ds.pk_index().unwrap().disk_components();
    assert_eq!(p.len(), 1);
    assert_eq!(k.len(), 1);
    assert_eq!(p[0].num_entries(), k[0].num_entries());
    assert!(Arc::ptr_eq(
        &p[0].bitmap().unwrap(),
        &k[0].bitmap().unwrap()
    ));
    // Upserts keep flowing through the shared bitmap.
    ds.upsert(&rec(42, 1)).unwrap();
    assert_eq!(p[0].bitmap().unwrap().count_set(), 1);
}
