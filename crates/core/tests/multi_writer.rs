//! Multi-writer oracle stress for sharded memtables (PR 7).
//!
//! Writer threads on disjoint key ranges hammer a dataset whose active
//! memtables are sharded (`memtable_shards = 4`) while flushes and merges
//! churn, then the final logical state is compared key-for-key against a
//! single-shard dataset that applied the same operations sequentially —
//! the oracle. Runs the matrix the tentpole promises: {Eager, Validation,
//! MutableBitmap} × {inline, background} maintenance.
//!
//! Also pins the `memtable_shards = 1` compatibility contract (one disk
//! component per flush — the pre-sharding layout) and exercises
//! concurrent `WriteBatch` commits against a WAL, asserting the
//! group-commit counters and that crash recovery replays every forced
//! group.

use lsm_common::{FieldType, Record, Schema, Value};
use lsm_engine::recovery::{recover, simulate_crash, CheckpointState};
use lsm_engine::{
    BatchOpResult, Dataset, DatasetConfig, EngineConfig, MaintenanceRuntime, SecondaryIndexDef,
    StrategyKind,
};
use lsm_storage::{Storage, StorageOptions};
use std::collections::{HashMap, HashSet};

const WRITERS: usize = 4;
const OPS_PER_WRITER: usize = 800;
const KEYS_PER_WRITER: i64 = 200;
const GROUPS: i64 = 5;

fn schema() -> Schema {
    Schema::new(vec![
        ("id", FieldType::Int),
        ("round", FieldType::Int),
        ("grp", FieldType::Str),
    ])
    .unwrap()
}

fn grp(id: i64) -> String {
    format!("g{}", id % GROUPS)
}

fn rec(id: i64, round: i64) -> Record {
    Record::new(vec![Value::Int(id), Value::Int(round), Value::Str(grp(id))])
}

fn config(strategy: StrategyKind, shards: usize) -> DatasetConfig {
    let mut cfg = DatasetConfig::new(schema(), 0);
    cfg.strategy = strategy;
    cfg.secondary_indexes = vec![SecondaryIndexDef {
        name: "grp".into(),
        field: 2,
    }];
    cfg.memtable_shards = shards;
    // Small budget + uncapped tiering so flushes and merges churn under
    // the writers.
    cfg.memory_budget = 16 * 1024;
    cfg.merge.max_mergeable_bytes = u64::MAX;
    cfg
}

/// Writer `w`'s deterministic op sequence over its own key range
/// `[w*KEYS_PER_WRITER, (w+1)*KEYS_PER_WRITER)`: `(id, None)` = delete,
/// `(id, Some(round))` = upsert. Disjoint ranges mean writers on
/// different shards never contend on key locks, which is the contention
/// profile sharding targets.
fn writer_ops(w: usize) -> Vec<(i64, Option<i64>)> {
    let base = w as i64 * KEYS_PER_WRITER;
    let mut x: i64 = 0x9E37_79B9 ^ (w as i64);
    (0..OPS_PER_WRITER)
        .map(|op| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let id = base + x.rem_euclid(KEYS_PER_WRITER);
            (id, (op % 5 != 4).then_some(op as i64))
        })
        .collect()
}

/// Final per-key state across all writers (disjoint ranges: no
/// cross-writer interleaving to model).
fn oracle_state() -> HashMap<i64, Option<i64>> {
    (0..WRITERS)
        .flat_map(|w| writer_ops(w).into_iter())
        .collect()
}

fn apply(ds: &Dataset, id: i64, op: Option<i64>) {
    match op {
        None => {
            ds.delete(&Value::Int(id)).unwrap();
        }
        Some(round) => ds.upsert(&rec(id, round)).unwrap(),
    }
}

/// Asserts `ds`'s logical state equals the oracle: point lookups for
/// every touched key and secondary-index group queries.
fn assert_matches_oracle(ds: &Dataset, label: &str) {
    let expect = oracle_state();
    for (&id, state) in &expect {
        let got = ds.get(&Value::Int(id)).unwrap();
        match state {
            None => assert!(got.is_none(), "{label}: id {id} resurrected"),
            Some(round) => {
                let r = got.unwrap_or_else(|| panic!("{label}: id {id} vanished"));
                assert_eq!(r.get(1), &Value::Int(*round), "{label}: id {id} stale");
            }
        }
    }
    for g in 0..GROUPS {
        let want: HashSet<i64> = expect
            .iter()
            .filter(|(id, v)| v.is_some() && *id % GROUPS == g)
            .map(|(id, _)| *id)
            .collect();
        let result = ds.query("grp").eq(format!("g{g}")).execute().unwrap();
        let got: HashSet<i64> = result
            .records()
            .iter()
            .map(|r| r.get(0).as_int().unwrap())
            .collect();
        assert_eq!(got, want, "{label}: group g{g} mismatch");
    }
}

fn run_sharded_writers(strategy: StrategyKind, background: bool) {
    let label = format!("{strategy:?}/background={background}");

    let runtime = background.then(|| {
        MaintenanceRuntime::start(
            EngineConfig::builder()
                .min_workers(1)
                .max_workers(2)
                .build()
                .unwrap(),
        )
        .unwrap()
    });
    let ds = match &runtime {
        Some(rt) => Dataset::open_with_runtime(
            Storage::new(StorageOptions::test()),
            None,
            config(strategy, 4),
            rt,
        )
        .unwrap(),
        None => Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            config(strategy, 4),
        )
        .unwrap(),
    };

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let ds = &ds;
            scope.spawn(move || {
                for (id, op) in writer_ops(w) {
                    apply(ds, id, op);
                }
            });
        }
    });
    if background {
        ds.maintenance().quiesce().unwrap();
    }
    assert!(
        ds.primary().num_disk_components() > 0,
        "{label}: the small budget must have forced flushes"
    );

    // The oracle: same operations, sequential, on a single-shard dataset.
    let oracle = Dataset::open(
        Storage::new(StorageOptions::test()),
        None,
        config(strategy, 1),
    )
    .unwrap();
    for w in 0..WRITERS {
        for (id, op) in writer_ops(w) {
            apply(&oracle, id, op);
        }
    }
    assert_matches_oracle(&oracle, &format!("{label} (oracle self-check)"));
    assert_matches_oracle(&ds, &label);
}

#[test]
fn eager_sharded_writers_match_single_shard_oracle_inline() {
    run_sharded_writers(StrategyKind::Eager, false);
}

#[test]
fn eager_sharded_writers_match_single_shard_oracle_background() {
    run_sharded_writers(StrategyKind::Eager, true);
}

#[test]
fn validation_sharded_writers_match_single_shard_oracle_inline() {
    run_sharded_writers(StrategyKind::Validation, false);
}

#[test]
fn validation_sharded_writers_match_single_shard_oracle_background() {
    run_sharded_writers(StrategyKind::Validation, true);
}

#[test]
fn mutable_bitmap_sharded_writers_match_single_shard_oracle_inline() {
    run_sharded_writers(StrategyKind::MutableBitmap, false);
}

#[test]
fn mutable_bitmap_sharded_writers_match_single_shard_oracle_background() {
    run_sharded_writers(StrategyKind::MutableBitmap, true);
}

/// `memtable_shards = 1` (the default) must preserve the pre-sharding
/// on-disk layout: every flush produces exactly one disk component per
/// index, and shard counts 1/2/4 agree on the final logical state.
#[test]
fn shard_counts_agree_and_one_shard_keeps_single_component_flushes() {
    let mut datasets = Vec::new();
    for shards in [1usize, 2, 4] {
        let mut cfg = config(StrategyKind::Validation, shards);
        cfg.memory_budget = usize::MAX; // flush manually
        let ds = Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap();
        for round in 0..3 {
            for w in 0..WRITERS {
                for (id, op) in writer_ops(w).into_iter().skip(round * 100).take(100) {
                    apply(&ds, id, op);
                }
            }
            ds.flush_all().unwrap();
            if shards == 1 {
                // The compatibility contract: one component per flush.
                assert_eq!(
                    ds.primary().num_disk_components(),
                    round + 1,
                    "single-shard flush {round} must add exactly one component"
                );
            }
        }
        datasets.push((shards, ds));
    }
    // Default config = 1 shard.
    assert_eq!(DatasetConfig::new(schema(), 0).memtable_shards, 1);
    // All shard counts converge to the same logical state.
    let reference: Vec<Option<Record>> = (0..WRITERS as i64 * KEYS_PER_WRITER)
        .map(|id| datasets[0].1.get(&Value::Int(id)).unwrap())
        .collect();
    for (shards, ds) in &datasets[1..] {
        for (id, want) in reference.iter().enumerate() {
            let got = ds.get(&Value::Int(id as i64)).unwrap();
            assert_eq!(&got, want, "shards={shards}: id {id} diverged");
        }
    }
}

/// Concurrent `WriteBatch` commits against a WAL: each batch's records
/// reach the device as one group (so the achieved group size stays well
/// above one record per device write), and a crash after a force loses
/// nothing that was committed.
#[test]
fn concurrent_batches_group_commit_and_recover() {
    let mut cfg = config(StrategyKind::Validation, 4);
    cfg.memory_budget = usize::MAX; // keep everything replayable from the log
    let ds = Dataset::open(
        Storage::new(StorageOptions::test()),
        Some(Storage::new(StorageOptions::test())),
        cfg,
    )
    .unwrap();

    const BATCH: usize = 25;
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let ds = &ds;
            scope.spawn(move || {
                for chunk in writer_ops(w).chunks(BATCH) {
                    let mut b = ds.batch();
                    for &(id, op) in chunk {
                        b = match op {
                            None => b.delete(&Value::Int(id)),
                            Some(round) => b.upsert(&rec(id, round)),
                        };
                    }
                    for out in b.commit().unwrap() {
                        assert!(
                            matches!(out, BatchOpResult::Upserted | BatchOpResult::Deleted(_)),
                            "unexpected batch outcome: {out:?}"
                        );
                    }
                }
            });
        }
    });

    // Force first: records still sitting in the staging page only become
    // a counted group when a leader writes them.
    ds.wal().unwrap().force().unwrap();
    let snap = ds.stats().snapshot();
    assert!(snap.wal_groups > 0, "batches must commit as WAL groups");
    assert_eq!(
        snap.wal_grouped_records,
        (WRITERS * OPS_PER_WRITER) as u64,
        "every staged record must be covered by a group"
    );
    // A batch stages BATCH records in one step, so even with zero
    // cross-thread grouping the achieved group size is far above 1.
    assert!(
        snap.wal_grouped_records / snap.wal_groups > 1,
        "achieved group size must exceed one record per device write: {} groups for {} records",
        snap.wal_groups,
        snap.wal_grouped_records
    );

    // Forced groups survive a crash: wipe memory and replay the log.
    let state = CheckpointState::new();
    simulate_crash(&ds, &state).unwrap();
    recover(&ds, &state).unwrap();
    assert_matches_oracle(&ds, "post-recovery");
}
