//! Property test: all four maintenance strategies are observationally
//! equivalent — same workload, same query answers — even though their
//! internal maintenance differs completely. This is the paper's implicit
//! correctness claim for the Validation and Mutable-bitmap strategies.

use lsm_common::{FieldType, Record, Schema, Value};
use lsm_engine::query::ValidationMethod;
use lsm_engine::{Dataset, DatasetConfig, SecondaryIndexDef, StrategyKind};
use lsm_storage::{Storage, StorageOptions};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum WOp {
    Insert(u8, u8),
    Upsert(u8, u8),
    Delete(u8),
    Flush,
}

fn arb_workload() -> impl Strategy<Value = Vec<WOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (any::<u8>(), 0..16u8).prop_map(|(k, s)| WOp::Insert(k, s)),
            3 => (any::<u8>(), 0..16u8).prop_map(|(k, s)| WOp::Upsert(k, s)),
            2 => any::<u8>().prop_map(WOp::Delete),
            1 => Just(WOp::Flush),
        ],
        0..80,
    )
}

fn dataset(strategy: StrategyKind) -> Arc<Dataset> {
    let schema = Schema::new(vec![("id", FieldType::Int), ("group", FieldType::Int)]).unwrap();
    let mut cfg = DatasetConfig::new(schema, 0);
    cfg.strategy = strategy;
    cfg.memory_budget = 8 * 1024; // force frequent flushes + merges
    cfg.merge.max_mergeable_bytes = u64::MAX;
    cfg.secondary_indexes = vec![SecondaryIndexDef {
        name: "group".into(),
        field: 1,
    }];
    Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap()
}

fn rec(id: u8, group: u8) -> Record {
    Record::new(vec![
        Value::Int(i64::from(id)),
        Value::Int(i64::from(group)),
    ])
}

fn apply(ds: &Dataset, ops: &[WOp]) {
    for op in ops {
        match op {
            WOp::Insert(k, g) => {
                ds.insert(&rec(*k, *g)).unwrap();
            }
            WOp::Upsert(k, g) => ds.upsert(&rec(*k, *g)).unwrap(),
            WOp::Delete(k) => {
                ds.delete(&Value::Int(i64::from(*k))).unwrap();
            }
            WOp::Flush => {
                ds.flush_all().unwrap();
            }
        }
    }
}

fn model_of(ops: &[WOp]) -> BTreeMap<u8, u8> {
    let mut m = BTreeMap::new();
    for op in ops {
        match op {
            WOp::Insert(k, g) => {
                m.entry(*k).or_insert(*g);
            }
            WOp::Upsert(k, g) => {
                m.insert(*k, *g);
            }
            WOp::Delete(k) => {
                m.remove(k);
            }
            WOp::Flush => {}
        }
    }
    m
}

/// Live ids in `group`, via a secondary query. `None` lets the builder
/// resolve the strategy-appropriate validation method.
fn group_query(ds: &Dataset, group: u8, validation: Option<ValidationMethod>) -> Vec<i64> {
    let mut q = ds.query("group").eq(i64::from(group)).sort_output(true);
    if let Some(vm) = validation {
        q = q.validation(vm);
    }
    let res = q.execute().unwrap();
    res.records()
        .iter()
        .map(|r| r.get(0).as_int().unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn strategies_are_observationally_equivalent(ops in arb_workload()) {
        let model = model_of(&ops);
        for strategy in [
            StrategyKind::Eager,
            StrategyKind::Validation,
            StrategyKind::MutableBitmap,
            StrategyKind::DeletedKeyBTree,
        ] {
            let ds = dataset(strategy);
            apply(&ds, &ops);

            // Primary reads match the model.
            for k in 0..=255u8 {
                let got = ds.get(&Value::Int(i64::from(k))).unwrap()
                    .map(|r| r.get(1).as_int().unwrap() as u8);
                prop_assert_eq!(got, model.get(&k).copied(), "{:?} key {}", strategy, k);
            }

            // Secondary queries match the model: once with the builder's
            // strategy-resolved default, then with each explicit method
            // appropriate to the strategy.
            let methods: &[Option<ValidationMethod>] = match strategy {
                StrategyKind::Eager => &[None, Some(ValidationMethod::None)],
                _ => &[
                    None,
                    Some(ValidationMethod::Direct),
                    Some(ValidationMethod::Timestamp),
                ],
            };
            for &vm in methods {
                for g in 0..16u8 {
                    let got = group_query(&ds, g, vm);
                    let want: Vec<i64> = model
                        .iter()
                        .filter(|(_, grp)| **grp == g)
                        .map(|(k, _)| i64::from(*k))
                        .collect();
                    prop_assert_eq!(&got, &want, "{:?}/{:?} group {}", strategy, vm, g);
                }
            }

            // Repair must not change answers (lazy strategies only).
            if strategy != StrategyKind::Eager {
                ds.flush_all().unwrap();
                ds.maintenance().repair_all().unwrap();
                for g in 0..16u8 {
                    let got = group_query(&ds, g, Some(ValidationMethod::Timestamp));
                    let want: Vec<i64> = model
                        .iter()
                        .filter(|(_, grp)| **grp == g)
                        .map(|(k, _)| i64::from(*k))
                        .collect();
                    prop_assert_eq!(&got, &want, "{:?} post-repair group {}", strategy, g);
                }
            }
        }
    }
}
