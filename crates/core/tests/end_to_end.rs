//! Cross-crate end-to-end tests: the full tweet workload of Section 6
//! against every maintenance strategy, checking query answers against an
//! oracle and exercising flushes, merges, repair, and filter scans together.

use lsm_common::Value;
use lsm_engine::query::filter_scan_count;
use lsm_engine::{Dataset, DatasetConfig, SecondaryIndexDef, StrategyKind};
use lsm_storage::{Storage, StorageOptions};
use lsm_workload::{TweetConfig, TweetGenerator, UpdateDistribution, UpsertWorkload};
use std::collections::BTreeMap;
use std::sync::Arc;

fn dataset(strategy: StrategyKind) -> Arc<Dataset> {
    let mut cfg = DatasetConfig::new(TweetGenerator::schema(), 0);
    cfg.strategy = strategy;
    cfg.secondary_indexes = vec![SecondaryIndexDef {
        name: "user_id".into(),
        field: 1,
    }];
    cfg.filter_field = Some(3);
    cfg.memory_budget = 256 * 1024;
    cfg.merge.max_mergeable_bytes = 2 * 1024 * 1024;
    Dataset::open(
        Storage::new(StorageOptions::test()),
        Some(Storage::new(StorageOptions::test())),
        cfg,
    )
    .unwrap()
}

/// Oracle: latest record per primary key.
type Oracle = BTreeMap<i64, (i64, i64)>; // pk -> (user_id, creation_time)

fn ingest(ds: &Dataset, n: usize, update_ratio: f64) -> Oracle {
    let mut oracle = Oracle::new();
    let mut w = UpsertWorkload::new(
        TweetConfig {
            msg_min: 40,
            msg_max: 60,
            seed: 99,
        },
        update_ratio,
        UpdateDistribution::Uniform,
    );
    for _ in 0..n {
        let op = w.next_op();
        let r = op.record().clone();
        let pk = r.get(0).as_int().unwrap();
        let uid = r.get(1).as_int().unwrap();
        let t = r.get(3).as_int().unwrap();
        ds.upsert(&r).unwrap();
        oracle.insert(pk, (uid, t));
    }
    ds.flush_all().unwrap();
    oracle
}

fn strategies() -> [StrategyKind; 4] {
    [
        StrategyKind::Eager,
        StrategyKind::Validation,
        StrategyKind::MutableBitmap,
        StrategyKind::DeletedKeyBTree,
    ]
}

#[test]
fn tweet_workload_queries_match_oracle() {
    for strategy in strategies() {
        let ds = dataset(strategy);
        let oracle = ingest(&ds, 4000, 0.3);

        // Secondary range queries across several ranges.
        for (lo, hi) in [(0, 999), (50_000, 54_999), (99_000, 99_999)] {
            let want: Vec<i64> = oracle
                .iter()
                .filter(|(_, (uid, _))| (lo..=hi).contains(uid))
                .map(|(pk, _)| *pk)
                .collect();
            // No validation method set anywhere: the builder resolves the
            // correct one from the strategy.
            let res = ds
                .query("user_id")
                .range(lo, hi)
                .sort_output(true)
                .execute()
                .unwrap();
            let got: Vec<i64> = res
                .records()
                .iter()
                .map(|r| r.get(0).as_int().unwrap())
                .collect();
            assert_eq!(got, want, "{strategy:?} uid in [{lo},{hi}]");
        }

        // Filter scans over time windows.
        for (lo, hi) in [
            (None, Some(500)),
            (Some(3500), None),
            (Some(1000), Some(2000)),
        ] {
            let want = oracle
                .values()
                .filter(|(_, t)| lo.is_none_or(|l| *t >= l) && hi.is_none_or(|h| *t <= h))
                .count() as u64;
            let lo_v = lo.map(Value::Int);
            let hi_v = hi.map(Value::Int);
            let got = filter_scan_count(&ds, lo_v.as_ref(), hi_v.as_ref())
                .unwrap()
                .matches;
            assert_eq!(got, want, "{strategy:?} time in [{lo:?},{hi:?}]");
        }
    }
}

#[test]
fn repair_then_queries_still_match() {
    for strategy in [StrategyKind::Validation, StrategyKind::MutableBitmap] {
        let ds = dataset(strategy);
        let oracle = ingest(&ds, 3000, 0.5);
        ds.maintenance().repair_all().unwrap();
        // Run merges after repair too; bitmapped entries get dropped.
        ds.maintenance().run_merges().unwrap();
        let res = ds
            .query("user_id")
            .range(0, 9_999)
            .sort_output(true)
            .execute()
            .unwrap();
        let want = oracle
            .values()
            .filter(|(uid, _)| (0..10_000).contains(uid))
            .count();
        assert_eq!(res.len(), want, "{strategy:?}");
    }
}

#[test]
fn index_only_matches_non_index_only() {
    for strategy in strategies() {
        let ds = dataset(strategy);
        ingest(&ds, 2000, 0.4);
        let records = ds
            .query("user_id")
            .range(0, 29_999)
            .sort_output(true)
            .execute()
            .unwrap();
        let keys = ds
            .query("user_id")
            .range(0, 29_999)
            .index_only()
            .execute()
            .unwrap();
        let mut from_records: Vec<i64> = records
            .records()
            .iter()
            .map(|r| r.get(0).as_int().unwrap())
            .collect();
        let mut from_keys: Vec<i64> = keys.keys().iter().map(|k| k.as_int().unwrap()).collect();
        from_records.sort_unstable();
        from_keys.sort_unstable();
        assert_eq!(from_records, from_keys, "{strategy:?}");
    }
}

#[test]
fn deletes_heavy_workload() {
    for strategy in strategies() {
        let ds = dataset(strategy);
        let mut oracle = ingest(&ds, 2000, 0.0);
        // Delete every third key.
        let keys: Vec<i64> = oracle.keys().copied().collect();
        for (i, pk) in keys.iter().enumerate() {
            if i % 3 == 0 {
                ds.delete(&Value::Int(*pk)).unwrap();
                oracle.remove(pk);
            }
        }
        ds.flush_all().unwrap();
        ds.run_merges().unwrap();
        for (i, pk) in keys.iter().enumerate() {
            let present = ds.get(&Value::Int(*pk)).unwrap().is_some();
            assert_eq!(present, i % 3 != 0, "{strategy:?} pk {pk}");
        }
        // Full-range secondary query sees exactly the survivors.
        let res = ds.query("user_id").execute().unwrap();
        assert_eq!(res.len(), oracle.len(), "{strategy:?}");
    }
}

#[test]
fn stats_reflect_strategy_costs() {
    // Eager performs maintenance lookups for every upsert of an existing
    // key; Validation performs none beyond insert uniqueness checks.
    let eager = dataset(StrategyKind::Eager);
    ingest(&eager, 1000, 0.5);
    let lazy = dataset(StrategyKind::Validation);
    ingest(&lazy, 1000, 0.5);
    let e = eager.stats().snapshot();
    let l = lazy.stats().snapshot();
    assert!(e.maintenance_lookups > l.maintenance_lookups);
    assert_eq!(l.maintenance_lookups, 0, "upserts do no lookups under lazy");
}
