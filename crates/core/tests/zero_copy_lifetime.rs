//! Zero-copy lifetime regression tests.
//!
//! Lookup and scan paths hand out entry values as [`ValueBuf::Pinned`]
//! slices into cached pages instead of copies. Those slices must stay
//! readable even after a merge retires and destroys the component file the
//! page came from (retire-on-drop): the `Arc` page handle — not the file —
//! owns the bytes. These tests hold pinned values and in-flight
//! [`RecordStream`] state across merges that delete the source components,
//! then check every byte. They run under `--cfg lock_order_check` with the
//! rest of the suite.

use lsm_common::{FieldType, Record, Result, Schema, Value};
use lsm_engine::{Dataset, DatasetConfig, SecondaryIndexDef, StrategyKind};
use lsm_storage::{LeafEncoding, Storage, StorageOptions};
use lsm_tree::{LsmEntry, ScanOptions, TieringPolicy};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

fn storage(encoding: LeafEncoding) -> Arc<Storage> {
    Storage::new(StorageOptions {
        cache_shards: 4,
        leaf_encoding: encoding,
        ..StorageOptions::test()
    })
}

const ALL_ENCODINGS: [LeafEncoding; 3] = [
    LeafEncoding::Plain,
    LeafEncoding::Prefix,
    LeafEncoding::Columnar,
];

/// Pinned scan entries outlive the merge that destroys their source
/// components, on every leaf encoding.
#[test]
fn pinned_values_survive_component_retirement() {
    for encoding in ALL_ENCODINGS {
        let storage = storage(encoding);
        let tree = lsm_tree::LsmTree::new(storage.clone(), lsm_tree::LsmOptions::default());
        let mut want: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut ts = 0u64;
        for round in 0..3u32 {
            for i in 0..400u32 {
                ts += 1;
                let k = format!("key{i:06}").into_bytes();
                let v = format!("value-{round}-{i}-{}", "x".repeat(40)).into_bytes();
                tree.put(k.clone(), LsmEntry::put(v.clone()), ts);
                want.insert(k, v);
            }
            tree.flush().unwrap();
        }

        // Collect every entry; disk values arrive pinned into cached pages.
        let mut scan = tree
            .scan(Bound::Unbounded, Bound::Unbounded, ScanOptions::default())
            .unwrap();
        let mut got: Vec<(Vec<u8>, LsmEntry)> = Vec::new();
        while let Some((k, e)) = scan.next_entry().unwrap() {
            got.push((k, e));
        }
        drop(scan);
        assert!(
            got.iter().all(|(_, e)| e.value.is_pinned()),
            "{encoding:?}: disk scan must hand out pinned values"
        );

        // Merge everything into one component: the three source components
        // are retired and their files destroyed on drop. Clearing the cache
        // then drops the cache's own references to the old pages — the
        // pinned slices are the only owners left.
        let policy = TieringPolicy::new(u64::MAX);
        while tree.maybe_merge(&policy).unwrap() {}
        storage.clear_cache();

        assert_eq!(got.len(), want.len(), "{encoding:?}");
        for (k, e) in &got {
            assert_eq!(
                e.value.as_slice(),
                want[k].as_slice(),
                "{encoding:?}: pinned bytes changed after retirement"
            );
        }
    }
}

fn schema() -> Schema {
    Schema::new(vec![("id", FieldType::Int), ("val", FieldType::Int)]).unwrap()
}

fn rec(id: i64, val: i64) -> Record {
    Record::new(vec![Value::Int(id), Value::Int(val)])
}

/// An in-flight [`RecordStream`] keeps yielding correct records while
/// flushes and full merges retire the components it is reading from.
#[test]
fn record_stream_survives_concurrent_flush_and_merge() {
    for encoding in ALL_ENCODINGS {
        let mut cfg = DatasetConfig::new(schema(), 0);
        cfg.strategy = StrategyKind::Validation;
        cfg.memory_budget = usize::MAX; // flushes under test control
        cfg.secondary_indexes = vec![SecondaryIndexDef {
            name: "val".into(),
            field: 1,
        }];
        let ds = Dataset::open(storage(encoding), None, cfg).unwrap();
        for id in 0..900i64 {
            ds.upsert(&rec(id, id % 100)).unwrap();
            if id % 300 == 299 {
                ds.flush_all().unwrap();
            }
        }
        ds.flush_all().unwrap();

        // Pull the first batch, then churn: logically-identical re-upserts,
        // a flush, and a full merge retire every component the stream's
        // snapshot points at.
        let mut stream = ds.query("val").range(10, 40).stream().unwrap();
        let first = stream.next().unwrap().unwrap();
        assert!((10..=40).contains(&first.get(1).as_int().unwrap()));
        for id in 0..900i64 {
            ds.upsert(&rec(id, id % 100)).unwrap();
        }
        ds.flush_all().unwrap();
        let policy = TieringPolicy::new(u64::MAX);
        while ds.primary().maybe_merge(&policy).unwrap() {}
        ds.storage().clear_cache();

        let rest: Vec<Record> = stream.collect::<Result<_>>().unwrap();
        let mut got = vec![first];
        got.extend(rest);
        let want: Vec<Record> = (0..900i64)
            .filter(|id| (10..=40).contains(&(id % 100)))
            .map(|id| rec(id, id % 100))
            .collect();
        assert_eq!(got, want, "{encoding:?}");
    }
}
