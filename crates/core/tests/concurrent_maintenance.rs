//! Multi-threaded stress tests for background maintenance: N writer
//! threads upserting and deleting while the scheduler's worker pool
//! flushes and merges concurrently, then full verification against a
//! single-threaded oracle.
//!
//! The Mutable-bitmap runs drive the Section 5.3 concurrency-control path
//! end to end: background correlated merges rebuild components through
//! `merge_primary_with_cc` (Lock and Side-file methods) while writers mark
//! deletes through the `BuildLink` redirection machinery.

use lsm_common::{FieldType, Record, Schema, Value};
use lsm_engine::cc::CcMethod;
use lsm_engine::{Dataset, DatasetConfig, MaintenanceMode, SecondaryIndexDef, StrategyKind};
use lsm_storage::{Storage, StorageOptions};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

const WRITERS: usize = 4;
const OPS_PER_WRITER: usize = 2500;
const GROUPS: i64 = 7;

fn schema() -> Schema {
    Schema::new(vec![
        ("id", FieldType::Int),
        ("round", FieldType::Int),
        ("grp", FieldType::Str),
    ])
    .unwrap()
}

fn grp(id: i64) -> String {
    format!("g{}", id % GROUPS)
}

fn rec(id: i64, round: i64) -> Record {
    Record::new(vec![Value::Int(id), Value::Int(round), Value::Str(grp(id))])
}

fn dataset(strategy: StrategyKind, cc: CcMethod) -> Arc<Dataset> {
    let mut cfg = DatasetConfig::new(schema(), 0);
    cfg.strategy = strategy;
    cfg.secondary_indexes = vec![SecondaryIndexDef {
        name: "grp".into(),
        field: 2,
    }];
    // Small budget + uncapped tiering so flushes and merges churn hard
    // under the writers.
    cfg.memory_budget = 24 * 1024;
    cfg.merge.max_mergeable_bytes = u64::MAX;
    cfg.maintenance = MaintenanceMode::Background { workers: 2 };
    cfg.cc_method = cc;
    Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap()
}

/// Writer `t`'s deterministic op sequence over its own id stripe
/// (`id % WRITERS == t`): `(id, None)` = delete, `(id, Some(round))` =
/// upsert. Shared by the executing writer and the oracle so they cannot
/// diverge.
fn writer_ops(t: usize) -> Vec<(i64, Option<i64>)> {
    let mut x: i64 = 0x9E3779B9 ^ (t as i64);
    (0..OPS_PER_WRITER)
        .map(|op| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let id = (x.rem_euclid(500) * WRITERS as i64) + t as i64;
            (id, (op % 5 != 4).then_some(op as i64))
        })
        .collect()
}

/// Each writer owns a disjoint id stripe, so the final per-key state is
/// deterministic: the last operation that writer applied.
fn writer_oracle(t: usize) -> HashMap<i64, Option<i64>> {
    writer_ops(t).into_iter().collect()
}

fn run_writer(ds: &Dataset, t: usize) {
    for (id, op) in writer_ops(t) {
        match op {
            None => {
                ds.delete(&Value::Int(id)).unwrap();
            }
            Some(round) => ds.upsert(&rec(id, round)).unwrap(),
        }
    }
}

fn stress(strategy: StrategyKind, cc: CcMethod) {
    let ds = dataset(strategy, cc);
    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            let ds = &ds;
            scope.spawn(move || run_writer(ds, t));
        }
    });
    ds.maintenance().quiesce().unwrap();

    let snap = ds.stats().snapshot();
    assert!(snap.flushes > 0, "{strategy:?}: background flushes ran");
    assert!(snap.flush_jobs > 0, "{strategy:?}: flush jobs recorded");
    assert!(snap.merges > 0, "{strategy:?}: background merges ran");
    assert_eq!(snap.queue_depth, 0, "{strategy:?}: queue drained");

    // Oracle: merge the per-writer expectations (key spaces are disjoint).
    let mut oracle: HashMap<i64, Option<i64>> = HashMap::new();
    for t in 0..WRITERS {
        oracle.extend(writer_oracle(t));
    }

    // Point reads: every key's final state matches the oracle.
    for (&id, expect) in &oracle {
        let got = ds.get(&Value::Int(id)).unwrap();
        match expect {
            None => assert!(got.is_none(), "{strategy:?}/{cc:?}: id {id} resurrected"),
            Some(round) => {
                let r = got.unwrap_or_else(|| panic!("{strategy:?}/{cc:?}: id {id} vanished"));
                assert_eq!(
                    r.get(1),
                    &Value::Int(*round),
                    "{strategy:?}/{cc:?}: id {id} stale"
                );
            }
        }
    }

    // Secondary-index queries: each group returns exactly the live ids of
    // that group (validated per the strategy by the query builder).
    for g in 0..GROUPS {
        let want: HashSet<i64> = oracle
            .iter()
            .filter(|(id, v)| v.is_some() && *id % GROUPS == g)
            .map(|(id, _)| *id)
            .collect();
        let result = ds.query("grp").eq(format!("g{g}")).execute().unwrap();
        let got: HashSet<i64> = result
            .records()
            .iter()
            .map(|r| r.get(0).as_int().unwrap())
            .collect();
        assert_eq!(got, want, "{strategy:?}/{cc:?}: group g{g} mismatch");
    }
}

#[test]
fn eager_background_maintenance_stress() {
    stress(StrategyKind::Eager, CcMethod::SideFile);
}

#[test]
fn validation_background_maintenance_stress() {
    stress(StrategyKind::Validation, CcMethod::SideFile);
}

#[test]
fn mutable_bitmap_side_file_background_stress() {
    stress(StrategyKind::MutableBitmap, CcMethod::SideFile);
}

#[test]
fn mutable_bitmap_lock_background_stress() {
    stress(StrategyKind::MutableBitmap, CcMethod::Lock);
}

#[test]
fn backpressure_stalls_writers_at_the_ceiling() {
    let mut cfg = DatasetConfig::new(schema(), 0);
    cfg.strategy = StrategyKind::Validation;
    cfg.memory_budget = 16 * 1024;
    cfg.memory_ceiling = Some(24 * 1024);
    cfg.maintenance = MaintenanceMode::Background { workers: 1 };
    let ds = Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap();

    // Fat records fill memory much faster than the single worker can build
    // components, so writers must hit the hard ceiling and stall.
    let fat = "x".repeat(2048);
    let mut stalled = 0;
    for i in 0..20_000i64 {
        ds.upsert(&Record::new(vec![
            Value::Int(i % 64),
            Value::Int(i),
            Value::Str(fat.clone()),
        ]))
        .unwrap();
        stalled = ds.stats().snapshot().backpressure_stalls;
        if stalled > 0 {
            break;
        }
    }
    assert!(stalled > 0, "writer never hit the memory ceiling");
    // Memory was bounded by the ceiling the whole time (plus one in-flight
    // record per writer).
    ds.maintenance().quiesce().unwrap();
    assert!(ds.mem_unflushed_bytes() <= 24 * 1024 + 4096);
}
