//! Integration tests for the engine-wide shared [`MaintenanceRuntime`]:
//! many datasets, one bounded worker pool.
//!
//! The stress test is the scaling-cliff regression: 10 datasets × 1 writer
//! thread each churn upserts/deletes against a runtime capped at 4 workers,
//! then every dataset is verified against a single-threaded oracle and the
//! runtime's thread high-water mark is asserted never to have exceeded the
//! cap — the per-dataset-pool design this replaces would have run 20+
//! maintenance threads.

use lsm_common::{FieldType, Record, Schema, Value};
use lsm_engine::cc::CcMethod;
use lsm_engine::{
    Dataset, DatasetConfig, EngineConfig, MaintenanceRuntime, SecondaryIndexDef, StrategyKind,
};
use lsm_storage::{Storage, StorageOptions};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

const DATASETS: usize = 10;
const OPS_PER_DATASET: usize = 1500;
const GROUPS: i64 = 5;

fn schema() -> Schema {
    Schema::new(vec![
        ("id", FieldType::Int),
        ("round", FieldType::Int),
        ("grp", FieldType::Str),
    ])
    .unwrap()
}

fn grp(id: i64) -> String {
    format!("g{}", id % GROUPS)
}

fn rec(id: i64, round: i64) -> Record {
    Record::new(vec![Value::Int(id), Value::Int(round), Value::Str(grp(id))])
}

fn config(strategy: StrategyKind, cc: CcMethod) -> DatasetConfig {
    let mut cfg = DatasetConfig::new(schema(), 0);
    cfg.strategy = strategy;
    cfg.secondary_indexes = vec![SecondaryIndexDef {
        name: "grp".into(),
        field: 2,
    }];
    // Small budget + uncapped tiering so flushes and merges churn hard
    // under the writers.
    cfg.memory_budget = 16 * 1024;
    cfg.merge.max_mergeable_bytes = u64::MAX;
    cfg.cc_method = cc;
    cfg
}

fn strategy_for(d: usize) -> (StrategyKind, CcMethod) {
    match d % 4 {
        0 => (StrategyKind::Eager, CcMethod::SideFile),
        1 => (StrategyKind::Validation, CcMethod::SideFile),
        2 => (StrategyKind::MutableBitmap, CcMethod::SideFile),
        _ => (StrategyKind::MutableBitmap, CcMethod::Lock),
    }
}

/// Dataset `d`'s deterministic op sequence: `(id, None)` = delete,
/// `(id, Some(round))` = upsert. Shared by the executing writer and the
/// oracle so they cannot diverge.
fn dataset_ops(d: usize) -> Vec<(i64, Option<i64>)> {
    let mut x: i64 = 0x9E3779B9 ^ (d as i64);
    (0..OPS_PER_DATASET)
        .map(|op| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let id = x.rem_euclid(300);
            (id, (op % 5 != 4).then_some(op as i64))
        })
        .collect()
}

/// The final per-key state: the last operation applied to the key.
fn oracle(d: usize) -> HashMap<i64, Option<i64>> {
    dataset_ops(d).into_iter().collect()
}

#[test]
fn ten_datasets_share_a_four_worker_runtime() {
    let runtime = MaintenanceRuntime::start(
        EngineConfig::builder()
            .min_workers(2)
            .max_workers(4)
            .build()
            .unwrap(),
    )
    .unwrap();

    let datasets: Vec<Arc<Dataset>> = (0..DATASETS)
        .map(|d| {
            let (strategy, cc) = strategy_for(d);
            Dataset::open_with_runtime(
                Storage::new(StorageOptions::test()),
                None,
                config(strategy, cc),
                &runtime,
            )
            .unwrap()
        })
        .collect();
    assert_eq!(runtime.stats().datasets, DATASETS);

    // One writer thread per dataset, all contending for the shared pool.
    std::thread::scope(|scope| {
        for (d, ds) in datasets.iter().enumerate() {
            scope.spawn(move || {
                for (id, op) in dataset_ops(d) {
                    match op {
                        None => {
                            ds.delete(&Value::Int(id)).unwrap();
                        }
                        Some(round) => ds.upsert(&rec(id, round)).unwrap(),
                    }
                }
            });
        }
    });
    for ds in &datasets {
        ds.maintenance().quiesce().unwrap();
    }

    let stats = runtime.stats();
    assert!(
        stats.peak_workers <= 4,
        "maintenance threads exceeded max_workers: {stats:?}"
    );
    assert!(stats.flush_jobs > 0, "shared pool ran flushes: {stats:?}");
    assert!(stats.merge_jobs > 0, "shared pool ran merges: {stats:?}");
    assert_eq!(stats.queue_depth, 0, "drained after quiesce");
    assert_eq!(stats.in_flight, 0, "nothing mid-job after quiesce");

    // Every dataset matches its single-threaded oracle.
    for (d, ds) in datasets.iter().enumerate() {
        let (strategy, cc) = strategy_for(d);
        let expect = oracle(d);
        for (&id, state) in &expect {
            let got = ds.get(&Value::Int(id)).unwrap();
            match state {
                None => assert!(
                    got.is_none(),
                    "{strategy:?}/{cc:?} ds{d}: id {id} resurrected"
                ),
                Some(round) => {
                    let r = got
                        .unwrap_or_else(|| panic!("{strategy:?}/{cc:?} ds{d}: id {id} vanished"));
                    assert_eq!(
                        r.get(1),
                        &Value::Int(*round),
                        "{strategy:?}/{cc:?} ds{d}: id {id} stale"
                    );
                }
            }
        }
        // Secondary-index queries: each group returns exactly the live ids
        // of that group (validated per the strategy by the query builder).
        for g in 0..GROUPS {
            let want: HashSet<i64> = expect
                .iter()
                .filter(|(id, v)| v.is_some() && *id % GROUPS == g)
                .map(|(id, _)| *id)
                .collect();
            let result = ds.query("grp").eq(format!("g{g}")).execute().unwrap();
            let got: HashSet<i64> = result
                .records()
                .iter()
                .map(|r| r.get(0).as_int().unwrap())
                .collect();
            assert_eq!(got, want, "{strategy:?}/{cc:?} ds{d}: group g{g} mismatch");
        }
    }

    // Dropping the datasets deregisters them; the runtime survives.
    drop(datasets);
    assert_eq!(runtime.stats().datasets, 0);
}

#[test]
fn adaptive_workers_spawn_under_load_and_retire() {
    let runtime = MaintenanceRuntime::start(
        EngineConfig::builder()
            .min_workers(1)
            .max_workers(4)
            .build()
            .unwrap(),
    )
    .unwrap();
    let datasets: Vec<Arc<Dataset>> = (0..8)
        .map(|_| {
            Dataset::open_with_runtime(
                Storage::new(StorageOptions::test()),
                None,
                config(StrategyKind::Validation, CcMethod::SideFile),
                &runtime,
            )
            .unwrap()
        })
        .collect();

    // Concurrent writers on 8 datasets flood the single permanent worker
    // with flush jobs; the queue must outgrow it and spawn transients.
    std::thread::scope(|scope| {
        for ds in &datasets {
            scope.spawn(move || {
                for i in 0..1200i64 {
                    ds.upsert(&rec(i % 200, i)).unwrap();
                }
            });
        }
    });
    runtime.quiesce();

    let stats = runtime.stats();
    assert!(
        stats.workers_spawned > 0,
        "queue pressure never spawned a transient worker: {stats:?}"
    );
    assert!(stats.peak_workers > 1, "never scaled past min: {stats:?}");
    assert!(stats.peak_workers <= 4, "exceeded the cap: {stats:?}");

    // Transients retire once the queue is dry (each exits on its next
    // empty pop; poll briefly to absorb that scheduling delay).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let s = runtime.stats();
        if s.workers_retired == s.workers_spawned && s.cur_workers == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "transient workers never retired: {s:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

#[test]
fn io_throttle_limits_rebuild_scans_and_is_accounted() {
    // A tiny cache forces merge scans to the device, and a low rate with a
    // small burst forces the token bucket to actually wait.
    let runtime = MaintenanceRuntime::start(
        EngineConfig::builder()
            .workers(2)
            .io_read_limit(16 * 1024 * 1024)
            .io_burst(16 * 1024)
            .build()
            .unwrap(),
    )
    .unwrap();
    let storage = Storage::new(StorageOptions {
        cache_pages: 4,
        ..StorageOptions::test()
    });
    let mut cfg = config(StrategyKind::Validation, CcMethod::SideFile);
    cfg.memory_budget = 8 * 1024;
    let ds = Dataset::open_with_runtime(storage.clone(), None, cfg, &runtime).unwrap();

    for i in 0..4000i64 {
        ds.upsert(&rec(i % 800, i)).unwrap();
    }
    ds.maintenance().quiesce().unwrap();

    let rt = runtime.stats();
    assert!(rt.throttled_bytes > 0, "no reads were accounted: {rt:?}");
    assert!(rt.throttle_wait_ns > 0, "the bucket never waited: {rt:?}");
    // The wait is attributed to the dataset and to the device too.
    assert!(ds.stats().snapshot().throttle_wait_ns > 0);
    assert!(storage.stats().throttle_wait_ns > 0);
    // Foreground reads are NOT throttled: a query performs device reads
    // without growing the throttle accounting.
    let before = runtime.stats().throttled_bytes;
    storage.clear_cache();
    let result = ds.query("grp").eq("g1").execute().unwrap();
    assert!(!result.records().is_empty());
    assert_eq!(
        runtime.stats().throttled_bytes,
        before,
        "foreground query was charged to the maintenance throttle"
    );
    // Everything is still readable.
    for i in [0, 399, 799] {
        assert!(ds.get(&Value::Int(i)).unwrap().is_some(), "id {i}");
    }
}

#[test]
fn per_dataset_quiesce_ignores_other_datasets() {
    let runtime = MaintenanceRuntime::start(EngineConfig::fixed(1)).unwrap();
    let a = Dataset::open_with_runtime(
        Storage::new(StorageOptions::test()),
        None,
        config(StrategyKind::Eager, CcMethod::SideFile),
        &runtime,
    )
    .unwrap();
    let b = Dataset::open_with_runtime(
        Storage::new(StorageOptions::test()),
        None,
        config(StrategyKind::Eager, CcMethod::SideFile),
        &runtime,
    )
    .unwrap();
    for i in 0..2000i64 {
        a.upsert(&rec(i, i)).unwrap();
        b.upsert(&rec(i, i)).unwrap();
    }
    // Quiescing `a` must terminate even though `b` keeps producing work —
    // it waits for a's jobs only.
    a.maintenance().quiesce().unwrap();
    b.maintenance().quiesce().unwrap();
    assert!(a.stats().snapshot().flushes > 0);
    assert!(b.stats().snapshot().flushes > 0);
}

#[test]
fn runtime_shuts_down_with_last_dataset() {
    let runtime = MaintenanceRuntime::start(EngineConfig::fixed(2)).unwrap();
    let ds = Dataset::open_with_runtime(
        Storage::new(StorageOptions::test()),
        None,
        config(StrategyKind::Validation, CcMethod::SideFile),
        &runtime,
    )
    .unwrap();
    for i in 0..2000i64 {
        ds.upsert(&rec(i, i)).unwrap();
    }
    // Dropping the user handle first, then the dataset: the dataset's
    // handle keeps the pool alive until the very end. Must not hang.
    drop(runtime);
    drop(ds);
}
