//! Integration tests for the engine-wide shared [`MaintenanceRuntime`]:
//! many datasets, one bounded worker pool.
//!
//! The stress test is the scaling-cliff regression: 10 datasets × 1 writer
//! thread each churn upserts/deletes against a runtime capped at 4 workers,
//! then every dataset is verified against a single-threaded oracle and the
//! runtime's thread high-water mark is asserted never to have exceeded the
//! cap — the per-dataset-pool design this replaces would have run 20+
//! maintenance threads.

use lsm_common::{FieldType, Record, Schema, Value};
use lsm_engine::cc::CcMethod;
use lsm_engine::{
    Dataset, DatasetConfig, EngineConfig, MaintenanceRuntime, SecondaryIndexDef, StrategyKind,
};
use lsm_storage::{Storage, StorageOptions};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

const DATASETS: usize = 10;
const OPS_PER_DATASET: usize = 1500;
const GROUPS: i64 = 5;

fn schema() -> Schema {
    Schema::new(vec![
        ("id", FieldType::Int),
        ("round", FieldType::Int),
        ("grp", FieldType::Str),
    ])
    .unwrap()
}

fn grp(id: i64) -> String {
    format!("g{}", id % GROUPS)
}

fn rec(id: i64, round: i64) -> Record {
    Record::new(vec![Value::Int(id), Value::Int(round), Value::Str(grp(id))])
}

fn config(strategy: StrategyKind, cc: CcMethod) -> DatasetConfig {
    let mut cfg = DatasetConfig::new(schema(), 0);
    cfg.strategy = strategy;
    cfg.secondary_indexes = vec![SecondaryIndexDef {
        name: "grp".into(),
        field: 2,
    }];
    // Small budget + uncapped tiering so flushes and merges churn hard
    // under the writers.
    cfg.memory_budget = 16 * 1024;
    cfg.merge.max_mergeable_bytes = u64::MAX;
    cfg.cc_method = cc;
    cfg
}

fn strategy_for(d: usize) -> (StrategyKind, CcMethod) {
    match d % 4 {
        0 => (StrategyKind::Eager, CcMethod::SideFile),
        1 => (StrategyKind::Validation, CcMethod::SideFile),
        2 => (StrategyKind::MutableBitmap, CcMethod::SideFile),
        _ => (StrategyKind::MutableBitmap, CcMethod::Lock),
    }
}

/// Dataset `d`'s deterministic op sequence: `(id, None)` = delete,
/// `(id, Some(round))` = upsert. Shared by the executing writer and the
/// oracle so they cannot diverge.
fn dataset_ops(d: usize) -> Vec<(i64, Option<i64>)> {
    let mut x: i64 = 0x9E3779B9 ^ (d as i64);
    (0..OPS_PER_DATASET)
        .map(|op| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let id = x.rem_euclid(300);
            (id, (op % 5 != 4).then_some(op as i64))
        })
        .collect()
}

/// The final per-key state: the last operation applied to the key.
fn oracle(d: usize) -> HashMap<i64, Option<i64>> {
    dataset_ops(d).into_iter().collect()
}

#[test]
fn ten_datasets_share_a_four_worker_runtime() {
    let runtime = MaintenanceRuntime::start(
        EngineConfig::builder()
            .min_workers(2)
            .max_workers(4)
            .build()
            .unwrap(),
    )
    .unwrap();

    let datasets: Vec<Arc<Dataset>> = (0..DATASETS)
        .map(|d| {
            let (strategy, cc) = strategy_for(d);
            Dataset::open_with_runtime(
                Storage::new(StorageOptions::test()),
                None,
                config(strategy, cc),
                &runtime,
            )
            .unwrap()
        })
        .collect();
    assert_eq!(runtime.stats().datasets, DATASETS);

    // One writer thread per dataset, all contending for the shared pool.
    std::thread::scope(|scope| {
        for (d, ds) in datasets.iter().enumerate() {
            scope.spawn(move || {
                for (id, op) in dataset_ops(d) {
                    match op {
                        None => {
                            ds.delete(&Value::Int(id)).unwrap();
                        }
                        Some(round) => ds.upsert(&rec(id, round)).unwrap(),
                    }
                }
            });
        }
    });
    for ds in &datasets {
        ds.maintenance().quiesce().unwrap();
    }

    let stats = runtime.stats();
    assert!(
        stats.peak_workers <= 4,
        "maintenance threads exceeded max_workers: {stats:?}"
    );
    assert!(stats.flush_jobs > 0, "shared pool ran flushes: {stats:?}");
    assert!(stats.merge_jobs > 0, "shared pool ran merges: {stats:?}");
    assert_eq!(stats.queue_depth, 0, "drained after quiesce");
    assert_eq!(stats.in_flight, 0, "nothing mid-job after quiesce");

    // Every dataset matches its single-threaded oracle.
    for (d, ds) in datasets.iter().enumerate() {
        let (strategy, cc) = strategy_for(d);
        let expect = oracle(d);
        for (&id, state) in &expect {
            let got = ds.get(&Value::Int(id)).unwrap();
            match state {
                None => assert!(
                    got.is_none(),
                    "{strategy:?}/{cc:?} ds{d}: id {id} resurrected"
                ),
                Some(round) => {
                    let r = got
                        .unwrap_or_else(|| panic!("{strategy:?}/{cc:?} ds{d}: id {id} vanished"));
                    assert_eq!(
                        r.get(1),
                        &Value::Int(*round),
                        "{strategy:?}/{cc:?} ds{d}: id {id} stale"
                    );
                }
            }
        }
        // Secondary-index queries: each group returns exactly the live ids
        // of that group (validated per the strategy by the query builder).
        for g in 0..GROUPS {
            let want: HashSet<i64> = expect
                .iter()
                .filter(|(id, v)| v.is_some() && *id % GROUPS == g)
                .map(|(id, _)| *id)
                .collect();
            let result = ds.query("grp").eq(format!("g{g}")).execute().unwrap();
            let got: HashSet<i64> = result
                .records()
                .iter()
                .map(|r| r.get(0).as_int().unwrap())
                .collect();
            assert_eq!(got, want, "{strategy:?}/{cc:?} ds{d}: group g{g} mismatch");
        }
    }

    // Dropping the datasets deregisters them; the runtime survives.
    drop(datasets);
    assert_eq!(runtime.stats().datasets, 0);
}

#[test]
fn adaptive_workers_spawn_under_load_and_retire() {
    let runtime = MaintenanceRuntime::start(
        EngineConfig::builder()
            .min_workers(1)
            .max_workers(4)
            .build()
            .unwrap(),
    )
    .unwrap();
    let datasets: Vec<Arc<Dataset>> = (0..8)
        .map(|_| {
            Dataset::open_with_runtime(
                Storage::new(StorageOptions::test()),
                None,
                config(StrategyKind::Validation, CcMethod::SideFile),
                &runtime,
            )
            .unwrap()
        })
        .collect();

    // Concurrent writers on 8 datasets flood the single permanent worker
    // with flush jobs; the queue must outgrow it and spawn transients.
    std::thread::scope(|scope| {
        for ds in &datasets {
            scope.spawn(move || {
                for i in 0..1200i64 {
                    ds.upsert(&rec(i % 200, i)).unwrap();
                }
            });
        }
    });
    runtime.quiesce();

    let stats = runtime.stats();
    assert!(
        stats.workers_spawned > 0,
        "queue pressure never spawned a transient worker: {stats:?}"
    );
    assert!(stats.peak_workers > 1, "never scaled past min: {stats:?}");
    assert!(stats.peak_workers <= 4, "exceeded the cap: {stats:?}");

    // Transients retire once the queue is dry (each exits on its next
    // empty pop; poll briefly to absorb that scheduling delay).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let s = runtime.stats();
        if s.workers_retired == s.workers_spawned && s.cur_workers == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "transient workers never retired: {s:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

#[test]
fn io_throttle_limits_rebuild_scans_and_is_accounted() {
    // A tiny cache forces merge scans to the device, and a low rate with a
    // small burst forces the token bucket to actually wait.
    let runtime = MaintenanceRuntime::start(
        EngineConfig::builder()
            .workers(2)
            .io_read_limit(16 * 1024 * 1024)
            .io_burst(16 * 1024)
            .build()
            .unwrap(),
    )
    .unwrap();
    let storage = Storage::new(StorageOptions {
        cache_pages: 4,
        ..StorageOptions::test()
    });
    let mut cfg = config(StrategyKind::Validation, CcMethod::SideFile);
    cfg.memory_budget = 8 * 1024;
    let ds = Dataset::open_with_runtime(storage.clone(), None, cfg, &runtime).unwrap();

    for i in 0..4000i64 {
        ds.upsert(&rec(i % 800, i)).unwrap();
    }
    ds.maintenance().quiesce().unwrap();

    let rt = runtime.stats();
    assert!(rt.throttled_bytes > 0, "no reads were accounted: {rt:?}");
    assert!(rt.throttle_wait_ns > 0, "the bucket never waited: {rt:?}");
    // The wait is attributed to the dataset and to the device too.
    assert!(ds.stats().snapshot().throttle_wait_ns > 0);
    assert!(storage.stats().throttle_wait_ns > 0);
    // Foreground reads are NOT throttled: a query performs device reads
    // without growing the throttle accounting.
    let before = runtime.stats().throttled_bytes;
    storage.clear_cache();
    let result = ds.query("grp").eq("g1").execute().unwrap();
    assert!(!result.records().is_empty());
    assert_eq!(
        runtime.stats().throttled_bytes,
        before,
        "foreground query was charged to the maintenance throttle"
    );
    // Everything is still readable.
    for i in [0, 399, 799] {
        assert!(ds.get(&Value::Int(i)).unwrap().is_some(), "id {i}");
    }
}

#[test]
fn write_throttle_limits_flush_builds_and_is_accounted() {
    // A low write rate with a small burst forces the token bucket to wait
    // on flush-build output; the waits must be attributed to the runtime,
    // the dataset, and the data device.
    let runtime = MaintenanceRuntime::start(
        EngineConfig::builder()
            .workers(2)
            .io_write_limit(8 * 1024 * 1024)
            .io_write_burst(16 * 1024)
            .build()
            .unwrap(),
    )
    .unwrap();
    let storage = Storage::new(StorageOptions::test());
    let log = Storage::new(StorageOptions::test());
    let mut cfg = config(StrategyKind::Validation, CcMethod::SideFile);
    cfg.memory_budget = 8 * 1024;
    let ds = Dataset::open_with_runtime(storage.clone(), Some(log.clone()), cfg, &runtime).unwrap();

    for i in 0..4000i64 {
        ds.upsert(&rec(i % 800, i)).unwrap();
    }
    ds.maintenance().quiesce().unwrap();

    let rt = runtime.stats();
    assert!(rt.write_throttled_bytes > 0, "no writes accounted: {rt:?}");
    assert!(rt.write_throttle_wait_ns > 0, "bucket never waited: {rt:?}");
    assert!(ds.stats().snapshot().write_throttle_wait_ns > 0);
    assert!(storage.stats().write_throttle_wait_ns > 0);
    // The read side stays independent: no read throttle was configured.
    assert_eq!(rt.throttled_bytes, 0, "read bucket must stay empty: {rt:?}");
    // WAL writes are exempt even when forced from a flush job: the log
    // device recorded appends but never a throttle wait.
    assert!(log.stats().bytes_written > 0, "WAL was written");
    assert_eq!(log.stats().write_throttle_wait_ns, 0, "WAL was throttled");
    for i in [0, 399, 799] {
        assert!(ds.get(&Value::Int(i)).unwrap().is_some(), "id {i}");
    }
}

#[test]
fn foreground_wal_writes_never_charge_the_write_bucket() {
    // Regression: with a write throttle configured, foreground inserts
    // that append WAL records (but stay under the memory budget, so no
    // background job runs) must not consume write tokens.
    let runtime = MaintenanceRuntime::start(
        EngineConfig::builder()
            .workers(1)
            .io_write_limit(1024) // tiny: any charge would be obvious
            .io_write_burst(1024)
            .build()
            .unwrap(),
    )
    .unwrap();
    let log = Storage::new(StorageOptions::test());
    let mut cfg = config(StrategyKind::Eager, CcMethod::SideFile);
    cfg.memory_budget = 64 * 1024 * 1024; // never trips
    let ds = Dataset::open_with_runtime(
        Storage::new(StorageOptions::test()),
        Some(log.clone()),
        cfg,
        &runtime,
    )
    .unwrap();
    // Enough records to rotate several WAL pages.
    for i in 0..2000i64 {
        ds.upsert(&rec(i, i)).unwrap();
    }
    assert!(
        log.stats().bytes_written > 0,
        "the workload must actually write WAL pages"
    );
    let rt = runtime.stats();
    assert_eq!(
        rt.write_throttled_bytes, 0,
        "foreground WAL writes were charged to the maintenance bucket: {rt:?}"
    );
    assert_eq!(rt.write_throttle_wait_ns, 0);
}

#[test]
fn hot_dataset_cannot_starve_quiet_datasets() {
    // The starvation stress: one hot writer floods the shared queue while
    // 9 quiet datasets each need a couple of flushes. With a per-dataset
    // quota of 1 and round-robin flush scheduling, every quiet dataset's
    // flush must complete while the hot dataset still has work queued.
    let runtime = MaintenanceRuntime::start(
        EngineConfig::builder()
            .min_workers(2)
            .max_workers(4)
            .max_jobs_per_dataset(1)
            .build()
            .unwrap(),
    )
    .unwrap();
    let hot = Dataset::open_with_runtime(
        Storage::new(StorageOptions::test()),
        None,
        config(StrategyKind::Validation, CcMethod::SideFile),
        &runtime,
    )
    .unwrap();
    let quiet: Vec<Arc<Dataset>> = (0..9)
        .map(|_| {
            Dataset::open_with_runtime(
                Storage::new(StorageOptions::test()),
                None,
                config(StrategyKind::Validation, CcMethod::SideFile),
                &runtime,
            )
            .unwrap()
        })
        .collect();

    let stop = std::sync::atomic::AtomicBool::new(false);
    let spreads = std::thread::scope(|scope| {
        let hot = &hot;
        let stop = &stop;
        scope.spawn(move || {
            let mut i = 0i64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                hot.upsert(&rec(i % 400, i)).unwrap();
                i += 1;
            }
        });
        // Quiet datasets: write a burst that trips the budget, then wait
        // for their own jobs to drain — measuring the flush latency each
        // experienced while the hot writer floods the pool.
        let mut spreads = Vec::new();
        for ds in &quiet {
            let t0 = std::time::Instant::now();
            for i in 0..1200i64 {
                ds.upsert(&rec(i % 200, i)).unwrap();
            }
            ds.maintenance().quiesce().unwrap();
            spreads.push(t0.elapsed());
            assert!(
                ds.stats().snapshot().flush_jobs > 0,
                "quiet dataset never got a background flush"
            );
        }
        // The hot dataset must be busy around the time the quiet datasets
        // finished — quiet progress happened *under* contention, not after
        // the flood drained. The writer is still flooding here (stop is
        // set below), so its backlog recurs constantly; poll briefly
        // rather than sampling one instant, which could land in the gap
        // between a finished job and the next budget trip on a loaded CI
        // machine. Its stats row is found by its registration id.
        let hot_id = hot.runtime_dataset_id().unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut hot_backlog = 0;
        while hot_backlog == 0 && std::time::Instant::now() < deadline {
            hot_backlog = runtime
                .stats()
                .per_dataset
                .iter()
                .find(|d| d.dataset == hot_id)
                .map(|d| d.queued + d.in_flight)
                .unwrap_or(0);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        (spreads, hot_backlog)
    });
    let (spreads, hot_backlog) = spreads;
    assert!(
        hot_backlog > 0,
        "the hot dataset drained before the quiet ones finished — the \
         stress never contended"
    );
    // Bounded flush-latency spread: no quiet dataset took wildly longer
    // than the median (a starved dataset would block on quiesce for the
    // whole flood). Generous bound to stay robust on loaded CI machines.
    let mut sorted = spreads.clone();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let worst = *sorted.last().unwrap();
    assert!(
        worst < median * 20 + std::time::Duration::from_secs(2),
        "flush latency spread unbounded: median {median:?}, worst {worst:?}"
    );
    hot.maintenance().quiesce().unwrap();
    let stats = runtime.stats();
    assert!(stats.peak_workers <= 4, "{stats:?}");
    assert!(
        stats.quota_deferrals > 0,
        "the quota never had to defer the hot dataset: {stats:?}"
    );
}

#[test]
fn per_dataset_quiesce_ignores_other_datasets() {
    let runtime = MaintenanceRuntime::start(EngineConfig::fixed(1)).unwrap();
    let a = Dataset::open_with_runtime(
        Storage::new(StorageOptions::test()),
        None,
        config(StrategyKind::Eager, CcMethod::SideFile),
        &runtime,
    )
    .unwrap();
    let b = Dataset::open_with_runtime(
        Storage::new(StorageOptions::test()),
        None,
        config(StrategyKind::Eager, CcMethod::SideFile),
        &runtime,
    )
    .unwrap();
    for i in 0..2000i64 {
        a.upsert(&rec(i, i)).unwrap();
        b.upsert(&rec(i, i)).unwrap();
    }
    // Quiescing `a` must terminate even though `b` keeps producing work —
    // it waits for a's jobs only.
    a.maintenance().quiesce().unwrap();
    b.maintenance().quiesce().unwrap();
    assert!(a.stats().snapshot().flushes > 0);
    assert!(b.stats().snapshot().flushes > 0);
}

#[test]
fn runtime_shuts_down_with_last_dataset() {
    let runtime = MaintenanceRuntime::start(EngineConfig::fixed(2)).unwrap();
    let ds = Dataset::open_with_runtime(
        Storage::new(StorageOptions::test()),
        None,
        config(StrategyKind::Validation, CcMethod::SideFile),
        &runtime,
    )
    .unwrap();
    for i in 0..2000i64 {
        ds.upsert(&rec(i, i)).unwrap();
    }
    // Dropping the user handle first, then the dataset: the dataset's
    // handle keeps the pool alive until the very end. Must not hang.
    drop(runtime);
    drop(ds);
}
