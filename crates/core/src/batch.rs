//! The fluent write-batch API: [`Dataset::batch`] → [`WriteBatch`] →
//! [`WriteBatch::commit`].
//!
//! A batch stages any mix of inserts, upserts, and deletes and applies
//! them in one shot. Compared with issuing the operations one by one, a
//! committed batch:
//!
//! - acquires the dataset drain lock **once** for the whole batch (a
//!   single-operation call pays that read-lock per operation);
//! - appends all of its log records to the WAL as **one group** — a
//!   single staging step that the group-commit leader makes durable with
//!   one device write ([`Wal::append_batch`](crate::txn::wal::Wal));
//! - runs the flush/merge admission check once, after every operation
//!   has been applied.
//!
//! Per-operation failures that are *data* problems (schema mismatch, a
//! duplicate primary key on insert) do not abort the batch: they are
//! reported per operation in the returned [`BatchOpResult`] vector,
//! positionally aligned with the staging order. Only infrastructure
//! failures (poisoned dataset, storage errors, a WAL append failure)
//! abort the commit with an `Err`.
//!
//! Key locks for every operation in the batch are taken up front in
//! sorted, deduplicated order — two batches touching overlapping key
//! sets cannot deadlock — and the operations themselves are applied in
//! staging order, so a batch that upserts then deletes the same key
//! observes its own earlier writes.
//!
//! ```
//! use lsm_common::{FieldType, Record, Schema, Value};
//! use lsm_engine::{BatchOpResult, Dataset, DatasetConfig, StrategyKind};
//! use lsm_storage::{Storage, StorageOptions};
//!
//! let schema = Schema::new(vec![
//!     ("id", FieldType::Int),
//!     ("location", FieldType::Str),
//! ]).unwrap();
//! let mut cfg = DatasetConfig::new(schema, 0);
//! cfg.strategy = StrategyKind::Validation;
//! let ds = Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap();
//!
//! let outcomes = ds
//!     .batch()
//!     .insert(&Record::new(vec![Value::Int(1), Value::Str("CA".into())]))
//!     .upsert(&Record::new(vec![Value::Int(2), Value::Str("NY".into())]))
//!     .delete(&Value::Int(1))
//!     .commit()
//!     .unwrap();
//! assert_eq!(outcomes, vec![
//!     BatchOpResult::Inserted,
//!     BatchOpResult::Upserted,
//!     BatchOpResult::Deleted(true),
//! ]);
//! ```

use crate::dataset::Dataset;
use lsm_common::{Error, Record, Result, Value};

/// One staged operation inside a [`WriteBatch`], in caller order.
#[derive(Debug, Clone)]
pub(crate) enum StagedOp {
    /// Insert with the key-uniqueness check (Section 3.1).
    Insert(Record),
    /// Insert-or-replace.
    Upsert(Record),
    /// Delete by primary key.
    Delete(Value),
}

/// Per-operation outcome of [`WriteBatch::commit`], positionally aligned
/// with the order operations were staged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOpResult {
    /// The insert was applied.
    Inserted,
    /// The insert was rejected because the primary key already exists
    /// (the same condition under which [`Dataset::insert`] returns
    /// `false`).
    RejectedDuplicate,
    /// The upsert was applied.
    Upserted,
    /// The delete was applied; the payload mirrors [`Dataset::delete`]'s
    /// return value (`true` unless an Eager-strategy delete found the key
    /// absent).
    Deleted(bool),
    /// The operation failed validation (e.g. a schema mismatch) and was
    /// skipped; the rest of the batch still committed.
    Failed(Error),
}

/// A fluent multi-operation write batch under construction; obtained
/// from [`Dataset::batch`]. See the [module docs](self) for semantics.
#[derive(Debug, Clone)]
#[must_use = "a WriteBatch does nothing until committed"]
pub struct WriteBatch<'a> {
    ds: &'a Dataset,
    ops: Vec<StagedOp>,
}

impl<'a> WriteBatch<'a> {
    pub(crate) fn new(ds: &'a Dataset) -> Self {
        Self {
            ds,
            ops: Vec::new(),
        }
    }

    /// Stages an insert (applied with the key-uniqueness check, like
    /// [`Dataset::insert`]).
    pub fn insert(mut self, record: &Record) -> Self {
        self.ops.push(StagedOp::Insert(record.clone()));
        self
    }

    /// Stages an upsert (insert-or-replace, like [`Dataset::upsert`]).
    pub fn upsert(mut self, record: &Record) -> Self {
        self.ops.push(StagedOp::Upsert(record.clone()));
        self
    }

    /// Stages a delete by primary key (like [`Dataset::delete`]).
    pub fn delete(mut self, pk: &Value) -> Self {
        self.ops.push(StagedOp::Delete(pk.clone()));
        self
    }

    /// Number of operations staged so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operations are staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies every staged operation and makes the batch durable as one
    /// WAL group. Returns one [`BatchOpResult`] per staged operation, in
    /// staging order.
    ///
    /// Data-level failures (schema mismatch, duplicate key) surface as
    /// [`BatchOpResult::Failed`] / [`BatchOpResult::RejectedDuplicate`]
    /// without aborting the rest of the batch; infrastructure failures
    /// abort with `Err` and poison the dataset if operations had already
    /// been applied in memory (their durability can no longer be
    /// guaranteed).
    pub fn commit(self) -> Result<Vec<BatchOpResult>> {
        self.ds.apply_batch(self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetConfig, SecondaryIndexDef};
    use crate::StrategyKind;
    use lsm_common::{FieldType, Schema};
    use lsm_storage::{Storage, StorageOptions};

    fn schema() -> Schema {
        Schema::new(vec![("id", FieldType::Int), ("location", FieldType::Str)]).unwrap()
    }

    fn dataset(strategy: StrategyKind) -> std::sync::Arc<Dataset> {
        let mut cfg = DatasetConfig::new(schema(), 0);
        cfg.strategy = strategy;
        cfg.secondary_indexes.push(SecondaryIndexDef {
            name: "location".into(),
            field: 1,
        });
        Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap()
    }

    fn rec(id: i64, loc: &str) -> Record {
        Record::new(vec![Value::Int(id), Value::Str(loc.into())])
    }

    #[test]
    fn batch_outcomes_align_with_staging_order() {
        let ds = dataset(StrategyKind::Validation);
        let out = ds
            .batch()
            .insert(&rec(1, "CA"))
            .insert(&rec(1, "NY")) // duplicate pk
            .upsert(&rec(2, "WA"))
            .delete(&Value::Int(2))
            .commit()
            .unwrap();
        assert_eq!(
            out,
            vec![
                BatchOpResult::Inserted,
                BatchOpResult::RejectedDuplicate,
                BatchOpResult::Upserted,
                BatchOpResult::Deleted(true),
            ]
        );
        let res = ds.query("location").eq("CA").execute().unwrap();
        assert_eq!(res.len(), 1);
        let res = ds.query("location").eq("WA").execute().unwrap();
        assert_eq!(res.len(), 0);
    }

    #[test]
    fn schema_failures_are_staged_per_op() {
        let ds = dataset(StrategyKind::Eager);
        let bad = Record::new(vec![Value::Str("not-an-int".into()), Value::Int(9)]);
        let out = ds
            .batch()
            .upsert(&rec(7, "OR"))
            .upsert(&bad)
            .commit()
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], BatchOpResult::Upserted);
        assert!(matches!(out[1], BatchOpResult::Failed(_)));
        // The good half of the batch still landed.
        assert_eq!(ds.query("location").eq("OR").execute().unwrap().len(), 1);
    }

    #[test]
    fn batch_observes_its_own_earlier_writes() {
        let ds = dataset(StrategyKind::Eager);
        let out = ds
            .batch()
            .upsert(&rec(3, "TX"))
            .delete(&Value::Int(3))
            .insert(&rec(3, "NM"))
            .commit()
            .unwrap();
        assert_eq!(
            out,
            vec![
                BatchOpResult::Upserted,
                BatchOpResult::Deleted(true),
                BatchOpResult::Inserted,
            ]
        );
        assert_eq!(ds.query("location").eq("TX").execute().unwrap().len(), 0);
        assert_eq!(ds.query("location").eq("NM").execute().unwrap().len(), 1);
    }

    #[test]
    fn empty_batch_commits_without_effect() {
        let ds = dataset(StrategyKind::Validation);
        let out = ds.batch().commit().unwrap();
        assert!(out.is_empty());
        assert_eq!(ds.stats().snapshot().upserts, 0);
    }

    #[test]
    fn batch_matches_single_op_results_across_strategies() {
        for strategy in [
            StrategyKind::Eager,
            StrategyKind::Validation,
            StrategyKind::MutableBitmap,
            StrategyKind::DeletedKeyBTree,
        ] {
            let single = dataset(strategy);
            for i in 0..20 {
                single
                    .upsert(&rec(i, if i % 2 == 0 { "CA" } else { "NY" }))
                    .unwrap();
            }
            for i in 0..5 {
                single.delete(&Value::Int(i * 2)).unwrap();
            }

            let batched = dataset(strategy);
            let mut b = batched.batch();
            for i in 0..20 {
                b = b.upsert(&rec(i, if i % 2 == 0 { "CA" } else { "NY" }));
            }
            for i in 0..5 {
                b = b.delete(&Value::Int(i * 2));
            }
            b.commit().unwrap();

            for loc in ["CA", "NY"] {
                let a = single.query(loc_field()).eq(loc).execute().unwrap();
                let b = batched.query(loc_field()).eq(loc).execute().unwrap();
                assert_eq!(a.len(), b.len(), "{strategy:?} {loc}");
            }
        }
    }

    fn loc_field() -> &'static str {
        "location"
    }
}
