//! Datasets: the paper's storage architecture (Section 3, Figure 1) and the
//! ingestion paths of the Eager (Section 3.1), Validation (Section 4.2) and
//! Mutable-bitmap (Section 5.2) maintenance strategies.
//!
//! A dataset bundles a primary index (pk → record), an optional primary key
//! index (pk only), and N secondary indexes ((sk, pk) → ()), all LSM-trees
//! sharing one memory budget so they always flush together. Component IDs
//! are `(minTS, maxTS)` intervals over a per-dataset logical clock.

use crate::config::{DatasetConfig, StrategyKind};
use crate::keys::{encode_pk, encode_sk_pk};
use crate::stats::EngineStats;
use crate::txn::{LockManager, LogOp, LogRecord, Wal};
use lsm_common::{Error, LogicalClock, Record, Result, Timestamp, Value};
use lsm_storage::Storage;
use lsm_tree::{locate_valid, point_lookup, LsmEntry, LsmOptions, LsmTree, MergeRange};
use parking_lot::RwLock;
use std::sync::Arc;

/// One secondary index: definition + LSM-tree.
pub struct SecondaryIndex {
    /// The index definition.
    pub name: String,
    /// The schema field indexed.
    pub field: usize,
    /// The underlying LSM-tree (no Bloom filter, per the paper).
    pub tree: LsmTree,
}

/// A dataset: primary index, primary key index, secondary indexes.
pub struct Dataset {
    cfg: DatasetConfig,
    storage: Arc<Storage>,
    clock: LogicalClock,
    primary: LsmTree,
    pk_index: Option<LsmTree>,
    secondaries: Vec<SecondaryIndex>,
    stats: EngineStats,
    wal: Option<Wal>,
    /// Record-level key locks (Section 5.2).
    locks: LockManager,
    /// Set during recovery replay (suppresses re-logging to the WAL).
    recovering: std::sync::atomic::AtomicBool,
    /// Dataset-level lock used by the Side-file method to drain ongoing
    /// operations (Figure 11a): writers hold it shared per operation, the
    /// component builder takes it exclusively at phase boundaries.
    dataset_lock: RwLock<()>,
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("strategy", &self.cfg.strategy)
            .field("secondaries", &self.secondaries.len())
            .finish()
    }
}

impl Dataset {
    /// Opens an empty dataset on `storage`, logging to `log_storage` if
    /// given (the paper dedicates a second disk to the WAL).
    pub fn open(
        storage: Arc<Storage>,
        log_storage: Option<Arc<Storage>>,
        cfg: DatasetConfig,
    ) -> Result<Self> {
        cfg.validate()?;
        let primary = LsmTree::new(
            storage.clone(),
            LsmOptions {
                name: "primary".into(),
                with_bloom: true,
                bloom_kind: cfg.bloom_kind,
                bloom_fpr: cfg.bloom_fpr,
                mutable_bitmaps: cfg.strategy == StrategyKind::MutableBitmap,
            },
        );
        let pk_index = cfg.with_pk_index.then(|| {
            LsmTree::new(
                storage.clone(),
                LsmOptions {
                    name: "pk_index".into(),
                    with_bloom: true,
                    bloom_kind: cfg.bloom_kind,
                    bloom_fpr: cfg.bloom_fpr,
                    // The pk-index component SHARES the primary component's
                    // bitmap; it does not create its own.
                    mutable_bitmaps: false,
                },
            )
        });
        let secondaries = cfg
            .secondary_indexes
            .iter()
            .map(|def| SecondaryIndex {
                name: def.name.clone(),
                field: def.field,
                tree: LsmTree::new(
                    storage.clone(),
                    LsmOptions {
                        name: format!("secondary:{}", def.name),
                        with_bloom: false,
                        bloom_kind: cfg.bloom_kind,
                        bloom_fpr: cfg.bloom_fpr,
                        mutable_bitmaps: false,
                    },
                ),
            })
            .collect();
        Ok(Dataset {
            primary,
            pk_index,
            secondaries,
            clock: LogicalClock::new(),
            stats: EngineStats::new(),
            wal: log_storage.map(Wal::new),
            locks: LockManager::new(),
            recovering: std::sync::atomic::AtomicBool::new(false),
            dataset_lock: RwLock::new(()),
            storage,
            cfg,
        })
    }

    // ---- accessors ---------------------------------------------------------

    /// The configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.cfg
    }

    /// The data storage device.
    pub fn storage(&self) -> &Arc<Storage> {
        &self.storage
    }

    /// The dataset's logical clock.
    pub fn clock(&self) -> &LogicalClock {
        &self.clock
    }

    /// Operation counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The primary index.
    pub fn primary(&self) -> &LsmTree {
        &self.primary
    }

    /// The primary key index, if configured.
    pub fn pk_index(&self) -> Option<&LsmTree> {
        self.pk_index.as_ref()
    }

    /// The secondary indexes.
    pub fn secondaries(&self) -> &[SecondaryIndex] {
        &self.secondaries
    }

    /// Finds a secondary index by name.
    pub fn secondary(&self, name: &str) -> Result<&SecondaryIndex> {
        self.secondaries
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| Error::NoSuchIndex(name.into()))
    }

    /// The write-ahead log, if configured.
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    /// The record-level lock manager.
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// The dataset-level drain lock (Side-file method).
    pub fn dataset_lock(&self) -> &RwLock<()> {
        &self.dataset_lock
    }

    fn ts_for_entries(&self, ts: Timestamp) -> Timestamp {
        if self.cfg.strategy.stores_timestamps() {
            ts
        } else {
            lsm_common::clock::NO_TIMESTAMP
        }
    }

    fn pk_of(&self, record: &Record) -> Value {
        record.get(self.cfg.pk_field).clone()
    }

    fn filter_value(&self, record: &Record) -> Option<Value> {
        self.cfg.filter_field.map(|f| record.get(f).clone())
    }

    /// Marks the dataset as replaying the log (operations are not re-logged).
    pub(crate) fn set_recovering(&self, on: bool) {
        self.recovering
            .store(on, std::sync::atomic::Ordering::SeqCst);
    }

    /// Re-executes the bitmap mutation of a logged delete/upsert whose entry
    /// effects are already durable (recovery redo path).
    pub(crate) fn redo_bitmap_mark(&self, pk_key: &[u8]) -> Result<()> {
        if self.cfg.strategy == StrategyKind::MutableBitmap {
            self.mark_old_version_deleted(pk_key)?;
        }
        Ok(())
    }

    fn log(
        &self,
        op: LogOp,
        key: &[u8],
        value: &[u8],
        ts: Timestamp,
        update_bit: bool,
    ) -> Result<()> {
        if self.recovering.load(std::sync::atomic::Ordering::SeqCst) {
            return Ok(());
        }
        if let Some(wal) = &self.wal {
            wal.append(&LogRecord {
                lsn: ts,
                op,
                key: key.to_vec(),
                value: value.to_vec(),
                update_bit,
            })?;
        }
        Ok(())
    }

    // ---- ingestion ----------------------------------------------------------

    /// Inserts a record; returns `false` if the primary key already exists
    /// (the key-uniqueness check of Section 3.1).
    pub fn insert(&self, record: &Record) -> Result<bool> {
        self.cfg.schema.check(record)?;
        let _ds = self.dataset_lock.read();
        let pk = self.pk_of(record);
        let pk_key = encode_pk(&pk);
        self.locks.lock_exclusive(&pk_key);
        let out = self.insert_locked(record, &pk, &pk_key);
        self.locks.unlock_exclusive(&pk_key);
        let out = out?;
        drop(_ds);
        self.maybe_flush_and_merge()?;
        Ok(out)
    }

    fn insert_locked(&self, record: &Record, pk: &Value, pk_key: &[u8]) -> Result<bool> {
        // Key-uniqueness check: the primary key index can be searched
        // instead of the primary index for efficiency (Section 3.1);
        // Figure 13 evaluates exactly this choice.
        self.stats.bump(&self.stats.maintenance_lookups);
        let existing = match &self.pk_index {
            Some(pk_tree) => point_lookup(pk_tree, pk_key)?,
            None => point_lookup(&self.primary, pk_key)?,
        };
        if existing.is_some_and(|e| !e.anti_matter) {
            self.stats.bump(&self.stats.inserts_rejected);
            return Ok(false);
        }

        let ts = self.clock.tick();
        let record_bytes = record.encode();
        self.log(LogOp::Insert, pk_key, &record_bytes, ts, false)?;
        let ets = self.ts_for_entries(ts);
        self.primary
            .put(pk_key.to_vec(), LsmEntry::put_ts(record_bytes, ets), ts);
        if let Some(pk_tree) = &self.pk_index {
            pk_tree.put(pk_key.to_vec(), LsmEntry::put_ts(Vec::new(), ets), ts);
        }
        for sec in &self.secondaries {
            let sk = record.get(sec.field);
            sec.tree
                .put(encode_sk_pk(sk, pk), LsmEntry::put_ts(Vec::new(), ets), ts);
        }
        if let Some(v) = self.filter_value(record) {
            self.primary.widen_mem_filter(&v);
        }
        self.stats.bump(&self.stats.inserts);
        Ok(true)
    }

    /// Deletes by primary key. Returns `true` if the strategy knows a record
    /// was removed (the lazy strategies apply deletes blindly and return
    /// `true` unconditionally).
    pub fn delete(&self, pk: &Value) -> Result<bool> {
        let _ds = self.dataset_lock.read();
        let pk_key = encode_pk(pk);
        self.locks.lock_exclusive(&pk_key);
        let out = self.delete_locked(pk, &pk_key);
        self.locks.unlock_exclusive(&pk_key);
        let out = out?;
        drop(_ds);
        self.maybe_flush_and_merge()?;
        Ok(out)
    }

    fn delete_locked(&self, pk: &Value, pk_key: &[u8]) -> Result<bool> {
        let ts = self.clock.tick();
        let ets = self.ts_for_entries(ts);
        match self.cfg.strategy {
            StrategyKind::Eager => {
                // Fetch the old record to produce secondary anti-matter and
                // maintain filters (Section 3.1).
                self.stats.bump(&self.stats.maintenance_lookups);
                let old = point_lookup(&self.primary, pk_key)?;
                let Some(old) = old.filter(|e| !e.anti_matter) else {
                    return Ok(false); // key absent: ignored
                };
                let old_record = Record::decode(&old.value)?;
                self.log(LogOp::Delete, pk_key, &[], ts, false)?;
                self.primary
                    .put(pk_key.to_vec(), LsmEntry::anti_matter_ts(ets), ts);
                if let Some(pk_tree) = &self.pk_index {
                    pk_tree.put(pk_key.to_vec(), LsmEntry::anti_matter_ts(ets), ts);
                }
                for sec in &self.secondaries {
                    let sk = old_record.get(sec.field);
                    sec.tree
                        .put(encode_sk_pk(sk, pk), LsmEntry::anti_matter_ts(ets), ts);
                }
                if let Some(v) = self.filter_value(&old_record) {
                    self.primary.widen_mem_filter(&v);
                }
            }
            StrategyKind::Validation | StrategyKind::DeletedKeyBTree => {
                // Anti-matter into the primary index and the primary key
                // index only (Section 4.2); secondaries are cleaned lazily.
                self.log(LogOp::Delete, pk_key, &[], ts, false)?;
                let old = self
                    .primary
                    .put(pk_key.to_vec(), LsmEntry::anti_matter_ts(ets), ts);
                if let Some(pk_tree) = &self.pk_index {
                    pk_tree.put(pk_key.to_vec(), LsmEntry::anti_matter_ts(ets), ts);
                }
                // Memory-component optimization (Section 4.2): an old record
                // still in memory yields free secondary anti-matter.
                self.local_secondary_cleanup(pk, old, None, ets, ts)?;
            }
            StrategyKind::MutableBitmap => {
                // Mark the old version deleted in place through the shared
                // bitmap, located via the primary key index (Section 5.2).
                let update_bit = self.mark_old_version_deleted(pk_key)?;
                self.log(LogOp::Delete, pk_key, &[], ts, update_bit)?;
                let old = self
                    .primary
                    .put(pk_key.to_vec(), LsmEntry::anti_matter_ts(ets), ts);
                if let Some(pk_tree) = &self.pk_index {
                    pk_tree.put(pk_key.to_vec(), LsmEntry::anti_matter_ts(ets), ts);
                }
                self.local_secondary_cleanup(pk, old, None, ets, ts)?;
            }
        }
        self.stats.bump(&self.stats.deletes);
        Ok(true)
    }

    /// Upserts a record (insert-or-replace).
    pub fn upsert(&self, record: &Record) -> Result<()> {
        self.cfg.schema.check(record)?;
        let _ds = self.dataset_lock.read();
        let pk = self.pk_of(record);
        let pk_key = encode_pk(&pk);
        self.locks.lock_exclusive(&pk_key);
        let out = self.upsert_locked(record, &pk, &pk_key);
        self.locks.unlock_exclusive(&pk_key);
        out?;
        drop(_ds);
        self.maybe_flush_and_merge()
    }

    /// Upsert without the flush/merge check (used by concurrent-writer
    /// benchmarks that must not trigger reentrant structural operations).
    pub fn upsert_no_maintenance(&self, record: &Record) -> Result<()> {
        self.cfg.schema.check(record)?;
        let _ds = self.dataset_lock.read();
        let pk = self.pk_of(record);
        let pk_key = encode_pk(&pk);
        self.locks.lock_exclusive(&pk_key);
        let out = self.upsert_locked(record, &pk, &pk_key);
        self.locks.unlock_exclusive(&pk_key);
        out
    }

    fn upsert_locked(&self, record: &Record, pk: &Value, pk_key: &[u8]) -> Result<()> {
        let ts = self.clock.tick();
        let ets = self.ts_for_entries(ts);
        let record_bytes = record.encode();
        match self.cfg.strategy {
            StrategyKind::Eager => {
                // Point lookup to fetch the old record (Section 3.1).
                self.stats.bump(&self.stats.maintenance_lookups);
                let old = point_lookup(&self.primary, pk_key)?.filter(|e| !e.anti_matter);
                let old_record = old.map(|e| Record::decode(&e.value)).transpose()?;
                self.log(LogOp::Upsert, pk_key, &record_bytes, ts, false)?;
                self.primary
                    .put(pk_key.to_vec(), LsmEntry::put_ts(record_bytes, ets), ts);
                if let Some(pk_tree) = &self.pk_index {
                    pk_tree.put(pk_key.to_vec(), LsmEntry::put_ts(Vec::new(), ets), ts);
                }
                for sec in &self.secondaries {
                    let new_sk = record.get(sec.field);
                    match &old_record {
                        Some(old_rec) => {
                            let old_sk = old_rec.get(sec.field);
                            if old_sk == new_sk {
                                // Unchanged secondary key: skip maintenance
                                // (the Section 3.1 optimization).
                                continue;
                            }
                            sec.tree.put(
                                encode_sk_pk(old_sk, pk),
                                LsmEntry::anti_matter_ts(ets),
                                ts,
                            );
                            sec.tree.put(
                                encode_sk_pk(new_sk, pk),
                                LsmEntry::put_ts(Vec::new(), ets),
                                ts,
                            );
                        }
                        None => {
                            sec.tree.put(
                                encode_sk_pk(new_sk, pk),
                                LsmEntry::put_ts(Vec::new(), ets),
                                ts,
                            );
                        }
                    }
                }
                // Filters maintained on BOTH the old and new record
                // (Figure 3).
                if let Some(v) = self.filter_value(record) {
                    self.primary.widen_mem_filter(&v);
                }
                if let Some(old_rec) = &old_record {
                    if let Some(v) = self.filter_value(old_rec) {
                        self.primary.widen_mem_filter(&v);
                    }
                }
            }
            StrategyKind::Validation | StrategyKind::DeletedKeyBTree => {
                self.log(LogOp::Upsert, pk_key, &record_bytes, ts, false)?;
                let old =
                    self.primary
                        .put(pk_key.to_vec(), LsmEntry::put_ts(record_bytes, ets), ts);
                if let Some(pk_tree) = &self.pk_index {
                    pk_tree.put(pk_key.to_vec(), LsmEntry::put_ts(Vec::new(), ets), ts);
                }
                for sec in &self.secondaries {
                    sec.tree.put(
                        encode_sk_pk(record.get(sec.field), pk),
                        LsmEntry::put_ts(Vec::new(), ets),
                        ts,
                    );
                }
                self.local_secondary_cleanup(pk, old, Some(record), ets, ts)?;
                // Filters maintained on the new record only (Figure 4).
                if let Some(v) = self.filter_value(record) {
                    self.primary.widen_mem_filter(&v);
                }
            }
            StrategyKind::MutableBitmap => {
                let update_bit = self.mark_old_version_deleted(pk_key)?;
                self.log(LogOp::Upsert, pk_key, &record_bytes, ts, update_bit)?;
                let old =
                    self.primary
                        .put(pk_key.to_vec(), LsmEntry::put_ts(record_bytes, ets), ts);
                if let Some(pk_tree) = &self.pk_index {
                    pk_tree.put(pk_key.to_vec(), LsmEntry::put_ts(Vec::new(), ets), ts);
                }
                // Secondary indexes are maintained with the Validation
                // strategy (Section 5.2 / 6.3.2).
                for sec in &self.secondaries {
                    sec.tree.put(
                        encode_sk_pk(record.get(sec.field), pk),
                        LsmEntry::put_ts(Vec::new(), ets),
                        ts,
                    );
                }
                self.local_secondary_cleanup(pk, old, Some(record), ets, ts)?;
                // Filters maintained on the new record only (Figure 9).
                if let Some(v) = self.filter_value(record) {
                    self.primary.widen_mem_filter(&v);
                }
            }
        }
        self.stats.bump(&self.stats.upserts);
        Ok(())
    }

    /// The Section 4.2 memory-component optimization: when the replaced
    /// primary memory entry held the old record, emit local anti-matter for
    /// the secondary indexes without any I/O.
    fn local_secondary_cleanup(
        &self,
        pk: &Value,
        old_mem_entry: Option<LsmEntry>,
        new_record: Option<&Record>,
        ets: Timestamp,
        ts: Timestamp,
    ) -> Result<()> {
        let Some(old) = old_mem_entry.filter(|e| !e.anti_matter) else {
            return Ok(());
        };
        let old_record = Record::decode(&old.value)?;
        for sec in &self.secondaries {
            let old_sk = old_record.get(sec.field);
            if let Some(new_rec) = new_record {
                if new_rec.get(sec.field) == old_sk {
                    continue; // the new entry replaced it under the same key
                }
            }
            sec.tree
                .put(encode_sk_pk(old_sk, pk), LsmEntry::anti_matter_ts(ets), ts);
        }
        Ok(())
    }

    /// Mutable-bitmap delete/upsert probe (Section 5.2): search the primary
    /// key index for the old version's position and set its bitmap bit.
    /// Returns the update bit for the log record. If a flush/merge is
    /// rebuilding the containing component, the delete is also routed to the
    /// successor (Section 5.3).
    fn mark_old_version_deleted(&self, pk_key: &[u8]) -> Result<bool> {
        // An old version still in the memory component needs no bitmap work:
        // the new memory entry replaces it outright.
        if self.primary.mem_get(pk_key).is_some_and(|e| !e.anti_matter) {
            return Ok(false);
        }
        let pk_tree = self
            .pk_index
            .as_ref()
            .expect("mutable-bitmap requires the pk index");
        let Some((comp, ordinal, _)) = locate_valid(pk_tree, pk_key)? else {
            return Ok(false);
        };
        let bitmap = comp
            .bitmap()
            .expect("mutable-bitmap components carry bitmaps");
        bitmap.set(ordinal);
        // Concurrency control for an in-progress flush/merge (Section 5.3):
        // the delete must also reach the successor component.
        if let Some(link) = comp.successor() {
            if let Some(new_comp) = link.new_component() {
                // Build finished: mark the key deleted in the new component
                // directly (Figure 11b lines 8-9 / Figure 10b lines 6-7).
                if let Some((_, ord)) = new_comp.search(pk_key)? {
                    if let Some(bm) = new_comp.bitmap() {
                        bm.set(ord);
                    }
                }
            } else if !link.try_append_side_file(pk_key.to_vec()) {
                // Lock method (side-file born closed): register against the
                // scanned prefix of the new component.
                link.try_direct_delete(pk_key);
            }
        }
        Ok(true)
    }

    // ---- structural maintenance ---------------------------------------------

    /// Combined memory-component usage across all indexes.
    pub fn mem_total_bytes(&self) -> usize {
        let mut total = self.primary.mem_bytes();
        if let Some(pk_tree) = &self.pk_index {
            total += pk_tree.mem_bytes();
        }
        for sec in &self.secondaries {
            total += sec.tree.mem_bytes();
        }
        total
    }

    fn maybe_flush_and_merge(&self) -> Result<()> {
        if self.mem_total_bytes() > self.cfg.memory_budget {
            self.flush_all()?;
            self.run_merges()?;
        }
        Ok(())
    }

    /// Flushes all memory components together (they share the budget, as in
    /// AsterixDB). Returns `true` if anything was flushed.
    pub fn flush_all(&self) -> Result<bool> {
        let primary_comp = self.primary.flush()?;
        let pk_comp = match &self.pk_index {
            Some(t) => t.flush()?,
            None => None,
        };
        for sec in &self.secondaries {
            sec.tree.flush()?;
        }
        // Mutable-bitmap: the primary and pk-index components formed by one
        // flush share a single bitmap (Section 5.1) — entries of both are
        // pk-ordered, so ordinals coincide.
        if self.cfg.strategy == StrategyKind::MutableBitmap {
            if let (Some(p), Some(k)) = (&primary_comp, &pk_comp) {
                assert_eq!(p.num_entries(), k.num_entries());
                k.set_bitmap(p.bitmap().expect("primary flush makes a bitmap"));
            }
        }
        if primary_comp.is_some() {
            self.stats.bump(&self.stats.flushes);
            if let Some(wal) = &self.wal {
                wal.force()?;
            }
        }
        Ok(primary_comp.is_some())
    }

    /// Runs policy-driven merges until quiescent.
    pub fn run_merges(&self) -> Result<()> {
        let policy = self.cfg.merge.policy();
        if self.cfg.requires_correlated_merges() {
            while let Some(range) = self.primary.select_merge(&policy) {
                self.merge_correlated(range)?;
            }
        } else {
            while let Some(range) = self.primary.select_merge(&policy) {
                self.primary.merge_range(range)?;
                self.stats.bump(&self.stats.merges);
            }
            if let Some(pk_tree) = &self.pk_index {
                while let Some(range) = pk_tree.select_merge(&policy) {
                    pk_tree.merge_range(range)?;
                    self.stats.bump(&self.stats.merges);
                }
            }
            for sec in &self.secondaries {
                while let Some(range) = sec.tree.select_merge(&policy) {
                    self.merge_secondary(sec, range)?;
                }
            }
        }
        Ok(())
    }

    /// Merges all of the dataset's indexes over the same component range
    /// (the correlated merge policy of Sections 4.4/5.1).
    pub fn merge_correlated(&self, range: MergeRange) -> Result<()> {
        let new_primary = self.primary.merge_range(range)?;
        self.stats.bump(&self.stats.merges);
        if let Some(pk_tree) = &self.pk_index {
            if pk_tree.num_disk_components() > range.end {
                let new_pk = pk_tree.merge_range(range)?;
                self.stats.bump(&self.stats.merges);
                if self.cfg.strategy == StrategyKind::MutableBitmap {
                    assert_eq!(new_primary.num_entries(), new_pk.num_entries());
                    new_pk.set_bitmap(new_primary.bitmap().expect("merged primary has a bitmap"));
                }
            }
        }
        for sec in &self.secondaries {
            if sec.tree.num_disk_components() > range.end {
                self.merge_secondary(sec, range)?;
            }
        }
        Ok(())
    }

    /// Merges one secondary index range, repairing it when the strategy
    /// calls for it.
    fn merge_secondary(&self, sec: &SecondaryIndex, range: MergeRange) -> Result<()> {
        use crate::repair::{merge_repair, RepairOptions};
        let repair = match self.cfg.strategy {
            StrategyKind::Validation | StrategyKind::MutableBitmap => self.cfg.merge_repair,
            StrategyKind::DeletedKeyBTree => true,
            StrategyKind::Eager => false,
        };
        if repair {
            let mode = self.cfg.default_repair_mode();
            let pk_tree = self.pk_index.as_ref().expect("repair needs the pk index");
            merge_repair(
                &sec.tree,
                pk_tree,
                range,
                &RepairOptions {
                    mode,
                    ..Default::default()
                },
            )?;
            self.stats.bump(&self.stats.merges);
            self.stats.bump(&self.stats.repairs);
        } else {
            sec.tree.merge_range(range)?;
            self.stats.bump(&self.stats.merges);
        }
        Ok(())
    }

    // ---- simple reads ---------------------------------------------------------

    /// Fetches a record by primary key (newest live version).
    pub fn get(&self, pk: &Value) -> Result<Option<Record>> {
        let pk_key = encode_pk(pk);
        match point_lookup(&self.primary, &pk_key)? {
            Some(e) if !e.anti_matter => Ok(Some(Record::decode(&e.value)?)),
            _ => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SecondaryIndexDef;
    use lsm_common::{FieldType, Schema};
    use lsm_storage::StorageOptions;

    fn tweet_schema() -> Schema {
        Schema::new(vec![
            ("id", FieldType::Int),
            ("location", FieldType::Str),
            ("time", FieldType::Int),
        ])
        .unwrap()
    }

    fn config(strategy: StrategyKind) -> DatasetConfig {
        let mut cfg = DatasetConfig::new(tweet_schema(), 0);
        cfg.strategy = strategy;
        cfg.secondary_indexes = vec![SecondaryIndexDef {
            name: "location".into(),
            field: 1,
        }];
        cfg.filter_field = Some(2);
        cfg.memory_budget = 64 * 1024;
        cfg
    }

    fn dataset(strategy: StrategyKind) -> Dataset {
        Dataset::open(Storage::new(StorageOptions::test()), None, config(strategy)).unwrap()
    }

    fn rec(id: i64, loc: &str, time: i64) -> Record {
        Record::new(vec![
            Value::Int(id),
            Value::Str(loc.into()),
            Value::Int(time),
        ])
    }

    fn all_strategies() -> Vec<StrategyKind> {
        vec![
            StrategyKind::Eager,
            StrategyKind::Validation,
            StrategyKind::MutableBitmap,
            StrategyKind::DeletedKeyBTree,
        ]
    }

    #[test]
    fn insert_get_roundtrip_all_strategies() {
        for s in all_strategies() {
            let ds = dataset(s);
            assert!(ds.insert(&rec(101, "CA", 2015)).unwrap());
            assert!(ds.insert(&rec(102, "CA", 2016)).unwrap());
            assert_eq!(
                ds.get(&Value::Int(101)).unwrap().unwrap(),
                rec(101, "CA", 2015)
            );
            assert!(ds.get(&Value::Int(999)).unwrap().is_none());
        }
    }

    #[test]
    fn duplicate_insert_rejected_all_strategies() {
        for s in all_strategies() {
            let ds = dataset(s);
            assert!(ds.insert(&rec(101, "CA", 2015)).unwrap());
            assert!(!ds.insert(&rec(101, "NY", 2018)).unwrap(), "{s:?}");
            // The original record remains.
            assert_eq!(
                ds.get(&Value::Int(101)).unwrap().unwrap(),
                rec(101, "CA", 2015)
            );
            assert_eq!(ds.stats().snapshot().inserts_rejected, 1);
        }
    }

    #[test]
    fn duplicate_check_works_across_flush() {
        for s in all_strategies() {
            let ds = dataset(s);
            ds.insert(&rec(1, "CA", 1)).unwrap();
            ds.flush_all().unwrap();
            assert!(!ds.insert(&rec(1, "NY", 2)).unwrap(), "{s:?}");
        }
    }

    #[test]
    fn upsert_replaces_all_strategies() {
        for s in all_strategies() {
            let ds = dataset(s);
            ds.insert(&rec(101, "CA", 2015)).unwrap();
            ds.flush_all().unwrap(); // old version on disk
            ds.upsert(&rec(101, "NY", 2018)).unwrap();
            assert_eq!(
                ds.get(&Value::Int(101)).unwrap().unwrap(),
                rec(101, "NY", 2018),
                "{s:?}"
            );
        }
    }

    #[test]
    fn delete_removes_all_strategies() {
        for s in all_strategies() {
            let ds = dataset(s);
            ds.insert(&rec(101, "CA", 2015)).unwrap();
            ds.flush_all().unwrap();
            ds.delete(&Value::Int(101)).unwrap();
            assert!(ds.get(&Value::Int(101)).unwrap().is_none(), "{s:?}");
            // Deleted keys can be re-inserted.
            assert!(ds.insert(&rec(101, "UT", 2019)).unwrap(), "{s:?}");
            assert!(ds.get(&Value::Int(101)).unwrap().is_some());
        }
    }

    #[test]
    fn eager_delete_of_absent_key_is_noop() {
        let ds = dataset(StrategyKind::Eager);
        assert!(!ds.delete(&Value::Int(5)).unwrap());
    }

    #[test]
    fn mutable_bitmap_marks_disk_version() {
        let ds = dataset(StrategyKind::MutableBitmap);
        ds.insert(&rec(101, "CA", 2015)).unwrap();
        ds.insert(&rec(102, "CA", 2016)).unwrap();
        ds.flush_all().unwrap();
        let comp = &ds.primary().disk_components()[0];
        assert_eq!(comp.bitmap().unwrap().count_set(), 0);
        ds.upsert(&rec(101, "NY", 2018)).unwrap();
        // The old version of 101 is marked deleted in place (Figure 9).
        assert_eq!(comp.bitmap().unwrap().count_set(), 1);
        // The pk-index component shares the same bitmap.
        let pk_comp = &ds.pk_index().unwrap().disk_components()[0];
        assert_eq!(pk_comp.bitmap().unwrap().count_set(), 1);
        assert_eq!(
            ds.get(&Value::Int(101)).unwrap().unwrap(),
            rec(101, "NY", 2018)
        );
    }

    #[test]
    fn flush_when_budget_exceeded() {
        let ds = dataset(StrategyKind::Eager);
        for i in 0..2000 {
            ds.insert(&rec(i, "CA", i)).unwrap();
        }
        assert!(
            ds.stats().snapshot().flushes > 0,
            "memory budget should trigger flushes"
        );
        assert!(ds.primary().num_disk_components() >= 1);
        // All data still reachable.
        assert!(ds.get(&Value::Int(0)).unwrap().is_some());
        assert!(ds.get(&Value::Int(1999)).unwrap().is_some());
    }

    #[test]
    fn merges_run_under_policy() {
        let mut cfg = config(StrategyKind::Validation);
        cfg.memory_budget = 32 * 1024;
        cfg.merge.max_mergeable_bytes = u64::MAX;
        let ds = Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap();
        for i in 0..4000 {
            ds.insert(&rec(i, "CA", i)).unwrap();
        }
        let snap = ds.stats().snapshot();
        assert!(snap.flushes >= 3, "flushes {}", snap.flushes);
        assert!(snap.merges > 0, "merges {}", snap.merges);
        // Tiering with unlimited cap keeps the component count low.
        assert!(ds.primary().num_disk_components() <= 4);
        assert!(ds.get(&Value::Int(3999)).unwrap().is_some());
    }

    #[test]
    fn correlated_merges_keep_indexes_aligned() {
        let mut cfg = config(StrategyKind::MutableBitmap);
        cfg.memory_budget = 32 * 1024;
        cfg.merge.max_mergeable_bytes = u64::MAX;
        let ds = Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap();
        for i in 0..3000 {
            ds.upsert(&rec(i % 1000, "CA", i)).unwrap();
        }
        let p = ds.primary().num_disk_components();
        let k = ds.pk_index().unwrap().num_disk_components();
        assert_eq!(p, k, "correlated merges must keep components aligned");
        // Components pair up with shared bitmaps.
        for (pc, kc) in ds
            .primary()
            .disk_components()
            .iter()
            .zip(ds.pk_index().unwrap().disk_components())
        {
            assert_eq!(pc.num_entries(), kc.num_entries());
            assert!(Arc::ptr_eq(&pc.bitmap().unwrap(), &kc.bitmap().unwrap()));
        }
    }

    #[test]
    fn eager_counts_maintenance_lookups() {
        let ds = dataset(StrategyKind::Eager);
        ds.insert(&rec(1, "CA", 1)).unwrap();
        ds.upsert(&rec(1, "NY", 2)).unwrap();
        ds.delete(&Value::Int(1)).unwrap();
        // insert (uniqueness) + upsert (old record) + delete (old record).
        assert_eq!(ds.stats().snapshot().maintenance_lookups, 3);
    }

    #[test]
    fn wal_records_ingestion() {
        let storage = Storage::new(StorageOptions::test());
        let log = Storage::new(StorageOptions::test());
        let ds = Dataset::open(storage, Some(log), config(StrategyKind::Validation)).unwrap();
        ds.insert(&rec(1, "CA", 1)).unwrap();
        ds.upsert(&rec(1, "NY", 2)).unwrap();
        ds.delete(&Value::Int(1)).unwrap();
        let recs = ds.wal().unwrap().replay(0, true).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].op, LogOp::Insert);
        assert_eq!(recs[1].op, LogOp::Upsert);
        assert_eq!(recs[2].op, LogOp::Delete);
        assert!(recs.windows(2).all(|w| w[0].lsn < w[1].lsn));
    }
}
