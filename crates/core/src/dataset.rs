//! Datasets: the paper's storage architecture (Section 3, Figure 1) and the
//! ingestion paths of the Eager (Section 3.1), Validation (Section 4.2) and
//! Mutable-bitmap (Section 5.2) maintenance strategies.
//!
//! A dataset bundles a primary index (pk → record), an optional primary key
//! index (pk only), and N secondary indexes ((sk, pk) → ()), all LSM-trees
//! sharing one memory budget so they always flush together. Component IDs
//! are `(minTS, maxTS)` intervals over a per-dataset logical clock.

use crate::config::{DatasetConfig, EngineConfig, MaintenanceMode, StrategyKind};
use crate::keys::{encode_pk, encode_sk_pk};
use crate::scheduler::{MaintenanceRuntime, RuntimeHandle};
use crate::stats::EngineStats;
use crate::txn::{LockManager, LogOp, LogRecord, Wal};
use lsm_common::{Error, LogicalClock, Record, Result, Timestamp, Value};
use lsm_storage::Storage;
use lsm_tree::{locate_valid, point_lookup, LsmEntry, LsmOptions, LsmTree, MergeRange};
use parking_lot::{Mutex, RwLock};
use std::sync::{Arc, Weak};

/// One secondary index: definition + LSM-tree.
pub struct SecondaryIndex {
    /// The index definition.
    pub name: String,
    /// The schema field indexed.
    pub field: usize,
    /// The underlying LSM-tree (no Bloom filter, per the paper).
    pub tree: LsmTree,
}

/// A dataset: primary index, primary key index, secondary indexes.
pub struct Dataset {
    cfg: DatasetConfig,
    storage: Arc<Storage>,
    clock: LogicalClock,
    primary: LsmTree,
    pk_index: Option<LsmTree>,
    secondaries: Vec<SecondaryIndex>,
    stats: Arc<EngineStats>,
    wal: Option<Wal>,
    /// Record-level key locks (Section 5.2).
    locks: LockManager,
    /// Set during recovery replay (suppresses re-logging to the WAL).
    recovering: std::sync::atomic::AtomicBool,
    /// Dataset-level lock used by the Side-file method to drain ongoing
    /// operations (Figure 11a): writers hold it shared per operation, the
    /// component builder takes it exclusively at phase boundaries.
    dataset_lock: RwLock<()>,
    /// Serializes flushes (inline callers vs background workers): at most
    /// one set of sealed memory snapshots exists at a time.
    flush_mutex: Mutex<()>,
    /// Serializes structural merges. Flushes and merges may overlap (a
    /// flush only reads memory; a merge only reads disk components), but
    /// two merges racing would work from stale component indices.
    merge_mutex: Mutex<()>,
    /// This dataset's registration on a [`MaintenanceRuntime`] (set once,
    /// lock-free thereafter — the hot write path must not take a mutex per
    /// op). Holding the handle keeps the runtime alive; a dataset opened
    /// with [`MaintenanceMode::Background`] owns a private fixed-size
    /// runtime, one opened with [`Dataset::open_with_runtime`] shares the
    /// caller's.
    runtime: std::sync::OnceLock<RuntimeHandle>,
    /// Mutable-bitmap flushes: deletes of versions sitting in the sealed
    /// (immutable, mid-flush) snapshot are routed here and applied to the
    /// new component's bitmap before it becomes visible — the §5.3
    /// side-file idea applied to flushes. `Some` while a flush is in
    /// progress; transitions happen under the dataset drain lock.
    flush_deletes: Mutex<Option<Vec<Vec<u8>>>>,
    /// First error raised by a background maintenance job; surfaced to the
    /// caller on the next write instead of aborting the worker's process.
    poison: Mutex<Option<Error>>,
    poisoned: std::sync::atomic::AtomicBool,
    /// Weak handle to the `Arc` this dataset lives in, so the fluent
    /// facade can hand worker threads a reference without keeping the
    /// dataset alive forever.
    self_ref: Weak<Dataset>,
}

/// Which index (or index group) a planned merge applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergeTarget {
    /// All of the dataset's indexes over the same range (the correlated
    /// merge policy of Sections 4.4/5.1).
    Correlated,
    /// The primary index alone.
    Primary,
    /// The primary key index alone.
    PkIndex,
    /// The `i`-th secondary index (position in [`Dataset::secondaries`]).
    Secondary(usize),
}

/// One unit of planned merge work: [`Dataset::plan_merges`] returns these
/// instead of looping internally, so a scheduler can queue, dedup, and
/// execute them on worker threads ([`Dataset::execute_merge_plan`]).
///
/// `range` uses oldest-first component indexing, which stays stable across
/// concurrent flushes (flushes prepend at the *newest* end); only another
/// merge invalidates a plan, and merges are serialized per dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MergePlan {
    /// The index (group) to merge.
    pub target: MergeTarget,
    /// Component range to merge, oldest-first.
    pub range: MergeRange,
}

/// Where a write operation's log record goes: straight to the WAL (the
/// single-operation paths), or into a [`WriteBatch`](crate::WriteBatch)'s
/// staging buffer for one group append at commit.
pub(crate) enum LogSink<'a> {
    /// Append to the WAL immediately, probing the `wal_append` crash site.
    Immediate,
    /// Collect records for a batch-wide group append.
    Staged(&'a mut Vec<LogRecord>),
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("strategy", &self.cfg.strategy)
            .field("secondaries", &self.secondaries.len())
            .finish()
    }
}

impl Drop for Dataset {
    /// Deregisters from the maintenance runtime (discarding this dataset's
    /// queued jobs — workers hold only weak references, so none can be
    /// mid-execution here). If this dataset owned the runtime's last
    /// handle, the runtime itself then shuts down, draining in-flight
    /// rebuilds — possibly on a worker thread (a job holds a temporary
    /// strong reference), which the runtime handles by detaching itself.
    fn drop(&mut self) {
        if let Some(handle) = self.runtime.get() {
            handle.deregister();
        }
    }
}

impl Dataset {
    /// Opens an empty dataset on `storage`, logging to `log_storage` if
    /// given (the paper dedicates a second disk to the WAL).
    ///
    /// Returns an [`Arc`] so the dataset can be shared with concurrent
    /// writers and with background maintenance workers.
    /// [`MaintenanceMode::Background`] starts a *private* fixed-size
    /// [`MaintenanceRuntime`] for this dataset; to share one bounded
    /// runtime across many datasets use [`Dataset::open_with_runtime`].
    /// Dropping the last handle deregisters the dataset (and shuts a
    /// private runtime down after draining in-flight rebuilds).
    pub fn open(
        storage: Arc<Storage>,
        log_storage: Option<Arc<Storage>>,
        cfg: DatasetConfig,
    ) -> Result<Arc<Self>> {
        let ds = Self::build(storage, log_storage, cfg)?;
        if let MaintenanceMode::Background { workers } = ds.cfg.maintenance {
            ds.start_background(workers)?;
        }
        Ok(ds)
    }

    /// Opens an empty dataset registered on an existing shared
    /// [`MaintenanceRuntime`]: flushes and merges are enqueued on the
    /// runtime's prioritized queue and executed by its bounded worker pool
    /// alongside every other registered dataset's jobs. Any
    /// [`MaintenanceMode::Background`] worker count in `cfg` is ignored —
    /// the shared runtime's [`EngineConfig`] governs.
    pub fn open_with_runtime(
        storage: Arc<Storage>,
        log_storage: Option<Arc<Storage>>,
        cfg: DatasetConfig,
        runtime: &Arc<MaintenanceRuntime>,
    ) -> Result<Arc<Self>> {
        let ds = Self::build(storage, log_storage, cfg)?;
        ds.attach_runtime(runtime.clone())?;
        Ok(ds)
    }

    fn build(
        storage: Arc<Storage>,
        log_storage: Option<Arc<Storage>>,
        cfg: DatasetConfig,
    ) -> Result<Arc<Self>> {
        cfg.validate()?;
        let primary = LsmTree::new(
            storage.clone(),
            LsmOptions {
                name: "primary".into(),
                with_bloom: true,
                bloom_kind: cfg.bloom_kind,
                bloom_fpr: cfg.bloom_fpr,
                mutable_bitmaps: cfg.strategy == StrategyKind::MutableBitmap,
                mem_shards: cfg.memtable_shards,
            },
        );
        let pk_index = cfg.with_pk_index.then(|| {
            LsmTree::new(
                storage.clone(),
                LsmOptions {
                    name: "pk_index".into(),
                    with_bloom: true,
                    bloom_kind: cfg.bloom_kind,
                    bloom_fpr: cfg.bloom_fpr,
                    // The pk-index component SHARES the primary component's
                    // bitmap; it does not create its own.
                    mutable_bitmaps: false,
                    mem_shards: cfg.memtable_shards,
                },
            )
        });
        let secondaries = cfg
            .secondary_indexes
            .iter()
            .map(|def| SecondaryIndex {
                name: def.name.clone(),
                field: def.field,
                tree: LsmTree::new(
                    storage.clone(),
                    LsmOptions {
                        name: format!("secondary:{}", def.name),
                        with_bloom: false,
                        bloom_kind: cfg.bloom_kind,
                        bloom_fpr: cfg.bloom_fpr,
                        mutable_bitmaps: false,
                        mem_shards: cfg.memtable_shards,
                    },
                ),
            })
            .collect();
        let stats = Arc::new(EngineStats::new());
        let wal = log_storage.map(Wal::new);
        if let Some(wal) = &wal {
            wal.bind_stats(stats.clone());
        }
        let ds = Arc::new_cyclic(|weak| Dataset {
            primary,
            pk_index,
            secondaries,
            clock: LogicalClock::new(),
            stats,
            wal,
            locks: LockManager::new(),
            recovering: std::sync::atomic::AtomicBool::new(false),
            dataset_lock: RwLock::new(()),
            flush_mutex: Mutex::new(()),
            merge_mutex: Mutex::new(()),
            runtime: std::sync::OnceLock::new(),
            flush_deletes: Mutex::new(None),
            poison: Mutex::new(None),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            self_ref: weak.clone(),
            storage,
            cfg,
        });
        Ok(ds)
    }

    // ---- background maintenance --------------------------------------------

    /// Starts a private fixed-size runtime for this dataset
    /// ([`Maintenance::background`](crate::Maintenance::background) is the
    /// public entry point).
    pub(crate) fn start_background(&self, workers: usize) -> Result<()> {
        if workers == 0 {
            return Err(Error::invalid(
                "background maintenance requires at least one worker",
            ));
        }
        self.attach_runtime(MaintenanceRuntime::start(EngineConfig::fixed(workers))?)
    }

    /// Registers this dataset on `runtime`. Errors if it is already
    /// registered (on any runtime).
    fn attach_runtime(&self, runtime: Arc<MaintenanceRuntime>) -> Result<()> {
        let arc = self
            .self_ref
            .upgrade()
            .ok_or_else(|| Error::invalid("dataset is shutting down"))?;
        let id = runtime.register(&arc);
        let handle = RuntimeHandle::new(runtime, id);
        if let Err(handle) = self.runtime.set(handle) {
            handle.deregister();
            return Err(Error::invalid("background maintenance already running"));
        }
        Ok(())
    }

    /// This dataset's runtime registration, when background maintenance
    /// runs (lock-free: read on every write operation).
    pub(crate) fn runtime_handle(&self) -> Option<&RuntimeHandle> {
        self.runtime.get()
    }

    /// True if a background maintenance runtime is serving this dataset.
    pub fn is_background(&self) -> bool {
        self.runtime.get().is_some()
    }

    /// The maintenance runtime serving this dataset, if any (private or
    /// shared) — e.g. for [`MaintenanceRuntime::stats`].
    pub fn maintenance_runtime(&self) -> Option<&Arc<MaintenanceRuntime>> {
        self.runtime.get().map(|h| h.runtime())
    }

    /// This dataset's registration id on its maintenance runtime, if any —
    /// the key that [`RuntimeStatsSnapshot`](crate::RuntimeStatsSnapshot)
    /// uses in its `per_dataset` rows and `poisoned` list, so operators
    /// can map a runtime stats row back to the dataset handle they hold.
    pub fn runtime_dataset_id(&self) -> Option<u64> {
        self.runtime.get().map(|h| h.dataset_id())
    }

    /// The shared query pool serving this dataset's
    /// [`QueryBuilder::parallel`](crate::QueryBuilder::parallel) queries,
    /// if its maintenance runtime started one
    /// ([`EngineConfig::query_workers`](crate::EngineConfig) > 0).
    /// Without a pool, parallel queries use ephemeral threads.
    pub fn query_pool(&self) -> Option<Arc<crate::query::QueryPool>> {
        self.runtime
            .get()
            .and_then(|h| h.runtime().query_pool().cloned())
    }

    /// Upgrades the dataset's own weak self-reference into an [`Arc`] —
    /// parallel query phases hand clones to worker threads. Succeeds
    /// whenever a strong handle exists (always, for a caller borrowing
    /// through one).
    pub(crate) fn shared(&self) -> Result<Arc<Dataset>> {
        self.self_ref
            .upgrade()
            .ok_or_else(|| Error::invalid("dataset is shutting down"))
    }

    /// Records a fatal background-maintenance failure. The first error
    /// wins; every subsequent write fails with it ("poisoned-state flag
    /// surfaced on the next write") instead of the worker aborting the
    /// process.
    pub(crate) fn poison(&self, err: Error) {
        {
            let mut g = self.poison.lock();
            if g.is_none() {
                *g = Some(err);
            }
        }
        self.poisoned
            .store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(handle) = self.runtime_handle() {
            handle.notify_stalled();
        }
    }

    /// True once a background maintenance job has failed.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Errors if the dataset was poisoned by a failed background job.
    pub fn check_poisoned(&self) -> Result<()> {
        if !self.is_poisoned() {
            return Ok(());
        }
        let cause = self
            .poison
            .lock()
            .clone()
            .unwrap_or_else(|| Error::invalid("unknown failure"));
        Err(Error::invalid(format!(
            "dataset poisoned by background maintenance: {cause}"
        )))
    }

    // ---- accessors ---------------------------------------------------------

    /// The configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.cfg
    }

    /// The data storage device.
    pub fn storage(&self) -> &Arc<Storage> {
        &self.storage
    }

    /// The dataset's logical clock.
    pub fn clock(&self) -> &LogicalClock {
        &self.clock
    }

    /// Operation counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The primary index.
    pub fn primary(&self) -> &LsmTree {
        &self.primary
    }

    /// The primary key index, if configured.
    pub fn pk_index(&self) -> Option<&LsmTree> {
        self.pk_index.as_ref()
    }

    /// The secondary indexes.
    pub fn secondaries(&self) -> &[SecondaryIndex] {
        &self.secondaries
    }

    /// Finds a secondary index by name.
    pub fn secondary(&self, name: &str) -> Result<&SecondaryIndex> {
        self.secondaries
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| Error::NoSuchIndex(name.into()))
    }

    /// The write-ahead log, if configured.
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    /// The record-level lock manager.
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// The dataset-level drain lock (Side-file method).
    pub fn dataset_lock(&self) -> &RwLock<()> {
        &self.dataset_lock
    }

    fn ts_for_entries(&self, ts: Timestamp) -> Timestamp {
        if self.cfg.strategy.stores_timestamps() {
            ts
        } else {
            lsm_common::clock::NO_TIMESTAMP
        }
    }

    pub(crate) fn pk_of(&self, record: &Record) -> Value {
        record.get(self.cfg.pk_field).clone()
    }

    fn filter_value(&self, record: &Record) -> Option<Value> {
        self.cfg.filter_field.map(|f| record.get(f).clone())
    }

    /// Marks the dataset as replaying the log (operations are not re-logged).
    pub(crate) fn set_recovering(&self, on: bool) {
        self.recovering
            .store(on, std::sync::atomic::Ordering::SeqCst);
    }

    /// Re-executes the bitmap mutation of a logged delete/upsert whose entry
    /// effects are already durable (recovery redo path).
    ///
    /// The live-path probe ([`Dataset::mark_old_version_deleted`]) marks
    /// the newest valid version — correct *before* the operation's own
    /// entry exists, but during redo that entry (timestamp == `lsn`) may
    /// already sit in a flushed component, and marking it would delete the
    /// operation's own effect. The mark belongs to the version the
    /// operation replaced: the newest non-anti-matter entry *older* than
    /// the operation itself. Idempotent; runs single-threaded (recovery),
    /// so no successor-redirection is needed.
    pub(crate) fn redo_bitmap_mark(&self, pk_key: &[u8], lsn: Timestamp) -> Result<()> {
        if self.cfg.strategy != StrategyKind::MutableBitmap {
            return Ok(());
        }
        let pk_tree = self
            .pk_index
            .as_ref()
            .ok_or_else(|| Error::invalid("mutable-bitmap requires the primary key index"))?;
        for comp in pk_tree.disk_components() {
            if !comp.bloom_may_contain(self.storage.as_ref(), pk_key) {
                continue;
            }
            let Some((entry, ordinal)) = comp.search(pk_key)? else {
                continue;
            };
            if entry.ts >= lsn {
                // The redone operation's own entry (or a later replayed
                // one): the replaced version is in an older component.
                continue;
            }
            if entry.anti_matter || !comp.is_valid(ordinal) {
                return Ok(()); // already deleted/marked; older versions stale
            }
            let bitmap = comp
                .bitmap()
                .ok_or_else(|| Error::corruption("mutable-bitmap component carries no bitmap"))?;
            bitmap.set(ordinal);
            return Ok(());
        }
        Ok(())
    }

    /// Probes the named engine crash site against a
    /// [`FaultPlan`](lsm_storage::FaultPlan) installed on `device`,
    /// feeding the crash-site coverage counters: a passage while a plan is
    /// armed bumps `crash_sites_armed`; a passage where the plan fires
    /// additionally bumps `crash_sites_hit` and returns the injected error
    /// (aborting the enclosing operation mid-window, exactly like a crash
    /// at that point would).
    fn crash_site_on(&self, device: &Storage, name: &str) -> Result<()> {
        match device.probe_crash_site(name) {
            lsm_storage::SiteOutcome::Unarmed => Ok(()),
            lsm_storage::SiteOutcome::Armed => {
                self.stats.bump(&self.stats.crash_sites_armed);
                Ok(())
            }
            lsm_storage::SiteOutcome::Fired(e) => {
                self.stats.bump(&self.stats.crash_sites_armed);
                self.stats.bump(&self.stats.crash_sites_hit);
                Err(e)
            }
        }
    }

    /// Probes the named crash site on the dataset's data device.
    pub(crate) fn crash_site(&self, name: &str) -> Result<()> {
        self.crash_site_on(&self.storage, name)
    }

    /// Probes the `"checkpoint"` crash site (called by
    /// [`recovery::checkpoint`](crate::recovery::checkpoint) between the
    /// log force and the bitmap snapshot).
    pub(crate) fn checkpoint_crash_site(&self) -> Result<()> {
        self.crash_site("checkpoint")
    }

    /// Repairs structural misalignment between the primary index and its
    /// siblings left by a crash inside an install window, before WAL
    /// replay:
    ///
    /// * **Torn flush install** — the primary published its flushed
    ///   component but the pk index (and secondaries) never installed
    ///   theirs: the primary component *postdates every sibling component*.
    ///   Roll the flush back by uninstalling it; replay re-ingests its
    ///   committed entries through the full ingestion path, restoring every
    ///   index at once. (Entries that were never forced are lost with the
    ///   log tail, which is exactly the no-force contract: a flush is only
    ///   durable once `note_flush_durable` forces the WAL.)
    /// * **Torn merge install** — the primary swapped in a merged component
    ///   but the pk index still holds the pre-merge components *covered by
    ///   its interval*. Nothing was lost; redo the pk side by mirroring the
    ///   merged primary component (same keys/timestamps/anti-matter in the
    ///   same order), which restores the ordinal alignment the shared
    ///   bitmaps of the Mutable-bitmap strategy require. Secondaries need
    ///   no repair — their merge simply re-runs when next planned.
    ///
    /// Idempotent: on an aligned dataset this is a no-op.
    pub(crate) fn realign_after_crash(&self) -> Result<()> {
        if self.pk_index.is_none() && self.secondaries.is_empty() {
            return Ok(()); // single index: no alignment to restore
        }
        // Torn flush installs (newest-first): roll back primary components
        // that postdate every sibling component. When a pk index exists it
        // is the reference — it flushes in lockstep with the primary and is
        // the *next* install after the primary in every flush path, so it
        // (not the secondaries, which the Mutable-bitmap path installs
        // first) tells a torn flush from a torn merge: a merged component's
        // interval still covers old pk components, a flushed one's doesn't.
        while let Some(newest) = self.primary.disk_components().first() {
            let ahead = match &self.pk_index {
                Some(pk_tree) => match pk_tree.disk_components().first() {
                    Some(pk_newest) => newest.id().min_ts > pk_newest.id().max_ts,
                    None => true, // primary flushed, pk never did: orphan
                },
                None => {
                    let sec_max: Option<Timestamp> = self
                        .secondaries
                        .iter()
                        .flat_map(|s| s.tree.disk_components())
                        .map(|c| c.id().max_ts)
                        .max();
                    newest.id().min_ts > sec_max.unwrap_or(0)
                }
            };
            if !ahead {
                break;
            }
            self.primary.uninstall_newest();
        }
        // Torn merge installs: mirror any merged primary component whose
        // pre-merge counterparts are still installed in the pk index.
        let Some(pk_tree) = &self.pk_index else {
            return Ok(());
        };
        for p in self.primary.disk_components() {
            let pk_comps = pk_tree.disk_components(); // newest first
            if pk_comps.iter().any(|c| c.id() == p.id()) {
                continue;
            }
            let n = pk_comps.len();
            // Oldest-first indices of the pk components covered by the
            // merged interval (the pre-merge inputs).
            let covered: Vec<usize> = pk_comps
                .iter()
                .enumerate()
                .filter(|(_, c)| c.id().min_ts >= p.id().min_ts && c.id().max_ts <= p.id().max_ts)
                .map(|(j, _)| n - 1 - j)
                .collect();
            let (Some(&hi), Some(&lo)) = (covered.first(), covered.last()) else {
                continue;
            };
            if hi - lo + 1 != covered.len() {
                return Err(Error::corruption(format!(
                    "pk index components covered by merged primary {:?} are not contiguous",
                    p.id()
                )));
            }
            let mirrored = pk_tree.mirror_component(&p)?;
            if self.cfg.strategy == StrategyKind::MutableBitmap {
                let bitmap = p.bitmap().ok_or_else(|| {
                    Error::corruption("merged mutable-bitmap primary has no bitmap")
                })?;
                mirrored.set_bitmap(bitmap)?;
            }
            pk_tree.replace_range(MergeRange { start: lo, end: hi }, mirrored, true)?;
        }
        Ok(())
    }

    fn log(
        &self,
        sink: &mut LogSink<'_>,
        op: LogOp,
        key: &[u8],
        value: &[u8],
        ts: Timestamp,
        update_bit: bool,
    ) -> Result<()> {
        if self.recovering.load(std::sync::atomic::Ordering::SeqCst) {
            return Ok(());
        }
        if let Some(wal) = &self.wal {
            let rec = LogRecord {
                lsn: ts,
                op,
                key: key.to_vec(),
                value: value.to_vec(),
                update_bit,
            };
            match sink {
                LogSink::Immediate => {
                    // Crash *before* the record is even buffered: the
                    // operation is simply not durable, as if the process
                    // died entering the log call.
                    self.crash_site_on(wal.storage(), "wal_append")?;
                    wal.append(&rec)?;
                }
                // A batch stages its records and appends them as one group
                // at commit ([`WriteBatch::commit`](crate::WriteBatch)).
                LogSink::Staged(buf) => buf.push(rec),
            }
        }
        Ok(())
    }

    /// Appends a batch's staged records as one WAL group (probing the
    /// `wal_append` crash site once for the whole group). Called by
    /// [`WriteBatch::commit`](crate::WriteBatch) while the dataset drain
    /// lock is held, so the records cannot be forced or checkpointed out
    /// from under the commit.
    pub(crate) fn log_staged(&self, records: &[LogRecord]) -> Result<()> {
        if records.is_empty() || self.recovering.load(std::sync::atomic::Ordering::SeqCst) {
            return Ok(());
        }
        if let Some(wal) = &self.wal {
            self.crash_site_on(wal.storage(), "wal_append")?;
            wal.append_batch(records)?;
        }
        Ok(())
    }

    // ---- ingestion ----------------------------------------------------------

    /// Inserts a record; returns `false` if the primary key already exists
    /// (the key-uniqueness check of Section 3.1).
    pub fn insert(&self, record: &Record) -> Result<bool> {
        self.check_poisoned()?;
        self.cfg.schema.check(record)?;
        let _ds = self.dataset_lock.read();
        let pk = self.pk_of(record);
        let pk_key = encode_pk(&pk);
        self.locks.lock_exclusive(&pk_key);
        let out = self.insert_locked(record, &pk, &pk_key, &mut LogSink::Immediate);
        self.locks.unlock_exclusive(&pk_key);
        let out = out?;
        drop(_ds);
        self.maybe_flush_and_merge()?;
        Ok(out)
    }

    pub(crate) fn insert_locked(
        &self,
        record: &Record,
        pk: &Value,
        pk_key: &[u8],
        sink: &mut LogSink<'_>,
    ) -> Result<bool> {
        // Key-uniqueness check: the primary key index can be searched
        // instead of the primary index for efficiency (Section 3.1);
        // Figure 13 evaluates exactly this choice.
        self.stats.bump(&self.stats.maintenance_lookups);
        let existing = match &self.pk_index {
            Some(pk_tree) => point_lookup(pk_tree, pk_key)?,
            None => point_lookup(&self.primary, pk_key)?,
        };
        if existing.is_some_and(|e| !e.anti_matter) {
            self.stats.bump(&self.stats.inserts_rejected);
            return Ok(false);
        }

        let ts = self.clock.tick();
        let record_bytes = record.encode();
        self.log(sink, LogOp::Insert, pk_key, &record_bytes, ts, false)?;
        let ets = self.ts_for_entries(ts);
        self.primary
            .put(pk_key.to_vec(), LsmEntry::put_ts(record_bytes, ets), ts);
        if let Some(pk_tree) = &self.pk_index {
            pk_tree.put(pk_key.to_vec(), LsmEntry::put_ts(Vec::new(), ets), ts);
        }
        for sec in &self.secondaries {
            let sk = record.get(sec.field);
            sec.tree
                .put(encode_sk_pk(sk, pk), LsmEntry::put_ts(Vec::new(), ets), ts);
        }
        if let Some(v) = self.filter_value(record) {
            self.primary.widen_mem_filter(pk_key, &v);
        }
        self.stats.bump(&self.stats.inserts);
        Ok(true)
    }

    /// Deletes by primary key. Returns `true` if the strategy knows a record
    /// was removed (the lazy strategies apply deletes blindly and return
    /// `true` unconditionally).
    pub fn delete(&self, pk: &Value) -> Result<bool> {
        self.check_poisoned()?;
        let _ds = self.dataset_lock.read();
        let pk_key = encode_pk(pk);
        self.locks.lock_exclusive(&pk_key);
        let out = self.delete_locked(pk, &pk_key, &mut LogSink::Immediate);
        self.locks.unlock_exclusive(&pk_key);
        let out = out?;
        drop(_ds);
        self.maybe_flush_and_merge()?;
        Ok(out)
    }

    pub(crate) fn delete_locked(
        &self,
        pk: &Value,
        pk_key: &[u8],
        sink: &mut LogSink<'_>,
    ) -> Result<bool> {
        let ts = self.clock.tick();
        let ets = self.ts_for_entries(ts);
        match self.cfg.strategy {
            StrategyKind::Eager => {
                // Fetch the old record to produce secondary anti-matter and
                // maintain filters (Section 3.1).
                self.stats.bump(&self.stats.maintenance_lookups);
                let old = point_lookup(&self.primary, pk_key)?;
                let Some(old) = old.filter(|e| !e.anti_matter) else {
                    return Ok(false); // key absent: ignored
                };
                let old_record = Record::decode(&old.value)?;
                self.log(sink, LogOp::Delete, pk_key, &[], ts, false)?;
                self.primary
                    .put(pk_key.to_vec(), LsmEntry::anti_matter_ts(ets), ts);
                if let Some(pk_tree) = &self.pk_index {
                    pk_tree.put(pk_key.to_vec(), LsmEntry::anti_matter_ts(ets), ts);
                }
                for sec in &self.secondaries {
                    let sk = old_record.get(sec.field);
                    sec.tree
                        .put(encode_sk_pk(sk, pk), LsmEntry::anti_matter_ts(ets), ts);
                }
                if let Some(v) = self.filter_value(&old_record) {
                    self.primary.widen_mem_filter(pk_key, &v);
                }
            }
            StrategyKind::Validation | StrategyKind::DeletedKeyBTree => {
                // Anti-matter into the primary index and the primary key
                // index only (Section 4.2); secondaries are cleaned lazily.
                self.log(sink, LogOp::Delete, pk_key, &[], ts, false)?;
                let old = self
                    .primary
                    .put(pk_key.to_vec(), LsmEntry::anti_matter_ts(ets), ts);
                if let Some(pk_tree) = &self.pk_index {
                    pk_tree.put(pk_key.to_vec(), LsmEntry::anti_matter_ts(ets), ts);
                }
                // Memory-component optimization (Section 4.2): an old record
                // still in memory yields free secondary anti-matter.
                self.local_secondary_cleanup(pk, old, None, ets, ts)?;
            }
            StrategyKind::MutableBitmap => {
                // Mark the old version deleted in place through the shared
                // bitmap, located via the primary key index (Section 5.2).
                let update_bit = self.mark_old_version_deleted(pk_key)?;
                self.log(sink, LogOp::Delete, pk_key, &[], ts, update_bit)?;
                let old = self
                    .primary
                    .put(pk_key.to_vec(), LsmEntry::anti_matter_ts(ets), ts);
                if let Some(pk_tree) = &self.pk_index {
                    pk_tree.put(pk_key.to_vec(), LsmEntry::anti_matter_ts(ets), ts);
                }
                self.local_secondary_cleanup(pk, old, None, ets, ts)?;
            }
        }
        self.stats.bump(&self.stats.deletes);
        Ok(true)
    }

    /// Upserts a record (insert-or-replace).
    pub fn upsert(&self, record: &Record) -> Result<()> {
        self.check_poisoned()?;
        self.cfg.schema.check(record)?;
        let _ds = self.dataset_lock.read();
        let pk = self.pk_of(record);
        let pk_key = encode_pk(&pk);
        self.locks.lock_exclusive(&pk_key);
        let out = self.upsert_locked(record, &pk, &pk_key, &mut LogSink::Immediate);
        self.locks.unlock_exclusive(&pk_key);
        out?;
        drop(_ds);
        self.maybe_flush_and_merge()
    }

    /// Upsert without the flush/merge check (used by concurrent-writer
    /// benchmarks that must not trigger reentrant structural operations).
    pub fn upsert_no_maintenance(&self, record: &Record) -> Result<()> {
        self.check_poisoned()?;
        self.cfg.schema.check(record)?;
        let _ds = self.dataset_lock.read();
        let pk = self.pk_of(record);
        let pk_key = encode_pk(&pk);
        self.locks.lock_exclusive(&pk_key);
        let out = self.upsert_locked(record, &pk, &pk_key, &mut LogSink::Immediate);
        self.locks.unlock_exclusive(&pk_key);
        out
    }

    /// Starts a fluent multi-operation write batch; see
    /// [`WriteBatch`](crate::WriteBatch).
    pub fn batch(&self) -> crate::batch::WriteBatch<'_> {
        crate::batch::WriteBatch::new(self)
    }

    /// Applies a staged batch: one drain-lock acquisition, sorted-order
    /// key locking, operations in staging order, one WAL group append.
    /// Backs [`WriteBatch::commit`](crate::WriteBatch::commit).
    pub(crate) fn apply_batch(
        &self,
        ops: Vec<crate::batch::StagedOp>,
    ) -> Result<Vec<crate::batch::BatchOpResult>> {
        use crate::batch::{BatchOpResult, StagedOp};

        self.check_poisoned()?;

        // Validate up front; data-level failures become per-op outcomes and
        // their slots drop out of the key set.
        let mut outcomes: Vec<Option<BatchOpResult>> = Vec::with_capacity(ops.len());
        let mut keyed: Vec<Option<(Value, Vec<u8>)>> = Vec::with_capacity(ops.len());
        for op in &ops {
            match op {
                StagedOp::Insert(r) | StagedOp::Upsert(r) => {
                    if let Err(e) = self.cfg.schema.check(r) {
                        outcomes.push(Some(BatchOpResult::Failed(e)));
                        keyed.push(None);
                    } else {
                        let pk = self.pk_of(r);
                        let key = encode_pk(&pk);
                        outcomes.push(None);
                        keyed.push(Some((pk, key)));
                    }
                }
                StagedOp::Delete(pk) => {
                    let key = encode_pk(pk);
                    outcomes.push(None);
                    keyed.push(Some((pk.clone(), key)));
                }
            }
        }

        // Lock every touched key in sorted, deduplicated order — two
        // batches over overlapping key sets cannot deadlock.
        let mut lock_keys: Vec<&[u8]> = keyed
            .iter()
            .flatten()
            .map(|(_, key)| key.as_slice())
            .collect();
        lock_keys.sort_unstable();
        lock_keys.dedup();

        let _ds = self.dataset_lock.read();
        for key in &lock_keys {
            self.locks.lock_exclusive(key);
        }

        let mut staged: Vec<LogRecord> = Vec::new();
        let mut infra_err: Option<Error> = None;
        for (i, op) in ops.iter().enumerate() {
            if outcomes[i].is_some() {
                continue;
            }
            // INVARIANT: the validation pass set `keyed[i]` for every op it
            // did not already resolve into `outcomes[i]` (checked above).
            let (pk, key) = keyed[i].as_ref().expect("validated op has a key");
            let mut sink = LogSink::Staged(&mut staged);
            let res = match op {
                StagedOp::Insert(r) => self.insert_locked(r, pk, key, &mut sink).map(|ok| {
                    if ok {
                        BatchOpResult::Inserted
                    } else {
                        BatchOpResult::RejectedDuplicate
                    }
                }),
                StagedOp::Upsert(r) => self
                    .upsert_locked(r, pk, key, &mut sink)
                    .map(|()| BatchOpResult::Upserted),
                StagedOp::Delete(pk_value) => self
                    .delete_locked(pk_value, key, &mut sink)
                    .map(BatchOpResult::Deleted),
            };
            match res {
                Ok(outcome) => outcomes[i] = Some(outcome),
                Err(e) => {
                    infra_err = Some(e);
                    break;
                }
            }
        }

        // One group append for the whole batch, while the drain lock and
        // key locks are still held.
        if infra_err.is_none() {
            if let Err(e) = self.log_staged(&staged) {
                infra_err = Some(e);
            }
        }

        for key in lock_keys.iter().rev() {
            self.locks.unlock_exclusive(key);
        }
        drop(_ds);

        if let Some(e) = infra_err {
            // Operations may already be applied in memory without their log
            // records having reached the WAL; durability for them can no
            // longer be promised, so fail every subsequent write too.
            if !staged.is_empty() {
                self.poison(e.clone());
            }
            return Err(e);
        }

        self.maybe_flush_and_merge()?;
        Ok(outcomes
            .into_iter()
            // INVARIANT: the loop above filled every `None` slot, and an
            // infra error already returned `Err` before this point.
            .map(|o| o.expect("every staged op resolved"))
            .collect())
    }

    pub(crate) fn upsert_locked(
        &self,
        record: &Record,
        pk: &Value,
        pk_key: &[u8],
        sink: &mut LogSink<'_>,
    ) -> Result<()> {
        let ts = self.clock.tick();
        let ets = self.ts_for_entries(ts);
        let record_bytes = record.encode();
        match self.cfg.strategy {
            StrategyKind::Eager => {
                // Point lookup to fetch the old record (Section 3.1).
                self.stats.bump(&self.stats.maintenance_lookups);
                let old = point_lookup(&self.primary, pk_key)?.filter(|e| !e.anti_matter);
                let old_record = old.map(|e| Record::decode(&e.value)).transpose()?;
                self.log(sink, LogOp::Upsert, pk_key, &record_bytes, ts, false)?;
                self.primary
                    .put(pk_key.to_vec(), LsmEntry::put_ts(record_bytes, ets), ts);
                if let Some(pk_tree) = &self.pk_index {
                    pk_tree.put(pk_key.to_vec(), LsmEntry::put_ts(Vec::new(), ets), ts);
                }
                for sec in &self.secondaries {
                    let new_sk = record.get(sec.field);
                    match &old_record {
                        Some(old_rec) => {
                            let old_sk = old_rec.get(sec.field);
                            if old_sk == new_sk {
                                // Unchanged secondary key: skip maintenance
                                // (the Section 3.1 optimization).
                                continue;
                            }
                            sec.tree.put(
                                encode_sk_pk(old_sk, pk),
                                LsmEntry::anti_matter_ts(ets),
                                ts,
                            );
                            sec.tree.put(
                                encode_sk_pk(new_sk, pk),
                                LsmEntry::put_ts(Vec::new(), ets),
                                ts,
                            );
                        }
                        None => {
                            sec.tree.put(
                                encode_sk_pk(new_sk, pk),
                                LsmEntry::put_ts(Vec::new(), ets),
                                ts,
                            );
                        }
                    }
                }
                // Filters maintained on BOTH the old and new record
                // (Figure 3).
                if let Some(v) = self.filter_value(record) {
                    self.primary.widen_mem_filter(pk_key, &v);
                }
                if let Some(old_rec) = &old_record {
                    if let Some(v) = self.filter_value(old_rec) {
                        self.primary.widen_mem_filter(pk_key, &v);
                    }
                }
            }
            StrategyKind::Validation | StrategyKind::DeletedKeyBTree => {
                self.log(sink, LogOp::Upsert, pk_key, &record_bytes, ts, false)?;
                let old =
                    self.primary
                        .put(pk_key.to_vec(), LsmEntry::put_ts(record_bytes, ets), ts);
                if let Some(pk_tree) = &self.pk_index {
                    pk_tree.put(pk_key.to_vec(), LsmEntry::put_ts(Vec::new(), ets), ts);
                }
                for sec in &self.secondaries {
                    sec.tree.put(
                        encode_sk_pk(record.get(sec.field), pk),
                        LsmEntry::put_ts(Vec::new(), ets),
                        ts,
                    );
                }
                self.local_secondary_cleanup(pk, old, Some(record), ets, ts)?;
                // Filters maintained on the new record only (Figure 4).
                if let Some(v) = self.filter_value(record) {
                    self.primary.widen_mem_filter(pk_key, &v);
                }
            }
            StrategyKind::MutableBitmap => {
                let update_bit = self.mark_old_version_deleted(pk_key)?;
                self.log(sink, LogOp::Upsert, pk_key, &record_bytes, ts, update_bit)?;
                let old =
                    self.primary
                        .put(pk_key.to_vec(), LsmEntry::put_ts(record_bytes, ets), ts);
                if let Some(pk_tree) = &self.pk_index {
                    pk_tree.put(pk_key.to_vec(), LsmEntry::put_ts(Vec::new(), ets), ts);
                }
                // Secondary indexes are maintained with the Validation
                // strategy (Section 5.2 / 6.3.2).
                for sec in &self.secondaries {
                    sec.tree.put(
                        encode_sk_pk(record.get(sec.field), pk),
                        LsmEntry::put_ts(Vec::new(), ets),
                        ts,
                    );
                }
                self.local_secondary_cleanup(pk, old, Some(record), ets, ts)?;
                // Filters maintained on the new record only (Figure 9).
                if let Some(v) = self.filter_value(record) {
                    self.primary.widen_mem_filter(pk_key, &v);
                }
            }
        }
        self.stats.bump(&self.stats.upserts);
        Ok(())
    }

    /// The Section 4.2 memory-component optimization: when the replaced
    /// primary memory entry held the old record, emit local anti-matter for
    /// the secondary indexes without any I/O.
    fn local_secondary_cleanup(
        &self,
        pk: &Value,
        old_mem_entry: Option<LsmEntry>,
        new_record: Option<&Record>,
        ets: Timestamp,
        ts: Timestamp,
    ) -> Result<()> {
        let Some(old) = old_mem_entry.filter(|e| !e.anti_matter) else {
            return Ok(());
        };
        let old_record = Record::decode(&old.value)?;
        for sec in &self.secondaries {
            let old_sk = old_record.get(sec.field);
            if let Some(new_rec) = new_record {
                if new_rec.get(sec.field) == old_sk {
                    continue; // the new entry replaced it under the same key
                }
            }
            sec.tree
                .put(encode_sk_pk(old_sk, pk), LsmEntry::anti_matter_ts(ets), ts);
        }
        Ok(())
    }

    /// Mutable-bitmap delete/upsert probe (Section 5.2): search the primary
    /// key index for the old version's position and set its bitmap bit.
    /// Returns the update bit for the log record. If a flush/merge is
    /// rebuilding the containing component, the delete is also routed to the
    /// successor (Section 5.3).
    fn mark_old_version_deleted(&self, pk_key: &[u8]) -> Result<bool> {
        // An old version still in the ACTIVE memory component needs no
        // bitmap work: the new memory entry replaces it outright. (An
        // active anti-matter entry means the key is already deleted there;
        // fall through to the disk probe, as the merged-view check did.)
        match self.primary.mem_get_active(pk_key) {
            Some(e) if !e.anti_matter => return Ok(false),
            Some(_) => {}
            None => {
                // An old version caught in the sealed (mid-flush) snapshot
                // is immutable and will reach disk with its bit unset, so
                // the delete is routed through the flush side-file and
                // applied before the new component becomes visible.
                // Writers hold the dataset read lock across this check and
                // the side-file closes under the write lock, so the append
                // cannot race the close.
                if self
                    .primary
                    .sealed_get(pk_key)
                    .is_some_and(|e| !e.anti_matter)
                    && self.append_flush_delete(pk_key)
                {
                    return Ok(true);
                }
            }
        }
        let pk_tree = self
            .pk_index
            .as_ref()
            .ok_or_else(|| Error::invalid("mutable-bitmap requires the primary key index"))?;
        let Some((comp, ordinal, _)) = locate_valid(pk_tree, pk_key)? else {
            return Ok(false);
        };
        let bitmap = comp
            .bitmap()
            .ok_or_else(|| Error::corruption("mutable-bitmap component carries no bitmap"))?;
        bitmap.set(ordinal);
        // Concurrency control for an in-progress flush/merge (Section 5.3):
        // the delete must also reach the successor component.
        if let Some(link) = comp.successor() {
            if let Some(new_comp) = link.new_component() {
                // Build finished: mark the key deleted in the new component
                // directly (Figure 11b lines 8-9 / Figure 10b lines 6-7).
                if let Some((_, ord)) = new_comp.search(pk_key)? {
                    if let Some(bm) = new_comp.bitmap() {
                        bm.set(ord);
                    }
                }
            } else if !link.try_append_side_file(pk_key.to_vec()) {
                // Lock method (side-file born closed): register against the
                // scanned prefix of the new component.
                link.try_direct_delete(pk_key);
            }
        }
        Ok(true)
    }

    /// The flush serialization lock — engine paths that flush individual
    /// trees directly (repair's anti-matter flush) hold this so they never
    /// race a dataset-wide flush that has snapshots sealed.
    pub(crate) fn flush_serialization(&self) -> &Mutex<()> {
        &self.flush_mutex
    }

    /// The merge serialization lock — engine paths that splice component
    /// lists outside [`Dataset::run_merges`] (repair-with-merge) hold this
    /// so they never race a background merge.
    pub(crate) fn merge_serialization(&self) -> &Mutex<()> {
        &self.merge_mutex
    }

    /// Plans the policy's current merge work and enqueues it on the
    /// runtime through `handle`, counting each job actually added. Merges
    /// run smallest-estimated-input-first within this dataset; across
    /// datasets the runtime orders them deficit-round-robin (and honours
    /// the per-dataset quota), so enqueueing a lot here cannot starve the
    /// runtime's other datasets.
    pub(crate) fn schedule_planned_merges(&self, handle: &RuntimeHandle) {
        for plan in self.plan_merges() {
            let est = self.estimate_merge_bytes(&plan);
            if handle.schedule_merge(plan, est) {
                self.stats.bump(&self.stats.jobs_enqueued);
            }
        }
    }

    /// Estimated input bytes of a planned merge — the cost that orders
    /// merge jobs smallest-first within the dataset and that the runtime's
    /// cross-dataset deficit-round-robin charges against the dataset's
    /// credit. Stale plans (range no longer fits) estimate to 0 and are
    /// skipped at execution time anyway.
    pub(crate) fn estimate_merge_bytes(&self, plan: &MergePlan) -> u64 {
        fn range_bytes(tree: &LsmTree, range: MergeRange) -> u64 {
            tree.components_in_range(range)
                .iter()
                .map(|c| c.byte_size())
                .sum()
        }
        match plan.target {
            MergeTarget::Correlated => {
                let mut total = range_bytes(&self.primary, plan.range);
                if let Some(pk_tree) = &self.pk_index {
                    total += range_bytes(pk_tree, plan.range);
                }
                for sec in &self.secondaries {
                    total += range_bytes(&sec.tree, plan.range);
                }
                total
            }
            MergeTarget::Primary => range_bytes(&self.primary, plan.range),
            MergeTarget::PkIndex => self
                .pk_index
                .as_ref()
                .map_or(0, |t| range_bytes(t, plan.range)),
            MergeTarget::Secondary(i) => self
                .secondaries
                .get(i)
                .map_or(0, |s| range_bytes(&s.tree, plan.range)),
        }
    }

    /// Blocks until this dataset's background jobs (queued + in-flight)
    /// are drained; a no-op in inline mode. Recovery uses this to pause
    /// structural maintenance before touching component state.
    pub(crate) fn drain_background(&self) {
        if let Some(handle) = self.runtime_handle() {
            handle.wait_idle();
        }
    }

    /// Appends a deleted key to the flush side-file, if one is open.
    fn append_flush_delete(&self, pk_key: &[u8]) -> bool {
        let mut guard = self.flush_deletes.lock();
        match guard.as_mut() {
            Some(keys) => {
                keys.push(pk_key.to_vec());
                true
            }
            None => false,
        }
    }

    // ---- structural maintenance ---------------------------------------------

    /// Combined *active* memory-component usage across all indexes — the
    /// flush-trigger metric (snapshots sealed for an in-progress flush are
    /// counted by [`Dataset::mem_unflushed_bytes`] instead).
    pub fn mem_total_bytes(&self) -> usize {
        let mut total = self.primary.mem_bytes();
        if let Some(pk_tree) = &self.pk_index {
            total += pk_tree.mem_bytes();
        }
        for sec in &self.secondaries {
            total += sec.tree.mem_bytes();
        }
        total
    }

    /// Combined unflushed memory (active + sealed-for-flush components):
    /// the backpressure metric. Exceeding the hard ceiling stalls writers
    /// until a background flush frees memory.
    pub fn mem_unflushed_bytes(&self) -> usize {
        self.mem_usage().1
    }

    /// `(active, active + sealed)` bytes across all indexes, in one pass.
    fn mem_usage(&self) -> (usize, usize) {
        let mut active = self.primary.mem_bytes();
        let mut sealed = self.primary.sealed_bytes();
        if let Some(pk_tree) = &self.pk_index {
            active += pk_tree.mem_bytes();
            sealed += pk_tree.sealed_bytes();
        }
        for sec in &self.secondaries {
            active += sec.tree.mem_bytes();
            sealed += sec.tree.sealed_bytes();
        }
        (active, active + sealed)
    }

    pub(crate) fn maybe_flush_and_merge(&self) -> Result<()> {
        // Recovery replay rewinds the clock between operations
        // (`advance_to` per log record); a background job racing that would
        // stamp components and stall writers against a queue nobody else
        // drains — recovery is single-threaded (Section 2.2), so replay
        // always maintains inline.
        let handle = if self.recovering.load(std::sync::atomic::Ordering::SeqCst) {
            None
        } else {
            self.runtime_handle()
        };
        let Some(handle) = handle else {
            // Inline mode: the writer pays for maintenance synchronously.
            if self.mem_total_bytes() > self.cfg.memory_budget {
                self.flush_all()?;
                self.run_merges()?;
            }
            return Ok(());
        };
        // Background mode: enqueue (deduped) and keep going; stall only at
        // the hard ceiling, preserving the shared-memory-budget semantics.
        let (active, unflushed) = self.mem_usage();
        if active > self.cfg.memory_budget {
            // Refresh the depth gauge only when a job was actually added:
            // the runtime's state mutex is engine-global now, and the
            // over-budget window covers many writes — one lock per write
            // (inside schedule_flush), not two.
            if handle.schedule_flush() {
                self.stats.bump(&self.stats.jobs_enqueued);
                self.stats.queue_depth.store(
                    handle.queue_depth() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
            }
        }
        let ceiling = self.cfg.effective_memory_ceiling();
        if unflushed > ceiling {
            self.stats.bump(&self.stats.backpressure_stalls);
            handle.stall_until(|| self.mem_unflushed_bytes() <= ceiling || self.is_poisoned());
            self.check_poisoned()?;
        }
        Ok(())
    }

    /// Flushes all memory components together (they share the budget, as in
    /// AsterixDB). Returns `true` if anything was flushed.
    ///
    /// Concurrency: the memory components are sealed atomically under the
    /// dataset drain lock (no operation is ever split across the seal), and
    /// the disk components are then built without blocking writers — they
    /// fill fresh memory components while the sealed snapshots stay
    /// readable. A per-dataset flush lock serializes overlapping calls.
    pub fn flush_all(&self) -> Result<bool> {
        let _flush = self.flush_mutex.lock();
        let mutable_bitmap = self.cfg.strategy == StrategyKind::MutableBitmap;
        // Complete a previous failed attempt first: snapshots it left
        // sealed would otherwise block sealing forever (transient build
        // errors must stay retryable). The Mutable-bitmap side-file stays
        // OPEN across a failure — the sealed versions are still visible,
        // so writers must keep routing their deletes — and the retry
        // applies everything accumulated.
        let mut flushed = false;
        if self.has_sealed_pending() {
            flushed |= self.build_and_install_sealed(mutable_bitmap)?;
        }
        {
            let _drain = self.dataset_lock.write();
            let mut any = self.primary.seal_mem()?;
            if let Some(pk_tree) = &self.pk_index {
                any |= pk_tree.seal_mem()?;
            }
            for sec in &self.secondaries {
                any |= sec.tree.seal_mem()?;
            }
            if any && mutable_bitmap {
                // Open the flush side-file: deletes of versions caught in
                // the sealed snapshots are routed here (§5.3 applied to
                // flushes) and applied before the new component is
                // published.
                *self.flush_deletes.lock() = Some(Vec::new());
            }
            if !any {
                if flushed {
                    self.note_flush_durable()?;
                }
                return Ok(flushed);
            }
        }
        flushed |= self.build_and_install_sealed(mutable_bitmap)?;
        if flushed {
            self.note_flush_durable()?;
        }
        Ok(flushed)
    }

    /// True if any index has a snapshot sealed (an in-progress or failed
    /// flush).
    fn has_sealed_pending(&self) -> bool {
        self.primary.has_sealed()
            || self.pk_index.as_ref().is_some_and(|t| t.has_sealed())
            || self.secondaries.iter().any(|s| s.tree.has_sealed())
    }

    /// Builds and installs whatever is sealed, per strategy.
    fn build_and_install_sealed(&self, mutable_bitmap: bool) -> Result<bool> {
        if mutable_bitmap {
            // Make sure the side-file is open before (re)building: a retry
            // after a failure must capture deletes routed meanwhile.
            {
                let _drain = self.dataset_lock.write();
                let mut side = self.flush_deletes.lock();
                if side.is_none() {
                    *side = Some(Vec::new());
                }
            }
            self.flush_sealed_mutable_bitmap()
        } else {
            let primary_comps = self.primary.flush_sealed()?;
            // Crash window: the primary generation is installed, the pk
            // index's is not yet.
            self.crash_site("flush_install")?;
            if let Some(pk_tree) = &self.pk_index {
                pk_tree.flush_sealed()?;
            }
            for sec in &self.secondaries {
                sec.tree.flush_sealed()?;
            }
            Ok(!primary_comps.is_empty())
        }
    }

    /// Post-flush bookkeeping: count it and force the WAL (flushed
    /// components only ever contain committed operations).
    fn note_flush_durable(&self) -> Result<()> {
        self.stats.bump(&self.stats.flushes);
        if let Some(wal) = &self.wal {
            wal.force()?;
        }
        Ok(())
    }

    /// The Mutable-bitmap flush: build the primary and pk-index components,
    /// share the primary's bitmap (Section 5.1 — both sealed under one
    /// drain lock, so entries are pk-ordered with coinciding ordinals),
    /// then atomically — under the drain lock, with no writer mid-op —
    /// close the flush side-file, mark the routed deletes in the new
    /// bitmap, and publish both components. A concurrent delete probe
    /// therefore either appends to the open side-file or sees the fully
    /// installed component; it can never lose its mark.
    fn flush_sealed_mutable_bitmap(&self) -> Result<bool> {
        let primary_comps = self.primary.build_sealed()?;
        let pk_comps = match &self.pk_index {
            Some(t) => t.build_sealed()?,
            None => Vec::new(),
        };
        for sec in &self.secondaries {
            sec.tree.flush_sealed()?;
        }
        // The primary and pk index receive identical key/timestamp streams,
        // so their sealed generations have identical shard occupancy: the
        // component vectors align position-for-position, and each pair
        // shares one bitmap.
        if self.pk_index.is_some() && primary_comps.len() != pk_comps.len() {
            return Err(Error::corruption(format!(
                "mutable-bitmap flush shard mismatch: {} primary vs {} pk components",
                primary_comps.len(),
                pk_comps.len()
            )));
        }
        for (p, k) in primary_comps.iter().zip(&pk_comps) {
            let bitmap = p
                .bitmap()
                .ok_or_else(|| Error::corruption("primary flush produced no bitmap"))?;
            k.set_bitmap(bitmap)?;
        }
        let _drain = self.dataset_lock.write();
        let routed = self.flush_deletes.lock().take().unwrap_or_default();
        for key in &routed {
            // A key lives in exactly one shard of the generation; mark it
            // in whichever component holds it.
            for p in &primary_comps {
                if let (Some(bitmap), Some((_, ordinal))) = (p.bitmap(), p.search(key)?) {
                    bitmap.set(ordinal);
                    break;
                }
            }
        }
        let flushed = !primary_comps.is_empty();
        if flushed {
            self.primary.install_sealed(primary_comps);
        }
        // Crash window: the primary generation is published, the paired
        // pk-index generation is not yet.
        self.crash_site("flush_install")?;
        if let Some(pk_tree) = &self.pk_index {
            if !pk_comps.is_empty() {
                pk_tree.install_sealed(pk_comps);
            }
        }
        Ok(flushed)
    }

    /// Applies the merge policy to the current component lists and returns
    /// the work it calls for — one plan per index (or one correlated plan)
    /// — without executing anything. Schedulers queue these; inline callers
    /// use [`Dataset::run_merges`], which plans and executes to quiescence.
    pub fn plan_merges(&self) -> Vec<MergePlan> {
        let policy = self.cfg.merge.policy();
        let mut plans = Vec::new();
        if self.cfg.requires_correlated_merges() {
            if let Some(range) = self.primary.select_merge(&policy) {
                plans.push(MergePlan {
                    target: MergeTarget::Correlated,
                    range,
                });
            }
        } else {
            if let Some(range) = self.primary.select_merge(&policy) {
                plans.push(MergePlan {
                    target: MergeTarget::Primary,
                    range,
                });
            }
            if let Some(pk_tree) = &self.pk_index {
                if let Some(range) = pk_tree.select_merge(&policy) {
                    plans.push(MergePlan {
                        target: MergeTarget::PkIndex,
                        range,
                    });
                }
            }
            for (i, sec) in self.secondaries.iter().enumerate() {
                if let Some(range) = sec.tree.select_merge(&policy) {
                    plans.push(MergePlan {
                        target: MergeTarget::Secondary(i),
                        range,
                    });
                }
            }
        }
        plans
    }

    /// Executes one planned merge, serialized against all other merges on
    /// this dataset. Returns `false` (doing nothing) when the plan went
    /// stale — its range no longer fits the component list because another
    /// merge got there first.
    ///
    /// A correlated merge of a Mutable-bitmap dataset races live writers
    /// that mutate the very bitmaps being merged — under background
    /// maintenance, and equally under inline maintenance now that sharded
    /// memtables invite concurrent writers (one writer's inline merge runs
    /// beside the others' upserts/deletes). It therefore always runs
    /// through the Section 5.3 concurrency-control path
    /// ([`crate::cc::merge_primary_with_cc`]) with the configured
    /// [`CcMethod`](crate::cc::CcMethod); the plain path would scan a
    /// bitmap one moment and its sibling index the next, losing any
    /// delete that landed in between.
    pub fn execute_merge_plan(&self, plan: &MergePlan) -> Result<bool> {
        let _merges = self.merge_mutex.lock();
        self.execute_merge_plan_locked(plan)
    }

    fn execute_merge_plan_locked(&self, plan: &MergePlan) -> Result<bool> {
        let stale = |tree: &LsmTree| tree.num_disk_components() <= plan.range.end;
        match plan.target {
            MergeTarget::Correlated => {
                if stale(&self.primary) {
                    return Ok(false);
                }
                // A correlated plan is also stale while a concurrent flush
                // has installed the primary's new component but not yet the
                // pk index's: the per-tree counts disagree for an instant,
                // and a cc merge started then would pair mismatched
                // component lists. Skip — the post-flush planning pass
                // re-enqueues the merge against consistent counts.
                if let Some(pk_tree) = &self.pk_index {
                    if stale(pk_tree) {
                        return Ok(false);
                    }
                }
                if self.cfg.strategy == StrategyKind::MutableBitmap {
                    crate::cc::merge_primary_with_cc(self, plan.range, self.cfg.cc_method)?;
                    for sec in &self.secondaries {
                        if !stale(&sec.tree) {
                            self.merge_secondary(sec, plan.range)?;
                        }
                    }
                } else {
                    self.merge_correlated(plan.range)?;
                }
            }
            MergeTarget::Primary => {
                if stale(&self.primary) {
                    return Ok(false);
                }
                self.primary.merge_range(plan.range)?;
                self.stats.bump(&self.stats.merges);
            }
            MergeTarget::PkIndex => {
                let Some(pk_tree) = &self.pk_index else {
                    return Ok(false);
                };
                if stale(pk_tree) {
                    return Ok(false);
                }
                pk_tree.merge_range(plan.range)?;
                self.stats.bump(&self.stats.merges);
            }
            MergeTarget::Secondary(i) => {
                let Some(sec) = self.secondaries.get(i) else {
                    return Ok(false);
                };
                if stale(&sec.tree) {
                    return Ok(false);
                }
                self.merge_secondary(sec, plan.range)?;
            }
        }
        Ok(true)
    }

    /// Runs policy-driven merges until quiescent. Merges are serialized per
    /// dataset (they re-index components); flushes may proceed in parallel.
    pub fn run_merges(&self) -> Result<()> {
        let _merges = self.merge_mutex.lock();
        loop {
            let plans = self.plan_merges();
            if plans.is_empty() {
                return Ok(());
            }
            for plan in &plans {
                self.execute_merge_plan_locked(plan)?;
            }
        }
    }

    /// Merges all of the dataset's indexes over the same component range
    /// (the correlated merge policy of Sections 4.4/5.1).
    pub fn merge_correlated(&self, range: MergeRange) -> Result<()> {
        let new_primary = self.primary.merge_range(range)?;
        self.stats.bump(&self.stats.merges);
        // Crash window: the primary's merged component is installed, the
        // pk index and secondaries still hold the pre-merge components.
        self.crash_site("merge_install")?;
        if let Some(pk_tree) = &self.pk_index {
            if pk_tree.num_disk_components() > range.end {
                let new_pk = pk_tree.merge_range(range)?;
                self.stats.bump(&self.stats.merges);
                if self.cfg.strategy == StrategyKind::MutableBitmap {
                    if new_primary.num_entries() != new_pk.num_entries() {
                        return Err(Error::corruption(format!(
                            "correlated merge misalignment: primary has {} entries, pk index {}",
                            new_primary.num_entries(),
                            new_pk.num_entries()
                        )));
                    }
                    let bitmap = new_primary
                        .bitmap()
                        .ok_or_else(|| Error::corruption("merged primary has no bitmap"))?;
                    new_pk.set_bitmap(bitmap)?;
                }
            }
        }
        for sec in &self.secondaries {
            if sec.tree.num_disk_components() > range.end {
                self.merge_secondary(sec, range)?;
            }
        }
        Ok(())
    }

    /// Merges one secondary index range, repairing it when the strategy
    /// calls for it.
    fn merge_secondary(&self, sec: &SecondaryIndex, range: MergeRange) -> Result<()> {
        use crate::repair::{merge_repair, RepairOptions};
        let repair = match self.cfg.strategy {
            StrategyKind::Validation | StrategyKind::MutableBitmap => self.cfg.merge_repair,
            StrategyKind::DeletedKeyBTree => true,
            StrategyKind::Eager => false,
        };
        if repair {
            let mode = self.cfg.default_repair_mode();
            let pk_tree = self
                .pk_index
                .as_ref()
                .ok_or_else(|| Error::invalid("merge repair requires the primary key index"))?;
            merge_repair(
                &sec.tree,
                pk_tree,
                range,
                &RepairOptions {
                    mode,
                    ..Default::default()
                },
            )?;
            self.stats.bump(&self.stats.merges);
            self.stats.bump(&self.stats.repairs);
        } else {
            sec.tree.merge_range(range)?;
            self.stats.bump(&self.stats.merges);
        }
        Ok(())
    }

    // ---- simple reads ---------------------------------------------------------

    /// Fetches a record by primary key (newest live version).
    pub fn get(&self, pk: &Value) -> Result<Option<Record>> {
        let pk_key = encode_pk(pk);
        let mut hit = point_lookup(&self.primary, &pk_key)?;
        if hit.is_none() {
            hit = self.second_chance_lookup(&pk_key)?;
        }
        match hit {
            Some(e) if !e.anti_matter => Ok(Some(Record::decode(&e.value)?)),
            _ => Ok(None),
        }
    }

    /// Second-chance probe for a primary key that resolved to "not found"
    /// on a Mutable-bitmap dataset (the Section 5.2 race): MB upserts mark
    /// the old disk version deleted in place *before* the new version
    /// reaches the memory component, so a lookup racing that window can
    /// see neither. Re-probing under the shared record lock closes it —
    /// any in-flight write for the key has completed by the time the lock
    /// is granted, so a key still missing then is genuinely absent.
    /// Returns `None` immediately for the other strategies, whose lookups
    /// never hide entries in place. Shared by [`Dataset::get`] and the
    /// query record-fetch paths.
    pub(crate) fn second_chance_lookup(&self, pk_key: &[u8]) -> Result<Option<LsmEntry>> {
        if self.cfg.strategy != StrategyKind::MutableBitmap {
            return Ok(None);
        }
        self.locks
            .with_shared(pk_key, || point_lookup(&self.primary, pk_key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SecondaryIndexDef;
    use lsm_common::{FieldType, Schema};
    use lsm_storage::StorageOptions;

    fn tweet_schema() -> Schema {
        Schema::new(vec![
            ("id", FieldType::Int),
            ("location", FieldType::Str),
            ("time", FieldType::Int),
        ])
        .unwrap()
    }

    fn config(strategy: StrategyKind) -> DatasetConfig {
        let mut cfg = DatasetConfig::new(tweet_schema(), 0);
        cfg.strategy = strategy;
        cfg.secondary_indexes = vec![SecondaryIndexDef {
            name: "location".into(),
            field: 1,
        }];
        cfg.filter_field = Some(2);
        cfg.memory_budget = 64 * 1024;
        cfg
    }

    fn dataset(strategy: StrategyKind) -> Arc<Dataset> {
        Dataset::open(Storage::new(StorageOptions::test()), None, config(strategy)).unwrap()
    }

    fn rec(id: i64, loc: &str, time: i64) -> Record {
        Record::new(vec![
            Value::Int(id),
            Value::Str(loc.into()),
            Value::Int(time),
        ])
    }

    fn all_strategies() -> Vec<StrategyKind> {
        vec![
            StrategyKind::Eager,
            StrategyKind::Validation,
            StrategyKind::MutableBitmap,
            StrategyKind::DeletedKeyBTree,
        ]
    }

    #[test]
    fn insert_get_roundtrip_all_strategies() {
        for s in all_strategies() {
            let ds = dataset(s);
            assert!(ds.insert(&rec(101, "CA", 2015)).unwrap());
            assert!(ds.insert(&rec(102, "CA", 2016)).unwrap());
            assert_eq!(
                ds.get(&Value::Int(101)).unwrap().unwrap(),
                rec(101, "CA", 2015)
            );
            assert!(ds.get(&Value::Int(999)).unwrap().is_none());
        }
    }

    #[test]
    fn duplicate_insert_rejected_all_strategies() {
        for s in all_strategies() {
            let ds = dataset(s);
            assert!(ds.insert(&rec(101, "CA", 2015)).unwrap());
            assert!(!ds.insert(&rec(101, "NY", 2018)).unwrap(), "{s:?}");
            // The original record remains.
            assert_eq!(
                ds.get(&Value::Int(101)).unwrap().unwrap(),
                rec(101, "CA", 2015)
            );
            assert_eq!(ds.stats().snapshot().inserts_rejected, 1);
        }
    }

    #[test]
    fn duplicate_check_works_across_flush() {
        for s in all_strategies() {
            let ds = dataset(s);
            ds.insert(&rec(1, "CA", 1)).unwrap();
            ds.flush_all().unwrap();
            assert!(!ds.insert(&rec(1, "NY", 2)).unwrap(), "{s:?}");
        }
    }

    #[test]
    fn upsert_replaces_all_strategies() {
        for s in all_strategies() {
            let ds = dataset(s);
            ds.insert(&rec(101, "CA", 2015)).unwrap();
            ds.flush_all().unwrap(); // old version on disk
            ds.upsert(&rec(101, "NY", 2018)).unwrap();
            assert_eq!(
                ds.get(&Value::Int(101)).unwrap().unwrap(),
                rec(101, "NY", 2018),
                "{s:?}"
            );
        }
    }

    #[test]
    fn delete_removes_all_strategies() {
        for s in all_strategies() {
            let ds = dataset(s);
            ds.insert(&rec(101, "CA", 2015)).unwrap();
            ds.flush_all().unwrap();
            ds.delete(&Value::Int(101)).unwrap();
            assert!(ds.get(&Value::Int(101)).unwrap().is_none(), "{s:?}");
            // Deleted keys can be re-inserted.
            assert!(ds.insert(&rec(101, "UT", 2019)).unwrap(), "{s:?}");
            assert!(ds.get(&Value::Int(101)).unwrap().is_some());
        }
    }

    #[test]
    fn eager_delete_of_absent_key_is_noop() {
        let ds = dataset(StrategyKind::Eager);
        assert!(!ds.delete(&Value::Int(5)).unwrap());
    }

    #[test]
    fn mutable_bitmap_marks_disk_version() {
        let ds = dataset(StrategyKind::MutableBitmap);
        ds.insert(&rec(101, "CA", 2015)).unwrap();
        ds.insert(&rec(102, "CA", 2016)).unwrap();
        ds.flush_all().unwrap();
        let comp = &ds.primary().disk_components()[0];
        assert_eq!(comp.bitmap().unwrap().count_set(), 0);
        ds.upsert(&rec(101, "NY", 2018)).unwrap();
        // The old version of 101 is marked deleted in place (Figure 9).
        assert_eq!(comp.bitmap().unwrap().count_set(), 1);
        // The pk-index component shares the same bitmap.
        let pk_comp = &ds.pk_index().unwrap().disk_components()[0];
        assert_eq!(pk_comp.bitmap().unwrap().count_set(), 1);
        assert_eq!(
            ds.get(&Value::Int(101)).unwrap().unwrap(),
            rec(101, "NY", 2018)
        );
    }

    #[test]
    fn mutable_bitmap_delete_during_flush_window_is_routed() {
        // Reproduce the background-flush race deterministically: seal the
        // memory components (what flush_all does before building), delete a
        // sealed version mid-window, then finish the flush. The delete must
        // reach the new component's bitmap via the flush side-file.
        let ds = dataset(StrategyKind::MutableBitmap);
        ds.insert(&rec(1, "CA", 2015)).unwrap();
        ds.insert(&rec(2, "NY", 2016)).unwrap();
        {
            let _drain = ds.dataset_lock.write();
            ds.primary.seal_mem().unwrap();
            ds.pk_index.as_ref().unwrap().seal_mem().unwrap();
            for sec in &ds.secondaries {
                sec.tree.seal_mem().unwrap();
            }
            *ds.flush_deletes.lock() = Some(Vec::new());
        }
        // The old version of key 1 now sits in the immutable sealed
        // snapshot: the delete must be routed, not dropped.
        ds.delete(&Value::Int(1)).unwrap();
        assert_eq!(ds.flush_deletes.lock().as_ref().unwrap().len(), 1);
        ds.flush_sealed_mutable_bitmap().unwrap();
        assert!(ds.flush_deletes.lock().is_none(), "side-file closed");

        let comp = &ds.primary().disk_components()[0];
        assert_eq!(comp.bitmap().unwrap().count_set(), 1);
        let (_, ordinal) = comp.search(&encode_pk(&Value::Int(1))).unwrap().unwrap();
        assert!(!comp.is_valid(ordinal), "routed delete marked the bit");
        assert!(ds.get(&Value::Int(1)).unwrap().is_none());
        assert!(ds.get(&Value::Int(2)).unwrap().is_some());
        // The MB filter scan counts without reconciliation — exactly the
        // path that would overcount if the bit were missed.
        let report = crate::query::filter_scan::filter_scan_count(&ds, None, None).unwrap();
        assert_eq!(report.matches, 1);
    }

    #[test]
    fn flush_when_budget_exceeded() {
        let ds = dataset(StrategyKind::Eager);
        for i in 0..2000 {
            ds.insert(&rec(i, "CA", i)).unwrap();
        }
        assert!(
            ds.stats().snapshot().flushes > 0,
            "memory budget should trigger flushes"
        );
        assert!(ds.primary().num_disk_components() >= 1);
        // All data still reachable.
        assert!(ds.get(&Value::Int(0)).unwrap().is_some());
        assert!(ds.get(&Value::Int(1999)).unwrap().is_some());
    }

    #[test]
    fn merges_run_under_policy() {
        let mut cfg = config(StrategyKind::Validation);
        cfg.memory_budget = 32 * 1024;
        cfg.merge.max_mergeable_bytes = u64::MAX;
        let ds = Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap();
        for i in 0..4000 {
            ds.insert(&rec(i, "CA", i)).unwrap();
        }
        let snap = ds.stats().snapshot();
        assert!(snap.flushes >= 3, "flushes {}", snap.flushes);
        assert!(snap.merges > 0, "merges {}", snap.merges);
        // Tiering with unlimited cap keeps the component count low.
        assert!(ds.primary().num_disk_components() <= 4);
        assert!(ds.get(&Value::Int(3999)).unwrap().is_some());
    }

    #[test]
    fn correlated_merges_keep_indexes_aligned() {
        let mut cfg = config(StrategyKind::MutableBitmap);
        cfg.memory_budget = 32 * 1024;
        cfg.merge.max_mergeable_bytes = u64::MAX;
        let ds = Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap();
        for i in 0..3000 {
            ds.upsert(&rec(i % 1000, "CA", i)).unwrap();
        }
        let p = ds.primary().num_disk_components();
        let k = ds.pk_index().unwrap().num_disk_components();
        assert_eq!(p, k, "correlated merges must keep components aligned");
        // Components pair up with shared bitmaps.
        for (pc, kc) in ds
            .primary()
            .disk_components()
            .iter()
            .zip(ds.pk_index().unwrap().disk_components())
        {
            assert_eq!(pc.num_entries(), kc.num_entries());
            assert!(Arc::ptr_eq(&pc.bitmap().unwrap(), &kc.bitmap().unwrap()));
        }
    }

    #[test]
    fn eager_counts_maintenance_lookups() {
        let ds = dataset(StrategyKind::Eager);
        ds.insert(&rec(1, "CA", 1)).unwrap();
        ds.upsert(&rec(1, "NY", 2)).unwrap();
        ds.delete(&Value::Int(1)).unwrap();
        // insert (uniqueness) + upsert (old record) + delete (old record).
        assert_eq!(ds.stats().snapshot().maintenance_lookups, 3);
    }

    #[test]
    fn wal_records_ingestion() {
        let storage = Storage::new(StorageOptions::test());
        let log = Storage::new(StorageOptions::test());
        let ds = Dataset::open(storage, Some(log), config(StrategyKind::Validation)).unwrap();
        ds.insert(&rec(1, "CA", 1)).unwrap();
        ds.upsert(&rec(1, "NY", 2)).unwrap();
        ds.delete(&Value::Int(1)).unwrap();
        let recs = ds.wal().unwrap().replay(0, true).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].op, LogOp::Insert);
        assert_eq!(recs[1].op, LogOp::Upsert);
        assert_eq!(recs[2].op, LogOp::Delete);
        assert!(recs.windows(2).all(|w| w[0].lsn < w[1].lsn));
    }
}
