//! The fluent query API: [`Dataset::query`] → [`QueryBuilder`] →
//! [`PreparedQuery`].
//!
//! The builder's job is to make queries **correct by construction** across
//! all four maintenance strategies: unless the caller overrides it, the
//! candidate-validation method (Section 4.3) is resolved from the dataset's
//! [`StrategyKind`] at [`QueryBuilder::build`] time:
//!
//! | strategy          | index-only  | record-fetching            |
//! |-------------------|-------------|----------------------------|
//! | `Eager`           | `None`      | `None`                     |
//! | `Validation`      | `Timestamp` | `Direct` (cheaper: records |
//! | `MutableBitmap`   | `Timestamp` | are fetched anyway, so the |
//! |                   |             | predicate re-check is free |
//! |                   |             | of extra pk-index probes)  |
//! | `DeletedKeyBTree` | `Direct`    | `Direct`                   |
//!
//! Eager indexes are always accurate, so no validation is needed. The lazy
//! strategies leave obsolete entries in secondary indexes, which queries
//! must filter: `Timestamp` validation probes the primary key index
//! (Figure 5b) and is the only option that avoids fetching records for an
//! index-only query; when records are fetched anyway, `Direct` validation
//! (Figure 5a) re-checks the predicate for free. Mutable-bitmap datasets
//! maintain their *secondary* indexes with the Validation strategy
//! (Section 5.2), so they resolve identically — only primary-index filter
//! scans get the strategy's no-validation benefit (Section 6.4.2). The
//! deleted-key B+-tree baseline validates directly, as AsterixDB's queries
//! did. Requesting query-driven repair forces `Timestamp`, the only method
//! that proves obsolescence.

use crate::dataset::Dataset;
use crate::query::stream::RecordStream;
use crate::query::{exec, QueryOptions, QueryResult, ValidationMethod};
use crate::StrategyKind;
use lsm_common::{Result, Value};

/// A fluent secondary-index query under construction; obtained from
/// [`Dataset::query`].
///
/// ```
/// use lsm_common::{FieldType, Record, Schema, Value};
/// use lsm_engine::{Dataset, DatasetConfig, SecondaryIndexDef, StrategyKind};
/// use lsm_storage::{Storage, StorageOptions};
///
/// let schema = Schema::new(vec![
///     ("id", FieldType::Int),
///     ("location", FieldType::Str),
/// ]).unwrap();
/// let mut cfg = DatasetConfig::new(schema, 0);
/// cfg.strategy = StrategyKind::Validation;
/// cfg.secondary_indexes.push(SecondaryIndexDef { name: "location".into(), field: 1 });
/// let ds = Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap();
/// ds.insert(&Record::new(vec![Value::Int(1), Value::Str("CA".into())])).unwrap();
///
/// // Validation-strategy dataset: the right validation method is implied.
/// let res = ds.query("location").eq("CA").execute().unwrap();
/// assert_eq!(res.len(), 1);
/// ```
#[derive(Debug, Clone)]
#[must_use = "a QueryBuilder does nothing until executed or streamed"]
pub struct QueryBuilder<'a> {
    ds: &'a Dataset,
    index: String,
    lo: Option<Value>,
    hi: Option<Value>,
    index_only: Option<bool>,
    limit: Option<usize>,
    parallel: Option<usize>,
    naive: bool,
    // §3.2 knob overrides; `None` = resolve a default.
    validation: Option<ValidationMethod>,
    batched: Option<bool>,
    batch_bytes: Option<usize>,
    stateful: Option<bool>,
    propagate_component_ids: Option<bool>,
    sort_output: Option<bool>,
    query_driven_repair: Option<bool>,
    base: Option<QueryOptions>,
}

impl Dataset {
    /// Starts a fluent query against the secondary index `index`.
    ///
    /// The returned builder resolves strategy-aware defaults at
    /// [`QueryBuilder::build`] time, so `ds.query("idx").eq(v).execute()`
    /// is correct for every [`StrategyKind`] without manually choosing a
    /// [`ValidationMethod`].
    pub fn query(&self, index: impl Into<String>) -> QueryBuilder<'_> {
        QueryBuilder {
            ds: self,
            index: index.into(),
            lo: None,
            hi: None,
            index_only: None,
            limit: None,
            parallel: None,
            naive: false,
            validation: None,
            batched: None,
            batch_bytes: None,
            stateful: None,
            propagate_component_ids: None,
            sort_output: None,
            query_driven_repair: None,
            base: None,
        }
    }
}

impl<'a> QueryBuilder<'a> {
    /// Restricts the query to `sk == value`.
    pub fn eq(mut self, value: impl Into<Value>) -> Self {
        let v = value.into();
        self.lo = Some(v.clone());
        self.hi = Some(v);
        self
    }

    /// Restricts the query to `sk ∈ [lo, hi]` (inclusive).
    pub fn range(mut self, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        self.lo = Some(lo.into());
        self.hi = Some(hi.into());
        self
    }

    /// Restricts the query to `sk >= lo`.
    pub fn range_from(mut self, lo: impl Into<Value>) -> Self {
        self.lo = Some(lo.into());
        self
    }

    /// Restricts the query to `sk <= hi`.
    pub fn range_to(mut self, hi: impl Into<Value>) -> Self {
        self.hi = Some(hi.into());
        self
    }

    /// Returns primary keys instead of records (index-only query).
    pub fn index_only(mut self) -> Self {
        self.index_only = Some(true);
        self
    }

    /// Caps the number of results. Limited record queries fetch records
    /// through the streaming path so the point-lookup I/O stops at `n`
    /// results; they are returned in primary-key order (the same order as
    /// [`QueryBuilder::sort_output`]).
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Uses the naive point-lookup configuration of Section 6.2 (sorted
    /// keys, per-key probing) instead of the batched/stateful default.
    pub fn naive(mut self) -> Self {
        self.naive = true;
        self
    }

    /// Executes the query across up to `n` partitions in parallel: the
    /// secondary scan is split along component page boundaries and the
    /// record fetch into contiguous primary-key chunks, each running on
    /// its own thread (the engine's shared query pool when the dataset's
    /// [`MaintenanceRuntime`](crate::MaintenanceRuntime) has one — see
    /// [`EngineConfig::query_workers`](crate::EngineConfig) — ephemeral
    /// threads otherwise; the calling thread always participates).
    ///
    /// Results are identical to the serial execution and always arrive in
    /// primary-key order, both from [`PreparedQuery::execute`] and batch
    /// by batch from [`PreparedQuery::stream`]. `n <= 1` runs a single
    /// partition on the calling thread — still through the partitioned
    /// path, so the pk-ordered output shape does not depend on `n`.
    pub fn parallel(mut self, n: usize) -> Self {
        self.parallel = Some(n.max(1));
        self
    }

    // ---- §3.2 knob overrides ----------------------------------------------

    /// Overrides the candidate-validation method; without this, a
    /// strategy-aware default is resolved (see the module docs).
    pub fn validation(mut self, method: ValidationMethod) -> Self {
        self.validation = Some(method);
        self
    }

    /// Toggles the batched point-lookup algorithm.
    pub fn batched(mut self, on: bool) -> Self {
        self.batched = Some(on);
        self
    }

    /// Sets the batching memory (16MB in Section 6.2); determines keys per
    /// batch from the average record size.
    pub fn batch_bytes(mut self, bytes: usize) -> Self {
        self.batch_bytes = Some(bytes);
        self
    }

    /// Toggles stateful B+-tree cursors with exponential search.
    pub fn stateful(mut self, on: bool) -> Self {
        self.stateful = Some(on);
        self
    }

    /// Toggles secondary-component-ID propagation ("pID").
    pub fn propagate_component_ids(mut self, on: bool) -> Self {
        self.propagate_component_ids = Some(on);
        self
    }

    /// Re-sorts fetched records into primary-key order (batching destroys
    /// the order; Figure 12d measures this).
    pub fn sort_output(mut self, on: bool) -> Self {
        self.sort_output = Some(on);
        self
    }

    /// Lets Timestamp validation mark proven-obsolete entries in their
    /// source component's bitmap (Section 7 / database cracking). Forces
    /// Timestamp validation for the lazy strategies unless explicitly
    /// overridden; has no effect under Eager, whose indexes hold no
    /// obsolete entries to mark (and store no timestamps to prove it with).
    pub fn query_driven_repair(mut self, on: bool) -> Self {
        self.query_driven_repair = Some(on);
        self
    }

    /// Seeds every knob from a complete [`QueryOptions`] (benchmarks sweep
    /// these); individual setters called afterwards still override, but no
    /// strategy-aware defaults are resolved on top.
    pub fn with_options(mut self, opts: QueryOptions) -> Self {
        self.base = Some(opts);
        self
    }

    /// Resolves every knob into a [`PreparedQuery`], checking that the
    /// index exists.
    pub fn build(self) -> Result<PreparedQuery<'a>> {
        self.ds.secondary(&self.index)?; // fail fast on unknown indexes
        let explicit_base = self.base.is_some();
        let mut opts = self.base.unwrap_or_else(|| {
            if self.naive {
                QueryOptions::naive()
            } else {
                QueryOptions::default()
            }
        });
        if explicit_base && self.naive {
            opts.batched = false;
            opts.stateful = false;
        }
        if let Some(v) = self.index_only {
            opts.index_only = v;
        }
        if let Some(v) = self.batched {
            opts.batched = v;
        }
        if let Some(v) = self.batch_bytes {
            opts.batch_bytes = v;
        }
        if let Some(v) = self.stateful {
            opts.stateful = v;
        }
        if let Some(v) = self.propagate_component_ids {
            opts.propagate_component_ids = v;
        }
        if let Some(v) = self.sort_output {
            opts.sort_output = v;
        }
        if let Some(v) = self.query_driven_repair {
            opts.query_driven_repair = v;
        }
        opts.validation = match self.validation {
            Some(v) => v,
            None if explicit_base => opts.validation,
            None => resolve_validation(
                self.ds.config().strategy,
                opts.index_only,
                opts.query_driven_repair,
            ),
        };
        Ok(PreparedQuery {
            ds: self.ds,
            index: self.index,
            lo: self.lo,
            hi: self.hi,
            limit: self.limit,
            parallelism: self.parallel,
            options: opts,
        })
    }

    /// Builds and runs the query, collecting all results.
    pub fn execute(self) -> Result<QueryResult> {
        self.build()?.execute()
    }

    /// Builds the query and returns a batch-at-a-time [`RecordStream`].
    pub fn stream(self) -> Result<RecordStream<'a>> {
        self.build()?.stream()
    }
}

/// The strategy-aware validation default (see the module docs for the
/// rationale).
fn resolve_validation(
    strategy: StrategyKind,
    index_only: bool,
    query_driven_repair: bool,
) -> ValidationMethod {
    match strategy {
        StrategyKind::Eager => ValidationMethod::None,
        StrategyKind::Validation | StrategyKind::MutableBitmap => {
            if index_only || query_driven_repair {
                ValidationMethod::Timestamp
            } else {
                ValidationMethod::Direct
            }
        }
        // The baseline validates directly (AsterixDB's queries did), but
        // query-driven repair needs timestamp proofs like everyone else.
        StrategyKind::DeletedKeyBTree => {
            if query_driven_repair {
                ValidationMethod::Timestamp
            } else {
                ValidationMethod::Direct
            }
        }
    }
}

/// A fully resolved query: every knob decided, index verified.
#[derive(Debug, Clone)]
#[must_use = "a PreparedQuery does nothing until executed or streamed"]
pub struct PreparedQuery<'a> {
    ds: &'a Dataset,
    index: String,
    lo: Option<Value>,
    hi: Option<Value>,
    limit: Option<usize>,
    parallelism: Option<usize>,
    options: QueryOptions,
}

impl<'a> PreparedQuery<'a> {
    /// The resolved low-level options (inspectable in tests and benches).
    pub fn options(&self) -> &QueryOptions {
        &self.options
    }

    /// The queried index name.
    pub fn index(&self) -> &str {
        &self.index
    }

    /// The resolved result cap, if any.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// The resolved partition fan-out (1 when [`QueryBuilder::parallel`]
    /// was not requested).
    pub fn parallelism(&self) -> usize {
        self.parallelism.unwrap_or(1)
    }

    /// Runs the query, collecting all results into a [`QueryResult`].
    /// With [`QueryBuilder::parallel`] set, results are in primary-key
    /// order; serially, record order follows the fetch unless
    /// `sort_output` is set.
    pub fn execute(&self) -> Result<QueryResult> {
        if let Some(n) = self.parallelism {
            return crate::query::parallel::execute_parallel(
                &self.ds.shared()?,
                &self.index,
                self.lo.as_ref(),
                self.hi.as_ref(),
                &self.options,
                self.limit,
                n,
            );
        }
        exec::execute(
            self.ds,
            &self.index,
            self.lo.as_ref(),
            self.hi.as_ref(),
            &self.options,
            self.limit,
        )
    }

    /// Runs the query as a stream that fetches records one batch at a time
    /// (bounded memory; see [`RecordStream`]). With
    /// [`QueryBuilder::parallel`] set, the candidate gathering (scan +
    /// validation) fans across partitions and the merged stream preserves
    /// primary-key order.
    pub fn stream(&self) -> Result<RecordStream<'a>> {
        if let Some(n) = self.parallelism {
            if self.options.index_only {
                return Err(lsm_common::Error::invalid(
                    "index-only queries return keys, not records; use execute()",
                ));
            }
            let shared = self.ds.shared()?;
            let pool = shared.query_pool();
            let candidates = crate::query::parallel::gather_parallel(
                &shared,
                &self.index,
                self.lo.as_ref(),
                self.hi.as_ref(),
                &self.options,
                n,
                pool.as_ref(),
            )?;
            let (keys, hints) = candidates
                .into_iter()
                .map(|c| (c.pk_key, c.source_id))
                .unzip();
            let sec_field = self.ds.secondary(&self.index)?.field;
            return Ok(RecordStream::from_candidates(
                self.ds,
                keys,
                hints,
                sec_field,
                self.lo.clone(),
                self.hi.clone(),
                &self.options,
                self.limit,
            ));
        }
        RecordStream::open(
            self.ds,
            &self.index,
            self.lo.clone(),
            self.hi.clone(),
            &self.options,
            self.limit,
        )
    }
}
