//! Query execution internals shared by [`secondary_query`], the fluent
//! [`QueryBuilder`](crate::query::QueryBuilder), and the streaming
//! [`RecordStream`](crate::query::RecordStream): the Figure 5 pipeline of
//! secondary-index scan → candidate sort/dedup → validation → record fetch.
//!
//! [`secondary_query`]: crate::query::secondary_query

use crate::dataset::{Dataset, SecondaryIndex};
use crate::keys::{bound_as_ref, sk_range};
use crate::query::{QueryOptions, QueryResult, ValidationMethod};
use lsm_common::{Error, Key, Record, Result, Timestamp, Value};
use lsm_tree::{
    lookup_sorted, newest_version_after, ComponentId, LookupOptions, LsmScan, ScanOptions,
};

/// One candidate produced by the secondary-index scan.
#[derive(Debug, Clone)]
pub(crate) struct Candidate {
    pub pk_key: Key,
    pub ts: Timestamp,
    /// Repaired timestamp of the source component (`now` for memory).
    pub repaired_ts: Timestamp,
    /// Component ID of the source (for pID pruning).
    pub source_id: ComponentId,
    /// Source disk component index and entry ordinal (None for memory),
    /// for query-driven repair.
    pub source: Option<(usize, u64)>,
}

/// A query-driven-repair mark: `(disk component index, entry ordinal)` in
/// the component list the candidates were scanned from. The parallel path
/// collects these per partition and applies the aggregate once; the serial
/// path applies them inline.
pub(crate) type RepairMark = (usize, u64);

/// Steps 1-3 of Figure 5: scan the secondary index for `sk ∈ [lo, hi]`,
/// sort and deduplicate the candidates, and apply Timestamp validation when
/// requested. The returned candidates are distinct primary keys in
/// ascending key order.
pub(crate) fn gather_candidates(
    ds: &Dataset,
    sec: &SecondaryIndex,
    lo: Option<&Value>,
    hi: Option<&Value>,
    opts: &QueryOptions,
) -> Result<Vec<Candidate>> {
    let (lo_b, hi_b) = sk_range(lo, hi);
    let (lo_ref, hi_ref) = (bound_as_ref(&lo_b), bound_as_ref(&hi_b));
    let mem = sec.tree.mem_snapshot_range(lo_ref, hi_ref);
    let comps = sec.tree.disk_components();
    let mem = (!mem.is_empty()).then_some(mem);
    let mut candidates = scan_candidates(ds, mem, &comps, lo_ref, hi_ref)?;
    sort_dedup_candidates(ds, &mut candidates, opts);
    validate_candidates(ds, &comps, candidates, opts, None)
}

/// Step 1 of Figure 5 over an explicit view: scans `[lo, hi]` of the
/// secondary index given an in-memory run (`None` = nothing buffered;
/// owned, so the serial path moves its snapshot in without copying) and
/// a disk-component list. Candidate `source` indices refer to `comps`.
/// The parallel path calls this once per partition against one shared
/// snapshot.
pub(crate) fn scan_candidates(
    ds: &Dataset,
    mem: Option<Vec<(Key, lsm_tree::LsmEntry)>>,
    comps: &[std::sync::Arc<lsm_tree::DiskComponent>],
    lo: std::ops::Bound<&[u8]>,
    hi: std::ops::Bound<&[u8]>,
) -> Result<Vec<Candidate>> {
    let storage = ds.storage();
    let mem = mem.filter(|m| !m.is_empty());
    let has_mem = mem.is_some();
    let mut scan = LsmScan::new(storage.clone(), mem, comps, lo, hi, ScanOptions::default())?;
    let now = ds.clock().now();
    let mut candidates: Vec<Candidate> = Vec::new();
    while let Some((key, entry, rank, ordinal)) = scan.next_reconciled()? {
        if entry.anti_matter {
            continue;
        }
        let (repaired_ts, source_id, source) = if has_mem && rank == 0 {
            (now, ComponentId::new(entry.ts.max(1), now.max(1)), None)
        } else {
            let idx = rank - usize::from(has_mem);
            let comp = &comps[idx];
            (comp.repaired_ts(), comp.id(), Some((idx, ordinal)))
        };
        let (_, pk) = crate::keys::decode_sk_pk(&key)?;
        candidates.push(Candidate {
            pk_key: pk.encode(),
            ts: entry.ts,
            repaired_ts,
            source_id,
            source,
        });
    }
    Ok(candidates)
}

/// Step 2 of Figure 5: sort by `(pk asc, ts desc)` and deduplicate —
/// exact `(pk, ts)` duplicates always, and down to one (the newest)
/// candidate per pk when no Timestamp validation will follow.
pub(crate) fn sort_dedup_candidates(
    ds: &Dataset,
    candidates: &mut Vec<Candidate>,
    opts: &QueryOptions,
) {
    charge_sort(ds, candidates.len() as u64);
    candidates.sort_by(|a, b| (&a.pk_key, b.ts).cmp(&(&b.pk_key, a.ts)));
    candidates.dedup_by(|a, b| a.pk_key == b.pk_key && a.ts == b.ts);
    if opts.validation == ValidationMethod::None || opts.validation == ValidationMethod::Direct {
        // Distinct on pk (keep the newest candidate).
        candidates.dedup_by(|a, b| a.pk_key == b.pk_key);
    }
}

/// Step 3 of Figure 5: Timestamp validation (Figure 5b) against the
/// primary key index, plus the final distinct-pk pass. A no-op for the
/// other validation methods. With `marks` set, query-driven-repair
/// obsolescence proofs are collected there (indices into `comps`) instead
/// of being applied inline — the parallel path aggregates marks across
/// partitions and applies them once.
pub(crate) fn validate_candidates(
    ds: &Dataset,
    comps: &[std::sync::Arc<lsm_tree::DiskComponent>],
    mut candidates: Vec<Candidate>,
    opts: &QueryOptions,
    mut marks: Option<&mut Vec<RepairMark>>,
) -> Result<Vec<Candidate>> {
    if opts.validation != ValidationMethod::Timestamp {
        return Ok(candidates);
    }
    let pk_tree = ds
        .pk_index()
        .ok_or_else(|| Error::invalid("timestamp validation requires the pk index"))?;
    let mut valid = Vec::with_capacity(candidates.len());
    for cand in candidates {
        let prune = cand.ts.max(cand.repaired_ts);
        let invalid = match newest_version_after(pk_tree, &cand.pk_key, prune)? {
            Some(found) => found.ts > cand.ts,
            None => false,
        };
        if !invalid {
            valid.push(cand);
        } else if opts.query_driven_repair {
            // Query-driven maintenance: record the proof of obsolescence
            // so future queries skip this entry without re-validating.
            if let Some((idx, ordinal)) = cand.source {
                match marks.as_deref_mut() {
                    Some(collected) => collected.push((idx, ordinal)),
                    None => {
                        comps[idx].bitmap_or_create().set(ordinal);
                    }
                }
            }
        }
    }
    candidates = valid;
    candidates.dedup_by(|a, b| a.pk_key == b.pk_key);
    Ok(candidates)
}

/// Re-probes every candidate key that resolved to "not found" via
/// [`Dataset::second_chance_lookup`] — the Mutable-bitmap §5.2 race fix
/// (an MB upsert marks the old version deleted in place before the new
/// one reaches memory, so a racing lookup can find neither). Cheap: only
/// unresolved candidates are re-probed, deletions gate most probes
/// through the Bloom filters, and the whole pass is a no-op for the
/// other strategies.
pub(crate) fn fetch_missing_under_lock(
    ds: &Dataset,
    keys: &[Key],
    found: &mut lsm_tree::lookup::FoundEntries,
) -> Result<()> {
    if ds.config().strategy != crate::StrategyKind::MutableBitmap {
        return Ok(());
    }
    let mut have = vec![false; keys.len()];
    for (i, _) in found.iter() {
        have[*i] = true;
    }
    for (i, key) in keys.iter().enumerate() {
        if have[i] {
            continue;
        }
        if let Some(e) = ds.second_chance_lookup(key)? {
            if !e.anti_matter {
                found.push((i, e));
            }
        }
    }
    Ok(())
}

/// Re-checks the query predicate on a fetched record (Direct validation,
/// Figure 5a).
pub(crate) fn direct_predicate_holds(
    record: &Record,
    sec_field: usize,
    lo: Option<&Value>,
    hi: Option<&Value>,
) -> bool {
    let sk = record.get(sec_field);
    lo.is_none_or(|l| sk >= l) && hi.is_none_or(|h| sk <= h)
}

/// Step 4 of Figure 5 (collecting form): fetch all candidate records from
/// the primary index with the batched point-lookup machinery, applying
/// Direct validation when requested.
fn fetch_records(
    ds: &Dataset,
    sec: &SecondaryIndex,
    candidates: &[Candidate],
    lo: Option<&Value>,
    hi: Option<&Value>,
    opts: &QueryOptions,
) -> Result<Vec<Record>> {
    let keys: Vec<Key> = candidates.iter().map(|c| c.pk_key.clone()).collect();
    let hints: Vec<ComponentId> = candidates.iter().map(|c| c.source_id).collect();
    let keys_per_batch = keys_per_batch(ds, opts.batch_bytes);
    let lopts = LookupOptions {
        batched: opts.batched,
        keys_per_batch,
        stateful: opts.stateful,
        id_hints: opts.propagate_component_ids.then_some(hints.as_slice()),
    };
    let mut found = lookup_sorted(ds.primary(), &keys, &lopts)?;
    fetch_missing_under_lock(ds, &keys, &mut found)?;

    let mut records = Vec::with_capacity(found.len());
    for (_, entry) in found {
        let record = Record::decode(&entry.value)?;
        if opts.validation == ValidationMethod::Direct
            && !direct_predicate_holds(&record, sec.field, lo, hi)
        {
            continue;
        }
        records.push(record);
    }
    Ok(records)
}

/// Runs the full query pipeline, collecting every result (the historical
/// `secondary_query` behaviour, plus an optional result limit).
pub(crate) fn execute(
    ds: &Dataset,
    index: &str,
    lo: Option<&Value>,
    hi: Option<&Value>,
    opts: &QueryOptions,
    limit: Option<usize>,
) -> Result<QueryResult> {
    // Limited record queries go through the stream so the record fetch —
    // the dominant I/O — stops after `limit` results instead of fetching
    // every candidate and truncating. The stream yields primary-key order,
    // which matches the `sort_output` collecting path.
    if limit.is_some() && !opts.index_only {
        let stream =
            crate::query::RecordStream::open(ds, index, lo.cloned(), hi.cloned(), opts, limit)?;
        let records = stream.collect::<Result<Vec<_>>>()?;
        return Ok(QueryResult::Records(records));
    }

    let sec = ds.secondary(index)?;
    let candidates = gather_candidates(ds, sec, lo, hi, opts)?;

    // Index-only fast path: no record fetch needed.
    if opts.index_only && opts.validation != ValidationMethod::Direct {
        let mut keys = candidates
            .iter()
            .map(|c| crate::keys::decode_pk(&c.pk_key))
            .collect::<Result<Vec<_>>>()?;
        truncate_to(&mut keys, limit);
        return Ok(QueryResult::Keys(keys));
    }

    let mut records = fetch_records(ds, sec, &candidates, lo, hi, opts)?;

    if opts.index_only {
        // Direct validation + index-only still had to fetch records.
        let mut keys: Vec<Value> = records
            .iter()
            .map(|r| r.get(ds.config().pk_field).clone())
            .collect();
        truncate_to(&mut keys, limit);
        return Ok(QueryResult::Keys(keys));
    }

    if opts.sort_output {
        charge_sort(ds, records.len() as u64);
        let pk_field = ds.config().pk_field;
        records.sort_by(|a, b| a.get(pk_field).cmp(b.get(pk_field)));
    }
    Ok(QueryResult::Records(records))
}

fn truncate_to<T>(items: &mut Vec<T>, limit: Option<usize>) {
    if let Some(n) = limit {
        items.truncate(n);
    }
}

/// Charges the CPU cost model for an `n log n` sort.
pub(crate) fn charge_sort(ds: &Dataset, n: u64) {
    if n > 1 {
        let log_n = u64::from(64 - n.leading_zeros());
        ds.storage()
            .charge_cpu(n * log_n * ds.storage().cpu().sort_entry_ns);
    }
}

/// Derives the per-batch key count from the batching memory and the average
/// record size of the primary index.
pub(crate) fn keys_per_batch(ds: &Dataset, batch_bytes: usize) -> usize {
    let entries = ds.primary().disk_entries().max(1);
    let avg = (ds.primary().disk_bytes() / entries).max(64) as usize;
    (batch_bytes / avg).max(1)
}
