//! Query processing: secondary-index queries with index-to-index navigation
//! (Section 3.2) and query validation (Section 4.3).
//!
//! A secondary-index query proceeds as in Figure 5:
//!
//! 1. scan the secondary index for matching `(sk, pk)` entries;
//! 2. sort the primary keys (and deduplicate);
//! 3. under the Validation strategy, validate the candidates — either by
//!    fetching records and re-checking the predicate (**Direct**), or by
//!    probing the primary key index for a newer timestamp (**Timestamp**);
//! 4. fetch records from the primary index, using the batched point-lookup
//!    machinery with the stateful-cursor / blocked-Bloom / component-ID
//!    optimizations of Section 3.2.

pub mod filter_scan;

pub use filter_scan::{filter_scan_count, FilterScanReport};

use crate::dataset::Dataset;
use crate::keys::sk_range;
use lsm_common::{Error, Key, Record, Result, Timestamp, Value};
use lsm_tree::{
    lookup_sorted, newest_version_after, ComponentId, LookupOptions, LsmScan, ScanOptions,
};
use std::ops::Bound;

/// How candidates from a possibly-stale secondary index are validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationMethod {
    /// No validation: the secondary index is always accurate (Eager).
    #[default]
    None,
    /// Fetch candidate records and re-check the predicate (Figure 5a).
    Direct,
    /// Probe the primary key index for newer timestamps (Figure 5b).
    Timestamp,
}

/// Query options (Section 3.2 / 6.2 knobs).
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions {
    /// Return primary keys only (index-only query).
    pub index_only: bool,
    /// Candidate validation method.
    pub validation: ValidationMethod,
    /// Use the batched point-lookup algorithm.
    pub batched: bool,
    /// Batching memory (16MB in Section 6.2); determines keys per batch
    /// from the average record size.
    pub batch_bytes: usize,
    /// Use stateful B+-tree cursors with exponential search.
    pub stateful: bool,
    /// Propagate secondary-component IDs to prune primary components
    /// (Jia's "pID" optimization).
    pub propagate_component_ids: bool,
    /// Re-sort fetched records into primary-key order (batching destroys
    /// the order; Figure 12d measures this).
    pub sort_output: bool,
    /// Query-driven maintenance (the paper's future-work direction inspired
    /// by database cracking, Section 7): when Timestamp validation proves a
    /// candidate obsolete, mark it in its source component's bitmap so
    /// later queries and merges skip it.
    pub query_driven_repair: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            index_only: false,
            validation: ValidationMethod::None,
            batched: true,
            batch_bytes: 16 * 1024 * 1024,
            stateful: true,
            propagate_component_ids: false,
            sort_output: false,
            query_driven_repair: false,
        }
    }
}

impl QueryOptions {
    /// The naive configuration of Section 6.2: sorted keys, per-key probing.
    pub fn naive() -> Self {
        QueryOptions {
            batched: false,
            stateful: false,
            ..Default::default()
        }
    }
}

/// Query output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// Full records (non-index-only queries).
    Records(Vec<Record>),
    /// Primary keys (index-only queries).
    Keys(Vec<Value>),
}

impl QueryResult {
    /// Number of results.
    pub fn len(&self) -> usize {
        match self {
            QueryResult::Records(r) => r.len(),
            QueryResult::Keys(k) => k.len(),
        }
    }

    /// True if no results.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The records, if this is a record result.
    pub fn records(&self) -> &[Record] {
        match self {
            QueryResult::Records(r) => r,
            QueryResult::Keys(_) => panic!("index-only result has no records"),
        }
    }

    /// The keys, if this is a key result.
    pub fn keys(&self) -> &[Value] {
        match self {
            QueryResult::Keys(k) => k,
            QueryResult::Records(_) => panic!("record result holds records, not keys"),
        }
    }
}

/// One candidate produced by the secondary-index scan.
#[derive(Debug, Clone)]
struct Candidate {
    pk_key: Key,
    ts: Timestamp,
    /// Repaired timestamp of the source component (0 for memory).
    repaired_ts: Timestamp,
    /// Component ID of the source (for pID pruning).
    source_id: ComponentId,
    /// Source disk component index and entry ordinal (None for memory),
    /// for query-driven repair.
    source: Option<(usize, u64)>,
}

/// Runs a secondary-index range query `sk ∈ [lo, hi]` against `index`.
pub fn secondary_query(
    ds: &Dataset,
    index: &str,
    lo: Option<&Value>,
    hi: Option<&Value>,
    opts: &QueryOptions,
) -> Result<QueryResult> {
    let sec = ds.secondary(index)?;
    let storage = ds.storage();

    // Step 1: secondary index scan.
    let (lo_b, hi_b) = sk_range(lo, hi);
    let lo_ref = match &lo_b {
        Bound::Included(k) => Bound::Included(k.as_slice()),
        Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
        Bound::Unbounded => Bound::Unbounded,
    };
    let hi_ref = match &hi_b {
        Bound::Included(k) => Bound::Included(k.as_slice()),
        Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
        Bound::Unbounded => Bound::Unbounded,
    };
    let mem = sec.tree.mem_snapshot_range(lo_ref, hi_ref);
    let has_mem = !mem.is_empty();
    let comps = sec.tree.disk_components();
    let mut scan = LsmScan::new(
        storage.clone(),
        has_mem.then_some(mem),
        &comps,
        lo_ref,
        hi_ref,
        ScanOptions::default(),
    )?;
    let now = ds.clock().now();
    let mut candidates: Vec<Candidate> = Vec::new();
    while let Some((key, entry, rank, ordinal)) = scan.next_reconciled()? {
        if entry.anti_matter {
            continue;
        }
        let (repaired_ts, source_id, source) = if has_mem && rank == 0 {
            (now, ComponentId::new(entry.ts.max(1), now.max(1)), None)
        } else {
            let idx = rank - usize::from(has_mem);
            let comp = &comps[idx];
            (comp.repaired_ts(), comp.id(), Some((idx, ordinal)))
        };
        let (_, pk) = crate::keys::decode_sk_pk(&key)?;
        candidates.push(Candidate {
            pk_key: pk.encode(),
            ts: entry.ts,
            repaired_ts,
            source_id,
            source,
        });
    }

    // Step 2: sort by primary key and deduplicate.
    charge_sort(ds, candidates.len() as u64);
    candidates.sort_by(|a, b| (&a.pk_key, b.ts).cmp(&(&b.pk_key, a.ts)));
    candidates.dedup_by(|a, b| a.pk_key == b.pk_key && a.ts == b.ts);
    if opts.validation == ValidationMethod::None
        || opts.validation == ValidationMethod::Direct
    {
        // Distinct on pk (keep the newest candidate).
        candidates.dedup_by(|a, b| a.pk_key == b.pk_key);
    }

    // Step 3: Timestamp validation (Figure 5b).
    if opts.validation == ValidationMethod::Timestamp {
        let pk_tree = ds
            .pk_index()
            .ok_or_else(|| Error::invalid("timestamp validation requires the pk index"))?;
        let mut valid = Vec::with_capacity(candidates.len());
        for cand in candidates {
            let prune = cand.ts.max(cand.repaired_ts);
            let invalid = match newest_version_after(pk_tree, &cand.pk_key, prune)? {
                Some(found) => found.ts > cand.ts,
                None => false,
            };
            if !invalid {
                valid.push(cand);
            } else if opts.query_driven_repair {
                // Query-driven maintenance: record the proof of obsolescence
                // so future queries skip this entry without re-validating.
                if let Some((idx, ordinal)) = cand.source {
                    comps[idx].bitmap_or_create().set(ordinal);
                }
            }
        }
        candidates = valid;
        candidates.dedup_by(|a, b| a.pk_key == b.pk_key);
    }

    // Index-only fast path: no record fetch needed.
    if opts.index_only && opts.validation != ValidationMethod::Direct {
        let keys = candidates
            .iter()
            .map(|c| crate::keys::decode_pk(&c.pk_key))
            .collect::<Result<Vec<_>>>()?;
        return Ok(QueryResult::Keys(keys));
    }

    // Step 4: fetch records from the primary index.
    let keys: Vec<Key> = candidates.iter().map(|c| c.pk_key.clone()).collect();
    let hints: Vec<ComponentId> = candidates.iter().map(|c| c.source_id).collect();
    let keys_per_batch = keys_per_batch(ds, opts.batch_bytes);
    let lopts = LookupOptions {
        batched: opts.batched,
        keys_per_batch,
        stateful: opts.stateful,
        id_hints: opts.propagate_component_ids.then_some(hints.as_slice()),
    };
    let found = lookup_sorted(ds.primary(), &keys, &lopts)?;

    // Direct validation (Figure 5a): re-check the predicate on the record.
    let mut records = Vec::with_capacity(found.len());
    for (idx, entry) in found {
        let record = Record::decode(&entry.value)?;
        if opts.validation == ValidationMethod::Direct {
            let sk = record.get(sec.field);
            let ok = lo.is_none_or(|l| sk >= l) && hi.is_none_or(|h| sk <= h);
            if !ok {
                continue;
            }
        }
        let _ = idx;
        records.push(record);
    }

    if opts.index_only {
        // Direct validation + index-only still had to fetch records.
        let keys = records
            .iter()
            .map(|r| r.get(ds.config().pk_field).clone())
            .collect();
        return Ok(QueryResult::Keys(keys));
    }

    if opts.sort_output {
        charge_sort(ds, records.len() as u64);
        let pk_field = ds.config().pk_field;
        records.sort_by(|a, b| a.get(pk_field).cmp(b.get(pk_field)));
    }
    Ok(QueryResult::Records(records))
}

fn charge_sort(ds: &Dataset, n: u64) {
    if n > 1 {
        let log_n = u64::from(64 - n.leading_zeros());
        ds.storage()
            .charge_cpu(n * log_n * ds.storage().cpu().sort_entry_ns);
    }
}

/// Derives the per-batch key count from the batching memory and the average
/// record size of the primary index.
fn keys_per_batch(ds: &Dataset, batch_bytes: usize) -> usize {
    let entries = ds.primary().disk_entries().max(1);
    let avg = (ds.primary().disk_bytes() / entries).max(64) as usize;
    (batch_bytes / avg).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetConfig, SecondaryIndexDef, StrategyKind};
    use lsm_common::{FieldType, Schema};
    use lsm_storage::{Storage, StorageOptions};

    fn dataset(strategy: StrategyKind) -> Dataset {
        let schema = Schema::new(vec![
            ("id", FieldType::Int),
            ("user_id", FieldType::Int),
        ])
        .unwrap();
        let mut cfg = DatasetConfig::new(schema, 0);
        cfg.strategy = strategy;
        cfg.merge_repair = false;
        cfg.memory_budget = usize::MAX;
        cfg.secondary_indexes = vec![SecondaryIndexDef {
            name: "user_id".into(),
            field: 1,
        }];
        Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap()
    }

    fn rec(id: i64, uid: i64) -> Record {
        Record::new(vec![Value::Int(id), Value::Int(uid)])
    }

    fn opts_for(strategy: StrategyKind, direct: bool) -> QueryOptions {
        QueryOptions {
            validation: match (strategy, direct) {
                (StrategyKind::Eager, _) => ValidationMethod::None,
                (_, true) => ValidationMethod::Direct,
                (_, false) => ValidationMethod::Timestamp,
            },
            ..Default::default()
        }
    }

    /// Ingest records with updates; query must see exactly the live state.
    fn check_query_correctness(strategy: StrategyKind, direct: bool) {
        let ds = dataset(strategy);
        // uid = id % 10 initially.
        for i in 0..200 {
            ds.insert(&rec(i, i % 10)).unwrap();
        }
        ds.flush_all().unwrap();
        // Move ids 0..50 to uid 50 + id%5.
        for i in 0..50 {
            ds.upsert(&rec(i, 50 + i % 5)).unwrap();
        }
        ds.flush_all().unwrap();
        // Delete ids 100..120.
        for i in 100..120 {
            ds.delete(&Value::Int(i)).unwrap();
        }

        let opts = opts_for(strategy, direct);
        // Query uid ∈ [0, 9]: ids 50..200 except deleted, with id%10.
        let res = secondary_query(&ds, "user_id", Some(&Value::Int(0)), Some(&Value::Int(9)), &opts)
            .unwrap();
        let mut got: Vec<i64> = res
            .records()
            .iter()
            .map(|r| r.get(0).as_int().unwrap())
            .collect();
        got.sort_unstable();
        let want: Vec<i64> = (50..200).filter(|i| !(100..120).contains(i)).collect();
        assert_eq!(got, want, "{strategy:?} direct={direct}");

        // Query uid ∈ [50, 54]: updated ids 0..50.
        let res = secondary_query(
            &ds,
            "user_id",
            Some(&Value::Int(50)),
            Some(&Value::Int(54)),
            &opts,
        )
        .unwrap();
        let mut got: Vec<i64> = res
            .records()
            .iter()
            .map(|r| r.get(0).as_int().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>(), "{strategy:?} direct={direct}");
    }

    #[test]
    fn eager_queries_accurate() {
        check_query_correctness(StrategyKind::Eager, false);
    }

    #[test]
    fn validation_direct_queries_accurate() {
        check_query_correctness(StrategyKind::Validation, true);
    }

    #[test]
    fn validation_timestamp_queries_accurate() {
        check_query_correctness(StrategyKind::Validation, false);
    }

    #[test]
    fn mutable_bitmap_queries_accurate() {
        check_query_correctness(StrategyKind::MutableBitmap, false);
        check_query_correctness(StrategyKind::MutableBitmap, true);
    }

    #[test]
    fn index_only_queries() {
        for strategy in [StrategyKind::Eager, StrategyKind::Validation] {
            let ds = dataset(strategy);
            for i in 0..100 {
                ds.insert(&rec(i, i % 10)).unwrap();
            }
            ds.flush_all().unwrap();
            for i in 0..20 {
                ds.upsert(&rec(i, 90)).unwrap(); // move out of [0,9]... uid 90
            }
            ds.flush_all().unwrap();
            let opts = QueryOptions {
                index_only: true,
                validation: if strategy == StrategyKind::Eager {
                    ValidationMethod::None
                } else {
                    ValidationMethod::Timestamp
                },
                ..Default::default()
            };
            let res = secondary_query(
                &ds,
                "user_id",
                Some(&Value::Int(0)),
                Some(&Value::Int(9)),
                &opts,
            )
            .unwrap();
            let mut got: Vec<i64> = res.keys().iter().map(|k| k.as_int().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, (20..100).collect::<Vec<_>>(), "{strategy:?}");
        }
    }

    #[test]
    fn all_lookup_modes_agree() {
        let ds = dataset(StrategyKind::Validation);
        for i in 0..300 {
            ds.insert(&rec(i, i % 7)).unwrap();
            if i % 3 == 0 {
                ds.flush_all().unwrap();
            }
        }
        let base = secondary_query(
            &ds,
            "user_id",
            Some(&Value::Int(2)),
            Some(&Value::Int(3)),
            &QueryOptions {
                validation: ValidationMethod::Timestamp,
                sort_output: true,
                ..QueryOptions::naive()
            },
        )
        .unwrap();
        for (batched, stateful, pid) in
            [(true, false, false), (true, true, false), (true, true, true)]
        {
            let res = secondary_query(
                &ds,
                "user_id",
                Some(&Value::Int(2)),
                Some(&Value::Int(3)),
                &QueryOptions {
                    validation: ValidationMethod::Timestamp,
                    batched,
                    stateful,
                    propagate_component_ids: pid,
                    sort_output: true,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(res, base, "batched={batched} stateful={stateful} pid={pid}");
        }
    }

    #[test]
    fn sort_output_restores_pk_order() {
        let ds = dataset(StrategyKind::Eager);
        for i in 0..500 {
            ds.insert(&rec(i, i % 3)).unwrap();
            if i % 100 == 0 {
                ds.flush_all().unwrap();
            }
        }
        let res = secondary_query(
            &ds,
            "user_id",
            Some(&Value::Int(0)),
            Some(&Value::Int(0)),
            &QueryOptions {
                sort_output: true,
                ..Default::default()
            },
        )
        .unwrap();
        let ids: Vec<i64> = res
            .records()
            .iter()
            .map(|r| r.get(0).as_int().unwrap())
            .collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ids.len(), 167);
    }

    #[test]
    fn empty_range_returns_nothing() {
        let ds = dataset(StrategyKind::Eager);
        ds.insert(&rec(1, 5)).unwrap();
        let res = secondary_query(
            &ds,
            "user_id",
            Some(&Value::Int(100)),
            Some(&Value::Int(200)),
            &QueryOptions::default(),
        )
        .unwrap();
        assert!(res.is_empty());
        assert!(secondary_query(&ds, "nope", None, None, &QueryOptions::default()).is_err());
    }
}
