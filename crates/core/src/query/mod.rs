//! Query processing: secondary-index queries with index-to-index navigation
//! (Section 3.2) and query validation (Section 4.3).
//!
//! A secondary-index query proceeds as in Figure 5:
//!
//! 1. scan the secondary index for matching `(sk, pk)` entries;
//! 2. sort the primary keys (and deduplicate);
//! 3. under the Validation strategy, validate the candidates — either by
//!    fetching records and re-checking the predicate (**Direct**), or by
//!    probing the primary key index for a newer timestamp (**Timestamp**);
//! 4. fetch records from the primary index, using the batched point-lookup
//!    machinery with the stateful-cursor / blocked-Bloom / component-ID
//!    optimizations of Section 3.2.
//!
//! The preferred entry point is the fluent [`QueryBuilder`] obtained from
//! [`Dataset::query`](crate::Dataset::query), which resolves a correct
//! [`ValidationMethod`] from the dataset's maintenance strategy and offers
//! both a collecting ([`PreparedQuery::execute`]) and a streaming
//! ([`PreparedQuery::stream`]) execution path. The free function
//! [`secondary_query`] survives as a deprecated shim.

pub mod builder;
mod exec;
pub mod filter_scan;
pub(crate) mod parallel;
pub mod pool;
pub mod stream;

pub use builder::{PreparedQuery, QueryBuilder};
pub use filter_scan::{filter_scan_count, FilterScanBuilder, FilterScanReport, FilterScanStream};
pub use pool::QueryPool;
pub use stream::RecordStream;

use crate::dataset::Dataset;
use lsm_common::{Record, Result, Value};

/// How candidates from a possibly-stale secondary index are validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationMethod {
    /// No validation: the secondary index is always accurate (Eager).
    #[default]
    None,
    /// Fetch candidate records and re-check the predicate (Figure 5a).
    Direct,
    /// Probe the primary key index for newer timestamps (Figure 5b).
    Timestamp,
}

/// Query options (Section 3.2 / 6.2 knobs).
///
/// This is the low-level knob struct; [`QueryBuilder`] resolves one from
/// the dataset's strategy plus any per-query overrides. Benchmarks that
/// sweep variants can still construct it directly and seed a builder via
/// [`QueryBuilder::with_options`].
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions {
    /// Return primary keys only (index-only query).
    pub index_only: bool,
    /// Candidate validation method.
    pub validation: ValidationMethod,
    /// Use the batched point-lookup algorithm.
    pub batched: bool,
    /// Batching memory (16MB in Section 6.2); determines keys per batch
    /// from the average record size.
    pub batch_bytes: usize,
    /// Use stateful B+-tree cursors with exponential search.
    pub stateful: bool,
    /// Propagate secondary-component IDs to prune primary components
    /// (Jia's "pID" optimization).
    pub propagate_component_ids: bool,
    /// Re-sort fetched records into primary-key order (batching destroys
    /// the order; Figure 12d measures this).
    pub sort_output: bool,
    /// Query-driven maintenance (the paper's future-work direction inspired
    /// by database cracking, Section 7): when Timestamp validation proves a
    /// candidate obsolete, mark it in its source component's bitmap so
    /// later queries and merges skip it.
    pub query_driven_repair: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            index_only: false,
            validation: ValidationMethod::None,
            batched: true,
            batch_bytes: 16 * 1024 * 1024,
            stateful: true,
            propagate_component_ids: false,
            sort_output: false,
            query_driven_repair: false,
        }
    }
}

impl QueryOptions {
    /// The naive configuration of Section 6.2: sorted keys, per-key probing.
    pub fn naive() -> Self {
        QueryOptions {
            batched: false,
            stateful: false,
            ..Default::default()
        }
    }
}

/// Query output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// Full records (non-index-only queries).
    Records(Vec<Record>),
    /// Primary keys (index-only queries).
    Keys(Vec<Value>),
}

impl QueryResult {
    /// Number of results.
    pub fn len(&self) -> usize {
        match self {
            QueryResult::Records(r) => r.len(),
            QueryResult::Keys(k) => k.len(),
        }
    }

    /// True if no results.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The records, if this is a record result.
    pub fn records(&self) -> &[Record] {
        match self {
            QueryResult::Records(r) => r,
            QueryResult::Keys(_) => panic!("index-only result has no records"),
        }
    }

    /// The keys, if this is a key result.
    pub fn keys(&self) -> &[Value] {
        match self {
            QueryResult::Keys(k) => k,
            QueryResult::Records(_) => panic!("record result holds records, not keys"),
        }
    }
}

/// Runs a secondary-index range query `sk ∈ [lo, hi]` against `index`.
#[deprecated(
    since = "0.2.0",
    note = "use the fluent `Dataset::query(index)` builder instead"
)]
pub fn secondary_query(
    ds: &Dataset,
    index: &str,
    lo: Option<&Value>,
    hi: Option<&Value>,
    opts: &QueryOptions,
) -> Result<QueryResult> {
    exec::execute(ds, index, lo, hi, opts, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetConfig, SecondaryIndexDef, StrategyKind};
    use lsm_common::{FieldType, Schema};
    use lsm_storage::{Storage, StorageOptions};
    use std::sync::Arc;

    fn dataset(strategy: StrategyKind) -> Arc<Dataset> {
        let schema =
            Schema::new(vec![("id", FieldType::Int), ("user_id", FieldType::Int)]).unwrap();
        let mut cfg = DatasetConfig::new(schema, 0);
        cfg.strategy = strategy;
        cfg.merge_repair = false;
        cfg.memory_budget = usize::MAX;
        cfg.secondary_indexes = vec![SecondaryIndexDef {
            name: "user_id".into(),
            field: 1,
        }];
        Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap()
    }

    fn rec(id: i64, uid: i64) -> Record {
        Record::new(vec![Value::Int(id), Value::Int(uid)])
    }

    /// Ingest records with updates; query must see exactly the live state.
    /// `validation`: None = let the builder resolve it.
    fn check_query_correctness(strategy: StrategyKind, validation: Option<ValidationMethod>) {
        let ds = dataset(strategy);
        // uid = id % 10 initially.
        for i in 0..200 {
            ds.insert(&rec(i, i % 10)).unwrap();
        }
        ds.flush_all().unwrap();
        // Move ids 0..50 to uid 50 + id%5.
        for i in 0..50 {
            ds.upsert(&rec(i, 50 + i % 5)).unwrap();
        }
        ds.flush_all().unwrap();
        // Delete ids 100..120.
        for i in 100..120 {
            ds.delete(&Value::Int(i)).unwrap();
        }

        let query = |lo: i64, hi: i64| {
            let mut q = ds.query("user_id").range(lo, hi);
            if let Some(vm) = validation {
                q = q.validation(vm);
            }
            q.execute().unwrap()
        };
        // Query uid ∈ [0, 9]: ids 50..200 except deleted, with id%10.
        let res = query(0, 9);
        let mut got: Vec<i64> = res
            .records()
            .iter()
            .map(|r| r.get(0).as_int().unwrap())
            .collect();
        got.sort_unstable();
        let want: Vec<i64> = (50..200).filter(|i| !(100..120).contains(i)).collect();
        assert_eq!(got, want, "{strategy:?} validation={validation:?}");

        // Query uid ∈ [50, 54]: updated ids 0..50.
        let res = query(50, 54);
        let mut got: Vec<i64> = res
            .records()
            .iter()
            .map(|r| r.get(0).as_int().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(
            got,
            (0..50).collect::<Vec<_>>(),
            "{strategy:?} validation={validation:?}"
        );
    }

    #[test]
    fn eager_queries_accurate() {
        check_query_correctness(StrategyKind::Eager, None);
    }

    #[test]
    fn validation_direct_queries_accurate() {
        check_query_correctness(StrategyKind::Validation, Some(ValidationMethod::Direct));
    }

    #[test]
    fn validation_timestamp_queries_accurate() {
        check_query_correctness(StrategyKind::Validation, Some(ValidationMethod::Timestamp));
    }

    #[test]
    fn mutable_bitmap_queries_accurate() {
        check_query_correctness(StrategyKind::MutableBitmap, None);
        check_query_correctness(StrategyKind::MutableBitmap, Some(ValidationMethod::Direct));
        check_query_correctness(
            StrategyKind::MutableBitmap,
            Some(ValidationMethod::Timestamp),
        );
    }

    #[test]
    fn strategy_resolved_defaults_are_accurate() {
        // The acceptance bar of the fluent API: no manually-set validation
        // anywhere, correct answers everywhere.
        for strategy in [
            StrategyKind::Eager,
            StrategyKind::Validation,
            StrategyKind::MutableBitmap,
            StrategyKind::DeletedKeyBTree,
        ] {
            check_query_correctness(strategy, None);
        }
    }

    #[test]
    fn index_only_queries() {
        for strategy in [StrategyKind::Eager, StrategyKind::Validation] {
            let ds = dataset(strategy);
            for i in 0..100 {
                ds.insert(&rec(i, i % 10)).unwrap();
            }
            ds.flush_all().unwrap();
            for i in 0..20 {
                ds.upsert(&rec(i, 90)).unwrap(); // move out of [0,9]... uid 90
            }
            ds.flush_all().unwrap();
            let res = ds
                .query("user_id")
                .range(0, 9)
                .index_only()
                .execute()
                .unwrap();
            let mut got: Vec<i64> = res.keys().iter().map(|k| k.as_int().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, (20..100).collect::<Vec<_>>(), "{strategy:?}");
        }
    }

    #[test]
    fn all_lookup_modes_agree() {
        let ds = dataset(StrategyKind::Validation);
        for i in 0..300 {
            ds.insert(&rec(i, i % 7)).unwrap();
            if i % 3 == 0 {
                ds.flush_all().unwrap();
            }
        }
        let base = ds
            .query("user_id")
            .range(2, 3)
            .naive()
            .validation(ValidationMethod::Timestamp)
            .sort_output(true)
            .execute()
            .unwrap();
        for (batched, stateful, pid) in [
            (true, false, false),
            (true, true, false),
            (true, true, true),
        ] {
            let res = ds
                .query("user_id")
                .range(2, 3)
                .validation(ValidationMethod::Timestamp)
                .batched(batched)
                .stateful(stateful)
                .propagate_component_ids(pid)
                .sort_output(true)
                .execute()
                .unwrap();
            assert_eq!(res, base, "batched={batched} stateful={stateful} pid={pid}");
        }
    }

    #[test]
    fn sort_output_restores_pk_order() {
        let ds = dataset(StrategyKind::Eager);
        for i in 0..500 {
            ds.insert(&rec(i, i % 3)).unwrap();
            if i % 100 == 0 {
                ds.flush_all().unwrap();
            }
        }
        let res = ds
            .query("user_id")
            .eq(0)
            .sort_output(true)
            .execute()
            .unwrap();
        let ids: Vec<i64> = res
            .records()
            .iter()
            .map(|r| r.get(0).as_int().unwrap())
            .collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ids.len(), 167);
    }

    #[test]
    fn empty_range_returns_nothing() {
        let ds = dataset(StrategyKind::Eager);
        ds.insert(&rec(1, 5)).unwrap();
        let res = ds.query("user_id").range(100, 200).execute().unwrap();
        assert!(res.is_empty());
        assert!(ds.query("nope").execute().is_err());
        assert!(ds.query("nope").build().is_err());
    }

    #[test]
    fn limit_caps_results() {
        let ds = dataset(StrategyKind::Validation);
        for i in 0..100 {
            ds.insert(&rec(i, 1)).unwrap();
        }
        ds.flush_all().unwrap();
        let res = ds
            .query("user_id")
            .eq(1)
            .sort_output(true)
            .limit(7)
            .execute()
            .unwrap();
        assert_eq!(res.len(), 7);
        let keys = ds
            .query("user_id")
            .eq(1)
            .index_only()
            .limit(5)
            .execute()
            .unwrap();
        assert_eq!(keys.len(), 5);
    }

    #[test]
    fn with_options_preserves_every_knob() {
        let ds = dataset(StrategyKind::Validation);
        for i in 0..20 {
            ds.insert(&rec(i, 1)).unwrap();
        }
        ds.flush_all().unwrap();
        // index_only seeded through with_options must survive build()...
        let opts = QueryOptions {
            index_only: true,
            validation: ValidationMethod::Timestamp,
            ..Default::default()
        };
        let prepared = ds
            .query("user_id")
            .eq(1)
            .with_options(opts)
            .build()
            .unwrap();
        assert!(prepared.options().index_only);
        let res = prepared.execute().unwrap();
        assert_eq!(res.keys().len(), 20);
        // ...and the explicit setter still overrides the seeded value.
        let prepared = ds
            .query("user_id")
            .eq(1)
            .with_options(QueryOptions::default())
            .index_only()
            .build()
            .unwrap();
        assert!(prepared.options().index_only);
    }

    #[test]
    fn deprecated_shim_matches_builder() {
        let ds = dataset(StrategyKind::Validation);
        for i in 0..50 {
            ds.insert(&rec(i, i % 5)).unwrap();
        }
        ds.flush_all().unwrap();
        #[allow(deprecated)]
        let via_shim = secondary_query(
            &ds,
            "user_id",
            Some(&Value::Int(2)),
            Some(&Value::Int(3)),
            &QueryOptions {
                validation: ValidationMethod::Timestamp,
                sort_output: true,
                ..Default::default()
            },
        )
        .unwrap();
        let via_builder = ds
            .query("user_id")
            .range(2, 3)
            .validation(ValidationMethod::Timestamp)
            .sort_output(true)
            .execute()
            .unwrap();
        assert_eq!(via_shim, via_builder);
    }

    #[test]
    fn builder_resolves_strategy_defaults() {
        use StrategyKind::*;
        for (strategy, index_only, want) in [
            (Eager, false, ValidationMethod::None),
            (Eager, true, ValidationMethod::None),
            (Validation, false, ValidationMethod::Direct),
            (Validation, true, ValidationMethod::Timestamp),
            (MutableBitmap, false, ValidationMethod::Direct),
            (MutableBitmap, true, ValidationMethod::Timestamp),
            (DeletedKeyBTree, false, ValidationMethod::Direct),
            (DeletedKeyBTree, true, ValidationMethod::Direct),
        ] {
            let ds = dataset(strategy);
            let mut q = ds.query("user_id").eq(1);
            if index_only {
                q = q.index_only();
            }
            let prepared = q.build().unwrap();
            assert_eq!(
                prepared.options().validation,
                want,
                "{strategy:?} index_only={index_only}"
            );
        }
        // query_driven_repair forces Timestamp validation on every lazy
        // strategy (it needs timestamp proofs of obsolescence).
        for strategy in [Validation, MutableBitmap, DeletedKeyBTree] {
            let ds = dataset(strategy);
            let prepared = ds
                .query("user_id")
                .eq(1)
                .query_driven_repair(true)
                .build()
                .unwrap();
            assert_eq!(
                prepared.options().validation,
                ValidationMethod::Timestamp,
                "{strategy:?}"
            );
        }
        let ds = dataset(Validation);
        // An explicit override always wins.
        let prepared = ds
            .query("user_id")
            .eq(1)
            .validation(ValidationMethod::None)
            .build()
            .unwrap();
        assert_eq!(prepared.options().validation, ValidationMethod::None);
    }
}
