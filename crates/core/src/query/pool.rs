//! The shared query worker pool behind
//! [`QueryBuilder::parallel`](crate::QueryBuilder::parallel).
//!
//! A [`QueryPool`] is a small fixed set of threads serving *partition
//! tasks*: one parallel query splits into `k` independent pieces
//! (per-partition secondary scans, per-chunk record fetches) and scatters
//! them over the pool with the crate-private `scatter` helper. The calling
//! thread always
//! participates — it claims tasks from the same batch while pool workers
//! help — so a saturated (or absent) pool degrades to serial execution on
//! the caller rather than deadlocking, and a pool of `n` workers bounds a
//! whole engine's query parallelism at `n + callers` threads no matter how
//! many datasets issue parallel queries.
//!
//! Throttle propagation: thread-local I/O throttles do not cross threads,
//! so every scattered batch captures the caller's installed read/write
//! buckets
//! ([`lsm_storage::throttle::current_throttles`]) and re-installs them
//! around every task. A parallel read issued from a throttled maintenance
//! job (query-driven repair inside a rebuild, for example) therefore still
//! respects the runtime's `io_read_limit` across all of its threads.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type PoolTask = Box<dyn FnOnce() + Send>;

/// A partition task handed to [`scatter`]: runs on the pool or the caller
/// and yields one partition's result.
pub(crate) type TaskFn<T> = Box<dyn FnOnce() -> T + Send>;

#[derive(Default)]
struct PoolState {
    queue: std::collections::VecDeque<PoolTask>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

/// A fixed-size worker pool executing partition tasks for parallel
/// queries; see the module docs. Created by
/// [`MaintenanceRuntime::start`](crate::MaintenanceRuntime::start) when
/// [`EngineConfig::query_workers`](crate::EngineConfig) is non-zero.
pub struct QueryPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for QueryPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryPool")
            .field("workers", &self.workers.lock().len())
            .finish()
    }
}

impl QueryPool {
    /// Spawns a pool of `workers` threads (at least 1).
    pub fn new(workers: usize) -> Arc<Self> {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            work_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("lsm-query-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // INVARIANT: spawn fails only on OS thread exhaustion at
                    // startup; fatal by design, same policy as thread::spawn.
                    .expect("spawn query worker")
            })
            .collect();
        Arc::new(QueryPool {
            shared,
            workers: Mutex::new(handles),
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.lock().len()
    }

    fn submit(&self, task: PoolTask) {
        {
            let mut s = self.shared.state.lock();
            if s.shutdown {
                return; // shutting down: the caller runs the task itself
            }
            s.queue.push_back(task);
        }
        self.shared.work_cv.notify_one();
    }
}

impl Drop for QueryPool {
    fn drop(&mut self) {
        {
            let mut s = self.shared.state.lock();
            s.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.get_mut().drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Arc<PoolShared>) {
    loop {
        let task = {
            let mut s = shared.state.lock();
            loop {
                if let Some(t) = s.queue.pop_front() {
                    break Some(t);
                }
                if s.shutdown {
                    break None;
                }
                shared.work_cv.wait(&mut s);
            }
        };
        match task {
            Some(t) => t(),
            None => return,
        }
    }
}

/// One scattered batch: the tasks, their results, and completion tracking.
/// Workers and the caller both pull from `next`; whoever claims the last
/// index runs the last task.
struct Scatter<T> {
    tasks: Mutex<Vec<Option<TaskFn<T>>>>,
    next: AtomicUsize,
    results: Mutex<Vec<Option<T>>>,
    done: AtomicUsize,
    total: usize,
    done_lock: Mutex<bool>,
    done_cv: Condvar,
    /// First payload of a panicking task, re-raised on the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// The caller's thread-local throttles, re-installed around each task.
    throttles: (
        Option<Arc<lsm_storage::IoThrottle>>,
        Option<Arc<lsm_storage::IoThrottle>>,
    ),
}

impl<T: Send> Scatter<T> {
    /// Claims and runs one task; returns `false` when none remain.
    fn run_next(&self) -> bool {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        if idx >= self.total {
            return false;
        }
        // INVARIANT: `next.fetch_add` hands out each in-range index exactly
        // once, and every slot started `Some` — no double claim is possible.
        let task = self.tasks.lock()[idx].take().expect("task claimed once");
        let (read, write) = self.throttles.clone();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lsm_storage::throttle::with_throttles(read, write, task)
        }));
        match outcome {
            Ok(value) => self.results.lock()[idx] = Some(value),
            Err(payload) => {
                let mut p = self.panic.lock();
                if p.is_none() {
                    *p = Some(payload);
                }
            }
        }
        if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            let mut flag = self.done_lock.lock();
            *flag = true;
            self.done_cv.notify_all();
        }
        true
    }

    fn wait_done(&self) {
        let mut flag = self.done_lock.lock();
        while !*flag {
            self.done_cv.wait(&mut flag);
        }
    }
}

/// Runs `tasks` concurrently and returns their results in task order.
///
/// With a pool, the tasks are offered to its workers AND executed by the
/// caller (whoever claims first wins); without one, ephemeral threads are
/// spawned — at most `tasks.len() - 1`, since the caller participates. A
/// panicking task is re-raised on the caller after the batch completes.
pub(crate) fn scatter<T: Send + 'static>(
    pool: Option<&Arc<QueryPool>>,
    tasks: Vec<TaskFn<T>>,
) -> Vec<T> {
    let total = tasks.len();
    if total == 0 {
        return Vec::new();
    }
    let mut results = Vec::with_capacity(total);
    results.resize_with(total, || None);
    let shared = Arc::new(Scatter {
        tasks: Mutex::new(tasks.into_iter().map(Some).collect()),
        next: AtomicUsize::new(0),
        results: Mutex::new(results),
        done: AtomicUsize::new(0),
        total,
        done_lock: Mutex::new(false),
        done_cv: Condvar::new(),
        panic: Mutex::new(None),
        throttles: lsm_storage::throttle::current_throttles(),
    });

    let mut ephemeral: Vec<JoinHandle<()>> = Vec::new();
    match pool {
        Some(pool) => {
            // No point queueing more drain-helpers than the pool has
            // workers: extras could only no-op later, polluting the queue
            // for subsequent batches.
            for _ in 0..(total - 1).min(pool.workers()) {
                let shared = shared.clone();
                pool.submit(Box::new(move || while shared.run_next() {}));
            }
        }
        None => {
            for _ in 0..total - 1 {
                let shared = shared.clone();
                let spawned = std::thread::Builder::new()
                    .name("lsm-query-ephemeral".into())
                    .spawn(move || while shared.run_next() {});
                match spawned {
                    Ok(h) => ephemeral.push(h),
                    Err(_) => break, // thread limit: the caller drains alone
                }
            }
        }
    }
    // The caller participates, so the batch finishes even if every helper
    // is busy elsewhere (or none could be spawned).
    while shared.run_next() {}
    shared.wait_done();
    for h in ephemeral {
        let _ = h.join();
    }
    if let Some(payload) = shared.panic.lock().take() {
        std::panic::resume_unwind(payload);
    }
    let mut results = shared.results.lock();
    results
        .iter_mut()
        // INVARIANT: every worker was joined above, so each claimed task
        // either stored its result or re-raised its panic before this line.
        .map(|slot| slot.take().expect("completed task has a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_without_pool_runs_every_task() {
        let out = scatter::<usize>(
            None,
            (0..7usize)
                .map(|i| Box::new(move || i * 2) as Box<dyn FnOnce() -> usize + Send>)
                .collect(),
        );
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12]);
        assert!(scatter::<usize>(None, Vec::new()).is_empty());
    }

    #[test]
    fn scatter_on_pool_runs_every_task_and_pool_survives() {
        let pool = QueryPool::new(2);
        assert_eq!(pool.workers(), 2);
        for round in 0..3 {
            let out = scatter::<usize>(
                Some(&pool),
                (0..5usize)
                    .map(|i| Box::new(move || i + round) as Box<dyn FnOnce() -> usize + Send>)
                    .collect(),
            );
            assert_eq!(out, (0..5).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scatter_propagates_panics() {
        let pool = QueryPool::new(1);
        let result = std::panic::catch_unwind(|| {
            scatter::<usize>(
                Some(&pool),
                vec![
                    Box::new(|| 1),
                    Box::new(|| panic!("partition failed")),
                    Box::new(|| 3),
                ],
            )
        });
        assert!(result.is_err());
        // The pool is still usable after a panicking batch.
        let out = scatter::<usize>(Some(&pool), vec![Box::new(|| 42)]);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn scatter_installs_callers_throttle_on_helpers() {
        use lsm_storage::throttle::{consume_active_read, with_throttle};
        use lsm_storage::IoThrottle;
        let throttle = IoThrottle::new(1 << 40, 1 << 40);
        let t2 = throttle.clone();
        with_throttle(throttle, move || {
            scatter::<()>(
                None,
                (0..4)
                    .map(|_| {
                        Box::new(|| {
                            consume_active_read(100);
                        }) as Box<dyn FnOnce() + Send>
                    })
                    .collect(),
            );
        });
        assert_eq!(t2.throttled_bytes(), 400, "helpers charged caller's bucket");
    }
}
