//! Primary-index scans with range-filter pruning (Sections 3, 6.4.2).
//!
//! A query with a predicate on the filter key (the paper's `creation_time`)
//! scans the primary index, pruning components whose range filter is
//! disjoint from the predicate. *Which* components can be pruned depends on
//! the maintenance strategy:
//!
//! * **Eager** — filters are widened by old records on update/delete, so an
//!   overlapping filter is an accurate signal: scan exactly the overlapping
//!   components, reconciling among them;
//! * **Validation** — filters cover new records only; a query touching an
//!   older component must also read *every newer component* so it cannot
//!   miss overriding updates, which halves the pruning power (Figure 19,
//!   "old" queries);
//! * **Mutable-bitmap** — deletes are applied in place through bitmaps, so
//!   every surviving entry is the unique live version of its key:
//!   components are scanned one by one, independently, with no
//!   reconciliation and full pruning.
//!
//! Both the serial and the partitioned execution paths run over **one**
//! plan captured by `capture_plan`, so the snapshot discipline (and the
//! per-strategy memory-inclusion rules documented there) cannot drift
//! between them.
//!
//! # Partitioned filter scans
//!
//! [`FilterScanBuilder::parallel(n)`](FilterScanBuilder::parallel) splits
//! the captured plan into ≤ `n` disjoint, ascending primary-key sub-ranges
//! along component leaf boundaries ([`LsmScan::partition_scan`]) and
//! scatters one scan+filter task per partition over the engine's shared
//! [`QueryPool`](crate::query::pool::QueryPool) (ephemeral threads when
//! the dataset's runtime has none — the caller always participates, and
//! each task re-installs the caller's I/O throttles). Every partition
//! reads the same captured memory run (sliced to its bounds) and the same
//! component list; reconciliation is per-key and keys never span
//! partitions, so per-partition outputs are exactly the serial outputs
//! restricted to each sub-range. Partitions are disjoint and ascending,
//! so concatenating them in partition order *is* the k-way merge — the
//! result is in primary-key order, identical to the serial path (the
//! Mutable-bitmap branch sorts each partition locally with the same
//! comparator the serial path uses globally).

use crate::config::StrategyKind;
use crate::dataset::Dataset;
use crate::query::exec;
use crate::query::parallel::slice_range;
use crate::query::pool::{scatter, TaskFn};
use lsm_common::{Key, Record, Result, Value};
use lsm_tree::{
    scan_components_sequential_frozen, BitmapSnapshot, DiskComponent, LsmEntry, LsmScan,
    RangeFilter, ScanOptions,
};
use std::ops::Bound;
use std::sync::Arc;

/// What a filter scan did (for assertions and bench reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterScanReport {
    /// Records satisfying the predicate.
    pub matches: u64,
    /// Disk components scanned.
    pub components_scanned: u64,
    /// Disk components pruned by their range filters.
    pub components_pruned: u64,
    /// Scan partitions planned (0 for the serial path).
    pub partitions: u64,
}

fn overlaps(filter: Option<&RangeFilter>, lo: Option<&Value>, hi: Option<&Value>) -> bool {
    match filter {
        // No filter: cannot prune.
        None => true,
        Some(f) => f.overlaps(lo, hi),
    }
}

/// Does `record` satisfy `filter_field ∈ [lo, hi]`?
fn matches_pred(
    record: &Record,
    filter_field: usize,
    lo: Option<&Value>,
    hi: Option<&Value>,
) -> bool {
    let v = record.get(filter_field);
    lo.is_none_or(|l| v >= l) && hi.is_none_or(|h| v <= h)
}

/// One captured filter-scan plan: the strategy's component-inclusion
/// decision plus the memory run, taken atomically. Consumed by exactly one
/// execution path (serial, partitioned, or streaming).
struct ScanPlan {
    filter_field: usize,
    strategy: StrategyKind,
    /// The captured memory run — already gated by the inclusion rules
    /// below, `None` when the strategy may skip memory entirely.
    mem: Option<Vec<(Key, LsmEntry)>>,
    /// Disk components to scan, newest-first.
    included: Vec<Arc<DiskComponent>>,
    /// Bitmap snapshots frozen atomically with the capture, one per
    /// included component — populated only for Mutable-bitmap (the other
    /// strategies never mutate primary bitmaps in place). Shared by every
    /// partition of a partitioned execution.
    bitmaps: Arc<Vec<Option<BitmapSnapshot>>>,
    components_pruned: u64,
}

/// Captures one filter-scan plan for `filter_key ∈ [lo, hi]` — the single
/// capture point shared by the serial and partitioned paths.
///
/// Atomic memory+disk capture: an entry mid-flush appears in exactly
/// one of the two, which the Mutable-bitmap branch (no reconciliation)
/// depends on — a separate capture could see it twice or not at all.
/// The memory filter's overlap is evaluated under the capture locks
/// against the filter describing the captured entries (the live filter
/// would be wrong: a flush may have rotated the memtable in between),
/// but whether a non-overlapping memory run can be *pruned* depends on
/// the strategy: Eager widens the filter by old records and
/// Mutable-bitmap deletes in place, so their filters are accurate;
/// Validation covers new records only and must still read memory for
/// overriding updates whenever an older component is read — the
/// captured disk list decides that atomically, so a fully-pruned query
/// still skips the memory copy.
///
/// Under Mutable-bitmap the capture additionally runs under the dataset
/// **write** lock and freezes the included components' bitmap snapshots
/// before releasing it: an in-place update marks the old on-disk
/// version's bitmap bit *before* inserting the replacement into memory
/// (both steps under the dataset read lock), so a capture that read live
/// bitmaps afterwards could observe the mark without the replacement and
/// lose the record — the same torn window the Side-file method closes for
/// flushes, and exactly what the churn oracle exercises.
fn capture_plan(ds: &Dataset, lo: Option<&Value>, hi: Option<&Value>) -> Result<ScanPlan> {
    let filter_field = ds
        .config()
        .filter_field
        .ok_or_else(|| lsm_common::Error::invalid("dataset has no filter field"))?;
    let strategy = ds.config().strategy;
    let primary = ds.primary();
    // Filter scans read the full primary-key range; pruning happens per
    // component through the range filters on the *filter* key.
    let (scan_lo, scan_hi): (Bound<&[u8]>, Bound<&[u8]>) = (Bound::Unbounded, Bound::Unbounded);
    let lazy_mem = matches!(
        strategy,
        StrategyKind::Validation | StrategyKind::DeletedKeyBTree
    );
    // Excludes writers (which hold the read lock across mark-then-insert)
    // for the duration of the capture and bitmap freeze; see above.
    let _capture_guard =
        (strategy == StrategyKind::MutableBitmap).then(|| ds.dataset_lock().write());
    let mut mem_filter_overlaps = false;
    let (mem_snapshot, comps) = primary.mem_and_disk_snapshot_if(scan_lo, scan_hi, |f, disk| {
        mem_filter_overlaps = overlaps(f, lo, hi);
        mem_filter_overlaps || (lazy_mem && disk.iter().any(|c| overlaps(c.range_filter(), lo, hi)))
    });
    let mem_all = mem_snapshot.unwrap_or_default();
    let mem_overlaps = mem_filter_overlaps && !mem_all.is_empty();

    let included: Vec<_> = match strategy {
        // Independent per-component pruning (Mutable-bitmap needs no
        // reconciliation; Eager filters are accurate).
        StrategyKind::Eager | StrategyKind::MutableBitmap => comps
            .iter()
            .filter(|c| overlaps(c.range_filter(), lo, hi))
            .cloned()
            .collect(),
        // All components newer than (and including) the oldest
        // overlapping one must be read.
        StrategyKind::Validation | StrategyKind::DeletedKeyBTree => {
            match comps
                .iter()
                .rposition(|c| overlaps(c.range_filter(), lo, hi))
            {
                None => Vec::new(),
                Some(i) => comps[..=i].to_vec(),
            }
        }
    };
    let include_mem = match strategy {
        StrategyKind::Eager | StrategyKind::MutableBitmap => mem_overlaps,
        StrategyKind::Validation | StrategyKind::DeletedKeyBTree => {
            mem_overlaps || !included.is_empty()
        }
    };
    // Still under the capture guard: the frozen snapshots and the memory
    // run describe the same instant.
    let bitmaps = match strategy {
        StrategyKind::MutableBitmap => included
            .iter()
            .map(|c| c.bitmap().map(|b| b.snapshot()))
            .collect(),
        _ => Vec::new(),
    };
    let components_pruned = (comps.len() - included.len()) as u64;
    Ok(ScanPlan {
        filter_field,
        strategy,
        mem: (include_mem && !mem_all.is_empty()).then_some(mem_all),
        included,
        bitmaps: Arc::new(bitmaps),
        components_pruned,
    })
}

/// Runs `plan` serially, invoking `visit` for every match. Returns whether
/// the visit order was primary-key order — true for the reconciled
/// strategies; the Mutable-bitmap sequential scan visits in component
/// order, so callers needing pk order must sort.
fn scan_serial(
    ds: &Dataset,
    plan: ScanPlan,
    lo: Option<&Value>,
    hi: Option<&Value>,
    mut visit: impl FnMut(Key, Record),
) -> Result<bool> {
    let field = plan.filter_field;
    match plan.strategy {
        StrategyKind::MutableBitmap => {
            scan_components_sequential_frozen(
                plan.mem,
                &plan.included,
                &plan.bitmaps,
                Bound::Unbounded,
                Bound::Unbounded,
                |k, e| {
                    if let Ok(r) = Record::decode(&e.value) {
                        if matches_pred(&r, field, lo, hi) {
                            visit(k, r);
                        }
                    }
                },
            )?;
            Ok(false)
        }
        _ => {
            let mut scan = LsmScan::new(
                ds.storage().clone(),
                plan.mem,
                &plan.included,
                Bound::Unbounded,
                Bound::Unbounded,
                ScanOptions::default(),
            )?;
            while let Some((k, e)) = scan.next_entry()? {
                let r = Record::decode(&e.value)?;
                if matches_pred(&r, field, lo, hi) {
                    visit(k, r);
                }
            }
            Ok(true)
        }
    }
}

/// One partition's output: match count plus its collected `(pk, record)`
/// rows (empty when only counting).
type PartitionOutput = Result<(u64, Vec<(Key, Record)>)>;

/// Runs `plan` across ≤ `parallelism` partitions (see the module docs).
/// Returns `(matches, records, partitions)`; `records` is empty unless
/// `collect` is set, and always in primary-key order.
fn scan_partitioned(
    ds: &Arc<Dataset>,
    plan: ScanPlan,
    lo: Option<&Value>,
    hi: Option<&Value>,
    parallelism: usize,
    collect: bool,
) -> Result<(u64, Vec<Record>, u64)> {
    let partitions = LsmScan::partition_scan(
        &plan.included,
        Bound::Unbounded,
        Bound::Unbounded,
        parallelism,
    )?;
    ds.stats().record_parallel_filter_scan(partitions.len());
    let num_partitions = partitions.len() as u64;

    let mem: Arc<Vec<(Key, LsmEntry)>> = Arc::new(plan.mem.unwrap_or_default());
    let included: Arc<Vec<Arc<DiskComponent>>> = Arc::new(plan.included);
    let bitmaps = plan.bitmaps;
    let (strategy, field) = (plan.strategy, plan.filter_field);
    let (lo, hi) = (lo.cloned(), hi.cloned());
    let tasks: Vec<TaskFn<PartitionOutput>> = partitions
        .into_iter()
        .map(|(plo, phi)| {
            let ds = ds.clone();
            let mem = mem.clone();
            let included = included.clone();
            let bitmaps = bitmaps.clone();
            let (lo, hi) = (lo.clone(), hi.clone());
            let task = move || {
                let (start, end) = slice_range(&mem, &plo, &phi);
                let mem_slice = (start < end).then(|| mem[start..end].to_vec());
                let (plo, phi) = (
                    crate::keys::bound_as_ref(&plo),
                    crate::keys::bound_as_ref(&phi),
                );
                let mut count = 0u64;
                let mut out: Vec<(Key, Record)> = Vec::new();
                let mut on_match = |k: Key, r: Record| {
                    count += 1;
                    if collect {
                        out.push((k, r));
                    }
                };
                match strategy {
                    StrategyKind::MutableBitmap => {
                        // All partitions reuse the plan's frozen bitmaps.
                        scan_components_sequential_frozen(
                            mem_slice,
                            &included,
                            &bitmaps,
                            plo,
                            phi,
                            |k, e| {
                                if let Ok(r) = Record::decode(&e.value) {
                                    if matches_pred(&r, field, lo.as_ref(), hi.as_ref()) {
                                        on_match(k, r);
                                    }
                                }
                            },
                        )?;
                        // Local sort per partition: with disjoint ascending
                        // partitions this yields the global pk order the
                        // serial path produces by sorting everything.
                        if out.len() > 1 {
                            exec::charge_sort(&ds, out.len() as u64);
                            out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                        }
                    }
                    _ => {
                        let mut scan = LsmScan::new(
                            ds.storage().clone(),
                            mem_slice,
                            &included,
                            plo,
                            phi,
                            ScanOptions::default(),
                        )?;
                        while let Some((k, e)) = scan.next_entry()? {
                            let r = Record::decode(&e.value)?;
                            if matches_pred(&r, field, lo.as_ref(), hi.as_ref()) {
                                on_match(k, r);
                            }
                        }
                    }
                }
                Ok((count, out))
            };
            Box::new(task) as Box<dyn FnOnce() -> _ + Send>
        })
        .collect();

    let pool = ds.query_pool();
    let mut matches = 0u64;
    let mut records = Vec::new();
    for outcome in scatter(pool.as_ref(), tasks) {
        let (count, part) = outcome?;
        matches += count;
        records.extend(part.into_iter().map(|(_, r)| r));
    }
    Ok((matches, records, num_partitions))
}

/// Scans the primary index with a predicate `filter_key ∈ [lo, hi]` and
/// returns the match count plus pruning statistics.
pub fn filter_scan_count(
    ds: &Dataset,
    lo: Option<&Value>,
    hi: Option<&Value>,
) -> Result<FilterScanReport> {
    let plan = capture_plan(ds, lo, hi)?;
    let mut report = FilterScanReport {
        components_scanned: plan.included.len() as u64,
        components_pruned: plan.components_pruned,
        ..FilterScanReport::default()
    };
    let mut matches = 0u64;
    scan_serial(ds, plan, lo, hi, |_, _| matches += 1)?;
    report.matches = matches;
    Ok(report)
}

impl Dataset {
    /// Starts a fluent primary-index filter scan (requires
    /// [`DatasetConfig::filter_field`](crate::DatasetConfig) to be set).
    ///
    /// ```
    /// use lsm_common::{FieldType, Record, Schema, Value};
    /// use lsm_engine::{Dataset, DatasetConfig, StrategyKind};
    /// use lsm_storage::{Storage, StorageOptions};
    ///
    /// let schema = Schema::new(vec![
    ///     ("id", FieldType::Int),
    ///     ("created", FieldType::Int),
    /// ]).unwrap();
    /// let mut cfg = DatasetConfig::new(schema, 0);
    /// cfg.filter_field = Some(1);
    /// let ds = Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap();
    /// for i in 0..10 {
    ///     ds.insert(&Record::new(vec![Value::Int(i), Value::Int(i * 100)])).unwrap();
    /// }
    ///
    /// // Count matches; or fetch them, in primary-key order, optionally
    /// // across partitions.
    /// let report = ds.filter_scan().range_to(499).count().unwrap();
    /// assert_eq!(report.matches, 5);
    /// let records = ds.filter_scan().range_to(499).parallel(2).records().unwrap();
    /// assert_eq!(records.len(), 5);
    /// ```
    pub fn filter_scan(&self) -> FilterScanBuilder<'_> {
        FilterScanBuilder {
            ds: self,
            lo: None,
            hi: None,
            parallel: None,
        }
    }
}

/// A fluent primary-index filter scan under construction; obtained from
/// [`Dataset::filter_scan`]. The predicate is on the dataset's configured
/// filter field; execution is serial unless
/// [`parallel(n)`](FilterScanBuilder::parallel) is requested.
#[derive(Debug, Clone)]
#[must_use = "a FilterScanBuilder does nothing until executed"]
pub struct FilterScanBuilder<'a> {
    ds: &'a Dataset,
    lo: Option<Value>,
    hi: Option<Value>,
    parallel: Option<usize>,
}

impl<'a> FilterScanBuilder<'a> {
    /// Restricts the scan to `filter_key ∈ [lo, hi]` (inclusive).
    pub fn range(mut self, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        self.lo = Some(lo.into());
        self.hi = Some(hi.into());
        self
    }

    /// Restricts the scan to `filter_key >= lo`.
    pub fn range_from(mut self, lo: impl Into<Value>) -> Self {
        self.lo = Some(lo.into());
        self
    }

    /// Restricts the scan to `filter_key <= hi`.
    pub fn range_to(mut self, hi: impl Into<Value>) -> Self {
        self.hi = Some(hi.into());
        self
    }

    /// Executes the scan across up to `n` primary-key partitions in
    /// parallel (the engine's shared query pool when the dataset's runtime
    /// has one, ephemeral threads otherwise; the caller always
    /// participates). Results are identical to the serial execution and in
    /// primary-key order; `n <= 1` still runs through the partitioned
    /// path on the calling thread.
    pub fn parallel(mut self, n: usize) -> Self {
        self.parallel = Some(n.max(1));
        self
    }

    /// Runs the scan, returning the match count plus pruning statistics.
    pub fn count(self) -> Result<FilterScanReport> {
        match self.parallel {
            None => filter_scan_count(self.ds, self.lo.as_ref(), self.hi.as_ref()),
            Some(n) => {
                let ds = self.ds.shared()?;
                let (lo, hi) = (self.lo.as_ref(), self.hi.as_ref());
                let plan = capture_plan(&ds, lo, hi)?;
                let mut report = FilterScanReport {
                    components_scanned: plan.included.len() as u64,
                    components_pruned: plan.components_pruned,
                    ..FilterScanReport::default()
                };
                let (matches, _, partitions) = scan_partitioned(&ds, plan, lo, hi, n, false)?;
                report.matches = matches;
                report.partitions = partitions;
                Ok(report)
            }
        }
    }

    /// Runs the scan and collects the matching records in primary-key
    /// order (identical output for the serial and partitioned paths).
    pub fn records(self) -> Result<Vec<Record>> {
        let (lo, hi) = (self.lo.as_ref(), self.hi.as_ref());
        match self.parallel {
            Some(n) => {
                let ds = self.ds.shared()?;
                let plan = capture_plan(&ds, lo, hi)?;
                let (_, records, _) = scan_partitioned(&ds, plan, lo, hi, n, true)?;
                Ok(records)
            }
            None => {
                let plan = capture_plan(self.ds, lo, hi)?;
                let mut out: Vec<(Key, Record)> = Vec::new();
                let ordered = scan_serial(self.ds, plan, lo, hi, |k, r| out.push((k, r)))?;
                if !ordered {
                    exec::charge_sort(self.ds, out.len() as u64);
                    out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                }
                Ok(out.into_iter().map(|(_, r)| r).collect())
            }
        }
    }

    /// Runs the scan as an iterator of matching records in primary-key
    /// order. For the reconciled strategies (serial) this streams from the
    /// underlying merge scan with bounded memory; the Mutable-bitmap
    /// strategy and the partitioned path must materialize (and, for
    /// Mutable-bitmap, sort) the matches first, so their streams replay a
    /// buffer.
    pub fn stream(self) -> Result<FilterScanStream> {
        if self.parallel.is_some() {
            let records = self.records()?;
            return Ok(FilterScanStream {
                inner: StreamInner::Buffered(records.into_iter()),
            });
        }
        let (lo, hi) = (self.lo.clone(), self.hi.clone());
        let plan = capture_plan(self.ds, lo.as_ref(), hi.as_ref())?;
        if plan.strategy == StrategyKind::MutableBitmap {
            let records = self.records()?;
            return Ok(FilterScanStream {
                inner: StreamInner::Buffered(records.into_iter()),
            });
        }
        let filter_field = plan.filter_field;
        let scan = LsmScan::new(
            self.ds.storage().clone(),
            plan.mem,
            &plan.included,
            Bound::Unbounded,
            Bound::Unbounded,
            ScanOptions::default(),
        )?;
        Ok(FilterScanStream {
            inner: StreamInner::Scan {
                scan,
                // Keep the captured components alive for the stream's
                // lifetime — dropping them would retire their files while
                // the scan still reads them.
                _components: plan.included,
                filter_field,
                lo,
                hi,
            },
        })
    }
}

/// Streaming filter-scan results in primary-key order; obtained from
/// [`FilterScanBuilder::stream`].
pub struct FilterScanStream {
    inner: StreamInner,
}

enum StreamInner {
    /// Live merge scan over the captured snapshot (bounded memory).
    Scan {
        scan: LsmScan,
        _components: Vec<Arc<DiskComponent>>,
        filter_field: usize,
        lo: Option<Value>,
        hi: Option<Value>,
    },
    /// Pre-materialized matches (Mutable-bitmap / partitioned execution).
    Buffered(std::vec::IntoIter<Record>),
}

impl std::fmt::Debug for FilterScanStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            StreamInner::Scan { .. } => f.write_str("FilterScanStream::Scan"),
            StreamInner::Buffered(it) => f
                .debug_struct("FilterScanStream::Buffered")
                .field("remaining", &it.len())
                .finish(),
        }
    }
}

impl Iterator for FilterScanStream {
    type Item = Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            StreamInner::Buffered(it) => it.next().map(Ok),
            StreamInner::Scan {
                scan,
                filter_field,
                lo,
                hi,
                ..
            } => loop {
                match scan.next_entry() {
                    Err(e) => return Some(Err(e)),
                    Ok(None) => return None,
                    Ok(Some((_, e))) => match Record::decode(&e.value) {
                        Err(e) => return Some(Err(e)),
                        Ok(r) => {
                            if matches_pred(&r, *filter_field, lo.as_ref(), hi.as_ref()) {
                                return Some(Ok(r));
                            }
                        }
                    },
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetConfig, StrategyKind};
    use lsm_common::{FieldType, Schema};
    use lsm_storage::{Storage, StorageOptions};
    use std::sync::Arc;

    fn dataset(strategy: StrategyKind) -> Arc<Dataset> {
        let schema = Schema::new(vec![("id", FieldType::Int), ("time", FieldType::Int)]).unwrap();
        let mut cfg = DatasetConfig::new(schema, 0);
        cfg.strategy = strategy;
        cfg.filter_field = Some(1);
        cfg.memory_budget = usize::MAX;
        cfg.merge_repair = false;
        Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap()
    }

    fn rec(id: i64, t: i64) -> Record {
        Record::new(vec![Value::Int(id), Value::Int(t)])
    }

    /// Three time-correlated components: times 0..100, 100..200, 200..300.
    fn load(ds: &Dataset) {
        for c in 0..3i64 {
            for i in 0..100 {
                ds.insert(&rec(c * 100 + i, c * 100 + i)).unwrap();
            }
            ds.flush_all().unwrap();
        }
    }

    fn all_strategies() -> Vec<StrategyKind> {
        vec![
            StrategyKind::Eager,
            StrategyKind::Validation,
            StrategyKind::MutableBitmap,
        ]
    }

    #[test]
    fn counts_are_correct_for_all_strategies() {
        for s in all_strategies() {
            let ds = dataset(s);
            load(&ds);
            let r = filter_scan_count(&ds, Some(&Value::Int(50)), Some(&Value::Int(149))).unwrap();
            assert_eq!(r.matches, 100, "{s:?}");
            let r = filter_scan_count(&ds, None, Some(&Value::Int(99))).unwrap();
            assert_eq!(r.matches, 100, "{s:?}");
            let r = filter_scan_count(&ds, Some(&Value::Int(250)), None).unwrap();
            assert_eq!(r.matches, 50, "{s:?}");
        }
    }

    #[test]
    fn eager_and_bitmap_prune_old_queries_but_validation_cannot() {
        for s in all_strategies() {
            let ds = dataset(s);
            load(&ds);
            // Query on OLD data (component 0 only).
            let r = filter_scan_count(&ds, None, Some(&Value::Int(99))).unwrap();
            match s {
                StrategyKind::Eager | StrategyKind::MutableBitmap => {
                    assert_eq!(r.components_scanned, 1, "{s:?}");
                    assert_eq!(r.components_pruned, 2, "{s:?}");
                }
                _ => {
                    // Validation must read all newer components too.
                    assert_eq!(r.components_scanned, 3, "{s:?}");
                    assert_eq!(r.components_pruned, 0, "{s:?}");
                }
            }
            // Query on RECENT data: everyone prunes the old components.
            let r = filter_scan_count(&ds, Some(&Value::Int(200)), None).unwrap();
            assert_eq!(r.components_scanned, 1, "{s:?}");
            assert_eq!(r.components_pruned, 2, "{s:?}");
        }
    }

    #[test]
    fn updates_do_not_leak_old_versions() {
        for s in all_strategies() {
            let ds = dataset(s);
            load(&ds);
            // Move records 0..10 from time 0..10 to time 290+.
            for i in 0..10 {
                ds.upsert(&rec(i, 290)).unwrap();
            }
            ds.flush_all().unwrap();
            // Old-data query must NOT return the stale versions.
            let r = filter_scan_count(&ds, None, Some(&Value::Int(10))).unwrap();
            assert_eq!(r.matches, 1, "{s:?}"); // only id=10 (time 10) remains
                                               // Recent-data query sees the moved records.
            let r = filter_scan_count(&ds, Some(&Value::Int(290)), None).unwrap();
            assert_eq!(r.matches, 10 + 10, "{s:?}"); // ids 0..10 + 290..300
        }
    }

    #[test]
    fn eager_widening_forces_inclusion_but_stays_correct() {
        let ds = dataset(StrategyKind::Eager);
        load(&ds);
        // Update an old record; Eager widens the memory filter by the OLD
        // time (Figure 3), so an old-data query must include the memory
        // component and see the deletion.
        ds.upsert(&rec(5, 299)).unwrap();
        let r = filter_scan_count(&ds, None, Some(&Value::Int(10))).unwrap();
        assert_eq!(r.matches, 10); // ids 0..11 minus the moved id 5
    }

    #[test]
    fn mutable_bitmap_prunes_despite_updates() {
        let ds = dataset(StrategyKind::MutableBitmap);
        load(&ds);
        for i in 0..10 {
            ds.upsert(&rec(i, 290)).unwrap();
        }
        ds.flush_all().unwrap();
        // Old-data query: old components' filters unchanged, deletes are in
        // the bitmaps — pruning power intact (Figure 19's key effect).
        let r = filter_scan_count(&ds, None, Some(&Value::Int(10))).unwrap();
        assert_eq!(r.components_pruned, 3); // two newer + ... of 4 comps
        assert_eq!(r.matches, 1);
    }

    /// Regression: an unflushed update whose new filter value does NOT
    /// overlap the query must still override its old on-disk version under
    /// Validation — the memory run cannot be pruned by its own filter when
    /// an older component is read (the quickstart scenario).
    #[test]
    fn validation_reads_memory_even_when_its_filter_misses() {
        for s in [StrategyKind::Validation, StrategyKind::DeletedKeyBTree] {
            let ds = dataset(s);
            for i in 0..3 {
                ds.insert(&rec(i, i)).unwrap();
            }
            ds.flush_all().unwrap();
            // Move id 0 to time 100 — stays in memory, mem filter [100,100].
            ds.upsert(&rec(0, 100)).unwrap();
            // Old-data query: mem filter misses, but the stale version of
            // id 0 must still be overridden.
            let r = filter_scan_count(&ds, None, Some(&Value::Int(10))).unwrap();
            assert_eq!(r.matches, 2, "{s:?}: stale version leaked");
        }
    }

    #[test]
    fn no_filter_field_is_an_error() {
        let schema = Schema::new(vec![("id", FieldType::Int)]).unwrap();
        let cfg = DatasetConfig::new(schema, 0);
        let ds = Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap();
        assert!(filter_scan_count(&ds, None, None).is_err());
        assert!(ds.filter_scan().count().is_err());
    }

    /// The builder's serial/parallel/stream outputs agree with each other
    /// and with the count, across strategies and fan-outs (the in-crate
    /// miniature of the `filter_scan_oracle` integration test).
    #[test]
    fn builder_paths_agree_across_strategies() {
        for s in [
            StrategyKind::Eager,
            StrategyKind::Validation,
            StrategyKind::MutableBitmap,
            StrategyKind::DeletedKeyBTree,
        ] {
            let ds = dataset(s);
            load(&ds);
            for i in 0..30 {
                ds.upsert(&rec(i * 7, 295)).unwrap();
            }
            for i in 0..10 {
                ds.delete(&Value::Int(150 + i)).unwrap();
            }
            ds.flush_all().unwrap();
            for (lo, hi) in [
                (None, None),
                (Some(60i64), Some(260i64)),
                (None, Some(99)),
                (Some(250), None),
            ] {
                let lo_v = lo.map(Value::Int);
                let hi_v = hi.map(Value::Int);
                let scan = || {
                    let mut b = ds.filter_scan();
                    if let Some(l) = &lo_v {
                        b = b.range_from(l.clone());
                    }
                    if let Some(h) = &hi_v {
                        b = b.range_to(h.clone());
                    }
                    b
                };
                let serial = scan().records().unwrap();
                assert_eq!(
                    serial.len() as u64,
                    scan().count().unwrap().matches,
                    "{s:?} [{lo:?},{hi:?}]"
                );
                // Serial records are in pk order.
                let ids: Vec<i64> = serial.iter().map(|r| r.get(0).as_int().unwrap()).collect();
                assert!(ids.windows(2).all(|w| w[0] < w[1]), "{s:?} unordered");
                let streamed: Vec<Record> =
                    scan().stream().unwrap().collect::<Result<_>>().unwrap();
                assert_eq!(streamed, serial, "{s:?} stream [{lo:?},{hi:?}]");
                for n in [1, 2, 3, 7] {
                    let par = scan().parallel(n).records().unwrap();
                    assert_eq!(par, serial, "{s:?} parallel({n}) [{lo:?},{hi:?}]");
                    let report = scan().parallel(n).count().unwrap();
                    assert_eq!(report.matches, serial.len() as u64, "{s:?} n={n}");
                    assert!(report.partitions >= 1 && report.partitions <= n as u64);
                    let streamed: Vec<Record> = scan()
                        .parallel(n)
                        .stream()
                        .unwrap()
                        .collect::<Result<_>>()
                        .unwrap();
                    assert_eq!(streamed, serial, "{s:?} parallel({n}) stream");
                }
            }
        }
    }

    #[test]
    fn partitioned_scans_are_counted() {
        let ds = dataset(StrategyKind::Eager);
        load(&ds);
        let before = ds.stats().snapshot();
        let report = ds.filter_scan().parallel(3).count().unwrap();
        let after = ds.stats().snapshot();
        assert_eq!(
            after.parallel_filter_scans - before.parallel_filter_scans,
            1
        );
        assert_eq!(
            after.filter_scan_partitions - before.filter_scan_partitions,
            report.partitions
        );
        // Serial scans leave the partitioned counters untouched.
        let r = ds.filter_scan().count().unwrap();
        assert_eq!(r.partitions, 0);
        assert_eq!(
            ds.stats().snapshot().parallel_filter_scans,
            after.parallel_filter_scans
        );
    }
}
