//! Primary-index scans with range-filter pruning (Sections 3, 6.4.2).
//!
//! A query with a predicate on the filter key (the paper's `creation_time`)
//! scans the primary index, pruning components whose range filter is
//! disjoint from the predicate. *Which* components can be pruned depends on
//! the maintenance strategy:
//!
//! * **Eager** — filters are widened by old records on update/delete, so an
//!   overlapping filter is an accurate signal: scan exactly the overlapping
//!   components, reconciling among them;
//! * **Validation** — filters cover new records only; a query touching an
//!   older component must also read *every newer component* so it cannot
//!   miss overriding updates, which halves the pruning power (Figure 19,
//!   "old" queries);
//! * **Mutable-bitmap** — deletes are applied in place through bitmaps, so
//!   every surviving entry is the unique live version of its key:
//!   components are scanned one by one, independently, with no
//!   reconciliation and full pruning.

use crate::config::StrategyKind;
use crate::dataset::Dataset;
use lsm_common::{Record, Result, Value};
use lsm_tree::{scan_components_sequential, LsmScan, RangeFilter, ScanOptions};
use std::ops::Bound;

/// What a filter scan did (for assertions and bench reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterScanReport {
    /// Records satisfying the predicate.
    pub matches: u64,
    /// Disk components scanned.
    pub components_scanned: u64,
    /// Disk components pruned by their range filters.
    pub components_pruned: u64,
}

fn overlaps(filter: Option<&RangeFilter>, lo: Option<&Value>, hi: Option<&Value>) -> bool {
    match filter {
        // No filter: cannot prune.
        None => true,
        Some(f) => f.overlaps(lo, hi),
    }
}

/// Scans the primary index with a predicate `filter_key ∈ [lo, hi]` and
/// returns the match count plus pruning statistics.
pub fn filter_scan_count(
    ds: &Dataset,
    lo: Option<&Value>,
    hi: Option<&Value>,
) -> Result<FilterScanReport> {
    let filter_field = ds
        .config()
        .filter_field
        .ok_or_else(|| lsm_common::Error::invalid("dataset has no filter field"))?;
    let primary = ds.primary();
    // Filter scans read the full primary-key range; pruning happens per
    // component through the range filters on the *filter* key.
    let (scan_lo, scan_hi): (Bound<&[u8]>, Bound<&[u8]>) = (Bound::Unbounded, Bound::Unbounded);
    // Atomic memory+disk capture: an entry mid-flush appears in exactly
    // one of the two, which the Mutable-bitmap branch (no reconciliation)
    // depends on — a separate capture could see it twice or not at all.
    // The memory filter's overlap is evaluated under the capture locks
    // against the filter describing the captured entries (the live filter
    // would be wrong: a flush may have rotated the memtable in between),
    // but whether a non-overlapping memory run can be *pruned* depends on
    // the strategy: Eager widens the filter by old records and
    // Mutable-bitmap deletes in place, so their filters are accurate;
    // Validation covers new records only and must still read memory for
    // overriding updates whenever an older component is read — the
    // captured disk list decides that atomically, so a fully-pruned query
    // still skips the memory copy.
    let lazy_mem = matches!(
        ds.config().strategy,
        StrategyKind::Validation | StrategyKind::DeletedKeyBTree
    );
    let mut mem_filter_overlaps = false;
    let (mem_snapshot, comps) = primary.mem_and_disk_snapshot_if(scan_lo, scan_hi, |f, disk| {
        mem_filter_overlaps = overlaps(f, lo, hi);
        mem_filter_overlaps || (lazy_mem && disk.iter().any(|c| overlaps(c.range_filter(), lo, hi)))
    });
    let mem_all = mem_snapshot.unwrap_or_default();
    let mem_overlaps = mem_filter_overlaps && !mem_all.is_empty();

    let mut report = FilterScanReport::default();
    let matches_pred = |record: &Record| -> bool {
        let v = record.get(filter_field);
        lo.is_none_or(|l| v >= l) && hi.is_none_or(|h| v <= h)
    };

    match ds.config().strategy {
        StrategyKind::MutableBitmap => {
            // Independent per-component pruning, no reconciliation.
            let included: Vec<_> = comps
                .iter()
                .filter(|c| overlaps(c.range_filter(), lo, hi))
                .cloned()
                .collect();
            report.components_scanned = included.len() as u64;
            report.components_pruned = (comps.len() - included.len()) as u64;
            let mem = mem_overlaps.then_some(mem_all);
            let mut matches = 0u64;
            scan_components_sequential(mem, &included, |_k, e| {
                if let Ok(r) = Record::decode(&e.value) {
                    if matches_pred(&r) {
                        matches += 1;
                    }
                }
            })?;
            report.matches = matches;
        }
        StrategyKind::Eager => {
            // Overlapping components only, reconciled.
            let included: Vec<_> = comps
                .iter()
                .filter(|c| overlaps(c.range_filter(), lo, hi))
                .cloned()
                .collect();
            report.components_scanned = included.len() as u64;
            report.components_pruned = (comps.len() - included.len()) as u64;
            let mem = mem_overlaps.then_some(mem_all);
            let mut scan = LsmScan::new(
                ds.storage().clone(),
                mem,
                &included,
                scan_lo,
                scan_hi,
                ScanOptions::default(),
            )?;
            while let Some((_k, e)) = scan.next_entry()? {
                if matches_pred(&Record::decode(&e.value)?) {
                    report.matches += 1;
                }
            }
        }
        StrategyKind::Validation | StrategyKind::DeletedKeyBTree => {
            // All components newer than (and including) the oldest
            // overlapping one must be read.
            let oldest_overlap = comps
                .iter()
                .rposition(|c| overlaps(c.range_filter(), lo, hi));
            let included: Vec<_> = match oldest_overlap {
                None => Vec::new(),
                Some(i) => comps[..=i].to_vec(),
            };
            report.components_scanned = included.len() as u64;
            report.components_pruned = (comps.len() - included.len()) as u64;
            let include_mem = mem_overlaps || !included.is_empty();
            let mem = (include_mem && !mem_all.is_empty()).then_some(mem_all);
            let mut scan = LsmScan::new(
                ds.storage().clone(),
                mem,
                &included,
                scan_lo,
                scan_hi,
                ScanOptions::default(),
            )?;
            while let Some((_k, e)) = scan.next_entry()? {
                if matches_pred(&Record::decode(&e.value)?) {
                    report.matches += 1;
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetConfig, StrategyKind};
    use lsm_common::{FieldType, Schema};
    use lsm_storage::{Storage, StorageOptions};
    use std::sync::Arc;

    fn dataset(strategy: StrategyKind) -> Arc<Dataset> {
        let schema = Schema::new(vec![("id", FieldType::Int), ("time", FieldType::Int)]).unwrap();
        let mut cfg = DatasetConfig::new(schema, 0);
        cfg.strategy = strategy;
        cfg.filter_field = Some(1);
        cfg.memory_budget = usize::MAX;
        cfg.merge_repair = false;
        Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap()
    }

    fn rec(id: i64, t: i64) -> Record {
        Record::new(vec![Value::Int(id), Value::Int(t)])
    }

    /// Three time-correlated components: times 0..100, 100..200, 200..300.
    fn load(ds: &Dataset) {
        for c in 0..3i64 {
            for i in 0..100 {
                ds.insert(&rec(c * 100 + i, c * 100 + i)).unwrap();
            }
            ds.flush_all().unwrap();
        }
    }

    fn all_strategies() -> Vec<StrategyKind> {
        vec![
            StrategyKind::Eager,
            StrategyKind::Validation,
            StrategyKind::MutableBitmap,
        ]
    }

    #[test]
    fn counts_are_correct_for_all_strategies() {
        for s in all_strategies() {
            let ds = dataset(s);
            load(&ds);
            let r = filter_scan_count(&ds, Some(&Value::Int(50)), Some(&Value::Int(149))).unwrap();
            assert_eq!(r.matches, 100, "{s:?}");
            let r = filter_scan_count(&ds, None, Some(&Value::Int(99))).unwrap();
            assert_eq!(r.matches, 100, "{s:?}");
            let r = filter_scan_count(&ds, Some(&Value::Int(250)), None).unwrap();
            assert_eq!(r.matches, 50, "{s:?}");
        }
    }

    #[test]
    fn eager_and_bitmap_prune_old_queries_but_validation_cannot() {
        for s in all_strategies() {
            let ds = dataset(s);
            load(&ds);
            // Query on OLD data (component 0 only).
            let r = filter_scan_count(&ds, None, Some(&Value::Int(99))).unwrap();
            match s {
                StrategyKind::Eager | StrategyKind::MutableBitmap => {
                    assert_eq!(r.components_scanned, 1, "{s:?}");
                    assert_eq!(r.components_pruned, 2, "{s:?}");
                }
                _ => {
                    // Validation must read all newer components too.
                    assert_eq!(r.components_scanned, 3, "{s:?}");
                    assert_eq!(r.components_pruned, 0, "{s:?}");
                }
            }
            // Query on RECENT data: everyone prunes the old components.
            let r = filter_scan_count(&ds, Some(&Value::Int(200)), None).unwrap();
            assert_eq!(r.components_scanned, 1, "{s:?}");
            assert_eq!(r.components_pruned, 2, "{s:?}");
        }
    }

    #[test]
    fn updates_do_not_leak_old_versions() {
        for s in all_strategies() {
            let ds = dataset(s);
            load(&ds);
            // Move records 0..10 from time 0..10 to time 290+.
            for i in 0..10 {
                ds.upsert(&rec(i, 290)).unwrap();
            }
            ds.flush_all().unwrap();
            // Old-data query must NOT return the stale versions.
            let r = filter_scan_count(&ds, None, Some(&Value::Int(10))).unwrap();
            assert_eq!(r.matches, 1, "{s:?}"); // only id=10 (time 10) remains
                                               // Recent-data query sees the moved records.
            let r = filter_scan_count(&ds, Some(&Value::Int(290)), None).unwrap();
            assert_eq!(r.matches, 10 + 10, "{s:?}"); // ids 0..10 + 290..300
        }
    }

    #[test]
    fn eager_widening_forces_inclusion_but_stays_correct() {
        let ds = dataset(StrategyKind::Eager);
        load(&ds);
        // Update an old record; Eager widens the memory filter by the OLD
        // time (Figure 3), so an old-data query must include the memory
        // component and see the deletion.
        ds.upsert(&rec(5, 299)).unwrap();
        let r = filter_scan_count(&ds, None, Some(&Value::Int(10))).unwrap();
        assert_eq!(r.matches, 10); // ids 0..11 minus the moved id 5
    }

    #[test]
    fn mutable_bitmap_prunes_despite_updates() {
        let ds = dataset(StrategyKind::MutableBitmap);
        load(&ds);
        for i in 0..10 {
            ds.upsert(&rec(i, 290)).unwrap();
        }
        ds.flush_all().unwrap();
        // Old-data query: old components' filters unchanged, deletes are in
        // the bitmaps — pruning power intact (Figure 19's key effect).
        let r = filter_scan_count(&ds, None, Some(&Value::Int(10))).unwrap();
        assert_eq!(r.components_pruned, 3); // two newer + ... of 4 comps
        assert_eq!(r.matches, 1);
    }

    /// Regression: an unflushed update whose new filter value does NOT
    /// overlap the query must still override its old on-disk version under
    /// Validation — the memory run cannot be pruned by its own filter when
    /// an older component is read (the quickstart scenario).
    #[test]
    fn validation_reads_memory_even_when_its_filter_misses() {
        for s in [StrategyKind::Validation, StrategyKind::DeletedKeyBTree] {
            let ds = dataset(s);
            for i in 0..3 {
                ds.insert(&rec(i, i)).unwrap();
            }
            ds.flush_all().unwrap();
            // Move id 0 to time 100 — stays in memory, mem filter [100,100].
            ds.upsert(&rec(0, 100)).unwrap();
            // Old-data query: mem filter misses, but the stale version of
            // id 0 must still be overridden.
            let r = filter_scan_count(&ds, None, Some(&Value::Int(10))).unwrap();
            assert_eq!(r.matches, 2, "{s:?}: stale version leaked");
        }
    }

    #[test]
    fn no_filter_field_is_an_error() {
        let schema = Schema::new(vec![("id", FieldType::Int)]).unwrap();
        let cfg = DatasetConfig::new(schema, 0);
        let ds = Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap();
        assert!(filter_scan_count(&ds, None, None).is_err());
    }
}
