//! Parallel query execution: the Figure 5 pipeline fanned across
//! partitions of the key space.
//!
//! [`QueryBuilder::parallel(n)`](crate::QueryBuilder::parallel) executes a
//! secondary-index query in two scatter phases over up to `n` threads
//! (a shared [`QueryPool`](crate::query::pool::QueryPool) when the
//! dataset's runtime has one, ephemeral threads otherwise — the caller
//! always participates):
//!
//! 1. **Partitioned scan + validation.** One atomically captured snapshot
//!    of the secondary index (in-memory run + disk components) is split
//!    into ≤ `n` disjoint secondary-key sub-ranges along component page
//!    boundaries ([`LsmScan::partition_scan`]); each partition scans,
//!    sorts, deduplicates, and (when requested) Timestamp-validates its
//!    own candidates. The pk-ordered partial candidate lists are then
//!    k-way merged and deduplicated globally — exactly the candidate set
//!    the serial pipeline produces — and query-driven repair marks
//!    collected by the partitions are applied once, after the merge.
//! 2. **Partitioned record fetch.** The merged candidate list is split
//!    into ≤ `n` contiguous primary-key chunks; each chunk fetches its
//!    records with the batched point-lookup machinery
//!    ([`lookup_sorted_view`]) against one shared snapshot of the primary
//!    index, re-checking the predicate under Direct validation. Chunks are
//!    disjoint and ascending, so concatenating them yields the final,
//!    primary-key-ordered result with no further merge.
//!
//! Parallel results are therefore always in primary-key order (the order
//! `sort_output` produces serially), and identical to the serial result —
//! the parallel-vs-serial oracle test in `tests/parallel_query.rs` holds
//! across strategies and under concurrent background maintenance.

use crate::dataset::Dataset;
use crate::keys::{bound_as_ref, sk_range};
use crate::query::exec::{self, Candidate, RepairMark};
use crate::query::pool::{scatter, QueryPool, TaskFn};
use crate::query::{QueryOptions, QueryResult, ValidationMethod};
use lsm_common::{Key, Record, Result, Value};
use lsm_tree::{lookup_sorted_view, ComponentId, DiskComponent, LookupOptions, LsmEntry, LsmScan};
use std::ops::Bound;
use std::sync::Arc;

/// What one phase-1 partition task yields: its candidate list plus the
/// query-driven repair marks it collected.
type GatherOutcome = Result<(Vec<Candidate>, Vec<RepairMark>)>;

/// Slices a key-ordered run down to `lo..hi` by binary search, returning
/// the sub-slice bounds as indices. Shared with the partitioned filter-scan
/// path, which slices its captured memory run the same way.
pub(crate) fn slice_range(
    run: &[(Key, LsmEntry)],
    lo: &Bound<Key>,
    hi: &Bound<Key>,
) -> (usize, usize) {
    let start = match lo {
        Bound::Unbounded => 0,
        Bound::Included(k) => run.partition_point(|(key, _)| key < k),
        Bound::Excluded(k) => run.partition_point(|(key, _)| key <= k),
    };
    let end = match hi {
        Bound::Unbounded => run.len(),
        Bound::Included(k) => run.partition_point(|(key, _)| key <= k),
        Bound::Excluded(k) => run.partition_point(|(key, _)| key < k),
    };
    (start, end.max(start))
}

/// K-way merges per-partition candidate lists (each sorted by
/// `(pk asc, ts desc)`) into one list in the same order. Entries are
/// moved, not cloned; the fan-out is small, so a per-element linear scan
/// over the part heads beats heap bookkeeping.
fn merge_candidates(parts: Vec<Vec<Candidate>>) -> Vec<Candidate> {
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    let mut iters: Vec<std::vec::IntoIter<Candidate>> = parts
        .into_iter()
        .filter(|p| !p.is_empty())
        .map(Vec::into_iter)
        .collect();
    loop {
        let mut best: Option<usize> = None;
        for (i, iter) in iters.iter().enumerate() {
            let Some(cand) = iter.as_slice().first() else {
                continue;
            };
            best = match best {
                None => Some(i),
                Some(b) => {
                    // INVARIANT: `b` was only ever set for an iterator whose
                    // head existed, and nothing advances iterators in this loop.
                    let bc = iters[b].as_slice().first().expect("non-exhausted head");
                    // Same comparator as the serial sort: pk asc, ts desc.
                    if (&cand.pk_key, bc.ts) < (&bc.pk_key, cand.ts) {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        match best {
            None => break,
            // INVARIANT: `best` points at an iterator whose head was just
            // peeked as present; `next()` consumes exactly that element.
            Some(i) => merged.push(iters[i].next().expect("peeked head present")),
        }
    }
    merged
}

/// Phase 1: partitioned scan + validation + merge. Returns the same
/// candidate set (distinct primary keys, ascending) as
/// [`exec::gather_candidates`], with repair marks applied once.
pub(crate) fn gather_parallel(
    ds: &Arc<Dataset>,
    index: &str,
    lo: Option<&Value>,
    hi: Option<&Value>,
    opts: &QueryOptions,
    parallelism: usize,
    pool: Option<&Arc<QueryPool>>,
) -> Result<Vec<Candidate>> {
    let sec = ds.secondary(index)?;
    let (lo_b, hi_b) = sk_range(lo, hi);
    let (lo_ref, hi_ref) = (bound_as_ref(&lo_b), bound_as_ref(&hi_b));

    // One atomically captured view of the secondary index: every partition
    // scans the same in-memory run and component list, so an entry
    // mid-flush is seen exactly once across the whole fan-out.
    let (mem, comps) = sec
        .tree
        .mem_and_disk_snapshot_if(lo_ref, hi_ref, |_, _| true);
    let partitions = LsmScan::partition_scan(&comps, lo_ref, hi_ref, parallelism)?;
    ds.stats().record_parallel_query(partitions.len());

    let mem: Arc<Vec<(Key, LsmEntry)>> = Arc::new(mem.unwrap_or_default());
    let comps: Arc<Vec<Arc<DiskComponent>>> = Arc::new(comps);
    let opts = *opts;
    let tasks: Vec<TaskFn<GatherOutcome>> = partitions
        .into_iter()
        .map(|(plo, phi)| {
            let ds = ds.clone();
            let mem = mem.clone();
            let comps = comps.clone();
            let task = move || {
                let (start, end) = slice_range(&mem, &plo, &phi);
                let mem_slice = (start < end).then(|| mem[start..end].to_vec());
                let mut cands = exec::scan_candidates(
                    &ds,
                    mem_slice,
                    &comps,
                    bound_as_ref(&plo),
                    bound_as_ref(&phi),
                )?;
                exec::sort_dedup_candidates(&ds, &mut cands, &opts);
                let mut marks = Vec::new();
                let cands = exec::validate_candidates(&ds, &comps, cands, &opts, Some(&mut marks))?;
                Ok((cands, marks))
            };
            Box::new(task) as Box<dyn FnOnce() -> _ + Send>
        })
        .collect();

    let mut partial = Vec::with_capacity(tasks.len());
    let mut all_marks: Vec<RepairMark> = Vec::new();
    for outcome in scatter(pool, tasks) {
        let (cands, marks) = outcome?;
        partial.push(cands);
        all_marks.extend(marks);
    }

    // Merge the pk-ordered partial lists and apply the serial pipeline's
    // global deduplication: the same pk can match in several sk partitions
    // (an updated record leaves entries under old and new secondary keys).
    let total: usize = partial.iter().map(Vec::len).sum();
    exec::charge_sort(ds, total as u64);
    let mut candidates = merge_candidates(partial);
    candidates.dedup_by(|a, b| a.pk_key == b.pk_key && a.ts == b.ts);
    candidates.dedup_by(|a, b| a.pk_key == b.pk_key);

    // Query-driven repair marks, aggregated per partition, applied once.
    if !all_marks.is_empty() {
        all_marks.sort_unstable();
        all_marks.dedup();
        for (idx, ordinal) in all_marks {
            comps[idx].bitmap_or_create().set(ordinal);
        }
    }
    Ok(candidates)
}

/// Phase 2: fetches the merged candidates' records in parallel pk chunks
/// against one shared primary-index snapshot; the concatenated result is
/// pk-ordered. Records failing a Direct predicate re-check are dropped.
#[allow(clippy::too_many_arguments)]
fn fetch_parallel(
    ds: &Arc<Dataset>,
    candidates: &[Candidate],
    sec_field: usize,
    lo: Option<&Value>,
    hi: Option<&Value>,
    opts: &QueryOptions,
    parallelism: usize,
    pool: Option<&Arc<QueryPool>>,
) -> Result<Vec<Record>> {
    if candidates.is_empty() {
        return Ok(Vec::new());
    }
    // One consistent view of the primary index over the candidates' pk
    // span: partitions resolving against the same snapshot cannot miss an
    // entry that moves from memory to disk mid-query.
    let span_lo = Bound::Included(candidates[0].pk_key.as_slice());
    let span_hi = Bound::Included(candidates[candidates.len() - 1].pk_key.as_slice());
    let (mem, comps) = ds.primary().mem_and_disk_snapshot(span_lo, span_hi);
    let mem: Arc<Vec<(Key, LsmEntry)>> = Arc::new(mem);
    let comps: Arc<Vec<Arc<DiskComponent>>> = Arc::new(comps);

    let keys_per_batch = exec::keys_per_batch(ds, opts.batch_bytes);
    let chunk_len = candidates.len().div_ceil(parallelism.max(1));
    let opts = *opts;
    let lo = lo.cloned();
    let hi = hi.cloned();
    let tasks: Vec<TaskFn<Result<Vec<Record>>>> = candidates
        .chunks(chunk_len.max(1))
        .map(|chunk| {
            let ds = ds.clone();
            let mem = mem.clone();
            let comps = comps.clone();
            let keys: Vec<Key> = chunk.iter().map(|c| c.pk_key.clone()).collect();
            let hints: Vec<ComponentId> = chunk.iter().map(|c| c.source_id).collect();
            let (lo, hi) = (lo.clone(), hi.clone());
            let task = move || {
                let lopts = LookupOptions {
                    batched: opts.batched,
                    keys_per_batch,
                    stateful: opts.stateful,
                    id_hints: opts.propagate_component_ids.then_some(hints.as_slice()),
                };
                let mut found =
                    lookup_sorted_view(ds.storage(), Some(&mem), &comps, &keys, &lopts)?;
                exec::fetch_missing_under_lock(&ds, &keys, &mut found)?;
                // Batched probing destroys key order within the chunk;
                // restore it so concatenated chunks are globally ordered.
                exec::charge_sort(&ds, found.len() as u64);
                found.sort_by_key(|(i, _)| *i);
                let mut records = Vec::with_capacity(found.len());
                for (_, entry) in found {
                    let record = Record::decode(&entry.value)?;
                    if opts.validation == ValidationMethod::Direct
                        && !exec::direct_predicate_holds(
                            &record,
                            sec_field,
                            lo.as_ref(),
                            hi.as_ref(),
                        )
                    {
                        continue;
                    }
                    records.push(record);
                }
                Ok(records)
            };
            Box::new(task) as Box<dyn FnOnce() -> _ + Send>
        })
        .collect();

    let mut records = Vec::new();
    for outcome in scatter(pool, tasks) {
        records.extend(outcome?);
    }
    Ok(records)
}

/// Runs the full pipeline with both phases fanned across up to
/// `parallelism` threads. Results are always in primary-key order
/// (`sort_output` is implied).
pub(crate) fn execute_parallel(
    ds: &Arc<Dataset>,
    index: &str,
    lo: Option<&Value>,
    hi: Option<&Value>,
    opts: &QueryOptions,
    limit: Option<usize>,
    parallelism: usize,
) -> Result<QueryResult> {
    let pool = ds.query_pool();
    let sec_field = ds.secondary(index)?.field;
    let candidates = gather_parallel(ds, index, lo, hi, opts, parallelism, pool.as_ref())?;

    // Index-only fast path: no record fetch needed.
    if opts.index_only && opts.validation != ValidationMethod::Direct {
        let mut keys = candidates
            .iter()
            .map(|c| crate::keys::decode_pk(&c.pk_key))
            .collect::<Result<Vec<_>>>()?;
        if let Some(n) = limit {
            keys.truncate(n);
        }
        return Ok(QueryResult::Keys(keys));
    }

    // Limited record queries fetch through the streaming path so the
    // point-lookup I/O stops at `limit` results (candidates are already
    // pk-ordered, so the stream preserves the parallel output order).
    if limit.is_some() && !opts.index_only {
        let (keys, hints) = candidates
            .into_iter()
            .map(|c| (c.pk_key, c.source_id))
            .unzip();
        let stream = crate::query::RecordStream::from_candidates(
            ds,
            keys,
            hints,
            sec_field,
            lo.cloned(),
            hi.cloned(),
            opts,
            limit,
        );
        let records = stream.collect::<Result<Vec<_>>>()?;
        return Ok(QueryResult::Records(records));
    }

    let records = fetch_parallel(
        ds,
        &candidates,
        sec_field,
        lo,
        hi,
        opts,
        parallelism,
        pool.as_ref(),
    )?;

    if opts.index_only {
        // Direct validation + index-only still had to fetch records.
        let pk_field = ds.config().pk_field;
        let mut keys: Vec<Value> = records.iter().map(|r| r.get(pk_field).clone()).collect();
        if let Some(n) = limit {
            keys.truncate(n);
        }
        return Ok(QueryResult::Keys(keys));
    }
    Ok(QueryResult::Records(records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_tree::LsmEntry;

    fn cand(pk: u8, ts: u64) -> Candidate {
        Candidate {
            pk_key: vec![pk],
            ts,
            repaired_ts: 0,
            source_id: ComponentId::new(1, 1),
            source: None,
        }
    }

    #[test]
    fn merge_orders_by_pk_then_ts_desc() {
        let merged = merge_candidates(vec![
            vec![cand(1, 5), cand(3, 2)],
            vec![cand(1, 9), cand(2, 1)],
            vec![],
        ]);
        let got: Vec<(u8, u64)> = merged.iter().map(|c| (c.pk_key[0], c.ts)).collect();
        assert_eq!(got, vec![(1, 9), (1, 5), (2, 1), (3, 2)]);
    }

    #[test]
    fn slice_range_respects_bounds() {
        let run: Vec<(Key, LsmEntry)> = (0u8..10)
            .map(|i| (vec![i], LsmEntry::put(vec![])))
            .collect();
        assert_eq!(
            slice_range(&run, &Bound::Unbounded, &Bound::Unbounded),
            (0, 10)
        );
        assert_eq!(
            slice_range(&run, &Bound::Included(vec![3]), &Bound::Excluded(vec![7])),
            (3, 7)
        );
        assert_eq!(
            slice_range(&run, &Bound::Excluded(vec![3]), &Bound::Included(vec![7])),
            (4, 8)
        );
        assert_eq!(
            slice_range(&run, &Bound::Included(vec![20]), &Bound::Unbounded),
            (10, 10)
        );
    }
}
