//! Streaming query execution: [`RecordStream`] yields records batch by
//! batch with bounded memory.
//!
//! [`PreparedQuery::stream`](crate::query::PreparedQuery::stream) runs
//! steps 1-3 of the Figure 5 pipeline up front (the candidate set is
//! primary *keys* only — a few dozen bytes per match), then fetches full
//! records lazily: one batch of at most `batch_bytes` worth of records at a
//! time, using the same batched point-lookup machinery as the collecting
//! path. A range query whose records would not fit in RAM therefore holds
//! at most one batch of decoded records at any moment.
//!
//! Records are yielded in primary-key order: candidate keys are sorted, the
//! stream fetches them in consecutive chunks, and each fetched batch is
//! re-sorted into key order (the per-batch equivalent of the collecting
//! path's `sort_output`).

use crate::dataset::Dataset;
use crate::query::{exec, QueryOptions, ValidationMethod};
use lsm_common::{Key, Record, Result, Value};
use lsm_tree::{lookup_sorted, ComponentId, LookupOptions};
use std::collections::VecDeque;

/// A batch-at-a-time iterator over query results; see the module docs.
pub struct RecordStream<'a> {
    ds: &'a Dataset,
    /// Post-validation candidate primary keys, ascending.
    keys: Vec<Key>,
    /// Per-key component-ID hints, parallel to `keys` (pID).
    hints: Vec<ComponentId>,
    /// Next position in `keys` to fetch.
    pos: usize,
    /// The current batch, in primary-key order.
    batch: VecDeque<Record>,
    keys_per_batch: usize,
    opts: QueryOptions,
    sec_field: usize,
    lo: Option<Value>,
    hi: Option<Value>,
    /// Results still allowed out (`usize::MAX` = unlimited).
    remaining: usize,
    /// Diagnostics: batches fetched and the largest batch held so far.
    batches_fetched: usize,
    peak_batch_len: usize,
}

impl<'a> RecordStream<'a> {
    pub(crate) fn open(
        ds: &'a Dataset,
        index: &str,
        lo: Option<Value>,
        hi: Option<Value>,
        opts: &QueryOptions,
        limit: Option<usize>,
    ) -> Result<Self> {
        if opts.index_only {
            return Err(lsm_common::Error::invalid(
                "index-only queries return keys, not records; use execute()",
            ));
        }
        let sec = ds.secondary(index)?;
        let candidates = exec::gather_candidates(ds, sec, lo.as_ref(), hi.as_ref(), opts)?;
        let keys = candidates.iter().map(|c| c.pk_key.clone()).collect();
        let hints = candidates.iter().map(|c| c.source_id).collect();
        Ok(Self::from_candidates(
            ds, keys, hints, sec.field, lo, hi, opts, limit,
        ))
    }

    /// A stream over an already-gathered candidate set (post-validation
    /// primary keys, ascending, with their pID hints). The parallel query
    /// path gathers candidates across partitions, k-way merges them, and
    /// streams the fetch from here — same bounded memory and pk order as
    /// the serial stream.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_candidates(
        ds: &'a Dataset,
        keys: Vec<lsm_common::Key>,
        hints: Vec<ComponentId>,
        sec_field: usize,
        lo: Option<Value>,
        hi: Option<Value>,
        opts: &QueryOptions,
        limit: Option<usize>,
    ) -> Self {
        RecordStream {
            ds,
            keys,
            hints,
            pos: 0,
            batch: VecDeque::new(),
            keys_per_batch: exec::keys_per_batch(ds, opts.batch_bytes),
            opts: *opts,
            sec_field,
            lo,
            hi,
            remaining: limit.unwrap_or(usize::MAX),
            batches_fetched: 0,
            peak_batch_len: 0,
        }
    }

    /// Candidates that passed validation (an upper bound on the number of
    /// records the stream will yield).
    pub fn candidate_count(&self) -> usize {
        self.keys.len()
    }

    /// Keys fetched per batch (derived from `batch_bytes` and the primary
    /// index's average record size).
    pub fn keys_per_batch(&self) -> usize {
        self.keys_per_batch
    }

    /// Batches fetched so far.
    pub fn batches_fetched(&self) -> usize {
        self.batches_fetched
    }

    /// The largest number of records held in memory at once so far.
    pub fn peak_batch_len(&self) -> usize {
        self.peak_batch_len
    }

    /// Fetches the next chunk of candidate keys into `self.batch`.
    fn fetch_next_batch(&mut self) -> Result<()> {
        while self.batch.is_empty() && self.pos < self.keys.len() {
            let end = (self.pos + self.keys_per_batch).min(self.keys.len());
            let chunk = &self.keys[self.pos..end];
            let hint_chunk = &self.hints[self.pos..end];
            let lopts = LookupOptions {
                batched: self.opts.batched,
                keys_per_batch: self.keys_per_batch,
                stateful: self.opts.stateful,
                id_hints: self.opts.propagate_component_ids.then_some(hint_chunk),
            };
            let mut found = lookup_sorted(self.ds.primary(), chunk, &lopts)?;
            exec::fetch_missing_under_lock(self.ds, chunk, &mut found)?;
            // Batched probing destroys key order within the batch; restore
            // it so the stream is globally primary-key ordered.
            exec::charge_sort(self.ds, found.len() as u64);
            found.sort_by_key(|(i, _)| *i);
            for (_, entry) in found {
                let record = Record::decode(&entry.value)?;
                if self.opts.validation == ValidationMethod::Direct
                    && !exec::direct_predicate_holds(
                        &record,
                        self.sec_field,
                        self.lo.as_ref(),
                        self.hi.as_ref(),
                    )
                {
                    continue;
                }
                self.batch.push_back(record);
            }
            self.pos = end;
            self.batches_fetched += 1;
            self.peak_batch_len = self.peak_batch_len.max(self.batch.len());
        }
        Ok(())
    }
}

impl Iterator for RecordStream<'_> {
    type Item = Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        if self.batch.is_empty() {
            if let Err(e) = self.fetch_next_batch() {
                self.remaining = 0; // a failed stream stays finished
                return Some(Err(e));
            }
        }
        let record = self.batch.pop_front()?;
        self.remaining -= 1;
        Some(Ok(record))
    }
}

impl std::fmt::Debug for RecordStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordStream")
            .field("candidates", &self.keys.len())
            .field("pos", &self.pos)
            .field("keys_per_batch", &self.keys_per_batch)
            .field("buffered", &self.batch.len())
            .finish()
    }
}
