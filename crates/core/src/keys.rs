//! Index key encoding.
//!
//! The primary index and primary key index are keyed by the encoded primary
//! key. Secondary indexes use the composition of the secondary key and the
//! primary key (Section 3), so duplicate secondary keys are handled by the
//! ordinary key ordering.

use lsm_common::value::{decode_composite, encode_composite};
use lsm_common::{Error, Key, Result, Value};
use std::ops::Bound;

/// Encodes a primary key value.
pub fn encode_pk(pk: &Value) -> Key {
    pk.encode()
}

/// Decodes a primary key.
pub fn decode_pk(key: &[u8]) -> Result<Value> {
    Value::decode_exact(key)
}

/// Encodes a secondary index key `(secondary key, primary key)`.
pub fn encode_sk_pk(sk: &Value, pk: &Value) -> Key {
    encode_composite(&[sk.clone(), pk.clone()])
}

/// Splits a secondary index key back into `(secondary key, primary key)`.
pub fn decode_sk_pk(key: &[u8]) -> Result<(Value, Value)> {
    let parts = decode_composite(key)?;
    if parts.len() != 2 {
        return Err(Error::corruption(format!(
            "secondary key with {} parts",
            parts.len()
        )));
    }
    let mut it = parts.into_iter();
    // INVARIANT: `parts.len() == 2` was checked above; both calls yield.
    Ok((it.next().unwrap(), it.next().unwrap()))
}

/// Borrows an owned key bound as the byte-slice bound the scan layer takes
/// (`LsmScan` / `mem_snapshot_range`). Shared by the collecting and
/// streaming query paths, which build owned `Bound<Key>` ranges via
/// [`sk_range`].
pub fn bound_as_ref(b: &Bound<Key>) -> Bound<&[u8]> {
    match b {
        Bound::Included(k) => Bound::Included(k.as_slice()),
        Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Bounds over composite keys selecting all entries with secondary key in
/// `[lo, hi]` (inclusive; `None` = unbounded).
pub fn sk_range(lo: Option<&Value>, hi: Option<&Value>) -> (Bound<Key>, Bound<Key>) {
    let lo_bound = match lo {
        None => Bound::Unbounded,
        // The encoding of `lo` is a strict prefix of every `(lo, pk)`
        // composite, so an inclusive bound on the bare encoding captures
        // them all.
        Some(v) => Bound::Included(v.encode()),
    };
    let hi_bound = match hi {
        None => Bound::Unbounded,
        // No value encoding starts with 0xFF, so `enc(hi) ++ 0xFF` sorts
        // after every `(hi, pk)` composite and before any larger sk.
        Some(v) => {
            let mut k = v.encode();
            k.push(0xFF);
            Bound::Excluded(k)
        }
    };
    (lo_bound, hi_bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pk_roundtrip() {
        let pk = Value::Int(42);
        assert_eq!(decode_pk(&encode_pk(&pk)).unwrap(), pk);
    }

    #[test]
    fn sk_pk_roundtrip() {
        let (sk, pk) = (Value::Str("CA".into()), Value::Int(101));
        let k = encode_sk_pk(&sk, &pk);
        assert_eq!(decode_sk_pk(&k).unwrap(), (sk, pk));
        assert!(decode_sk_pk(&encode_pk(&Value::Int(1))).is_err());
    }

    #[test]
    fn composite_ordering_groups_by_sk() {
        let a = encode_sk_pk(&Value::Int(5), &Value::Int(999));
        let b = encode_sk_pk(&Value::Int(6), &Value::Int(0));
        assert!(a < b);
        let c = encode_sk_pk(&Value::Int(5), &Value::Int(1000));
        assert!(a < c && c < b);
    }

    #[test]
    fn sk_range_selects_inclusive_interval() {
        let keys: Vec<(i64, i64)> = vec![(1, 10), (2, 5), (2, 9), (3, 1), (4, 2)];
        let encoded: Vec<Key> = keys
            .iter()
            .map(|(s, p)| encode_sk_pk(&Value::Int(*s), &Value::Int(*p)))
            .collect();
        let (lo, hi) = sk_range(Some(&Value::Int(2)), Some(&Value::Int(3)));
        let selected: Vec<usize> = encoded
            .iter()
            .enumerate()
            .filter(|(_, k)| {
                let above = match &lo {
                    Bound::Included(b) => *k >= b,
                    _ => true,
                };
                let below = match &hi {
                    Bound::Excluded(b) => *k < b,
                    _ => true,
                };
                above && below
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(selected, vec![1, 2, 3]);
    }

    #[test]
    fn sk_range_unbounded() {
        let (lo, hi) = sk_range(None, None);
        assert!(matches!(lo, Bound::Unbounded));
        assert!(matches!(hi, Bound::Unbounded));
    }
}
