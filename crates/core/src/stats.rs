//! Engine-level operation counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for dataset operations.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Records successfully inserted.
    pub inserts: AtomicU64,
    /// Inserts rejected by the key-uniqueness check.
    pub inserts_rejected: AtomicU64,
    /// Upserts applied.
    pub upserts: AtomicU64,
    /// Deletes applied (including no-op deletes of absent keys).
    pub deletes: AtomicU64,
    /// Flush operations.
    pub flushes: AtomicU64,
    /// Merge operations.
    pub merges: AtomicU64,
    /// Secondary-index repair operations.
    pub repairs: AtomicU64,
    /// Point lookups performed for maintenance (the Eager strategy's cost).
    pub maintenance_lookups: AtomicU64,
    /// Maintenance jobs enqueued on the background scheduler.
    pub jobs_enqueued: AtomicU64,
    /// Flush jobs executed by background workers.
    pub flush_jobs: AtomicU64,
    /// Merge jobs executed by background workers.
    pub merge_jobs: AtomicU64,
    /// Times a writer stalled on the hard memory ceiling (backpressure).
    pub backpressure_stalls: AtomicU64,
    /// This dataset's jobs waiting in the runtime queue (gauge, refreshed
    /// on writes).
    pub queue_depth: AtomicU64,
    /// Wall-clock nanoseconds this dataset's background jobs spent waiting
    /// in the runtime's I/O read throttle.
    pub throttle_wait_ns: AtomicU64,
    /// Wall-clock nanoseconds this dataset's background jobs spent waiting
    /// in the runtime's I/O write throttle (flush builds, merge outputs).
    pub write_throttle_wait_ns: AtomicU64,
    /// Queries executed through the parallel path
    /// ([`QueryBuilder::parallel`](crate::QueryBuilder::parallel)).
    pub parallel_queries: AtomicU64,
    /// Scan partitions planned across all parallel queries (divide by
    /// `parallel_queries` for the average fan-out actually achieved —
    /// small ranges may split into fewer partitions than requested).
    pub query_partitions: AtomicU64,
    /// Primary-index filter scans executed through the partitioned path
    /// ([`FilterScanBuilder::parallel`](crate::FilterScanBuilder::parallel)).
    pub parallel_filter_scans: AtomicU64,
    /// Scan partitions planned across all partitioned filter scans (divide
    /// by `parallel_filter_scans` for the average fan-out actually
    /// achieved — small trees may split into fewer partitions than
    /// requested).
    pub filter_scan_partitions: AtomicU64,
    /// Passages through an engine crash site (`wal_append`,
    /// `flush_install`, `merge_install`, `checkpoint`) while an armed
    /// [`FaultPlan`](lsm_storage::FaultPlan) was installed on the dataset's
    /// storage — a torture run's coverage signal.
    pub crash_sites_armed: AtomicU64,
    /// Crash-site passages where the fault plan actually fired.
    pub crash_sites_hit: AtomicU64,
    /// WAL group commits: single device appends that each made one
    /// committer group's page durable.
    pub wal_groups: AtomicU64,
    /// Log records covered by those group commits;
    /// `wal_grouped_records / wal_groups` is the achieved group size
    /// (`> 1` under concurrent commit).
    pub wal_grouped_records: AtomicU64,
}

impl EngineStats {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a background flush job execution.
    pub(crate) fn record_flush_job(&self) {
        self.bump(&self.flush_jobs);
    }

    /// Counts a background merge job execution.
    pub(crate) fn record_merge_job(&self) {
        self.bump(&self.merge_jobs);
    }

    /// Counts one parallel query execution planned into `partitions`.
    pub(crate) fn record_parallel_query(&self, partitions: usize) {
        self.bump(&self.parallel_queries);
        self.query_partitions
            .fetch_add(partitions as u64, Ordering::Relaxed);
    }

    /// Counts one partitioned filter-scan execution planned into
    /// `partitions`.
    pub(crate) fn record_parallel_filter_scan(&self, partitions: usize) {
        self.bump(&self.parallel_filter_scans);
        self.filter_scan_partitions
            .fetch_add(partitions as u64, Ordering::Relaxed);
    }

    /// Total records that entered the dataset (inserts + upserts).
    pub fn records_ingested(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed) + self.upserts.load(Ordering::Relaxed)
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> EngineStatsSnapshot {
        EngineStatsSnapshot {
            inserts: self.inserts.load(Ordering::Relaxed),
            inserts_rejected: self.inserts_rejected.load(Ordering::Relaxed),
            upserts: self.upserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
            repairs: self.repairs.load(Ordering::Relaxed),
            maintenance_lookups: self.maintenance_lookups.load(Ordering::Relaxed),
            jobs_enqueued: self.jobs_enqueued.load(Ordering::Relaxed),
            flush_jobs: self.flush_jobs.load(Ordering::Relaxed),
            merge_jobs: self.merge_jobs.load(Ordering::Relaxed),
            backpressure_stalls: self.backpressure_stalls.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            throttle_wait_ns: self.throttle_wait_ns.load(Ordering::Relaxed),
            write_throttle_wait_ns: self.write_throttle_wait_ns.load(Ordering::Relaxed),
            parallel_queries: self.parallel_queries.load(Ordering::Relaxed),
            query_partitions: self.query_partitions.load(Ordering::Relaxed),
            parallel_filter_scans: self.parallel_filter_scans.load(Ordering::Relaxed),
            filter_scan_partitions: self.filter_scan_partitions.load(Ordering::Relaxed),
            crash_sites_armed: self.crash_sites_armed.load(Ordering::Relaxed),
            crash_sites_hit: self.crash_sites_hit.load(Ordering::Relaxed),
            wal_groups: self.wal_groups.load(Ordering::Relaxed),
            wal_grouped_records: self.wal_grouped_records.load(Ordering::Relaxed),
        }
    }
}

/// Immutable snapshot of [`EngineStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct EngineStatsSnapshot {
    pub inserts: u64,
    pub inserts_rejected: u64,
    pub upserts: u64,
    pub deletes: u64,
    pub flushes: u64,
    pub merges: u64,
    pub repairs: u64,
    pub maintenance_lookups: u64,
    pub jobs_enqueued: u64,
    pub flush_jobs: u64,
    pub merge_jobs: u64,
    pub backpressure_stalls: u64,
    pub queue_depth: u64,
    pub throttle_wait_ns: u64,
    pub write_throttle_wait_ns: u64,
    pub parallel_queries: u64,
    pub query_partitions: u64,
    pub parallel_filter_scans: u64,
    pub filter_scan_partitions: u64,
    pub crash_sites_armed: u64,
    pub crash_sites_hit: u64,
    pub wal_groups: u64,
    pub wal_grouped_records: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = EngineStats::new();
        s.bump(&s.inserts);
        s.bump(&s.inserts);
        s.bump(&s.upserts);
        assert_eq!(s.records_ingested(), 3);
        let snap = s.snapshot();
        assert_eq!(snap.inserts, 2);
        assert_eq!(snap.upserts, 1);
        assert_eq!(snap.deletes, 0);
    }
}
