//! Crash recovery (Sections 2.2 and 5.2).
//!
//! The engine is no-steal/no-force: disk components only ever contain
//! committed operations, so recovery performs no undo. A crash loses the
//! memory components, the in-memory logical clock, and any bitmap mutations
//! after the last checkpoint; recovery replays committed log records
//! "beyond the maximum component LSN" — with our LSN = operation timestamp,
//! that is every record whose timestamp exceeds the newest timestamp found
//! in any flushed component. Replayed deletes/upserts re-execute their
//! bitmap mutations (guided by the update bit in the log record), and the
//! clock is advanced past everything durable and replayed before new
//! writes are admitted.
//!
//! # Interaction with background maintenance
//!
//! All three entry points cooperate with a running
//! [`MaintenanceRuntime`](crate::MaintenanceRuntime):
//!
//! * [`checkpoint`] and [`simulate_crash`] serialize behind the dataset's
//!   flush and merge locks — without them a concurrent merge could retire
//!   a component between the bitmap snapshot and the LSN stamp (or between
//!   `set_bitmap` calls), corrupting the checkpoint.
//! * [`recover`] drains the dataset's queued/in-flight background jobs and
//!   replays with maintenance forced *inline* (the `recovering` flag):
//!   replay rewinds the logical clock per record, and a background flush
//!   racing that would stamp components with rewound timestamps.

use crate::dataset::Dataset;
use crate::txn::LogOp;
use lsm_common::{Error, Record, Result, Timestamp};
use lsm_tree::BitmapSnapshot;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Checkpointed bitmap state, keyed by component ID interval (component
/// files are immutable, so the ID identifies the component).
#[derive(Debug)]
pub struct CheckpointState {
    bitmaps: Mutex<HashMap<(Timestamp, Timestamp), BitmapSnapshot>>,
    lsn: Mutex<Timestamp>,
}

impl CheckpointState {
    /// Creates empty checkpoint state.
    pub fn new() -> Self {
        // Constructed field-by-field (not via derive) so the two locks get
        // distinct lock classes: `checkpoint` stamps `lsn` while holding
        // `bitmaps` (checkpoint-bitmaps -> checkpoint-lsn edge).
        CheckpointState {
            bitmaps: Mutex::new(HashMap::new()),
            lsn: Mutex::new(0),
        }
    }
}

impl Default for CheckpointState {
    fn default() -> Self {
        Self::new()
    }
}

/// What recovery did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Log records replayed.
    pub replayed: u64,
    /// Log records skipped because their effects were already in components.
    pub skipped: u64,
}

/// The newest timestamp durable in any of the dataset's primary
/// components ("the maximum component LSN").
fn max_component_ts(ds: &Dataset) -> Timestamp {
    ds.primary()
        .disk_components()
        .iter()
        .map(|c| c.id().max_ts)
        .max()
        .unwrap_or(0)
}

/// Takes a checkpoint: forces the log and snapshots every primary-component
/// bitmap (the paper's "regular checkpointing ... to flush dirty pages of
/// bitmaps", Section 5.2).
///
/// Serialized behind the dataset's flush and merge locks: under
/// [`MaintenanceMode::Background`](crate::MaintenanceMode) a concurrent
/// merge could otherwise retire a component between the bitmap snapshot
/// and the LSN stamp, leaving a checkpoint that names components which no
/// longer exist at its LSN.
pub fn checkpoint(ds: &Dataset, state: &CheckpointState) -> Result<()> {
    let _flush = ds.flush_serialization().lock();
    let _merges = ds.merge_serialization().lock();
    // Drain in-flight writers too (they hold the dataset lock shared per
    // operation): a Mutable-bitmap upsert sets its bitmap bit BEFORE
    // appending its log record, so snapshotting mid-operation could
    // capture a mark whose record the crash then loses — restoring the
    // mark would delete the old version of a key whose new version never
    // committed. With no writer mid-op, every captured mark's record is
    // already appended, and the force below makes it durable.
    let _drain = ds.dataset_lock().write();
    let lsn = ds.clock().now();
    if let Some(wal) = ds.wal() {
        wal.checkpoint(lsn)?;
    }
    // Crash window: the checkpoint record is durable in the log, but the
    // bitmap snapshots and the LSN stamp have not been taken — the old
    // checkpoint state must remain usable.
    ds.checkpoint_crash_site()?;
    let mut bitmaps = state.bitmaps.lock();
    bitmaps.clear();
    for comp in ds.primary().disk_components() {
        if let Some(b) = comp.bitmap() {
            bitmaps.insert((comp.id().min_ts, comp.id().max_ts), b.snapshot());
        }
    }
    *state.lsn.lock() = lsn;
    Ok(())
}

/// Simulates a crash: memory components vanish, unforced log records are
/// lost, bitmaps revert to their last checkpointed state, and the logical
/// clock — in-memory state a real restart would not have — is wiped
/// ([`recover`] rebuilds it from the durable state).
///
/// Requires a write-ahead log: without one, [`recover`] cannot run, so
/// nothing would ever advance the wiped clock past the durable
/// components' timestamps and post-crash writes would reuse them.
///
/// Background jobs are drained first and the flush/merge locks held
/// throughout, so the crash lands on a structurally consistent state (no
/// half-installed components, no `set_bitmap` interleaving with a merge).
pub fn simulate_crash(ds: &Dataset, state: &CheckpointState) -> Result<()> {
    if ds.wal().is_none() {
        return Err(Error::invalid(
            "crash simulation requires a write-ahead log (recovery rebuilds the clock)",
        ));
    }
    ds.drain_background();
    let _flush = ds.flush_serialization().lock();
    let _merges = ds.merge_serialization().lock();
    ds.primary().clear_mem();
    if let Some(pk) = ds.pk_index() {
        pk.clear_mem();
    }
    for sec in ds.secondaries() {
        sec.tree.clear_mem();
    }
    if let Some(wal) = ds.wal() {
        wal.drop_unforced();
    }
    // Bitmaps: reset to checkpointed snapshots (zeroes when none).
    let bitmaps = state.bitmaps.lock();
    for comp in ds.primary().disk_components() {
        if let Some(live) = comp.bitmap() {
            let fresh = lsm_tree::AtomicBitmap::new(live.len());
            if let Some(snap) = bitmaps.get(&(comp.id().min_ts, comp.id().max_ts)) {
                for i in 0..snap.len() {
                    if snap.get(i) {
                        fresh.set(i);
                    }
                }
            }
            let fresh = std::sync::Arc::new(fresh);
            comp.set_bitmap(fresh.clone())?;
            // Keep the paired pk-index component on the shared bitmap.
            if let Some(pk) = ds.pk_index() {
                for kc in pk.disk_components() {
                    if kc.id() == comp.id() {
                        kc.set_bitmap(fresh.clone())?;
                    }
                }
            }
        }
    }
    // A restarted process has no memory of the pre-crash clock; it is
    // recover()'s job to advance past everything durable and replayed.
    ds.clock().reset_for_crash(0);
    Ok(())
}

/// Recovers after [`simulate_crash`]: replays committed (forced) log
/// records newer than the maximum component timestamp, then advances the
/// clock past everything durable and replayed so post-recovery writes can
/// never reuse a replayed timestamp.
pub fn recover(ds: &Dataset, state: &CheckpointState) -> Result<RecoveryReport> {
    let wal = ds
        .wal()
        .ok_or_else(|| Error::invalid("recovery requires a write-ahead log"))?;

    // Replay runs single-threaded (Section 2.2) with maintenance forced
    // inline: the `recovering` flag reroutes the budget checks inside
    // `upsert`/`delete` away from the background queue, and the drain
    // guarantees no pre-crash job is still rebuilding components.
    ds.set_recovering(true);
    ds.drain_background();

    // A crash inside a flush/merge install window leaves the primary index
    // structurally ahead of its siblings; repair that before deciding what
    // to replay (a rolled-back torn flush lowers the maximum component LSN
    // so its committed entries replay from the log).
    if let Err(e) = ds.realign_after_crash() {
        ds.set_recovering(false);
        return Err(e);
    }

    // Maximum component LSN: the newest timestamp durable in any component.
    let max_comp_ts = max_component_ts(ds);

    // Bitmap mutations since the checkpoint were lost, so bitmap-bearing
    // records must be replayed from the checkpoint LSN even if their entry
    // landed in a component already.
    let checkpoint_lsn = *state.lsn.lock();
    let from = checkpoint_lsn.min(max_comp_ts);

    let mut report = RecoveryReport::default();
    let mut max_replayed: Timestamp = 0;
    let result = (|| -> Result<()> {
        let records = wal.replay(from, false)?;
        for rec in records {
            if rec.op == LogOp::Checkpoint {
                continue; // marker record: empty key, nothing to redo
            }
            let needs_entry_replay = rec.lsn > max_comp_ts;
            let needs_bitmap_replay = rec.update_bit && rec.lsn > checkpoint_lsn;
            if !needs_entry_replay && !needs_bitmap_replay {
                report.skipped += 1;
                continue;
            }
            // Position the clock so the replayed operation re-acquires its
            // original timestamp.
            ds.clock().advance_to(rec.lsn - 1);
            let pk = crate::keys::decode_pk(&rec.key)?;
            match rec.op {
                LogOp::Insert | LogOp::Upsert => {
                    let record = Record::decode(&rec.value)?;
                    if needs_entry_replay {
                        ds.upsert(&record)?;
                    } else {
                        // Only the bitmap mutation was lost: redo it by
                        // re-marking the replaced version (idempotent).
                        // Note this path does not tick the clock.
                        ds.redo_bitmap_mark(&rec.key, rec.lsn)?;
                    }
                }
                LogOp::Delete => {
                    if needs_entry_replay {
                        ds.delete(&pk)?;
                    } else {
                        ds.redo_bitmap_mark(&rec.key, rec.lsn)?;
                    }
                }
                LogOp::Checkpoint => unreachable!("filtered above"),
            }
            let _ = pk;
            max_replayed = max_replayed.max(rec.lsn);
            report.replayed += 1;
        }
        Ok(())
    })();
    ds.set_recovering(false);
    // New timestamps must stay strictly above everything replayed or
    // durable: a trailing bitmap-only replay leaves the clock at
    // `rec.lsn - 1` (redo does not tick), and a replay-free recovery
    // leaves it wherever the crash put it.
    ds.clock()
        .advance_to(max_replayed.max(max_comp_ts).max(checkpoint_lsn));
    result?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetConfig, MaintenanceMode, StrategyKind};
    use lsm_common::{FieldType, Schema, Value};
    use lsm_storage::{Storage, StorageOptions};
    use std::sync::Arc;

    fn dataset_with(
        strategy: StrategyKind,
        mode: MaintenanceMode,
        memory_budget: usize,
    ) -> Arc<Dataset> {
        let schema = Schema::new(vec![("id", FieldType::Int), ("v", FieldType::Int)]).unwrap();
        let mut cfg = DatasetConfig::new(schema, 0);
        cfg.strategy = strategy;
        cfg.memory_budget = memory_budget;
        cfg.maintenance = mode;
        Dataset::open(
            Storage::new(StorageOptions::test()),
            Some(Storage::new(StorageOptions::test())),
            cfg,
        )
        .unwrap()
    }

    fn dataset(strategy: StrategyKind) -> Arc<Dataset> {
        dataset_with(strategy, MaintenanceMode::Inline, usize::MAX)
    }

    fn rec(id: i64, v: i64) -> Record {
        Record::new(vec![Value::Int(id), Value::Int(v)])
    }

    /// The crash-recovery matrix: every strategy with a WAL-relevant replay
    /// path, under inline AND background maintenance.
    fn matrix() -> Vec<(StrategyKind, MaintenanceMode)> {
        let strategies = [
            StrategyKind::Eager,
            StrategyKind::Validation,
            StrategyKind::MutableBitmap,
            StrategyKind::DeletedKeyBTree,
        ];
        let modes = [
            MaintenanceMode::Inline,
            MaintenanceMode::Background { workers: 2 },
        ];
        strategies
            .into_iter()
            .flat_map(|s| modes.into_iter().map(move |m| (s, m)))
            .collect()
    }

    #[test]
    fn crash_loses_memory_then_recovery_restores() {
        for (strategy, mode) in matrix() {
            let ds = dataset_with(strategy, mode, usize::MAX);
            let state = CheckpointState::new();
            for i in 0..50 {
                ds.insert(&rec(i, i)).unwrap();
            }
            ds.maintenance().flush_now().unwrap(); // durable (and forces the WAL)
            ds.maintenance().quiesce().unwrap();
            for i in 50..80 {
                ds.insert(&rec(i, i)).unwrap();
            }
            ds.wal().unwrap().force().unwrap(); // commit point

            simulate_crash(&ds, &state).unwrap();
            assert!(
                ds.get(&Value::Int(60)).unwrap().is_none(),
                "{strategy:?}/{mode:?}: mem lost"
            );
            assert!(
                ds.get(&Value::Int(10)).unwrap().is_some(),
                "{strategy:?}/{mode:?}: disk survives"
            );

            let report = recover(&ds, &state).unwrap();
            assert_eq!(report.replayed, 30, "{strategy:?}/{mode:?}");
            for i in 0..80 {
                assert!(
                    ds.get(&Value::Int(i)).unwrap().is_some(),
                    "{strategy:?}/{mode:?}: id {i}"
                );
            }
            // Post-recovery ingestion keeps working with fresh timestamps.
            ds.insert(&rec(1000, 1)).unwrap();
            assert!(ds.get(&Value::Int(1000)).unwrap().is_some());
        }
    }

    #[test]
    fn unforced_operations_are_lost_for_good() {
        for (strategy, mode) in matrix() {
            let ds = dataset_with(strategy, mode, usize::MAX);
            let state = CheckpointState::new();
            ds.insert(&rec(1, 1)).unwrap();
            ds.maintenance().flush_now().unwrap();
            ds.maintenance().quiesce().unwrap();
            ds.insert(&rec(2, 2)).unwrap(); // in mem, WAL not forced
            simulate_crash(&ds, &state).unwrap();
            let report = recover(&ds, &state).unwrap();
            assert_eq!(report.replayed, 0, "{strategy:?}/{mode:?}");
            assert!(ds.get(&Value::Int(2)).unwrap().is_none());
            assert!(ds.get(&Value::Int(1)).unwrap().is_some());
            // The clock still cleared everything durable: a fresh write
            // must not collide with the surviving component's timestamps.
            ds.insert(&rec(3, 3)).unwrap();
            assert!(ds.get(&Value::Int(3)).unwrap().is_some());
        }
    }

    #[test]
    fn bitmap_mutations_replayed_after_crash() {
        for mode in [
            MaintenanceMode::Inline,
            MaintenanceMode::Background { workers: 2 },
        ] {
            let ds = dataset_with(StrategyKind::MutableBitmap, mode, usize::MAX);
            let state = CheckpointState::new();
            for i in 0..20 {
                ds.insert(&rec(i, i)).unwrap();
            }
            ds.maintenance().flush_now().unwrap();
            ds.maintenance().quiesce().unwrap();
            checkpoint(&ds, &state).unwrap();
            // These upserts set bits in the flushed component's bitmap...
            for i in 0..5 {
                ds.upsert(&rec(i, 100 + i)).unwrap();
            }
            ds.wal().unwrap().force().unwrap();
            let comp = &ds.primary().disk_components()[0];
            assert_eq!(comp.bitmap().unwrap().count_set(), 5, "{mode:?}");

            // ...which the crash wipes...
            simulate_crash(&ds, &state).unwrap();
            let comp = &ds.primary().disk_components()[0];
            assert_eq!(comp.bitmap().unwrap().count_set(), 0, "{mode:?}");

            // ...and recovery redoes (update-bit records), restoring both
            // the entries and the bitmap.
            let report = recover(&ds, &state).unwrap();
            assert_eq!(report.replayed, 5, "{mode:?}");
            assert_eq!(comp.bitmap().unwrap().count_set(), 5, "{mode:?}");
            for i in 0..5 {
                assert_eq!(
                    ds.get(&Value::Int(i)).unwrap().unwrap().get(1),
                    &Value::Int(100 + i)
                );
            }
        }
    }

    /// Regression (checkpoint vs in-flight merge): `checkpoint` must not
    /// interleave with a structural merge — it blocks on the merge lock. A
    /// held merge lock stands in for a background merge mid-rebuild, which
    /// deterministically opens the snapshot/stamp window the lock closes.
    #[test]
    fn checkpoint_blocks_on_inflight_merge() {
        let ds = dataset_with(
            StrategyKind::MutableBitmap,
            MaintenanceMode::Background { workers: 1 },
            usize::MAX,
        );
        for i in 0..20 {
            ds.insert(&rec(i, i)).unwrap();
        }
        ds.maintenance().flush_now().unwrap();
        ds.maintenance().quiesce().unwrap();

        let merge_guard = ds.merge_serialization().lock();
        let (tx, rx) = std::sync::mpsc::channel();
        let ds2 = ds.clone();
        let checkpointer = std::thread::spawn(move || {
            let state = CheckpointState::new();
            checkpoint(&ds2, &state).unwrap();
            tx.send(()).unwrap();
        });
        // With the "merge" in flight, the checkpoint must not complete.
        assert!(
            rx.recv_timeout(std::time::Duration::from_millis(200))
                .is_err(),
            "checkpoint ran concurrently with an in-flight merge"
        );
        drop(merge_guard);
        rx.recv_timeout(std::time::Duration::from_secs(10))
            .expect("checkpoint completes once the merge finishes");
        checkpointer.join().unwrap();
    }

    /// Regression (checkpoint under background churn): checkpoints taken
    /// while background flushes/merges retire components must stay
    /// internally consistent — crash + recover from any of them restores
    /// the oracle state.
    #[test]
    fn checkpoint_consistent_under_background_merges() {
        let ds = dataset_with(
            StrategyKind::MutableBitmap,
            MaintenanceMode::Background { workers: 2 },
            16 * 1024,
        );
        let state = CheckpointState::new();
        // Churn updates over a small key space so merges retire components
        // while checkpoints run unsynchronized with them.
        for round in 0..6 {
            for i in 0..400i64 {
                ds.upsert(&rec(i % 100, round * 1000 + i)).unwrap();
            }
            checkpoint(&ds, &state).unwrap();
        }
        ds.maintenance().quiesce().unwrap();
        ds.wal().unwrap().force().unwrap();
        checkpoint(&ds, &state).unwrap();

        simulate_crash(&ds, &state).unwrap();
        recover(&ds, &state).unwrap();
        for i in 0..100i64 {
            let got = ds.get(&Value::Int(i)).unwrap();
            let v = got
                .unwrap_or_else(|| panic!("id {i} vanished after recovery"))
                .get(1)
                .as_int()
                .unwrap();
            // Final round wrote 5000 + (300..400 mapped): id i was last
            // written by round 5 at offset i + k*100 for some k; just check
            // it is a round-5 value.
            assert!((5000..6000).contains(&v), "id {i}: stale value {v}");
        }
    }

    /// Regression (clock left behind a replayed LSN): when the *final*
    /// replayed record takes the bitmap-redo path — which does not tick
    /// the clock — recovery used to return with the clock at `lsn - 1`,
    /// so the next write reused a replayed timestamp.
    #[test]
    fn clock_advances_past_bitmap_only_replay() {
        let ds = dataset(StrategyKind::MutableBitmap);
        let state = CheckpointState::new();
        for i in 0..10 {
            ds.insert(&rec(i, i)).unwrap(); // ts 1..=10
        }
        ds.flush_all().unwrap(); // component A: (1, 10)
        checkpoint(&ds, &state).unwrap(); // checkpoint LSN 10
        ds.upsert(&rec(0, 100)).unwrap(); // ts 11, sets a bit in A
        ds.flush_all().unwrap(); // component B: (11, 11) — entry durable

        simulate_crash(&ds, &state).unwrap();
        let report = recover(&ds, &state).unwrap();
        // The only replayed record (lsn 11) is bitmap-only: its entry is
        // durable in B, but its bitmap mark postdates the checkpoint.
        assert_eq!(report.replayed, 1);
        let comp_a = ds
            .primary()
            .disk_components()
            .into_iter()
            .find(|c| c.id().min_ts == 1)
            .unwrap();
        assert_eq!(comp_a.bitmap().unwrap().count_set(), 1, "bit redone");
        // The clock must sit at/above the max replayed LSN...
        assert!(
            ds.clock().now() >= 11,
            "clock left at {} — next write would reuse LSN 11",
            ds.clock().now()
        );
        // ...so the next write gets a strictly larger timestamp.
        ds.upsert(&rec(5, 500)).unwrap();
        let tail = ds.wal().unwrap().replay(0, true).unwrap();
        // Checkpoint markers share the LSN of the op they follow; compare
        // operation records only.
        let lsns: Vec<_> = tail
            .iter()
            .filter(|r| r.op != LogOp::Checkpoint)
            .map(|r| r.lsn)
            .collect();
        assert!(
            lsns.windows(2).all(|w| w[0] < w[1]),
            "LSNs not strictly increasing: {lsns:?}"
        );
        assert!(*lsns.last().unwrap() > 11);
        assert_eq!(
            ds.get(&Value::Int(5)).unwrap().unwrap().get(1),
            &Value::Int(500)
        );
    }

    /// Regression (background jobs racing replay): with a small budget and
    /// Background mode, replay trips the memory budget — maintenance must
    /// run inline on the recovery thread, never on the runtime's workers.
    #[test]
    fn replay_maintains_inline_under_background_mode() {
        let ds = dataset_with(
            StrategyKind::Validation,
            MaintenanceMode::Background { workers: 2 },
            4 * 1024,
        );
        let state = CheckpointState::new();
        for i in 0..100 {
            ds.insert(&rec(i, i)).unwrap();
        }
        ds.maintenance().flush_now().unwrap();
        ds.maintenance().quiesce().unwrap();
        // A committed tail big enough that replaying it trips the budget —
        // written without the maintenance hook so it is all still in memory
        // (= lost) at the crash, and all of it needs replay.
        for i in 100..500 {
            ds.upsert_no_maintenance(&rec(i, i)).unwrap();
        }
        ds.wal().unwrap().force().unwrap();

        simulate_crash(&ds, &state).unwrap();
        let before = ds.stats().snapshot();
        let report = recover(&ds, &state).unwrap();
        assert!(report.replayed > 0);
        let after = ds.stats().snapshot();
        assert_eq!(
            after.jobs_enqueued, before.jobs_enqueued,
            "replay enqueued background jobs while rewinding the clock"
        );
        assert!(
            after.flushes > before.flushes,
            "replay should have flushed inline"
        );
        for i in 0..400 {
            assert!(ds.get(&Value::Int(i)).unwrap().is_some(), "id {i}");
        }
        // Background maintenance resumes normally after recovery.
        for i in 400..600 {
            ds.insert(&rec(i, i)).unwrap();
        }
        ds.maintenance().quiesce().unwrap();
        assert!(ds.get(&Value::Int(599)).unwrap().is_some());
    }

    #[test]
    fn recovery_without_wal_fails() {
        let schema = Schema::new(vec![("id", FieldType::Int)]).unwrap();
        let cfg = DatasetConfig::new(schema, 0);
        let ds = Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap();
        assert!(recover(&ds, &CheckpointState::new()).is_err());
        // And so does the crash simulation: it wipes the clock, and only
        // recover() can restore it — allowing the crash without a WAL
        // would hand out already-durable timestamps to new writes.
        assert!(simulate_crash(&ds, &CheckpointState::new()).is_err());
    }
}
