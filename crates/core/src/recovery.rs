//! Crash recovery (Sections 2.2 and 5.2).
//!
//! The engine is no-steal/no-force: disk components only ever contain
//! committed operations, so recovery performs no undo. A crash loses the
//! memory components and any bitmap mutations after the last checkpoint;
//! recovery replays committed log records "beyond the maximum component
//! LSN" — with our LSN = operation timestamp, that is every record whose
//! timestamp exceeds the newest timestamp found in any flushed component.
//! Replayed deletes/upserts re-execute their bitmap mutations (guided by
//! the update bit in the log record).

use crate::dataset::Dataset;
use crate::txn::LogOp;
use lsm_common::{Error, Record, Result, Timestamp};
use lsm_tree::BitmapSnapshot;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Checkpointed bitmap state, keyed by component ID interval (component
/// files are immutable, so the ID identifies the component).
#[derive(Debug, Default)]
pub struct CheckpointState {
    bitmaps: Mutex<HashMap<(Timestamp, Timestamp), BitmapSnapshot>>,
    lsn: Mutex<Timestamp>,
}

impl CheckpointState {
    /// Creates empty checkpoint state.
    pub fn new() -> Self {
        Self::default()
    }
}

/// What recovery did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Log records replayed.
    pub replayed: u64,
    /// Log records skipped because their effects were already in components.
    pub skipped: u64,
}

/// Takes a checkpoint: forces the log and snapshots every primary-component
/// bitmap (the paper's "regular checkpointing ... to flush dirty pages of
/// bitmaps", Section 5.2).
pub fn checkpoint(ds: &Dataset, state: &CheckpointState) -> Result<()> {
    let lsn = ds.clock().now();
    if let Some(wal) = ds.wal() {
        wal.checkpoint(lsn)?;
    }
    let mut bitmaps = state.bitmaps.lock();
    bitmaps.clear();
    for comp in ds.primary().disk_components() {
        if let Some(b) = comp.bitmap() {
            bitmaps.insert((comp.id().min_ts, comp.id().max_ts), b.snapshot());
        }
    }
    *state.lsn.lock() = lsn;
    Ok(())
}

/// Simulates a crash: memory components vanish, unforced log records are
/// lost, and bitmaps revert to their last checkpointed state.
pub fn simulate_crash(ds: &Dataset, state: &CheckpointState) -> Result<()> {
    ds.primary().clear_mem();
    if let Some(pk) = ds.pk_index() {
        pk.clear_mem();
    }
    for sec in ds.secondaries() {
        sec.tree.clear_mem();
    }
    if let Some(wal) = ds.wal() {
        wal.drop_unforced();
    }
    // Bitmaps: reset to checkpointed snapshots (zeroes when none).
    let bitmaps = state.bitmaps.lock();
    for comp in ds.primary().disk_components() {
        if let Some(live) = comp.bitmap() {
            let fresh = lsm_tree::AtomicBitmap::new(live.len());
            if let Some(snap) = bitmaps.get(&(comp.id().min_ts, comp.id().max_ts)) {
                for i in 0..snap.len() {
                    if snap.get(i) {
                        fresh.set(i);
                    }
                }
            }
            let fresh = std::sync::Arc::new(fresh);
            comp.set_bitmap(fresh.clone())?;
            // Keep the paired pk-index component on the shared bitmap.
            if let Some(pk) = ds.pk_index() {
                for kc in pk.disk_components() {
                    if kc.id() == comp.id() {
                        kc.set_bitmap(fresh.clone())?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Recovers after [`simulate_crash`]: replays committed (forced) log
/// records newer than the maximum component timestamp.
pub fn recover(ds: &Dataset, state: &CheckpointState) -> Result<RecoveryReport> {
    let wal = ds
        .wal()
        .ok_or_else(|| Error::invalid("recovery requires a write-ahead log"))?;

    // Maximum component LSN: the newest timestamp durable in any component.
    let max_component_ts = ds
        .primary()
        .disk_components()
        .iter()
        .map(|c| c.id().max_ts)
        .max()
        .unwrap_or(0);

    // Bitmap mutations since the checkpoint were lost, so bitmap-bearing
    // records must be replayed from the checkpoint LSN even if their entry
    // landed in a component already.
    let checkpoint_lsn = *state.lsn.lock();
    let from = checkpoint_lsn.min(max_component_ts);

    let records = wal.replay(from, false)?;
    let mut report = RecoveryReport::default();
    ds.set_recovering(true);
    let result = (|| -> Result<()> {
        for rec in records {
            let needs_entry_replay = rec.lsn > max_component_ts;
            let needs_bitmap_replay = rec.update_bit && rec.lsn > checkpoint_lsn;
            if !needs_entry_replay && !needs_bitmap_replay {
                report.skipped += 1;
                continue;
            }
            // Position the clock so the replayed operation re-acquires its
            // original timestamp.
            ds.clock().advance_to(rec.lsn - 1);
            let pk = crate::keys::decode_pk(&rec.key)?;
            match rec.op {
                LogOp::Insert | LogOp::Upsert => {
                    let record = Record::decode(&rec.value)?;
                    if needs_entry_replay {
                        ds.upsert(&record)?;
                    } else {
                        // Only the bitmap mutation was lost: redo it by
                        // re-marking the old version (idempotent).
                        ds.redo_bitmap_mark(&rec.key)?;
                    }
                }
                LogOp::Delete => {
                    if needs_entry_replay {
                        ds.delete(&pk)?;
                    } else {
                        ds.redo_bitmap_mark(&rec.key)?;
                    }
                }
                LogOp::Checkpoint => continue,
            }
            let _ = pk;
            report.replayed += 1;
        }
        Ok(())
    })();
    ds.set_recovering(false);
    result?;
    // New timestamps must stay above everything replayed.
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetConfig, StrategyKind};
    use lsm_common::{FieldType, Schema, Value};
    use lsm_storage::{Storage, StorageOptions};
    use std::sync::Arc;

    fn dataset(strategy: StrategyKind) -> Arc<Dataset> {
        let schema = Schema::new(vec![("id", FieldType::Int), ("v", FieldType::Int)]).unwrap();
        let mut cfg = DatasetConfig::new(schema, 0);
        cfg.strategy = strategy;
        cfg.memory_budget = usize::MAX;
        Dataset::open(
            Storage::new(StorageOptions::test()),
            Some(Storage::new(StorageOptions::test())),
            cfg,
        )
        .unwrap()
    }

    fn rec(id: i64, v: i64) -> Record {
        Record::new(vec![Value::Int(id), Value::Int(v)])
    }

    #[test]
    fn crash_loses_memory_then_recovery_restores() {
        let ds = dataset(StrategyKind::Validation);
        let state = CheckpointState::new();
        for i in 0..50 {
            ds.insert(&rec(i, i)).unwrap();
        }
        ds.flush_all().unwrap(); // durable (and forces the WAL)
        for i in 50..80 {
            ds.insert(&rec(i, i)).unwrap();
        }
        ds.wal().unwrap().force().unwrap(); // commit point

        simulate_crash(&ds, &state).unwrap();
        assert!(ds.get(&Value::Int(60)).unwrap().is_none(), "mem lost");
        assert!(ds.get(&Value::Int(10)).unwrap().is_some(), "disk survives");

        let report = recover(&ds, &state).unwrap();
        assert_eq!(report.replayed, 30);
        for i in 0..80 {
            assert!(ds.get(&Value::Int(i)).unwrap().is_some(), "id {i}");
        }
        // Post-recovery ingestion keeps working with fresh timestamps.
        ds.insert(&rec(1000, 1)).unwrap();
        assert!(ds.get(&Value::Int(1000)).unwrap().is_some());
    }

    #[test]
    fn unforced_operations_are_lost_for_good() {
        let ds = dataset(StrategyKind::Validation);
        let state = CheckpointState::new();
        ds.insert(&rec(1, 1)).unwrap();
        ds.flush_all().unwrap();
        ds.insert(&rec(2, 2)).unwrap(); // in mem, WAL not forced
        simulate_crash(&ds, &state).unwrap();
        let report = recover(&ds, &state).unwrap();
        assert_eq!(report.replayed, 0);
        assert!(ds.get(&Value::Int(2)).unwrap().is_none());
        assert!(ds.get(&Value::Int(1)).unwrap().is_some());
    }

    #[test]
    fn bitmap_mutations_replayed_after_crash() {
        let ds = dataset(StrategyKind::MutableBitmap);
        let state = CheckpointState::new();
        for i in 0..20 {
            ds.insert(&rec(i, i)).unwrap();
        }
        ds.flush_all().unwrap();
        checkpoint(&ds, &state).unwrap();
        // These upserts set bits in the flushed component's bitmap...
        for i in 0..5 {
            ds.upsert(&rec(i, 100 + i)).unwrap();
        }
        ds.wal().unwrap().force().unwrap();
        let comp = &ds.primary().disk_components()[0];
        assert_eq!(comp.bitmap().unwrap().count_set(), 5);

        // ...which the crash wipes...
        simulate_crash(&ds, &state).unwrap();
        let comp = &ds.primary().disk_components()[0];
        assert_eq!(comp.bitmap().unwrap().count_set(), 0);

        // ...and recovery redoes (update-bit records), restoring both the
        // entries and the bitmap.
        let report = recover(&ds, &state).unwrap();
        assert_eq!(report.replayed, 5);
        assert_eq!(comp.bitmap().unwrap().count_set(), 5);
        for i in 0..5 {
            assert_eq!(
                ds.get(&Value::Int(i)).unwrap().unwrap().get(1),
                &Value::Int(100 + i)
            );
        }
    }

    #[test]
    fn recovery_without_wal_fails() {
        let schema = Schema::new(vec![("id", FieldType::Int)]).unwrap();
        let cfg = DatasetConfig::new(schema, 0);
        let ds = Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap();
        assert!(recover(&ds, &CheckpointState::new()).is_err());
    }
}
