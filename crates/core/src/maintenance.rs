//! The fluent maintenance API: [`Dataset::maintenance`] → [`Maintenance`] →
//! [`RepairPlan`].
//!
//! Index repair (Section 4.4) has four historical entry points —
//! `full_repair`, `standalone_repair_secondary`, `merge_repair_secondary`,
//! and the DELI-style `primary_repair` — each taking trees and option
//! structs the caller had to keep consistent with the dataset's strategy.
//! The facade wraps them behind three verbs, with a [`RepairPlan`] builder
//! for the mode / Bloom-filter / merge-scan knobs:
//!
//! ```text
//! ds.maintenance().repair_all()?;                      // strategy-aware defaults
//! ds.maintenance().repair_index("user_id")?;           // one index
//! ds.maintenance().repair_primary()?;                  // DELI baseline
//! ds.maintenance().plan().bloom(true).parallel(true).repair_all()?;
//! ```
//!
//! Strategy awareness: a `DeletedKeyBTree` dataset resolves to
//! [`RepairMode::DeletedKeyBTree`] (full validation + deleted-key B+-tree
//! write, Section 4.1), everything else to
//! [`RepairMode::PrimaryKeyIndex`] with the dataset's configured
//! `repair_bloom_opt` — so `repair_all()` does the right thing for each of
//! the four strategies without the caller naming a mode.

use crate::dataset::Dataset;
use crate::repair::{self, RepairMode, RepairOptions, RepairReport};
use lsm_common::{Error, Result};
use lsm_tree::MergeRange;

impl Dataset {
    /// Entry point to the fluent maintenance API.
    pub fn maintenance(&self) -> Maintenance<'_> {
        Maintenance { ds: self }
    }
}

/// Maintenance facade over a dataset; obtained from [`Dataset::maintenance`].
#[derive(Debug, Clone, Copy)]
pub struct Maintenance<'a> {
    ds: &'a Dataset,
}

impl<'a> Maintenance<'a> {
    /// Starts a repair plan with strategy-aware defaults.
    pub fn plan(&self) -> RepairPlan<'a> {
        RepairPlan {
            ds: self.ds,
            mode: self.ds.config().default_repair_mode(),
            merge_scan: true,
            parallel: false,
            with_merge: false,
        }
    }

    /// Standalone-repairs every secondary index with the default plan.
    pub fn repair_all(&self) -> Result<Vec<RepairReport>> {
        self.plan().repair_all()
    }

    /// Standalone-repairs one secondary index with the default plan.
    pub fn repair_index(&self, name: &str) -> Result<RepairReport> {
        self.plan().repair_index(name)
    }

    /// Runs a DELI-style primary repair (Section 4.1) with the default plan.
    pub fn repair_primary(&self) -> Result<u64> {
        self.plan().repair_primary()
    }

    /// Flushes all memory components together (alias of
    /// [`Maintenance::flush_now`]: synchronous in either maintenance mode,
    /// handing follow-up merges to the background pool when one runs).
    pub fn flush(&self) -> Result<bool> {
        self.flush_now()
    }

    /// Runs policy-driven merges until quiescent.
    pub fn run_merges(&self) -> Result<()> {
        self.ds.run_merges()
    }

    // ---- background maintenance -------------------------------------------

    /// Moves maintenance off the writer's critical path: starts a private
    /// fixed-size [`MaintenanceRuntime`](crate::MaintenanceRuntime) with
    /// `workers` threads executing this dataset's flush and merge jobs.
    /// Writers then only *enqueue* work when the memory budget trips, and
    /// stall solely at the hard ceiling
    /// ([`DatasetConfig::memory_ceiling`](crate::DatasetConfig)). Errors if
    /// the dataset is already registered on a runtime or `workers` is zero.
    ///
    /// Datasets opened with
    /// [`MaintenanceMode::Background`](crate::MaintenanceMode) start their
    /// private runtime automatically; datasets opened with
    /// [`Dataset::open_with_runtime`](crate::Dataset::open_with_runtime)
    /// share the caller's.
    pub fn background(&self, workers: usize) -> Result<()> {
        self.ds.start_background(workers)
    }

    /// Blocks until *this dataset's* background jobs — queued and
    /// in-flight — have completed (a no-op in inline mode), then surfaces
    /// any background failure. On a shared runtime, other datasets' queued
    /// jobs are left untouched. The dataset is structurally quiescent
    /// afterwards — the state multi-threaded tests verify against.
    pub fn quiesce(&self) -> Result<()> {
        self.ds.drain_background();
        self.ds.maintenance_stats_refresh();
        self.ds.check_poisoned()
    }

    /// Flushes synchronously on the calling thread regardless of mode,
    /// handing any follow-up merge work to the background runtime when one
    /// is attached. Returns `true` if anything was flushed.
    pub fn flush_now(&self) -> Result<bool> {
        let flushed = self.ds.flush_all()?;
        if let Some(handle) = self.ds.runtime_handle() {
            self.ds.schedule_planned_merges(handle);
        }
        Ok(flushed)
    }
}

/// A configured repair, built from [`Maintenance::plan`].
#[derive(Debug, Clone, Copy)]
#[must_use = "a RepairPlan does nothing until a repair verb is called"]
pub struct RepairPlan<'a> {
    ds: &'a Dataset,
    mode: RepairMode,
    merge_scan: bool,
    parallel: bool,
    with_merge: bool,
}

impl RepairPlan<'_> {
    /// Overrides the validation mode outright.
    pub fn mode(mut self, mode: RepairMode) -> Self {
        self.mode = mode;
        self
    }

    /// Toggles the Bloom-filter optimization (Section 4.4) within the
    /// primary-key-index mode; a no-op for the deleted-key B+-tree mode.
    pub fn bloom(mut self, on: bool) -> Self {
        if let RepairMode::PrimaryKeyIndex { .. } = self.mode {
            self.mode = RepairMode::PrimaryKeyIndex { bloom_opt: on };
        }
        self
    }

    /// Toggles the merge-scan optimization (point validation vs merge join,
    /// Section 4.4).
    pub fn merge_scan(mut self, on: bool) -> Self {
        self.merge_scan = on;
        self
    }

    /// Repairs secondary indexes on one thread each (Section 6.5).
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Piggybacks a merge: [`RepairPlan::repair_index`] merge-repairs all of
    /// the index's components into one (Figure 7); `repair_primary`
    /// additionally merges the primary components, as DELI does.
    pub fn with_merge(mut self, on: bool) -> Self {
        self.with_merge = on;
        self
    }

    /// The resolved low-level options (inspectable in tests and benches).
    pub fn options(&self) -> RepairOptions {
        RepairOptions {
            mode: self.mode,
            merge_scan_opt: self.merge_scan,
        }
    }

    /// Brings every secondary index up-to-date with standalone repairs
    /// (the Figure 20 measurement loop).
    pub fn repair_all(self) -> Result<Vec<RepairReport>> {
        repair::repair_all_secondaries(self.ds, &self.options(), self.parallel)
    }

    /// Repairs the named secondary index: a standalone repair (fresh
    /// bitmaps) by default, or a merge repair of all its disk components
    /// when [`RepairPlan::with_merge`] is set.
    pub fn repair_index(self, name: &str) -> Result<RepairReport> {
        let sec = self.ds.secondary(name)?;
        let pk_tree = self
            .ds
            .pk_index()
            .ok_or_else(|| Error::invalid("index repair requires the primary key index"))?;
        if self.with_merge {
            // Merge-repair splices the index's component list, so it must
            // not race a background merge; the count is derived under the
            // same lock.
            let _merges = self.ds.merge_serialization().lock();
            let n = sec.tree.num_disk_components();
            if n == 0 {
                return Ok(RepairReport::default());
            }
            repair::merge_repair(
                &sec.tree,
                pk_tree,
                MergeRange {
                    start: 0,
                    end: n - 1,
                },
                &self.options(),
            )
        } else {
            repair::standalone_repair(&sec.tree, pk_tree, &self.options())
        }
    }

    /// DELI-style primary repair (Section 4.1): scans primary components
    /// for obsolete record versions and plants secondary anti-matter,
    /// merging the primary when [`RepairPlan::with_merge`] is set. Returns
    /// the number of obsolete versions repaired.
    pub fn repair_primary(self) -> Result<u64> {
        repair::deli_primary_repair(self.ds, self.with_merge)
    }
}
