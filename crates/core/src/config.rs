//! Dataset configuration.
//!
//! A dataset (Section 3, Figure 1) has a primary index, an optional primary
//! key index, and a set of secondary indexes, all LSM-trees sharing one
//! memory budget so they flush together. The maintenance strategy decides
//! how auxiliary structures are kept consistent under deletes and upserts.

use lsm_common::{Error, Result, Schema};
use lsm_tree::TieringPolicy;

/// How auxiliary structures (secondary indexes, filters) are maintained
/// during ingestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Point lookup before every write; anti-matter for old versions; always
    /// up-to-date indexes (Section 3.1 — AsterixDB/MyRocks/Phoenix default).
    Eager,
    /// Lazy: inserts only, obsolete entries cleaned by background repair;
    /// queries validate via the primary key index (Section 4).
    Validation,
    /// Deletes applied in place to disk components through mutable bitmaps,
    /// located via the primary key index (Section 5). Secondary indexes are
    /// maintained with the Validation strategy.
    MutableBitmap,
    /// AsterixDB's deleted-key B+-tree baseline: lazy inserts like
    /// Validation, but merge-time cleanup validates against the full primary
    /// key index (no repaired-timestamp pruning) and writes a per-component
    /// deleted-key B+-tree for each secondary index (Section 4.1).
    DeletedKeyBTree,
}

impl StrategyKind {
    /// True if index entries carry ingestion timestamps.
    pub fn stores_timestamps(self) -> bool {
        !matches!(self, StrategyKind::Eager)
    }
}

/// Where structural maintenance (flushes and merges) runs.
///
/// The paper's concurrency-control machinery (Section 5.3) is designed so
/// that writers proceed *while* components are rebuilt; this knob decides
/// whether the rebuilds themselves happen on the writer's thread or on a
/// pool of background workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceMode {
    /// Flush and merge synchronously on the ingesting thread when the
    /// memory budget trips. Deterministic — the mode used by the simulated
    /// (`sim_clock`) experiments and most tests.
    Inline,
    /// Enqueue flush/merge jobs on a private
    /// [`MaintenanceRuntime`](crate::MaintenanceRuntime) with exactly
    /// `workers` threads; writers only stall when memory exceeds the hard
    /// ceiling ([`DatasetConfig::memory_ceiling`]). To share one runtime
    /// across many datasets, open them with
    /// [`Dataset::open_with_runtime`](crate::Dataset::open_with_runtime)
    /// instead.
    Background {
        /// Worker threads in the pool (at least 1).
        workers: usize,
    },
}

/// Configuration of an engine-wide
/// [`MaintenanceRuntime`](crate::MaintenanceRuntime): one bounded worker
/// pool serving every registered dataset, instead of one pool per dataset.
///
/// Build with [`EngineConfig::builder`]:
///
/// ```
/// use lsm_engine::EngineConfig;
/// let cfg = EngineConfig::builder()
///     .min_workers(1)
///     .max_workers(4)
///     .io_read_limit(64 * 1024 * 1024) // throttle rebuild scans to 64MB/s
///     .io_write_limit(32 * 1024 * 1024) // and rebuild output to 32MB/s
///     .max_jobs_per_dataset(2) // ≤ 2 concurrent merges per dataset
///     .build()
///     .unwrap();
/// assert_eq!(cfg.max_workers, 4);
/// ```
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Permanent worker threads (spawned at startup, always running).
    pub min_workers: usize,
    /// Hard cap on concurrent maintenance threads. When the queue is deeper
    /// than the live worker count, transient workers are spawned up to this
    /// cap and retire once the queue drains.
    pub max_workers: usize,
    /// Token-bucket rate limit on device bytes *read* by maintenance jobs
    /// (flush builds and merge/rebuild scans). `None` disables throttling.
    pub io_read_bytes_per_sec: Option<u64>,
    /// Read-bucket burst capacity in bytes. `None` defaults to one second
    /// of the configured rate.
    pub io_burst_bytes: Option<u64>,
    /// Token-bucket rate limit on device bytes *written* by maintenance
    /// jobs (flush builds and merge outputs). Foreground WAL/commit writes
    /// are exempt. `None` disables write throttling.
    pub io_write_bytes_per_sec: Option<u64>,
    /// Write-bucket burst capacity in bytes. `None` defaults to one second
    /// of the configured rate.
    pub io_write_burst_bytes: Option<u64>,
    /// Cap on *concurrently running merge* jobs per dataset. With
    /// `Some(n)`, a dataset's merges never occupy more than `n` of the
    /// runtime's workers, no matter how much work it has queued — the
    /// fairness backstop that keeps one hot dataset from monopolizing the
    /// pool with long merges. Flushes are exempt: they release stalled
    /// writer memory, so a dataset's flush must never wait out its own
    /// in-flight merge. `None` (the default, and the shape of
    /// [`EngineConfig::fixed`] private pools) disables the cap.
    pub max_jobs_per_dataset: Option<usize>,
    /// Deficit-round-robin quantum in bytes for ordering merge jobs across
    /// datasets within the merge priority class. Each time a dataset's
    /// turn comes around it earns this many bytes of merge credit; a
    /// dataset with a large merge waits several turns while datasets with
    /// small merges are served — proportional fairness rather than global
    /// smallest-first. Flush jobs are uniform and round-robin without
    /// deficits.
    pub fairness_quantum_bytes: u64,
    /// Worker threads in the runtime's shared **query pool**, used by
    /// [`QueryBuilder::parallel`](crate::QueryBuilder::parallel) to fan
    /// partitioned scans and candidate fetches across cores. `0` (the
    /// default) starts no pool: parallel queries on datasets registered
    /// with the runtime then fall back to ephemeral threads per query. A
    /// shared pool bounds engine-wide query parallelism the same way
    /// `max_workers` bounds maintenance threads.
    pub query_workers: usize,
}

/// Default DRR quantum: 1 MiB per turn keeps small merges responsive while
/// letting a 64 MiB merge through within ~64 scheduling turns.
pub const DEFAULT_FAIRNESS_QUANTUM: u64 = 1024 * 1024;

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            min_workers: 1,
            max_workers: 4,
            io_read_bytes_per_sec: None,
            io_burst_bytes: None,
            io_write_bytes_per_sec: None,
            io_write_burst_bytes: None,
            max_jobs_per_dataset: None,
            fairness_quantum_bytes: DEFAULT_FAIRNESS_QUANTUM,
            query_workers: 0,
        }
    }
}

impl EngineConfig {
    /// Starts building a runtime configuration from the defaults.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            cfg: EngineConfig::default(),
        }
    }

    /// A fixed-size pool: `min_workers == max_workers == workers`, no
    /// throttling (the shape of the per-dataset
    /// [`MaintenanceMode::Background`] pool).
    pub fn fixed(workers: usize) -> Self {
        EngineConfig {
            min_workers: workers,
            max_workers: workers,
            ..EngineConfig::default()
        }
    }

    /// The effective read-bucket burst: configured value, or one second of
    /// the rate.
    pub fn effective_burst_bytes(&self) -> Option<u64> {
        self.io_read_bytes_per_sec
            .map(|rate| self.io_burst_bytes.unwrap_or(rate).max(1))
    }

    /// The effective write-bucket burst: configured value, or one second
    /// of the rate.
    pub fn effective_write_burst_bytes(&self) -> Option<u64> {
        self.io_write_bytes_per_sec
            .map(|rate| self.io_write_burst_bytes.unwrap_or(rate).max(1))
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.min_workers == 0 {
            return Err(Error::invalid("runtime requires at least one worker"));
        }
        if self.max_workers < self.min_workers {
            return Err(Error::invalid("max_workers must be at least min_workers"));
        }
        if self.io_read_bytes_per_sec == Some(0) {
            return Err(Error::invalid("io_read_bytes_per_sec must be non-zero"));
        }
        if self.io_burst_bytes.is_some() && self.io_read_bytes_per_sec.is_none() {
            return Err(Error::invalid(
                "io_burst_bytes requires io_read_bytes_per_sec (a burst without a rate \
                 would silently leave maintenance I/O unthrottled)",
            ));
        }
        if self.io_burst_bytes == Some(0) {
            return Err(Error::invalid(
                "io_burst_bytes must be non-zero (a zero burst would collapse maintenance \
                 reads to one byte per refill regardless of the rate)",
            ));
        }
        if self.io_write_bytes_per_sec == Some(0) {
            return Err(Error::invalid("io_write_bytes_per_sec must be non-zero"));
        }
        if self.io_write_burst_bytes.is_some() && self.io_write_bytes_per_sec.is_none() {
            return Err(Error::invalid(
                "io_write_burst_bytes requires io_write_bytes_per_sec (a burst without a \
                 rate would silently leave maintenance writes unthrottled)",
            ));
        }
        if self.io_write_burst_bytes == Some(0) {
            return Err(Error::invalid(
                "io_write_burst_bytes must be non-zero (a zero burst would collapse \
                 maintenance writes to one byte per refill regardless of the rate)",
            ));
        }
        if self.max_jobs_per_dataset == Some(0) {
            return Err(Error::invalid(
                "max_jobs_per_dataset must be non-zero (a zero quota would deadlock every \
                 dataset's maintenance)",
            ));
        }
        if self.fairness_quantum_bytes == 0 {
            return Err(Error::invalid(
                "fairness_quantum_bytes must be non-zero (a zero quantum never accrues \
                 merge credit, starving every merge)",
            ));
        }
        Ok(())
    }
}

/// Builder for [`EngineConfig`]; obtained from [`EngineConfig::builder`].
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
}

impl EngineConfigBuilder {
    /// Sets the permanent worker count.
    pub fn min_workers(mut self, n: usize) -> Self {
        self.cfg.min_workers = n;
        self
    }

    /// Sets the maintenance-thread cap.
    pub fn max_workers(mut self, n: usize) -> Self {
        self.cfg.max_workers = n;
        self
    }

    /// Fixes the pool size: `min_workers = max_workers = n` (no adaptive
    /// scaling).
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.min_workers = n;
        self.cfg.max_workers = n;
        self
    }

    /// Throttles maintenance device reads to `bytes_per_sec`.
    pub fn io_read_limit(mut self, bytes_per_sec: u64) -> Self {
        self.cfg.io_read_bytes_per_sec = Some(bytes_per_sec);
        self
    }

    /// Sets the read-throttle burst capacity.
    pub fn io_burst(mut self, bytes: u64) -> Self {
        self.cfg.io_burst_bytes = Some(bytes);
        self
    }

    /// Throttles maintenance device writes (flush builds, merge outputs)
    /// to `bytes_per_sec`. Foreground WAL/commit writes are exempt.
    pub fn io_write_limit(mut self, bytes_per_sec: u64) -> Self {
        self.cfg.io_write_bytes_per_sec = Some(bytes_per_sec);
        self
    }

    /// Sets the write-throttle burst capacity.
    pub fn io_write_burst(mut self, bytes: u64) -> Self {
        self.cfg.io_write_burst_bytes = Some(bytes);
        self
    }

    /// Caps how many of the runtime's workers one dataset's *merges* may
    /// occupy concurrently (the per-dataset job quota; flushes are
    /// exempt).
    pub fn max_jobs_per_dataset(mut self, n: usize) -> Self {
        self.cfg.max_jobs_per_dataset = Some(n);
        self
    }

    /// Sets the deficit-round-robin quantum for cross-dataset merge
    /// ordering (bytes of merge credit earned per scheduling turn).
    pub fn fairness_quantum(mut self, bytes: u64) -> Self {
        self.cfg.fairness_quantum_bytes = bytes;
        self
    }

    /// Starts a shared query pool of `n` worker threads on the runtime,
    /// serving every registered dataset's
    /// [`QueryBuilder::parallel`](crate::QueryBuilder::parallel) queries.
    pub fn query_workers(mut self, n: usize) -> Self {
        self.cfg.query_workers = n;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<EngineConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Definition of one secondary index.
#[derive(Debug, Clone)]
pub struct SecondaryIndexDef {
    /// Index name (unique within the dataset).
    pub name: String,
    /// The schema field this index is built on.
    pub field: usize,
}

/// Merge configuration.
#[derive(Debug, Clone)]
pub struct MergeConfig {
    /// Tiering size ratio (1.2 in Section 6.1).
    pub size_ratio: f64,
    /// Maximum mergeable component size (1GB in the paper, scaled here).
    pub max_mergeable_bytes: u64,
    /// Merge all of the dataset's indexes in lockstep (the correlated merge
    /// policy of Sections 4.4/5.1). Forced on for Mutable-bitmap datasets.
    pub correlated: bool,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig {
            size_ratio: 1.2,
            max_mergeable_bytes: 64 * 1024 * 1024,
            correlated: false,
        }
    }
}

impl MergeConfig {
    pub(crate) fn policy(&self) -> TieringPolicy {
        TieringPolicy {
            size_ratio: self.size_ratio,
            max_mergeable_bytes: self.max_mergeable_bytes,
            min_merge_components: 2,
        }
    }
}

/// Full dataset configuration.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Record schema.
    pub schema: Schema,
    /// Which field is the primary key.
    pub pk_field: usize,
    /// Secondary indexes.
    pub secondary_indexes: Vec<SecondaryIndexDef>,
    /// Field carrying the component range filters on the primary index
    /// (the paper's `creation_time`), if any.
    pub filter_field: Option<usize>,
    /// Maintenance strategy.
    pub strategy: StrategyKind,
    /// Build a primary key index (Section 3; the paper evaluates inserts
    /// with and without it). Forced on for Validation/Mutable-bitmap.
    pub with_pk_index: bool,
    /// Shared memory-component budget in bytes (128MB in Section 6.1,
    /// scaled here). When the combined memory components exceed it, all
    /// indexes flush together.
    pub memory_budget: usize,
    /// Merge configuration.
    pub merge: MergeConfig,
    /// Bloom filter variant for primary / primary-key components.
    pub bloom_kind: lsm_bloom::BloomKind,
    /// Bloom filter false-positive rate (1% in Section 6.1).
    pub bloom_fpr: f64,
    /// Repair secondary indexes during merges (Validation strategy).
    pub merge_repair: bool,
    /// Use Bloom filters of the primary key index to skip validation during
    /// repair (Section 4.4; requires correlated merges).
    pub repair_bloom_opt: bool,
    /// Where flushes and merges run (inline on the writer, or on a
    /// background worker pool).
    pub maintenance: MaintenanceMode,
    /// Hard memory ceiling for backpressure in background mode: writers
    /// stall once active + flushing memory exceeds this. `None` defaults to
    /// twice the memory budget. Ignored in inline mode (the writer flushes
    /// before it can overshoot).
    pub memory_ceiling: Option<usize>,
    /// Concurrency-control method used when a *background* merge of
    /// mutable-bitmap components races live writers (Section 5.3). Inline
    /// merges need no coordination — there are no concurrent rebuilds.
    pub cc_method: crate::cc::CcMethod,
    /// Hash shards for each index's active memory component. `1` (the
    /// default) is byte-identical to the classic single-memtable engine;
    /// larger values let concurrent writers on different shards ingest
    /// without contending, at the cost of one disk component per non-empty
    /// shard per flush.
    pub memtable_shards: usize,
}

impl DatasetConfig {
    /// A reasonable default configuration over `schema`.
    pub fn new(schema: Schema, pk_field: usize) -> Self {
        DatasetConfig {
            schema,
            pk_field,
            secondary_indexes: Vec::new(),
            filter_field: None,
            strategy: StrategyKind::Eager,
            with_pk_index: true,
            memory_budget: 4 * 1024 * 1024,
            merge: MergeConfig::default(),
            bloom_kind: lsm_bloom::BloomKind::Standard,
            bloom_fpr: 0.01,
            merge_repair: true,
            repair_bloom_opt: false,
            maintenance: MaintenanceMode::Inline,
            memory_ceiling: None,
            cc_method: crate::cc::CcMethod::SideFile,
            memtable_shards: 1,
        }
    }

    /// The effective backpressure ceiling (Background mode): configured
    /// value, or twice the memory budget.
    pub fn effective_memory_ceiling(&self) -> usize {
        self.memory_ceiling
            .unwrap_or_else(|| self.memory_budget.saturating_mul(2))
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.pk_field >= self.schema.arity() {
            return Err(Error::invalid("pk_field out of range"));
        }
        if let Some(f) = self.filter_field {
            if f >= self.schema.arity() {
                return Err(Error::invalid("filter_field out of range"));
            }
        }
        let mut names = std::collections::HashSet::new();
        for def in &self.secondary_indexes {
            if def.field >= self.schema.arity() {
                return Err(Error::invalid(format!(
                    "secondary index {:?} field out of range",
                    def.name
                )));
            }
            if def.field == self.pk_field {
                return Err(Error::invalid("secondary index on the primary key"));
            }
            if !names.insert(def.name.clone()) {
                return Err(Error::invalid(format!(
                    "duplicate secondary index name {:?}",
                    def.name
                )));
            }
        }
        if matches!(
            self.strategy,
            StrategyKind::Validation | StrategyKind::MutableBitmap | StrategyKind::DeletedKeyBTree
        ) && !self.with_pk_index
        {
            return Err(Error::invalid(
                "this maintenance strategy requires the primary key index",
            ));
        }
        if self.repair_bloom_opt && !self.merge.correlated {
            return Err(Error::invalid(
                "the repair Bloom-filter optimization requires correlated merges",
            ));
        }
        if matches!(self.maintenance, MaintenanceMode::Background { workers: 0 }) {
            return Err(Error::invalid(
                "background maintenance requires at least one worker",
            ));
        }
        if let Some(ceiling) = self.memory_ceiling {
            if ceiling < self.memory_budget {
                return Err(Error::invalid(
                    "memory_ceiling must be at least the memory budget",
                ));
            }
        }
        if self.memtable_shards == 0 {
            return Err(Error::invalid(
                "memtable_shards must be at least 1 (1 = the classic single memtable)",
            ));
        }
        Ok(())
    }

    /// True if the dataset needs correlated merges regardless of the merge
    /// config (Mutable-bitmap pairs primary and primary-key components).
    pub fn requires_correlated_merges(&self) -> bool {
        matches!(self.strategy, StrategyKind::MutableBitmap) || self.merge.correlated
    }

    /// The repair mode implied by the maintenance strategy: the deleted-key
    /// B+-tree baseline validates against the full primary key index and
    /// writes its extra trees (Section 4.1); everything else validates with
    /// repaired-timestamp pruning, honouring `repair_bloom_opt`. Shared by
    /// merge-time repair and the [`Maintenance`](crate::Maintenance) facade.
    pub fn default_repair_mode(&self) -> crate::repair::RepairMode {
        match self.strategy {
            StrategyKind::DeletedKeyBTree => crate::repair::RepairMode::DeletedKeyBTree,
            _ => crate::repair::RepairMode::PrimaryKeyIndex {
                bloom_opt: self.repair_bloom_opt,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_common::FieldType;

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", FieldType::Int),
            ("user_id", FieldType::Int),
            ("time", FieldType::Int),
        ])
        .unwrap()
    }

    #[test]
    fn valid_config_passes() {
        let mut c = DatasetConfig::new(schema(), 0);
        c.secondary_indexes.push(SecondaryIndexDef {
            name: "user_id".into(),
            field: 1,
        });
        c.filter_field = Some(2);
        c.validate().unwrap();
    }

    #[test]
    fn rejects_bad_fields() {
        let mut c = DatasetConfig::new(schema(), 5);
        assert!(c.validate().is_err());
        c.pk_field = 0;
        c.filter_field = Some(9);
        assert!(c.validate().is_err());
        c.filter_field = None;
        c.secondary_indexes.push(SecondaryIndexDef {
            name: "pk".into(),
            field: 0,
        });
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_duplicate_index_names() {
        let mut c = DatasetConfig::new(schema(), 0);
        for _ in 0..2 {
            c.secondary_indexes.push(SecondaryIndexDef {
                name: "x".into(),
                field: 1,
            });
        }
        assert!(c.validate().is_err());
    }

    #[test]
    fn lazy_strategies_require_pk_index() {
        let mut c = DatasetConfig::new(schema(), 0);
        c.strategy = StrategyKind::Validation;
        c.with_pk_index = false;
        assert!(c.validate().is_err());
        c.with_pk_index = true;
        c.validate().unwrap();
    }

    #[test]
    fn bloom_opt_requires_correlated() {
        let mut c = DatasetConfig::new(schema(), 0);
        c.repair_bloom_opt = true;
        assert!(c.validate().is_err());
        c.merge.correlated = true;
        c.validate().unwrap();
    }

    #[test]
    fn background_mode_requires_workers() {
        let mut c = DatasetConfig::new(schema(), 0);
        c.maintenance = MaintenanceMode::Background { workers: 0 };
        assert!(c.validate().is_err());
        c.maintenance = MaintenanceMode::Background { workers: 2 };
        c.validate().unwrap();
    }

    #[test]
    fn memtable_shards_must_be_positive() {
        let mut c = DatasetConfig::new(schema(), 0);
        assert_eq!(c.memtable_shards, 1, "default is the classic memtable");
        c.memtable_shards = 0;
        assert!(c.validate().is_err());
        c.memtable_shards = 8;
        c.validate().unwrap();
    }

    #[test]
    fn memory_ceiling_must_cover_budget() {
        let mut c = DatasetConfig::new(schema(), 0);
        c.memory_budget = 1024;
        c.memory_ceiling = Some(512);
        assert!(c.validate().is_err());
        c.memory_ceiling = Some(1024);
        c.validate().unwrap();
        c.memory_ceiling = None;
        assert_eq!(c.effective_memory_ceiling(), 2048);
    }

    #[test]
    fn engine_config_builder_validates() {
        assert!(EngineConfig::builder().min_workers(0).build().is_err());
        assert!(EngineConfig::builder()
            .min_workers(3)
            .max_workers(2)
            .build()
            .is_err());
        assert!(EngineConfig::builder().io_read_limit(0).build().is_err());
        assert!(
            EngineConfig::builder().io_burst(4096).build().is_err(),
            "burst without a rate must not validate"
        );
        assert!(
            EngineConfig::builder()
                .io_read_limit(1024)
                .io_burst(0)
                .build()
                .is_err(),
            "zero burst must not validate"
        );
        let cfg = EngineConfig::builder()
            .workers(2)
            .io_read_limit(1024)
            .build()
            .unwrap();
        assert_eq!((cfg.min_workers, cfg.max_workers), (2, 2));
        assert_eq!(cfg.effective_burst_bytes(), Some(1024));
        let fixed = EngineConfig::fixed(3);
        assert_eq!((fixed.min_workers, fixed.max_workers), (3, 3));
        assert_eq!(fixed.effective_burst_bytes(), None);
        assert_eq!(fixed.max_jobs_per_dataset, None, "private pools uncapped");
    }

    #[test]
    fn engine_config_write_throttle_and_quota_validate() {
        assert!(EngineConfig::builder().io_write_limit(0).build().is_err());
        assert!(
            EngineConfig::builder()
                .io_write_burst(4096)
                .build()
                .is_err(),
            "write burst without a rate must not validate"
        );
        assert!(
            EngineConfig::builder()
                .io_write_limit(1024)
                .io_write_burst(0)
                .build()
                .is_err(),
            "zero write burst must not validate"
        );
        assert!(
            EngineConfig::builder()
                .max_jobs_per_dataset(0)
                .build()
                .is_err(),
            "a zero quota would deadlock maintenance"
        );
        assert!(
            EngineConfig::builder().fairness_quantum(0).build().is_err(),
            "a zero quantum starves every merge"
        );
        let cfg = EngineConfig::builder()
            .workers(2)
            .io_write_limit(2048)
            .max_jobs_per_dataset(2)
            .fairness_quantum(64 * 1024)
            .build()
            .unwrap();
        assert_eq!(cfg.effective_write_burst_bytes(), Some(2048));
        assert_eq!(cfg.max_jobs_per_dataset, Some(2));
        assert_eq!(cfg.fairness_quantum_bytes, 64 * 1024);
        // Read and write throttles are independent knobs.
        assert_eq!(cfg.effective_burst_bytes(), None);
    }

    #[test]
    fn strategy_timestamps() {
        assert!(!StrategyKind::Eager.stores_timestamps());
        assert!(StrategyKind::Validation.stores_timestamps());
        assert!(StrategyKind::MutableBitmap.stores_timestamps());
        assert!(StrategyKind::DeletedKeyBTree.stores_timestamps());
    }
}
