//! Record-level key locks.
//!
//! The paper assumes record-level transactions where each writer holds an
//! exclusive lock on the primary key for the duration of the operation
//! (Section 5.2), and the Lock concurrency-control method additionally has
//! the component builder take shared locks on scanned keys (Figure 10a).
//!
//! The manager is a sharded table of per-key S/X lock states with condvar
//! waiting. Lock holds here are short (one operation), so there is no
//! deadlock detection — lock acquisition is single-key at a time.

use lsm_common::Key;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;

const SHARDS: usize = 16;

#[derive(Debug, Default)]
struct LockState {
    /// Number of shared holders; `u32::MAX` marks an exclusive hold.
    holders: u32,
    waiting: u32,
}

#[derive(Default)]
struct Shard {
    table: Mutex<HashMap<Key, LockState>>,
    cv: Condvar,
}

/// A sharded S/X key lock manager.
#[derive(Default)]
pub struct LockManager {
    shards: Vec<Shard>,
}

impl std::fmt::Debug for LockManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockManager").finish()
    }
}

const X_HOLD: u32 = u32::MAX;

impl LockManager {
    /// Creates a lock manager.
    pub fn new() -> Self {
        LockManager {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
        }
    }

    fn shard(&self, key: &[u8]) -> &Shard {
        let h = lsm_bloom::hash64(key, 0x10C4) as usize;
        &self.shards[h % SHARDS]
    }

    /// Acquires a shared lock on `key`, blocking while an exclusive holder
    /// exists.
    pub fn lock_shared(&self, key: &[u8]) {
        let shard = self.shard(key);
        let mut table = shard.table.lock();
        loop {
            let state = table.entry(key.to_vec()).or_default();
            if state.holders != X_HOLD {
                state.holders += 1;
                return;
            }
            state.waiting += 1;
            shard.cv.wait(&mut table);
            if let Some(s) = table.get_mut(key) {
                s.waiting -= 1;
            }
        }
    }

    /// Acquires an exclusive lock on `key`, blocking while any holder exists.
    pub fn lock_exclusive(&self, key: &[u8]) {
        let shard = self.shard(key);
        let mut table = shard.table.lock();
        loop {
            let state = table.entry(key.to_vec()).or_default();
            if state.holders == 0 {
                state.holders = X_HOLD;
                return;
            }
            state.waiting += 1;
            shard.cv.wait(&mut table);
            if let Some(s) = table.get_mut(key) {
                s.waiting -= 1;
            }
        }
    }

    /// Releases a shared lock.
    pub fn unlock_shared(&self, key: &[u8]) {
        let shard = self.shard(key);
        let mut table = shard.table.lock();
        // INVARIANT: callers pair this with a successful lock_shared (the
        // with_* helpers enforce it); unlocking an unheld key is a caller bug.
        let state = table.get_mut(key).expect("unlock of unheld key");
        assert!(state.holders != X_HOLD && state.holders > 0, "not S-held");
        state.holders -= 1;
        if state.holders == 0 {
            if state.waiting == 0 {
                table.remove(key);
            }
            shard.cv.notify_all();
        }
    }

    /// Releases an exclusive lock.
    pub fn unlock_exclusive(&self, key: &[u8]) {
        let shard = self.shard(key);
        let mut table = shard.table.lock();
        // INVARIANT: callers pair this with a successful lock_exclusive (the
        // with_* helpers enforce it); unlocking an unheld key is a caller bug.
        let state = table.get_mut(key).expect("unlock of unheld key");
        assert!(state.holders == X_HOLD, "not X-held");
        state.holders = 0;
        if state.waiting == 0 {
            table.remove(key);
        }
        shard.cv.notify_all();
    }

    /// Runs `f` under a shared lock on `key`.
    pub fn with_shared<T>(&self, key: &[u8], f: impl FnOnce() -> T) -> T {
        self.lock_shared(key);
        let out = f();
        self.unlock_shared(key);
        out
    }

    /// Runs `f` under an exclusive lock on `key`.
    pub fn with_exclusive<T>(&self, key: &[u8], f: impl FnOnce() -> T) -> T {
        self.lock_exclusive(key);
        let out = f();
        self.unlock_exclusive(key);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn shared_locks_coexist() {
        let m = LockManager::new();
        m.lock_shared(b"k");
        m.lock_shared(b"k");
        m.unlock_shared(b"k");
        m.unlock_shared(b"k");
    }

    #[test]
    fn exclusive_excludes() {
        let m = Arc::new(LockManager::new());
        m.lock_exclusive(b"k");
        let m2 = m.clone();
        let entered = Arc::new(AtomicU32::new(0));
        let e2 = entered.clone();
        let h = std::thread::spawn(move || {
            m2.lock_shared(b"k");
            e2.store(1, Ordering::SeqCst);
            m2.unlock_shared(b"k");
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(entered.load(Ordering::SeqCst), 0, "S acquired during X");
        m.unlock_exclusive(b"k");
        h.join().unwrap();
        assert_eq!(entered.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn different_keys_do_not_block() {
        let m = LockManager::new();
        m.lock_exclusive(b"a");
        m.lock_exclusive(b"b"); // would deadlock if keys collided
        m.unlock_exclusive(b"a");
        m.unlock_exclusive(b"b");
    }

    #[test]
    fn concurrent_increments_under_x_lock_are_exact() {
        let m = Arc::new(LockManager::new());
        let counter = Arc::new(AtomicU32::new(0));
        let mut handles = vec![];
        for _ in 0..4 {
            let m = m.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.with_exclusive(b"shared-key", || {
                        // Non-atomic read-modify-write made safe by the lock.
                        let v = counter.load(Ordering::Relaxed);
                        std::hint::black_box(v);
                        counter.store(v + 1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    #[should_panic(expected = "unlock of unheld key")]
    fn unlock_unheld_panics() {
        LockManager::new().unlock_shared(b"nope");
    }
}
