//! Write-ahead log with group commit.
//!
//! AsterixDB uses index-level logical logging with a no-steal/no-force
//! buffer policy (Section 2.2); log records carry an **update bit** telling
//! recovery whether a delete/upsert mutated a disk component's bitmap
//! (Section 5.2). We log one logical record per dataset operation — enough
//! to replay every index of the dataset — and use the operation timestamp
//! as the LSN, which makes "committed transactions beyond the maximum
//! component LSN" directly computable from component IDs.
//!
//! # Group commit
//!
//! Records are staged into pages under a short-held mutex; completed pages
//! queue FIFO and a single **leader** — whichever committer finds the queue
//! non-empty with no writer active — drains them to the device *outside*
//! the lock. Concurrent committers therefore never wait on each other's
//! device writes: they stage and return (the engine is no-force, so a
//! record is not promised durable until the next [`Wal::force`] /
//! checkpoint), and one leader's single page-sized append covers the whole
//! group. [`Wal::force`] waits for any active leader via a condvar and then
//! drains whatever remains itself, so a failed leader cannot strand pages.
//!
//! ## Frame-ordering invariant
//!
//! Replay tolerates a damaged record only on the log's **final** page (a
//! torn tail); anywhere earlier it is corruption. That is sound only if
//! device frame order equals staging order — a page written out of order
//! could leave a torn frame *behind* a good one and turn an ordinary crash
//! into "corruption". Two rules preserve the invariant now that writes
//! happen outside the lock:
//!
//! 1. **Single leader, FIFO queue.** Only one thread writes at a time and
//!    always takes the oldest queued page, so a record staged into a
//!    freshly started page can never reach the device ahead of an earlier
//!    (e.g. concurrently forced) page.
//! 2. **A failed page is dropped, not retried.** If the device rejects a
//!    page (possibly leaving a torn frame as the last on the device), the
//!    leader returns the error to its own caller and the page's records
//!    are discarded — no-steal means they were never promised durable.
//!    Retrying, or writing the *next* queued page, would bury the torn
//!    frame mid-file. The remaining queue stays intact for a later leader
//!    only because nothing was written after the failure point.
//!
//! Note that LSN order across pages is *not* an invariant: concurrent
//! committers tick their timestamps under per-key locks and stage under
//! the log mutex, so two records can stage in the opposite order of their
//! LSNs. [`Wal::replay`] therefore stable-sorts the decoded records by
//! LSN, which recovery's idempotent redo requires.
//!
//! Each record carries a checksum of its body, so a torn or short write of
//! the log's final page (a crash mid-write, or an injected
//! [`FaultPlan`](lsm_storage::FaultPlan) tear) is detected at replay.
//! Damage on the *last* page is a torn tail — the log simply ends at the
//! last intact record, which is correct because a torn final write can
//! only hold records whose force never completed (uncommitted by
//! definition). Damage on an earlier page is real corruption and fails
//! replay.

use crate::stats::EngineStats;
use lsm_common::{Bytes, Error, Key, Result, Timestamp};
use lsm_storage::{FileId, SiteOutcome, Storage};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

/// Crash site probed by the group-commit leader immediately before each
/// device page write: a crash here loses the whole staged group, which is
/// exactly the committed-prefix contract torture verifies.
pub const GROUP_WRITE_SITE: &str = "wal_group_write";

/// Logical operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogOp {
    /// Insert of a new record.
    Insert = 1,
    /// Upsert (blind write).
    Upsert = 2,
    /// Delete by key.
    Delete = 3,
    /// Checkpoint marker: everything at or below this LSN is durable in
    /// components and checkpointed bitmap pages.
    Checkpoint = 4,
}

impl LogOp {
    fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            1 => LogOp::Insert,
            2 => LogOp::Upsert,
            3 => LogOp::Delete,
            4 => LogOp::Checkpoint,
            _ => return Err(Error::corruption(format!("bad log op {v}"))),
        })
    }
}

/// One logical log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// LSN = operation timestamp.
    pub lsn: Timestamp,
    /// Operation kind.
    pub op: LogOp,
    /// Encoded primary key (empty for checkpoints).
    pub key: Key,
    /// Encoded record for inserts/upserts (empty otherwise).
    pub value: Bytes,
    /// True if the operation mutated a disk component's bitmap
    /// (Mutable-bitmap strategy's update bit).
    pub update_bit: bool,
}

/// Reads a little-endian `u32` from a slice the caller has already
/// bounds-checked to exactly four bytes.
fn le32(b: &[u8]) -> u32 {
    // INVARIANT: every caller slices exactly 4 length-checked bytes.
    u32::from_le_bytes(b.try_into().unwrap())
}

/// Reads a little-endian `u64` from a slice the caller has already
/// bounds-checked to exactly eight bytes.
fn le64(b: &[u8]) -> u64 {
    // INVARIANT: every caller slices exactly 8 length-checked bytes.
    u64::from_le_bytes(b.try_into().unwrap())
}

/// FNV-1a over a record body: cheap, and any zero-fill or truncation a
/// torn write produces changes it.
fn fnv1a(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

impl LogRecord {
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(18 + self.key.len() + self.value.len());
        body.extend_from_slice(&self.lsn.to_le_bytes());
        body.push(self.op as u8);
        body.push(u8::from(self.update_bit));
        body.extend_from_slice(&(self.key.len() as u32).to_le_bytes());
        body.extend_from_slice(&self.key);
        body.extend_from_slice(&(self.value.len() as u32).to_le_bytes());
        body.extend_from_slice(&self.value);
        let mut out = Vec::with_capacity(8 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&fnv1a(&out[4..]).to_le_bytes());
        out
    }

    fn decode(buf: &[u8]) -> Result<(LogRecord, usize)> {
        if buf.len() < 4 {
            return Err(Error::corruption("truncated log length"));
        }
        let len = le32(&buf[0..4]) as usize;
        let body = buf
            .get(4..4 + len)
            .ok_or_else(|| Error::corruption("truncated log body"))?;
        let sum = buf
            .get(4 + len..8 + len)
            .ok_or_else(|| Error::corruption("truncated log checksum"))?;
        if le32(sum) != fnv1a(body) {
            return Err(Error::corruption("log record checksum mismatch"));
        }
        if body.len() < 18 {
            return Err(Error::corruption("log body too short"));
        }
        let lsn = le64(&body[0..8]);
        let op = LogOp::from_u8(body[8])?;
        let update_bit = body[9] != 0;
        let klen = le32(&body[10..14]) as usize;
        let key = body
            .get(14..14 + klen)
            .ok_or_else(|| Error::corruption("truncated log key"))?
            .to_vec();
        let voff = 14 + klen;
        let vlen = le32(
            body.get(voff..voff + 4)
                .ok_or_else(|| Error::corruption("truncated log vlen"))?,
        ) as usize;
        let value = body
            .get(voff + 4..voff + 4 + vlen)
            .ok_or_else(|| Error::corruption("truncated log value"))?
            .to_vec();
        Ok((
            LogRecord {
                lsn,
                op,
                key,
                value,
                update_bit,
            },
            8 + len,
        ))
    }
}

/// The write-ahead log, on its own storage device (the paper dedicates one
/// of the two disks to transactional logging).
#[derive(Debug)]
pub struct Wal {
    storage: Arc<Storage>,
    file: FileId,
    inner: Mutex<WalBuf>,
    /// Signaled each time a group-commit leader finishes (or aborts) its
    /// drain; [`Wal::force`] waits here.
    drained: Condvar,
    /// Engine counters for group-commit accounting and the
    /// [`GROUP_WRITE_SITE`] crash-site coverage signal; bound once by the
    /// owning dataset (a standalone log still counts on its device's
    /// [`IoStats`](lsm_storage::IoStats)).
    stats: OnceLock<Arc<EngineStats>>,
}

#[derive(Debug, Default)]
struct WalBuf {
    /// The currently filling page.
    page: Vec<u8>,
    /// Records staged into `page`.
    page_records: u64,
    /// Completed pages awaiting the device, oldest first, each with its
    /// record count. Only the group-commit leader pops from this, front to
    /// back — see the frame-ordering invariant in the module docs.
    pending: VecDeque<(Vec<u8>, u64)>,
    /// True while a leader is writing pending pages outside the lock.
    writer_active: bool,
    last_checkpoint: Timestamp,
}

impl WalBuf {
    /// Moves the filling page (if any) onto the pending queue.
    fn rotate_page(&mut self) {
        if !self.page.is_empty() {
            let page = std::mem::take(&mut self.page);
            let n = std::mem::replace(&mut self.page_records, 0);
            self.pending.push_back((page, n));
        }
    }
}

impl Wal {
    /// Creates a log in a fresh file of `storage`.
    pub fn new(storage: Arc<Storage>) -> Self {
        let file = storage.create_file();
        Wal {
            storage,
            file,
            inner: Mutex::new(WalBuf::default()),
            drained: Condvar::new(),
            stats: OnceLock::new(),
        }
    }

    /// The log device.
    pub fn storage(&self) -> &Arc<Storage> {
        &self.storage
    }

    /// Binds the owning engine's counters so group commits (and crash-site
    /// passages) show up in [`EngineStats`]. Idempotent; later binds are
    /// ignored.
    pub fn bind_stats(&self, stats: Arc<EngineStats>) {
        let _ = self.stats.set(stats);
    }

    /// Appends a record. The record is staged under a short-held lock; when
    /// a page fills, this committer either becomes the group leader (no
    /// writer active) and writes the group's pages, or returns immediately
    /// and lets the active leader cover it. No-force: the record is not
    /// durable until the next [`Wal::force`].
    pub fn append(&self, rec: &LogRecord) -> Result<()> {
        self.append_all(std::slice::from_ref(rec))
    }

    /// Appends a batch of records under ONE lock acquisition, so a
    /// multi-operation commit stages its group atomically and triggers at
    /// most one leader election. Page rotation still happens per fill —
    /// a large batch simply queues several pages for the same leader.
    pub fn append_batch(&self, recs: &[LogRecord]) -> Result<()> {
        self.append_all(recs)
    }

    fn append_all(&self, recs: &[LogRecord]) -> Result<()> {
        if recs.is_empty() {
            return Ok(());
        }
        let page_size = self.storage.page_size();
        let encoded: Vec<Vec<u8>> = recs.iter().map(LogRecord::encode).collect();
        if encoded.iter().any(|b| b.len() > page_size) {
            return Err(Error::Storage("log record larger than page".into()));
        }
        let mut inner = self.inner.lock();
        for bytes in &encoded {
            if inner.page.len() + bytes.len() > page_size {
                inner.rotate_page();
            }
            inner.page.extend_from_slice(bytes);
            inner.page_records += 1;
        }
        if inner.pending.is_empty() || inner.writer_active {
            // Nothing to write, or an active leader will pick the pages up
            // on its next loop iteration (push and leader handoff are both
            // under this mutex, so the page cannot be missed).
            return Ok(());
        }
        self.drain_as_leader(inner)
    }

    /// Writes the pending queue to the device as the group-commit leader.
    /// Called with the lock held and `writer_active == false`; the lock is
    /// released across each device write and reacquired to pop the next
    /// page, so committers keep staging while the leader writes.
    fn drain_as_leader<'a>(&'a self, mut inner: MutexGuard<'a, WalBuf>) -> Result<()> {
        debug_assert!(!inner.writer_active);
        inner.writer_active = true;
        while let Some((page, n)) = inner.pending.pop_front() {
            drop(inner);
            // Log writes are commit durability, not background rebuild
            // output: never charge them to a maintenance write bucket,
            // whichever thread happens to lead the group.
            let res = self.group_write_site().and_then(|()| {
                lsm_storage::throttle::exempt_writes(|| self.storage.append_page(self.file, &page))
            });
            inner = self.inner.lock();
            match res {
                Ok(_) => self.note_group(n),
                Err(e) => {
                    // Drop the failed page (its records were never promised
                    // durable) and stand down WITHOUT touching later pages:
                    // a torn frame must stay last on the device. A waiting
                    // force takes over the remainder.
                    inner.writer_active = false;
                    drop(inner);
                    self.drained.notify_all();
                    return Err(e);
                }
            }
        }
        inner.writer_active = false;
        drop(inner);
        self.drained.notify_all();
        Ok(())
    }

    /// Probes the [`GROUP_WRITE_SITE`] crash site, mirroring the engine's
    /// armed/hit accounting when stats are bound.
    fn group_write_site(&self) -> Result<()> {
        match self.storage.probe_crash_site(GROUP_WRITE_SITE) {
            SiteOutcome::Unarmed => Ok(()),
            SiteOutcome::Armed => {
                if let Some(s) = self.stats.get() {
                    s.bump(&s.crash_sites_armed);
                }
                Ok(())
            }
            SiteOutcome::Fired(e) => {
                if let Some(s) = self.stats.get() {
                    s.bump(&s.crash_sites_armed);
                    s.bump(&s.crash_sites_hit);
                }
                Err(e)
            }
        }
    }

    /// Counts one durable group of `records` on the device and engine
    /// counters.
    fn note_group(&self, records: u64) {
        self.storage.note_wal_group(records);
        if let Some(s) = self.stats.get() {
            s.bump(&s.wal_groups);
            s.wal_grouped_records
                .fetch_add(records, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Forces buffered records to the device: stages the partial page and
    /// drains the queue, waiting out (or taking over from) any active
    /// leader, so on return every record staged before the call is durable.
    /// Exempt from maintenance write throttling even when called from a
    /// flush job (flushes force the log to make flushed operations
    /// durable).
    pub fn force(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.rotate_page();
        loop {
            if !inner.writer_active {
                if inner.pending.is_empty() {
                    return Ok(());
                }
                // No leader — drain the queue ourselves (including pages a
                // failed leader left behind).
                return self.drain_as_leader(inner);
            }
            self.drained.wait(&mut inner);
        }
    }

    /// Writes a checkpoint record at `lsn` and forces the log.
    pub fn checkpoint(&self, lsn: Timestamp) -> Result<()> {
        self.append(&LogRecord {
            lsn,
            op: LogOp::Checkpoint,
            key: Vec::new(),
            value: Vec::new(),
            update_bit: false,
        })?;
        self.force()?;
        self.inner.lock().last_checkpoint = lsn;
        Ok(())
    }

    /// LSN of the last checkpoint (0 if none).
    pub fn last_checkpoint(&self) -> Timestamp {
        self.inner.lock().last_checkpoint
    }

    /// Reads back all records with `lsn > after_lsn`, sorted by LSN
    /// (stable, so a checkpoint marker stays after the equal-LSN operation
    /// it covers — concurrent committers may stage out of LSN order, see
    /// the module docs). Includes buffered (unforced) records only if
    /// `include_unforced` — a crash loses those, which is what recovery
    /// tests exercise.
    pub fn replay(&self, after_lsn: Timestamp, include_unforced: bool) -> Result<Vec<LogRecord>> {
        let mut out = Vec::new();
        let pages = self.storage.file_pages(self.file)?;
        for p in 0..pages {
            let data = self.storage.read_page(self.file, p)?;
            let last_page = p + 1 == pages;
            let mut off = 0;
            while off + 4 <= data.len() {
                let len = le32(&data[off..off + 4]) as usize;
                if len == 0 {
                    break;
                }
                match LogRecord::decode(&data[off..]) {
                    Ok((rec, used)) => {
                        if rec.lsn > after_lsn {
                            out.push(rec);
                        }
                        off += used;
                    }
                    // A damaged record on the final page is a torn tail —
                    // the write it belonged to never completed, so the log
                    // ends at the last intact record. Anywhere earlier it
                    // is corruption of already-committed history (the
                    // frame-ordering invariant guarantees a torn frame can
                    // only be last).
                    Err(_) if last_page => {
                        out.sort_by_key(|r| r.lsn);
                        return Ok(out);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        if include_unforced {
            let inner = self.inner.lock();
            for (page, _) in &inner.pending {
                let mut off = 0;
                while off + 4 <= page.len() {
                    let (rec, used) = LogRecord::decode(&page[off..])?;
                    if rec.lsn > after_lsn {
                        out.push(rec);
                    }
                    off += used;
                }
            }
            let mut off = 0;
            while off + 4 <= inner.page.len() {
                let (rec, used) = LogRecord::decode(&inner.page[off..])?;
                if rec.lsn > after_lsn {
                    out.push(rec);
                }
                off += used;
            }
        }
        out.sort_by_key(|r| r.lsn);
        Ok(out)
    }

    /// Drops buffered, unforced records — the staging page and any pending
    /// pages that never reached the device (simulates losing them in a
    /// crash).
    pub fn drop_unforced(&self) {
        let mut inner = self.inner.lock();
        inner.page.clear();
        inner.page_records = 0;
        inner.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_storage::StorageOptions;

    fn wal() -> Wal {
        Wal::new(Storage::new(StorageOptions::test()))
    }

    fn rec(lsn: u64, op: LogOp) -> LogRecord {
        LogRecord {
            lsn,
            op,
            key: vec![1, 2, 3],
            value: vec![9; 10],
            update_bit: lsn.is_multiple_of(2),
        }
    }

    #[test]
    fn record_roundtrip() {
        let r = rec(7, LogOp::Upsert);
        let enc = r.encode();
        let (back, used) = LogRecord::decode(&enc).unwrap();
        assert_eq!(back, r);
        assert_eq!(used, enc.len());
    }

    #[test]
    fn append_replay_in_order() {
        let w = wal();
        for i in 1..=100u64 {
            w.append(&rec(i, LogOp::Insert)).unwrap();
        }
        w.force().unwrap();
        let all = w.replay(0, false).unwrap();
        assert_eq!(all.len(), 100);
        assert!(all.windows(2).all(|p| p[0].lsn < p[1].lsn));
        let tail = w.replay(90, false).unwrap();
        assert_eq!(tail.len(), 10);
        assert_eq!(tail[0].lsn, 91);
    }

    #[test]
    fn unforced_records_lost_on_crash() {
        let w = wal();
        w.append(&rec(1, LogOp::Insert)).unwrap();
        w.force().unwrap();
        w.append(&rec(2, LogOp::Insert)).unwrap();
        // Not forced: visible only when asked for unforced.
        assert_eq!(w.replay(0, true).unwrap().len(), 2);
        w.drop_unforced();
        assert_eq!(w.replay(0, true).unwrap().len(), 1);
    }

    #[test]
    fn pages_fill_and_rotate() {
        let w = wal();
        let page_size = w.storage().page_size();
        let before = w.storage().stats().pages_written;
        // Each record ~40 bytes; write enough to fill several pages.
        let n = (page_size / 30) * 3;
        for i in 1..=n as u64 {
            w.append(&rec(i, LogOp::Upsert)).unwrap();
        }
        let written = w.storage().stats().pages_written - before;
        assert!(written >= 2, "expected multiple page writes, got {written}");
        w.force().unwrap();
        assert_eq!(w.replay(0, false).unwrap().len(), n);
    }

    #[test]
    fn checkpoint_tracks_lsn() {
        let w = wal();
        assert_eq!(w.last_checkpoint(), 0);
        w.append(&rec(5, LogOp::Insert)).unwrap();
        w.checkpoint(5).unwrap();
        assert_eq!(w.last_checkpoint(), 5);
        // Replay after the checkpoint LSN skips the old record but sees the
        // checkpoint marker? No: markers carry lsn=5 too, filtered out.
        assert!(w.replay(5, false).unwrap().is_empty());
    }

    #[test]
    fn oversized_record_rejected() {
        let w = wal();
        let r = LogRecord {
            lsn: 1,
            op: LogOp::Insert,
            key: vec![0; 10],
            value: vec![0; w.storage().page_size()],
            update_bit: false,
        };
        assert!(w.append(&r).is_err());
    }

    #[test]
    fn group_commit_counters_cover_all_records() {
        let w = wal();
        let stats = Arc::new(EngineStats::new());
        w.bind_stats(stats.clone());
        let n = (w.storage().page_size() / 30) * 2;
        for i in 1..=n as u64 {
            w.append(&rec(i, LogOp::Upsert)).unwrap();
        }
        w.force().unwrap();
        let io = w.storage().stats();
        assert!(io.wal_groups >= 2, "several pages → several groups");
        assert_eq!(io.wal_grouped_records, n as u64, "every record grouped");
        let snap = stats.snapshot();
        assert_eq!(snap.wal_groups, io.wal_groups);
        assert_eq!(snap.wal_grouped_records, io.wal_grouped_records);
        assert!(snap.wal_grouped_records / snap.wal_groups > 1);
    }

    #[test]
    fn batch_append_is_one_staging_step() {
        let w = wal();
        let recs: Vec<LogRecord> = (1..=10u64).map(|i| rec(i, LogOp::Upsert)).collect();
        w.append_batch(&recs).unwrap();
        w.force().unwrap();
        let all = w.replay(0, false).unwrap();
        assert_eq!(all.len(), 10);
        assert!(all.windows(2).all(|p| p[0].lsn < p[1].lsn));
    }

    #[test]
    fn device_frame_order_follows_staging_order() {
        // Regression for the flush-then-buffer reorder hazard: with a full
        // page queued AND records already staged into the fresh page, a
        // force must write the queued page first — the fresh page's
        // records may never reach the device ahead of it.
        let w = wal();
        let page_size = w.storage().page_size();
        let mut lsn = 0u64;
        // Fill until at least one page has rotated to the device, then
        // stage one more record into the fresh page and force.
        let before = w.storage().stats().pages_written;
        while w.storage().stats().pages_written == before {
            lsn += 1;
            w.append(&rec(lsn, LogOp::Upsert)).unwrap();
        }
        lsn += 1;
        w.append(&rec(lsn, LogOp::Upsert)).unwrap();
        w.force().unwrap();
        // Decode the device pages raw: the first LSN of each page must be
        // larger than every LSN of the page before it.
        let pages = w.storage().file_pages(w.file).unwrap();
        assert!(pages >= 2);
        let mut prev_max = 0u64;
        for p in 0..pages {
            let data = w.storage().read_page(w.file, p).unwrap();
            let mut off = 0;
            let mut page_lsns = Vec::new();
            while off + 4 <= data.len() {
                if u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) == 0 {
                    break;
                }
                let (r, used) = LogRecord::decode(&data[off..]).unwrap();
                page_lsns.push(r.lsn);
                off += used;
            }
            assert!(!page_lsns.is_empty());
            assert!(
                *page_lsns.first().unwrap() > prev_max,
                "page {p} starts at {} but an earlier page reached {prev_max}",
                page_lsns.first().unwrap()
            );
            prev_max = *page_lsns.last().unwrap();
        }
        assert_eq!(w.replay(0, false).unwrap().len(), lsn as usize);
        let _ = page_size;
    }

    #[test]
    fn concurrent_committers_share_groups() {
        // 4 writer threads × disjoint LSN ranges; all records must survive
        // replay exactly once, LSN-sorted, and the forced tail must be
        // covered by group-commit appends.
        let w = Arc::new(wal());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let w = Arc::clone(&w);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let lsn = 1 + t * 200 + i;
                        w.append(&rec(lsn, LogOp::Upsert)).unwrap();
                    }
                });
            }
        });
        w.force().unwrap();
        let all = w.replay(0, false).unwrap();
        assert_eq!(all.len(), 800);
        assert!(all.windows(2).all(|p| p[0].lsn < p[1].lsn));
        let io = w.storage().stats();
        assert_eq!(io.wal_grouped_records, 800);
        assert!(io.wal_groups >= 1);
    }

    #[test]
    fn failed_leader_leaves_queue_for_force() {
        use lsm_storage::fault::{FaultAction, FaultOp, FaultPlan, FaultSpec, FaultTrigger};
        let w = wal();
        // Fill two pages' worth, then make the next device append fail
        // once. The force after the failure must still drain what remains.
        let n = (w.storage().page_size() / 30) as u64;
        for i in 1..=n {
            w.append(&rec(i, LogOp::Upsert)).unwrap();
        }
        w.force().unwrap();
        let durable = w.replay(0, false).unwrap().len();
        let plan = FaultPlan::new(vec![FaultSpec {
            trigger: FaultTrigger::OpIndex {
                op: FaultOp::Append,
                index: 0,
            },
            action: FaultAction::TransientError,
        }]);
        w.storage().install_fault_plan(plan.clone());
        plan.arm();
        let mut failed = 0u64;
        for i in 1..=n {
            if w.append(&rec(1000 + i, LogOp::Upsert)).is_err() {
                failed += 1;
            }
        }
        w.storage().clear_fault_plan();
        assert!(failed > 0, "the injected write error surfaced to a leader");
        w.force().unwrap();
        let all = w.replay(0, false).unwrap();
        // Everything before the dropped page plus everything after it that
        // was re-staged survives; the log stays decodable end to end.
        assert!(all.len() >= durable);
        assert!(all.windows(2).all(|p| p[0].lsn < p[1].lsn));
    }
}
