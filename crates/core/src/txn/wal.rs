//! Write-ahead log.
//!
//! AsterixDB uses index-level logical logging with a no-steal/no-force
//! buffer policy (Section 2.2); log records carry an **update bit** telling
//! recovery whether a delete/upsert mutated a disk component's bitmap
//! (Section 5.2). We log one logical record per dataset operation — enough
//! to replay every index of the dataset — and use the operation timestamp
//! as the LSN, which makes "committed transactions beyond the maximum
//! component LSN" directly computable from component IDs.
//!
//! Records are packed into pages with group commit: a page is written when
//! it fills (or on [`Wal::force`]), charging the log device sequentially.
//!
//! Each record carries a checksum of its body, so a torn or short write of
//! the log's final page (a crash mid-write, or an injected
//! [`FaultPlan`](lsm_storage::FaultPlan) tear) is detected at replay.
//! Damage on the *last* page is a torn tail — the log simply ends at the
//! last intact record, which is correct because a torn final write can
//! only hold records whose force never completed (uncommitted by
//! definition). Damage on an earlier page is real corruption and fails
//! replay.

use lsm_common::{Bytes, Error, Key, Result, Timestamp};
use lsm_storage::{FileId, Storage};
use parking_lot::Mutex;
use std::sync::Arc;

/// Logical operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogOp {
    /// Insert of a new record.
    Insert = 1,
    /// Upsert (blind write).
    Upsert = 2,
    /// Delete by key.
    Delete = 3,
    /// Checkpoint marker: everything at or below this LSN is durable in
    /// components and checkpointed bitmap pages.
    Checkpoint = 4,
}

impl LogOp {
    fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            1 => LogOp::Insert,
            2 => LogOp::Upsert,
            3 => LogOp::Delete,
            4 => LogOp::Checkpoint,
            _ => return Err(Error::corruption(format!("bad log op {v}"))),
        })
    }
}

/// One logical log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// LSN = operation timestamp.
    pub lsn: Timestamp,
    /// Operation kind.
    pub op: LogOp,
    /// Encoded primary key (empty for checkpoints).
    pub key: Key,
    /// Encoded record for inserts/upserts (empty otherwise).
    pub value: Bytes,
    /// True if the operation mutated a disk component's bitmap
    /// (Mutable-bitmap strategy's update bit).
    pub update_bit: bool,
}

/// FNV-1a over a record body: cheap, and any zero-fill or truncation a
/// torn write produces changes it.
fn fnv1a(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

impl LogRecord {
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(18 + self.key.len() + self.value.len());
        body.extend_from_slice(&self.lsn.to_le_bytes());
        body.push(self.op as u8);
        body.push(u8::from(self.update_bit));
        body.extend_from_slice(&(self.key.len() as u32).to_le_bytes());
        body.extend_from_slice(&self.key);
        body.extend_from_slice(&(self.value.len() as u32).to_le_bytes());
        body.extend_from_slice(&self.value);
        let mut out = Vec::with_capacity(8 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&fnv1a(&out[4..]).to_le_bytes());
        out
    }

    fn decode(buf: &[u8]) -> Result<(LogRecord, usize)> {
        if buf.len() < 4 {
            return Err(Error::corruption("truncated log length"));
        }
        let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let body = buf
            .get(4..4 + len)
            .ok_or_else(|| Error::corruption("truncated log body"))?;
        let sum = buf
            .get(4 + len..8 + len)
            .ok_or_else(|| Error::corruption("truncated log checksum"))?;
        if u32::from_le_bytes(sum.try_into().unwrap()) != fnv1a(body) {
            return Err(Error::corruption("log record checksum mismatch"));
        }
        if body.len() < 18 {
            return Err(Error::corruption("log body too short"));
        }
        let lsn = u64::from_le_bytes(body[0..8].try_into().unwrap());
        let op = LogOp::from_u8(body[8])?;
        let update_bit = body[9] != 0;
        let klen = u32::from_le_bytes(body[10..14].try_into().unwrap()) as usize;
        let key = body
            .get(14..14 + klen)
            .ok_or_else(|| Error::corruption("truncated log key"))?
            .to_vec();
        let voff = 14 + klen;
        let vlen = u32::from_le_bytes(
            body.get(voff..voff + 4)
                .ok_or_else(|| Error::corruption("truncated log vlen"))?
                .try_into()
                .unwrap(),
        ) as usize;
        let value = body
            .get(voff + 4..voff + 4 + vlen)
            .ok_or_else(|| Error::corruption("truncated log value"))?
            .to_vec();
        Ok((
            LogRecord {
                lsn,
                op,
                key,
                value,
                update_bit,
            },
            8 + len,
        ))
    }
}

/// The write-ahead log, on its own storage device (the paper dedicates one
/// of the two disks to transactional logging).
#[derive(Debug)]
pub struct Wal {
    storage: Arc<Storage>,
    file: FileId,
    inner: Mutex<WalBuf>,
}

#[derive(Debug, Default)]
struct WalBuf {
    page: Vec<u8>,
    last_checkpoint: Timestamp,
}

impl Wal {
    /// Creates a log in a fresh file of `storage`.
    pub fn new(storage: Arc<Storage>) -> Self {
        let file = storage.create_file();
        Wal {
            storage,
            file,
            inner: Mutex::new(WalBuf::default()),
        }
    }

    /// The log device.
    pub fn storage(&self) -> &Arc<Storage> {
        &self.storage
    }

    /// Appends a record; the page is written out when full (group commit).
    pub fn append(&self, rec: &LogRecord) -> Result<()> {
        let bytes = rec.encode();
        if bytes.len() > self.storage.page_size() {
            return Err(Error::Storage("log record larger than page".into()));
        }
        let mut inner = self.inner.lock();
        if inner.page.len() + bytes.len() > self.storage.page_size() {
            let page = std::mem::take(&mut inner.page);
            // Log writes are commit durability, not background rebuild
            // output: never charge them to a maintenance write bucket,
            // whichever thread happens to flush the page.
            lsm_storage::throttle::exempt_writes(|| self.storage.append_page(self.file, &page))?;
        }
        inner.page.extend_from_slice(&bytes);
        Ok(())
    }

    /// Forces buffered records to the device. Exempt from maintenance
    /// write throttling even when called from a flush job (flushes force
    /// the log to make flushed operations durable).
    pub fn force(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if !inner.page.is_empty() {
            let page = std::mem::take(&mut inner.page);
            lsm_storage::throttle::exempt_writes(|| self.storage.append_page(self.file, &page))?;
        }
        Ok(())
    }

    /// Writes a checkpoint record at `lsn` and forces the log.
    pub fn checkpoint(&self, lsn: Timestamp) -> Result<()> {
        self.append(&LogRecord {
            lsn,
            op: LogOp::Checkpoint,
            key: Vec::new(),
            value: Vec::new(),
            update_bit: false,
        })?;
        self.force()?;
        self.inner.lock().last_checkpoint = lsn;
        Ok(())
    }

    /// LSN of the last checkpoint (0 if none).
    pub fn last_checkpoint(&self) -> Timestamp {
        self.inner.lock().last_checkpoint
    }

    /// Reads back all records with `lsn > after_lsn`, in order. Includes
    /// buffered (unforced) records only if `include_unforced` — a crash
    /// loses those, which is what recovery tests exercise.
    pub fn replay(&self, after_lsn: Timestamp, include_unforced: bool) -> Result<Vec<LogRecord>> {
        let mut out = Vec::new();
        let pages = self.storage.file_pages(self.file)?;
        for p in 0..pages {
            let data = self.storage.read_page(self.file, p)?;
            let last_page = p + 1 == pages;
            let mut off = 0;
            while off + 4 <= data.len() {
                let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
                if len == 0 {
                    break;
                }
                match LogRecord::decode(&data[off..]) {
                    Ok((rec, used)) => {
                        if rec.lsn > after_lsn {
                            out.push(rec);
                        }
                        off += used;
                    }
                    // A damaged record on the final page is a torn tail —
                    // the write it belonged to never completed, so the log
                    // ends at the last intact record. Anywhere earlier it
                    // is corruption of already-committed history.
                    Err(_) if last_page => return Ok(out),
                    Err(e) => return Err(e),
                }
            }
        }
        if include_unforced {
            let inner = self.inner.lock();
            let mut off = 0;
            while off + 4 <= inner.page.len() {
                let (rec, used) = LogRecord::decode(&inner.page[off..])?;
                if rec.lsn > after_lsn {
                    out.push(rec);
                }
                off += used;
            }
        }
        Ok(out)
    }

    /// Drops buffered, unforced records (simulates losing them in a crash).
    pub fn drop_unforced(&self) {
        self.inner.lock().page.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_storage::StorageOptions;

    fn wal() -> Wal {
        Wal::new(Storage::new(StorageOptions::test()))
    }

    fn rec(lsn: u64, op: LogOp) -> LogRecord {
        LogRecord {
            lsn,
            op,
            key: vec![1, 2, 3],
            value: vec![9; 10],
            update_bit: lsn.is_multiple_of(2),
        }
    }

    #[test]
    fn record_roundtrip() {
        let r = rec(7, LogOp::Upsert);
        let enc = r.encode();
        let (back, used) = LogRecord::decode(&enc).unwrap();
        assert_eq!(back, r);
        assert_eq!(used, enc.len());
    }

    #[test]
    fn append_replay_in_order() {
        let w = wal();
        for i in 1..=100u64 {
            w.append(&rec(i, LogOp::Insert)).unwrap();
        }
        w.force().unwrap();
        let all = w.replay(0, false).unwrap();
        assert_eq!(all.len(), 100);
        assert!(all.windows(2).all(|p| p[0].lsn < p[1].lsn));
        let tail = w.replay(90, false).unwrap();
        assert_eq!(tail.len(), 10);
        assert_eq!(tail[0].lsn, 91);
    }

    #[test]
    fn unforced_records_lost_on_crash() {
        let w = wal();
        w.append(&rec(1, LogOp::Insert)).unwrap();
        w.force().unwrap();
        w.append(&rec(2, LogOp::Insert)).unwrap();
        // Not forced: visible only when asked for unforced.
        assert_eq!(w.replay(0, true).unwrap().len(), 2);
        w.drop_unforced();
        assert_eq!(w.replay(0, true).unwrap().len(), 1);
    }

    #[test]
    fn pages_fill_and_rotate() {
        let w = wal();
        let page_size = w.storage().page_size();
        let before = w.storage().stats().pages_written;
        // Each record ~40 bytes; write enough to fill several pages.
        let n = (page_size / 30) * 3;
        for i in 1..=n as u64 {
            w.append(&rec(i, LogOp::Upsert)).unwrap();
        }
        let written = w.storage().stats().pages_written - before;
        assert!(written >= 2, "expected multiple page writes, got {written}");
        w.force().unwrap();
        assert_eq!(w.replay(0, false).unwrap().len(), n);
    }

    #[test]
    fn checkpoint_tracks_lsn() {
        let w = wal();
        assert_eq!(w.last_checkpoint(), 0);
        w.append(&rec(5, LogOp::Insert)).unwrap();
        w.checkpoint(5).unwrap();
        assert_eq!(w.last_checkpoint(), 5);
        // Replay after the checkpoint LSN skips the old record but sees the
        // checkpoint marker? No: markers carry lsn=5 too, filtered out.
        assert!(w.replay(5, false).unwrap().is_empty());
    }

    #[test]
    fn oversized_record_rejected() {
        let w = wal();
        let r = LogRecord {
            lsn: 1,
            op: LogOp::Insert,
            key: vec![0; 10],
            value: vec![0; w.storage().page_size()],
            update_bit: false,
        };
        assert!(w.append(&r).is_err());
    }
}
