//! Transactions, locking, logging, and recovery (Sections 2.2 and 5.2).

pub mod locks;
pub mod wal;

pub use locks::LockManager;
pub use wal::{LogOp, LogRecord, Wal};
