//! Secondary-index repair (Section 4.4) and the DELI baseline.
//!
//! Under the Validation strategy obsolete entries accumulate in secondary
//! indexes; repair validates entries against the primary key index and
//! records invalid ones in an immutable bitmap:
//!
//! * **merge repair** (Figure 7) rebuilds the component(s) while validating:
//!   scan → stream into the new component → sort `(pkey, ts, position)` →
//!   validate against the primary key index (pruning components at or below
//!   the repaired timestamp) → set bitmap bits;
//! * **standalone repair** only produces a fresh bitmap for an existing
//!   component;
//! * the **Bloom filter optimization** skips sorting/validating keys whose
//!   absence from all unpruned primary-key-index components proves them
//!   untouched (sound when merges are correlated, Section 4.4);
//! * the **merge-scan optimization** switches from point validation to a
//!   merge join when there are more candidates than recently ingested keys;
//! * **primary repair** is DELI's approach (Tang et al.): scan (or merge)
//!   the *primary* index components, detect obsolete record versions, and
//!   emit secondary anti-matter — paying full-record I/O.

use crate::dataset::Dataset;
use crate::keys::{decode_sk_pk, encode_sk_pk};
use lsm_common::{Key, Record, Result, Timestamp};
use lsm_tree::{
    newest_disk_version_after, AtomicBitmap, ComponentBuilder, ComponentId, DiskComponent,
    LsmEntry, LsmScan, LsmTree, MergeRange, ScanOptions,
};
use std::ops::Bound;
use std::sync::Arc;

/// How entries are validated during repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairMode {
    /// Validate against the primary key index with repaired-timestamp
    /// pruning (the paper's proposal), optionally with the Bloom filter
    /// optimization.
    PrimaryKeyIndex {
        /// Skip keys absent from all unpruned pk-index Bloom filters.
        bloom_opt: bool,
    },
    /// AsterixDB's deleted-key B+-tree baseline: validate against the FULL
    /// primary key index (no pruning) and write a per-component deleted-key
    /// B+-tree holding the invalid keys.
    DeletedKeyBTree,
}

/// Repair configuration.
#[derive(Debug, Clone, Copy)]
pub struct RepairOptions {
    /// Validation mode.
    pub mode: RepairMode,
    /// Use a merge join instead of point lookups when candidates outnumber
    /// the unpruned primary-key-index entries (Section 4.4 optimization).
    pub merge_scan_opt: bool,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            mode: RepairMode::PrimaryKeyIndex { bloom_opt: false },
            merge_scan_opt: true,
        }
    }
}

/// What a repair operation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Entries scanned from the repaired component(s).
    pub entries_scanned: u64,
    /// Keys that went through sorting + validation.
    pub keys_validated: u64,
    /// Keys skipped by the Bloom filter optimization.
    pub skipped_by_bloom: u64,
    /// Entries found obsolete and marked in the bitmap.
    pub invalidated: u64,
    /// True if the merge-scan path was taken.
    pub used_merge_scan: bool,
}

/// One candidate for validation: Figure 7's `(pkey, ts, position)`.
#[derive(Debug, Clone)]
struct Candidate {
    pkey: Key,
    ts: Timestamp,
    position: u64,
}

fn unpruned_pk_components(pk_tree: &LsmTree, prune_ts: Timestamp) -> Vec<Arc<DiskComponent>> {
    pk_tree
        .disk_components()
        .into_iter()
        .filter(|c| !c.id().at_or_before(prune_ts))
        .collect()
}

fn charge_sort(tree: &LsmTree, n: u64) {
    if n > 1 {
        let log_n = u64::from(64 - n.leading_zeros());
        tree.storage()
            .charge_cpu(n * log_n * tree.storage().cpu().sort_entry_ns);
    }
}

/// Validates sorted candidates and sets bitmap bits for the invalid ones.
fn validate_candidates(
    sec_tree: &LsmTree,
    pk_tree: &LsmTree,
    prune_ts: Timestamp,
    candidates: &mut [Candidate],
    bitmap: &AtomicBitmap,
    opts: &RepairOptions,
    report: &mut RepairReport,
) -> Result<()> {
    charge_sort(sec_tree, candidates.len() as u64);
    candidates.sort_by(|a, b| a.pkey.cmp(&b.pkey));
    report.keys_validated += candidates.len() as u64;

    let effective_prune = match opts.mode {
        RepairMode::PrimaryKeyIndex { .. } => prune_ts,
        RepairMode::DeletedKeyBTree => 0, // no pruning for the baseline
    };

    let unpruned = unpruned_pk_components(pk_tree, effective_prune);
    let unpruned_entries: u64 = unpruned.iter().map(|c| c.num_entries()).sum();

    if opts.merge_scan_opt && candidates.len() as u64 > unpruned_entries {
        // Merge join the sorted candidates with a reconciling scan of the
        // unpruned pk-index components.
        report.used_merge_scan = true;
        let mut scan = LsmScan::new(
            pk_tree.storage().clone(),
            None,
            &unpruned,
            Bound::Unbounded,
            Bound::Unbounded,
            ScanOptions {
                emit_anti_matter: true,
                respect_bitmaps: false,
            },
        )?;
        let mut head = scan.next_entry()?;
        for cand in candidates.iter() {
            while let Some((k, _)) = &head {
                if k.as_slice() < cand.pkey.as_slice() {
                    head = scan.next_entry()?;
                } else {
                    break;
                }
            }
            if let Some((k, e)) = &head {
                if *k == cand.pkey && e.ts > cand.ts {
                    bitmap.set(cand.position);
                    report.invalidated += 1;
                }
            }
        }
        return Ok(());
    }

    for cand in candidates.iter() {
        if let Some(found) = newest_disk_version_after(pk_tree, &cand.pkey, effective_prune)? {
            // Invalid iff the same key exists with a larger timestamp
            // (an update or a delete after this entry was written).
            if found.ts > cand.ts {
                bitmap.set(cand.position);
                report.invalidated += 1;
            }
        }
    }
    Ok(())
}

/// Computes the new repaired timestamp: the maximum timestamp of the
/// unpruned primary-key-index components (Section 4.4), never less than the
/// old watermark.
fn new_repaired_ts(pk_tree: &LsmTree, prune_ts: Timestamp) -> Timestamp {
    unpruned_pk_components(pk_tree, prune_ts)
        .iter()
        .map(|c| c.id().max_ts)
        .max()
        .unwrap_or(0)
        .max(prune_ts)
}

/// Merge repair (Figure 7): merges the secondary components of `range` into
/// one new component while validating all entries.
pub(crate) fn merge_repair(
    sec_tree: &LsmTree,
    pk_tree: &LsmTree,
    range: MergeRange,
    opts: &RepairOptions,
) -> Result<RepairReport> {
    let inputs = sec_tree.components_in_range(range);
    assert!(!inputs.is_empty());
    let prune_ts = inputs.iter().map(|c| c.repaired_ts()).min().unwrap_or(0);
    let drop_anti = sec_tree.range_includes_oldest(range);
    // INVARIANT: `inputs` is non-empty (asserted above), so the merged id
    // has at least one constituent.
    let id = ComponentId::merged(inputs.iter().map(|c| c.id())).expect("non-empty merge");
    let expected: u64 = inputs.iter().map(|c| c.num_entries()).sum();

    let mut report = RepairReport::default();
    let mut builder = ComponentBuilder::new(
        sec_tree.storage().clone(),
        id,
        lsm_tree::BuildOptions {
            with_bloom: sec_tree.options().with_bloom,
            bloom_kind: sec_tree.options().bloom_kind,
            bloom_fpr: sec_tree.options().bloom_fpr,
            expected_keys: expected as usize,
            filter: None,
            make_mutable_bitmap: false,
        },
    )?;

    // Bloom optimization setup: keys absent from every unpruned pk-index
    // component cannot have been touched since the last repair.
    let bloom_opt = matches!(opts.mode, RepairMode::PrimaryKeyIndex { bloom_opt: true });
    let unpruned = unpruned_pk_components(pk_tree, prune_ts);

    // Scan all merging components (Figure 7 lines 1-7): valid entries go to
    // the new component; (pkey, ts, position) go to the sorter.
    let mut scan = LsmScan::new(
        sec_tree.storage().clone(),
        None,
        &inputs,
        Bound::Unbounded,
        Bound::Unbounded,
        ScanOptions {
            emit_anti_matter: true,
            respect_bitmaps: true,
        },
    )?;
    let mut candidates: Vec<Candidate> = Vec::new();
    while let Some((key, entry)) = scan.next_entry()? {
        if entry.anti_matter && drop_anti {
            continue;
        }
        report.entries_scanned += 1;
        let position = builder.add(&key, &entry)?;
        if entry.anti_matter {
            continue; // anti-matter needs no validation
        }
        if bloom_opt {
            let (_, pk) = decode_sk_pk(&key)?;
            let pk_key = pk.encode();
            // Per-entry pruning: a component whose maxTS is at or below the
            // entry's own timestamp cannot contain a newer version.
            let touched = unpruned
                .iter()
                .filter(|c| !c.id().at_or_before(entry.ts))
                .any(|c| c.bloom_may_contain(sec_tree.storage(), &pk_key));
            if !touched {
                report.skipped_by_bloom += 1;
                continue;
            }
            candidates.push(Candidate {
                pkey: pk_key,
                ts: entry.ts,
                position,
            });
        } else {
            let (_, pk) = decode_sk_pk(&key)?;
            candidates.push(Candidate {
                pkey: pk.encode(),
                ts: entry.ts,
                position,
            });
        }
    }

    let n = builder.num_entries();
    let new_comp = Arc::new(builder.finish()?);
    let bitmap = Arc::new(AtomicBitmap::new(n));
    validate_candidates(
        sec_tree,
        pk_tree,
        prune_ts,
        &mut candidates,
        &bitmap,
        opts,
        &mut report,
    )?;
    if bitmap.count_set() > 0 {
        new_comp.set_bitmap(bitmap)?;
    }
    new_comp.set_repaired_ts(new_repaired_ts(pk_tree, prune_ts));

    if opts.mode == RepairMode::DeletedKeyBTree {
        write_deleted_key_btree(sec_tree, &new_comp)?;
    }

    sec_tree.replace_range(range, new_comp, true)?;
    Ok(report)
}

/// Standalone repair (Section 4.4): produces a fresh bitmap for every disk
/// component of the secondary index without merging.
pub(crate) fn standalone_repair(
    sec_tree: &LsmTree,
    pk_tree: &LsmTree,
    opts: &RepairOptions,
) -> Result<RepairReport> {
    let mut report = RepairReport::default();
    for comp in sec_tree.disk_components() {
        let prune_ts = comp.repaired_ts();
        let bloom_opt = matches!(opts.mode, RepairMode::PrimaryKeyIndex { bloom_opt: true });
        let unpruned = unpruned_pk_components(pk_tree, prune_ts);
        if unpruned.is_empty() && pk_tree.mem_len() == 0 {
            continue; // nothing new to validate against
        }
        let old_bitmap = comp.bitmap().map(|b| b.snapshot());
        let bitmap = Arc::new(AtomicBitmap::new(comp.num_entries()));
        let mut candidates: Vec<Candidate> = Vec::new();
        let mut bscan = comp.btree().scan_all()?;
        while let Some((key, raw, position)) = bscan.next_entry()? {
            report.entries_scanned += 1;
            if let Some(old) = &old_bitmap {
                if old.get(position) {
                    bitmap.set(position); // carry over known-invalid bits
                    continue;
                }
            }
            let entry = LsmEntry::decode(&raw)?;
            if entry.anti_matter {
                continue;
            }
            let (_, pk) = decode_sk_pk(&key)?;
            let pk_key = pk.encode();
            if bloom_opt {
                let touched = unpruned
                    .iter()
                    .filter(|c| !c.id().at_or_before(entry.ts))
                    .any(|c| c.bloom_may_contain(sec_tree.storage(), &pk_key));
                if !touched {
                    report.skipped_by_bloom += 1;
                    continue;
                }
            }
            candidates.push(Candidate {
                pkey: pk_key,
                ts: entry.ts,
                position,
            });
        }
        validate_candidates(
            sec_tree,
            pk_tree,
            prune_ts,
            &mut candidates,
            &bitmap,
            opts,
            &mut report,
        )?;
        comp.set_bitmap(bitmap)?;
        comp.set_repaired_ts(new_repaired_ts(pk_tree, prune_ts));
    }
    Ok(report)
}

/// Writes the per-component deleted-key B+-tree of AsterixDB's baseline
/// strategy: a separate B+-tree holding the keys invalidated in this
/// component. Its construction I/O is the strategy's extra cost; queries
/// here use the bitmap, so the tree is write-only ballast, as in Figure 15b.
fn write_deleted_key_btree(sec_tree: &LsmTree, comp: &DiskComponent) -> Result<()> {
    let Some(bitmap) = comp.bitmap() else {
        return Ok(());
    };
    let mut builder = lsm_btree::BTreeBuilder::new(sec_tree.storage().clone());
    let mut scan = comp.btree().scan_all()?;
    while let Some((key, _, position)) = scan.next_entry()? {
        if bitmap.get(position) {
            builder.add(&key, &[])?;
        }
    }
    builder.finish()?;
    Ok(())
}

/// Brings every secondary index up-to-date with standalone repairs
/// (the Figure 20 measurement loop). Secondary indexes are repaired
/// sequentially or in parallel (Section 6.5 uses one thread each).
pub(crate) fn repair_all_secondaries(
    dataset: &Dataset,
    opts: &RepairOptions,
    parallel: bool,
) -> Result<Vec<RepairReport>> {
    let pk_tree = dataset
        .pk_index()
        .ok_or_else(|| lsm_common::Error::invalid("index repair requires the primary key index"))?;
    if parallel && dataset.secondaries().len() > 1 {
        let mut reports = vec![RepairReport::default(); dataset.secondaries().len()];
        std::thread::scope(|scope| -> Result<()> {
            let mut handles = Vec::new();
            for (i, sec) in dataset.secondaries().iter().enumerate() {
                handles.push((
                    i,
                    scope.spawn(move || standalone_repair(&sec.tree, pk_tree, opts)),
                ));
            }
            for (i, h) in handles {
                reports[i] = h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))?;
            }
            Ok(())
        })?;
        Ok(reports)
    } else {
        dataset
            .secondaries()
            .iter()
            .map(|sec| standalone_repair(&sec.tree, pk_tree, opts))
            .collect()
    }
}

/// DELI-style primary repair (Section 4.1, evaluated in Figures 20-22):
/// scans the primary index components, finds keys with multiple versions,
/// and emits anti-matter into the secondary indexes for the obsolete ones.
/// When `with_merge` is set, the primary components are also merged into one
/// (DELI piggybacks repair on primary merges).
///
/// Returns the number of obsolete versions repaired.
pub(crate) fn deli_primary_repair(dataset: &Dataset, with_merge: bool) -> Result<u64> {
    let primary = dataset.primary();
    let comps = primary.disk_components();
    if comps.is_empty() {
        return Ok(0);
    }

    // All-versions scan: walk every component's scan in parallel, grouping
    // by key. (LsmScan reconciles versions away, so this needs its own
    // k-way walk over full records — the expensive part DELI pays.)
    let mut scans = Vec::new();
    for c in &comps {
        scans.push(c.btree().scan_all()?);
    }
    let mut heads: Vec<Option<(Key, Vec<u8>, u64)>> = Vec::with_capacity(scans.len());
    for s in &mut scans {
        heads.push(s.next_entry()?);
    }

    let mut repaired = 0u64;
    let ets = dataset.clock().now();
    // Smallest key among heads, until every scan is exhausted.
    while let Some(min_key) = heads.iter().flatten().map(|(k, _, _)| k.clone()).min() {
        // Collect all versions of that key, newest component first
        // (component order in `comps` is newest-first).
        let mut versions: Vec<LsmEntry> = Vec::new();
        for (i, head) in heads.iter_mut().enumerate() {
            if let Some((_, raw, _)) = head.take_if(|(k, _, _)| *k == min_key) {
                versions.push(LsmEntry::decode(&raw)?);
                *head = scans[i].next_entry()?;
            }
        }
        dataset
            .storage()
            .charge_cpu(dataset.storage().cpu().sort_entry_ns);
        // Newest version (index 0) wins; older record versions are obsolete.
        let newest = &versions[0];
        let newest_record = (!newest.anti_matter)
            .then(|| Record::decode(&newest.value))
            .transpose()?;
        for old in &versions[1..] {
            if old.anti_matter {
                continue;
            }
            let old_record = Record::decode(&old.value)?;
            repaired += 1;
            let pk = old_record.get(dataset.config().pk_field);
            for sec in dataset.secondaries() {
                let old_sk = old_record.get(sec.field);
                if let Some(new_rec) = &newest_record {
                    if new_rec.get(sec.field) == old_sk {
                        continue; // same secondary key: entry still valid
                    }
                }
                sec.tree
                    .put(encode_sk_pk(old_sk, pk), LsmEntry::anti_matter_ts(ets), ets);
            }
        }
        // A newest anti-matter version also invalidates nothing extra here:
        // Eager-style deletes already planted secondary anti-matter, and
        // lazy deletes are validated by queries.
    }

    // Flush the anti-matter produced into the secondary memory components,
    // serialized against dataset-wide flushes (a background flush may have
    // these trees' snapshots sealed).
    {
        let _flush = dataset.flush_serialization().lock();
        for sec in dataset.secondaries() {
            sec.tree.flush()?;
        }
    }

    if with_merge {
        // Re-derive the component count under the merge lock: a background
        // merge may have shrunk the list since the repair scan.
        let _merges = dataset.merge_serialization().lock();
        let n = primary.num_disk_components();
        if n >= 2 {
            primary.merge_range(MergeRange {
                start: 0,
                end: n - 1,
            })?;
        }
    }
    Ok(repaired)
}

// ---- deprecated free-function shims ----------------------------------------
//
// The historical entry points are kept as thin wrappers so existing callers
// migrate at their own pace; new code goes through `Dataset::maintenance()`.

/// Merge repair (Figure 7) of the secondary components in `range`.
///
/// NOT safe on a dataset running background maintenance
/// ([`MaintenanceMode::Background`](crate::MaintenanceMode)): this shim
/// splices the tree's component list without the dataset's merge lock and
/// can race a scheduler-driven merge. The
/// [`Dataset::maintenance`](crate::Dataset::maintenance) replacement
/// serializes correctly.
#[deprecated(
    since = "0.2.0",
    note = "use `Dataset::maintenance().plan().with_merge(true).repair_index(name)` instead"
)]
pub fn merge_repair_secondary(
    sec_tree: &LsmTree,
    pk_tree: &LsmTree,
    range: MergeRange,
    opts: &RepairOptions,
) -> Result<RepairReport> {
    merge_repair(sec_tree, pk_tree, range, opts)
}

/// Standalone repair (Section 4.4) of one secondary index.
#[deprecated(
    since = "0.2.0",
    note = "use `Dataset::maintenance().repair_index(name)` instead"
)]
pub fn standalone_repair_secondary(
    sec_tree: &LsmTree,
    pk_tree: &LsmTree,
    opts: &RepairOptions,
) -> Result<RepairReport> {
    standalone_repair(sec_tree, pk_tree, opts)
}

/// Standalone-repairs every secondary index.
#[deprecated(
    since = "0.2.0",
    note = "use `Dataset::maintenance().repair_all()` instead"
)]
pub fn full_repair(
    dataset: &Dataset,
    opts: &RepairOptions,
    parallel: bool,
) -> Result<Vec<RepairReport>> {
    repair_all_secondaries(dataset, opts, parallel)
}

/// DELI-style primary repair (Section 4.1).
#[deprecated(
    since = "0.2.0",
    note = "use `Dataset::maintenance().repair_primary()` instead"
)]
pub fn primary_repair(dataset: &Dataset, with_merge: bool) -> Result<u64> {
    deli_primary_repair(dataset, with_merge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetConfig, SecondaryIndexDef, StrategyKind};
    use lsm_common::{FieldType, Schema, Value};
    use lsm_storage::{Storage, StorageOptions};

    fn dataset(strategy: StrategyKind) -> Arc<Dataset> {
        let schema =
            Schema::new(vec![("id", FieldType::Int), ("location", FieldType::Str)]).unwrap();
        let mut cfg = DatasetConfig::new(schema, 0);
        cfg.strategy = strategy;
        cfg.merge_repair = false; // repairs are explicit in these tests
        cfg.memory_budget = usize::MAX; // flush manually
        cfg.secondary_indexes = vec![SecondaryIndexDef {
            name: "location".into(),
            field: 1,
        }];
        Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap()
    }

    fn rec(id: i64, loc: &str) -> Record {
        Record::new(vec![Value::Int(id), Value::Str(loc.into())])
    }

    /// Count live entries of the secondary index (respecting bitmaps).
    fn live_secondary_entries(ds: &Dataset) -> u64 {
        let sec = &ds.secondaries()[0].tree;
        let mut scan = sec
            .scan(Bound::Unbounded, Bound::Unbounded, ScanOptions::default())
            .unwrap();
        let mut n = 0;
        while scan.next_entry().unwrap().is_some() {
            n += 1;
        }
        n
    }

    fn obsolete_setup(ds: &Dataset) {
        // 100 inserts, flush; 50 updates changing location, flush.
        for i in 0..100 {
            ds.insert(&rec(i, "CA")).unwrap();
        }
        ds.flush_all().unwrap();
        for i in 0..50 {
            ds.upsert(&rec(i, "NY")).unwrap();
        }
        ds.flush_all().unwrap();
    }

    #[test]
    fn standalone_repair_marks_obsolete_entries() {
        let ds = dataset(StrategyKind::Validation);
        obsolete_setup(&ds);
        // Before repair: 150 secondary entries, 50 obsolete (CA versions of
        // updated records) — but reconciliation cannot see that.
        assert_eq!(live_secondary_entries(&ds), 150);

        let reports = ds.maintenance().repair_all().unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].invalidated, 50);
        assert_eq!(live_secondary_entries(&ds), 100);
    }

    #[test]
    fn repair_is_idempotent_and_prunes_on_rerun() {
        let ds = dataset(StrategyKind::Validation);
        obsolete_setup(&ds);
        ds.maintenance().repair_all().unwrap();
        // Second repair: repairedTS now prunes everything → no validations
        // beyond carried-over bits, nothing newly invalidated.
        let reports = ds.maintenance().repair_all().unwrap();
        assert_eq!(reports[0].invalidated, 0);
        assert_eq!(live_secondary_entries(&ds), 100);
    }

    #[test]
    fn merge_repair_removes_and_marks() {
        let ds = dataset(StrategyKind::Validation);
        obsolete_setup(&ds);
        let sec = &ds.secondaries()[0].tree;
        let n = sec.num_disk_components();
        assert_eq!(n, 2);
        let report = ds
            .maintenance()
            .plan()
            .with_merge(true)
            .repair_index("location")
            .unwrap();
        assert_eq!(sec.num_disk_components(), 1);
        assert_eq!(report.entries_scanned, 150);
        assert_eq!(report.invalidated, 50);
        assert_eq!(live_secondary_entries(&ds), 100);
        // The repaired timestamp advanced to the newest pk component.
        let comp = &sec.disk_components()[0];
        assert!(comp.repaired_ts() > 0);
    }

    #[test]
    fn merge_scan_path_used_for_large_candidate_sets() {
        let ds = dataset(StrategyKind::Validation);
        obsolete_setup(&ds);
        let sec = &ds.secondaries()[0].tree;
        // 150 candidates vs 150 pk entries: force merge scan by thresholds.
        let report = merge_repair(
            sec,
            ds.pk_index().unwrap(),
            MergeRange { start: 0, end: 1 },
            &RepairOptions {
                merge_scan_opt: true,
                ..Default::default()
            },
        )
        .unwrap();
        // candidates (150) > unpruned entries? pk index has 150 entries in
        // 2 components; equality fails the strict >, so take whichever path
        // ran — the outcome must match the point-lookup path.
        assert_eq!(report.invalidated, 50);
    }

    #[test]
    fn bloom_opt_skips_untouched_keys() {
        let ds = dataset(StrategyKind::Validation);
        // Insert 100, flush. Update 10 (so 90 keys untouched afterwards).
        for i in 0..100 {
            ds.insert(&rec(i, "CA")).unwrap();
        }
        ds.flush_all().unwrap();
        // First repair: everything validated once, repairedTS advances past
        // the insert batch.
        ds.maintenance().repair_all().unwrap();
        for i in 0..10 {
            ds.upsert(&rec(i, "NY")).unwrap();
        }
        ds.flush_all().unwrap();
        let reports = ds
            .maintenance()
            .plan()
            .bloom(true)
            .merge_scan(false)
            .repair_all()
            .unwrap();
        let r = &reports[0];
        // Most of the 100 old entries skip validation via Bloom filters
        // (false positives allowed).
        assert!(r.skipped_by_bloom >= 80, "skipped {}", r.skipped_by_bloom);
        assert_eq!(live_secondary_entries(&ds), 100);
    }

    #[test]
    fn primary_repair_cleans_secondaries() {
        let ds = dataset(StrategyKind::Validation);
        obsolete_setup(&ds);
        assert_eq!(live_secondary_entries(&ds), 150);
        let repaired = ds.maintenance().repair_primary().unwrap();
        assert_eq!(repaired, 50);
        assert_eq!(live_secondary_entries(&ds), 100);
        // Primary components untouched without the merge flag.
        assert_eq!(ds.primary().num_disk_components(), 2);
        let repaired_again = ds
            .maintenance()
            .plan()
            .with_merge(true)
            .repair_primary()
            .unwrap();
        assert_eq!(repaired_again, 50); // versions still present pre-merge
        assert_eq!(ds.primary().num_disk_components(), 1);
        // After the merge, obsolete versions are physically gone.
        assert_eq!(ds.maintenance().repair_primary().unwrap(), 0);
    }

    #[test]
    fn deleted_key_btree_mode_writes_extra_files() {
        let ds = dataset(StrategyKind::DeletedKeyBTree);
        obsolete_setup(&ds);
        let before = ds.storage().stats();
        // The facade resolves the DeletedKeyBTree mode from the strategy.
        let plan = ds.maintenance().plan().merge_scan(false).with_merge(true);
        assert_eq!(plan.options().mode, RepairMode::DeletedKeyBTree);
        let report = plan.repair_index("location").unwrap();
        let d = ds.storage().stats().since(&before);
        assert_eq!(report.invalidated, 50);
        assert!(d.pages_written > 0);
        assert_eq!(live_secondary_entries(&ds), 100);
    }

    #[test]
    fn repair_with_updates_in_memory_component() {
        let ds = dataset(StrategyKind::Validation);
        for i in 0..50 {
            ds.insert(&rec(i, "CA")).unwrap();
        }
        ds.flush_all().unwrap();
        // Updates stay in memory (no flush): disk-level repair cannot see
        // them, so entries stay valid — queries handle them via validation.
        for i in 0..20 {
            ds.upsert(&rec(i, "NY")).unwrap();
        }
        let reports = ds.maintenance().repair_all().unwrap();
        assert_eq!(reports[0].invalidated, 0);
        assert_eq!(live_secondary_entries(&ds), 50 + 20);
    }
}
