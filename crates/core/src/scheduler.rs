//! Background maintenance: a worker pool executing flush and merge jobs
//! off the writer's critical path.
//!
//! Luo & Carey design the maintenance strategies so that writers proceed
//! *concurrently* with flush/merge rebuilds (Section 5.3 — the `BuildLink`
//! machinery, bitmap redirection, and the timestamp protocol). The
//! [`MaintenanceScheduler`] exploits that: in
//! [`MaintenanceMode::Background`](crate::MaintenanceMode) writers only
//! *enqueue* work when the memory budget trips, and a pool of worker
//! threads seals memory components, builds disk components, and runs
//! policy-driven merges while ingestion continues.
//!
//! Contracts:
//!
//! * **Dedup** — at most one flush job per dataset is queued at a time, and
//!   merge jobs are keyed by `(target, MergeRange)`; re-enqueueing queued
//!   work is a no-op.
//! * **Backpressure** — writers never block on the queue itself; they stall
//!   only when active + flushing memory exceeds the hard ceiling
//!   ([`DatasetConfig::memory_ceiling`](crate::DatasetConfig), default 2×
//!   the budget), preserving the paper's shared-memory-budget semantics.
//! * **Error propagation** — a job error (or panic) poisons the dataset;
//!   the next write fails with the stored cause instead of the process
//!   aborting.
//! * **Graceful shutdown** — dropping the dataset (or calling
//!   [`Maintenance::quiesce`](crate::Maintenance)) drains in-flight
//!   rebuilds before the workers exit.

use crate::dataset::{Dataset, MergePlan};
use lsm_common::Result;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a stalled writer sleeps between ceiling re-checks. The flush
/// worker notifies the stall condvar on completion, so this is only a
/// safety net against lost wakeups.
const STALL_RECHECK: Duration = Duration::from_millis(20);

/// A unit of background maintenance work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Job {
    /// Seal and flush all of the dataset's memory components.
    Flush,
    /// Run the merge planned for the dataset (the embedded plan is the
    /// dedup key; execution re-plans under the merge lock, so a stale range
    /// is never applied).
    Merge(MergePlan),
}

#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    /// Dedup: one flush job per dataset.
    flush_queued: bool,
    /// Dedup: merges keyed by `(target, range)`.
    merges_queued: HashSet<MergePlan>,
    /// Jobs popped but not yet finished.
    in_flight: usize,
    shutdown: bool,
}

/// State shared between the scheduler handle, its workers, and stalled
/// writers.
#[derive(Debug, Default)]
pub(crate) struct SchedulerShared {
    state: Mutex<QueueState>,
    /// Workers wait here for jobs.
    work_cv: Condvar,
    /// `quiesce` waits here for the queue to drain.
    idle_cv: Condvar,
    /// Backpressured writers wait here for a flush to free memory.
    stall_lock: Mutex<()>,
    stall_cv: Condvar,
}

impl SchedulerShared {
    /// Enqueues a flush job unless one is already queued. Returns `true`
    /// if a job was added.
    pub(crate) fn schedule_flush(&self) -> bool {
        let mut s = self.state.lock();
        if s.shutdown || s.flush_queued {
            return false;
        }
        s.flush_queued = true;
        s.jobs.push_back(Job::Flush);
        drop(s);
        self.work_cv.notify_one();
        true
    }

    /// Enqueues a merge job unless an identical `(target, range)` job is
    /// already queued. Returns `true` if a job was added.
    pub(crate) fn schedule_merge(&self, plan: MergePlan) -> bool {
        let mut s = self.state.lock();
        if s.shutdown || !s.merges_queued.insert(plan) {
            return false;
        }
        s.jobs.push_back(Job::Merge(plan));
        drop(s);
        self.work_cv.notify_one();
        true
    }

    /// Jobs currently queued (not counting in-flight ones).
    pub(crate) fn queue_depth(&self) -> usize {
        self.state.lock().jobs.len()
    }

    /// Blocks until the queue is empty and no job is in flight.
    pub(crate) fn wait_idle(&self) {
        let mut s = self.state.lock();
        while !(s.jobs.is_empty() && s.in_flight == 0) {
            self.idle_cv.wait(&mut s);
        }
    }

    /// Blocks until `done()` holds, waking on flush completions (plus a
    /// periodic recheck so a dead worker cannot strand the writer).
    pub(crate) fn stall_until(&self, done: impl Fn() -> bool) {
        let mut g = self.stall_lock.lock();
        while !done() {
            self.stall_cv.wait_for(&mut g, STALL_RECHECK);
        }
    }

    /// Wakes every stalled writer (after a flush completed or the dataset
    /// was poisoned). Taking `stall_lock` first means a writer between its
    /// predicate check and its wait cannot miss the signal — the 20ms
    /// recheck in `stall_until` is a true safety net, not the common path.
    pub(crate) fn notify_stalled(&self) {
        let _guard = self.stall_lock.lock();
        self.stall_cv.notify_all();
    }

    fn pop_job(&self) -> Option<Job> {
        let mut s = self.state.lock();
        loop {
            if let Some(job) = s.jobs.pop_front() {
                // Clear the dedup key immediately: work arriving while this
                // job runs must be re-queueable (the job mutexes in
                // `Dataset` serialize actual execution).
                match &job {
                    Job::Flush => s.flush_queued = false,
                    Job::Merge(plan) => {
                        s.merges_queued.remove(plan);
                    }
                }
                s.in_flight += 1;
                return Some(job);
            }
            if s.shutdown {
                return None;
            }
            self.work_cv.wait(&mut s);
        }
    }

    fn finish_job(&self) {
        let mut s = self.state.lock();
        s.in_flight -= 1;
        if s.jobs.is_empty() && s.in_flight == 0 {
            drop(s);
            self.idle_cv.notify_all();
        }
    }
}

/// A worker pool executing flush/merge jobs for one dataset.
///
/// Owned by the [`Dataset`] it serves; created through
/// [`Maintenance::background`](crate::Maintenance) (or automatically when
/// the dataset is opened with
/// [`MaintenanceMode::Background`](crate::MaintenanceMode)). Workers hold
/// only a [`Weak`] reference to the dataset, so dropping the last user
/// handle shuts the pool down.
#[derive(Debug)]
pub struct MaintenanceScheduler {
    shared: Arc<SchedulerShared>,
    workers: Vec<JoinHandle<()>>,
}

impl MaintenanceScheduler {
    /// Spawns `workers` threads serving `ds`.
    pub(crate) fn start(ds: &Arc<Dataset>, workers: usize) -> Self {
        let shared = Arc::new(SchedulerShared::default());
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                let weak = Arc::downgrade(ds);
                std::thread::Builder::new()
                    .name(format!("lsm-maint-{i}"))
                    .spawn(move || worker_loop(&shared, &weak))
                    .expect("spawn maintenance worker")
            })
            .collect();
        MaintenanceScheduler {
            shared,
            workers: handles,
        }
    }

    pub(crate) fn shared(&self) -> &Arc<SchedulerShared> {
        &self.shared
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Signals shutdown and joins the workers, draining queued jobs first.
    /// Safe to call from a worker thread (its own handle is detached
    /// instead of joined — this happens when a job holds the last strong
    /// reference to the dataset and `Dataset::drop` runs on the worker).
    pub(crate) fn shutdown_and_join(mut self) {
        {
            let mut s = self.shared.state.lock();
            s.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        self.shared.notify_stalled();
        let me = std::thread::current().id();
        for handle in self.workers.drain(..) {
            if handle.thread().id() == me {
                continue; // drop = detach; the thread is about to exit
            }
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Arc<SchedulerShared>, ds: &Weak<Dataset>) {
    while let Some(job) = shared.pop_job() {
        let dataset = ds.upgrade();
        if let Some(dataset) = &dataset {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_job(dataset, shared, job)
            }));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(e)) => dataset.poison(e),
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker panicked".into());
                    dataset.poison(lsm_common::Error::invalid(format!(
                        "maintenance worker panicked: {msg}"
                    )));
                }
            }
        }
        shared.finish_job();
        // Wake stalled writers after every job: flushes free memory, and a
        // poisoned dataset must fail fast rather than hang its writers.
        shared.notify_stalled();
        drop(dataset);
    }
}

fn run_job(ds: &Arc<Dataset>, shared: &Arc<SchedulerShared>, job: Job) -> Result<()> {
    match job {
        Job::Flush => {
            let flushed = ds.flush_all()?;
            ds.stats().record_flush_job();
            shared.notify_stalled();
            // Flushes create merge work; enqueue it (deduped) rather than
            // blocking this worker's next flush on a long merge.
            ds.schedule_planned_merges(shared);
            // Writers that raced past the budget while we flushed would
            // only re-trigger on their next write — but stalled writers
            // make no writes, so the flush job re-arms itself.
            if flushed
                && ds.mem_total_bytes() > ds.config().memory_budget
                && shared.schedule_flush()
            {
                ds.stats().bump(&ds.stats().jobs_enqueued);
            }
            Ok(())
        }
        Job::Merge(plan) => {
            ds.stats().record_merge_job();
            // Execute the planned merge (serialized by the dataset's merge
            // lock; a stale plan is skipped), then enqueue whatever the
            // policy calls for next — the queue converges to quiescence
            // one targeted job at a time instead of holding the merge lock
            // for a full cascade.
            ds.execute_merge_plan(&plan)?;
            ds.schedule_planned_merges(shared);
            Ok(())
        }
    }
}

impl Dataset {
    pub(crate) fn maintenance_stats_refresh(&self) {
        if let Some(shared) = self.scheduler_shared() {
            self.stats()
                .queue_depth
                .store(shared.queue_depth() as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetConfig, MaintenanceMode, SecondaryIndexDef, StrategyKind};
    use lsm_common::{FieldType, Record, Schema, Value};
    use lsm_storage::{Storage, StorageOptions};

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", FieldType::Int),
            ("location", FieldType::Str),
            ("time", FieldType::Int),
        ])
        .unwrap()
    }

    fn config(strategy: StrategyKind) -> DatasetConfig {
        let mut cfg = DatasetConfig::new(schema(), 0);
        cfg.strategy = strategy;
        cfg.secondary_indexes = vec![SecondaryIndexDef {
            name: "location".into(),
            field: 1,
        }];
        cfg.memory_budget = 32 * 1024;
        cfg.maintenance = MaintenanceMode::Background { workers: 2 };
        cfg
    }

    fn rec(id: i64, loc: &str, time: i64) -> Record {
        Record::new(vec![
            Value::Int(id),
            Value::Str(loc.into()),
            Value::Int(time),
        ])
    }

    #[test]
    fn background_mode_flushes_off_the_writer_path() {
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            config(StrategyKind::Validation),
        )
        .unwrap();
        for i in 0..4000 {
            ds.insert(&rec(i, "CA", i)).unwrap();
        }
        ds.maintenance().quiesce().unwrap();
        let snap = ds.stats().snapshot();
        assert!(snap.flushes > 0, "background flushes ran");
        assert!(snap.flush_jobs > 0, "flush jobs recorded");
        assert!(snap.jobs_enqueued > 0, "jobs were enqueued");
        for i in [0, 1999, 3999] {
            assert!(ds.get(&Value::Int(i)).unwrap().is_some(), "id {i}");
        }
    }

    #[test]
    fn dedup_one_flush_job_at_a_time() {
        let shared = SchedulerShared::default();
        assert!(shared.schedule_flush());
        assert!(!shared.schedule_flush(), "second flush deduped");
        let plan = MergePlan {
            target: crate::dataset::MergeTarget::Primary,
            range: lsm_tree::MergeRange { start: 0, end: 1 },
        };
        assert!(shared.schedule_merge(plan));
        assert!(!shared.schedule_merge(plan), "same range deduped");
        assert_eq!(shared.queue_depth(), 2);
    }

    #[test]
    fn quiesce_waits_for_queue_drain() {
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            config(StrategyKind::Eager),
        )
        .unwrap();
        for i in 0..3000 {
            ds.insert(&rec(i, "NY", i)).unwrap();
        }
        ds.maintenance().quiesce().unwrap();
        let shared = ds.scheduler_shared().unwrap();
        assert_eq!(shared.queue_depth(), 0);
    }

    #[test]
    fn drop_shuts_down_workers() {
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            config(StrategyKind::Validation),
        )
        .unwrap();
        for i in 0..2000 {
            ds.insert(&rec(i, "CA", i)).unwrap();
        }
        drop(ds); // must not hang or leak panicking workers
    }

    #[test]
    fn poisoned_dataset_fails_next_write() {
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            config(StrategyKind::Validation),
        )
        .unwrap();
        ds.poison(lsm_common::Error::invalid("simulated worker failure"));
        let err = ds.insert(&rec(1, "CA", 1)).unwrap_err();
        assert!(
            err.to_string().contains("simulated worker failure"),
            "{err}"
        );
    }
}
