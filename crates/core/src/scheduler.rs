//! Background maintenance: an engine-wide worker pool executing flush and
//! merge jobs for every registered dataset, fairly.
//!
//! Luo & Carey design the maintenance strategies so that writers proceed
//! *concurrently* with flush/merge rebuilds (Section 5.3 — the `BuildLink`
//! machinery, bitmap redirection, and the timestamp protocol). The
//! [`MaintenanceRuntime`] exploits that: writers only *enqueue* work when
//! the memory budget trips, and a bounded pool of worker threads seals
//! memory components, builds disk components, and runs policy-driven merges
//! while ingestion continues. Unlike a per-dataset pool, one runtime serves
//! *all* datasets registered with it — a node hosting hundreds of datasets
//! runs a handful of maintenance threads, not hundreds.
//!
//! Contracts:
//!
//! * **Registration** — datasets join on
//!   [`Dataset::open_with_runtime`](crate::Dataset::open_with_runtime) (or
//!   get a private fixed-size runtime from
//!   [`MaintenanceMode::Background`](crate::MaintenanceMode)) and leave when
//!   dropped; deregistration discards the dataset's queued jobs.
//! * **Priorities** — flushes always run before merges (they release writer
//!   memory). Within the flush class datasets are served round-robin;
//!   within the merge class they are served **deficit-round-robin**: each
//!   dataset earns [`EngineConfig::fairness_quantum_bytes`] of credit per
//!   scheduling turn and its smallest queued merge runs once the credit
//!   covers its estimated input, so ten datasets make progress even when
//!   one floods the queue. Within one dataset merges still run
//!   smallest-estimated-input-first.
//! * **Quotas** — with [`EngineConfig::max_jobs_per_dataset`] set, a
//!   dataset's *merges* never occupy more than that many workers at once,
//!   no matter how much work it has queued; the scheduler skips it until
//!   one of its merges finishes. Flushes are exempt from the quota (they
//!   release stalled writer memory, so a dataset's flush must never wait
//!   out its own in-flight merge). The fairness backstop against a hot
//!   dataset holding every worker with long merges.
//! * **Dedup** — at most one flush job per dataset is queued at a time, and
//!   merge jobs are keyed by `(dataset, target, MergeRange)`; re-enqueueing
//!   queued work is a no-op.
//! * **Adaptive scaling** — [`EngineConfig::min_workers`] threads are
//!   permanent; when the queue outgrows the live workers, transient workers
//!   spawn up to [`EngineConfig::max_workers`] (never beyond) and retire
//!   once the queue drains.
//! * **I/O throttling** — when [`EngineConfig::io_read_bytes_per_sec`] is
//!   set, workers install the runtime's read token bucket
//!   ([`lsm_storage::IoThrottle`]) for the duration of each job, so rebuild
//!   scans cannot monopolize device read bandwidth; with
//!   [`EngineConfig::io_write_bytes_per_sec`] set they additionally install
//!   a write bucket charged on flush-build and merge-output page appends.
//!   Foreground reads and WAL/commit writes are never throttled.
//! * **Backpressure** — writers never block on the queue itself; they stall
//!   only when active + flushing memory exceeds the hard ceiling
//!   ([`DatasetConfig::memory_ceiling`](crate::DatasetConfig), default 2×
//!   the budget), preserving the paper's shared-memory-budget semantics.
//! * **Error propagation** — a job error (or panic) poisons its dataset;
//!   the next write fails with the stored cause instead of the process
//!   aborting. Other datasets on the runtime are unaffected, and
//!   [`MaintenanceRuntime::poisoned`] (or the `poisoned` list in
//!   [`RuntimeStatsSnapshot`]) surfaces the failures without polling every
//!   dataset.
//! * **Graceful shutdown** — dropping a dataset discards its queued jobs
//!   and dropping the runtime's last handle drains in-flight rebuilds
//!   before the workers exit.

use crate::config::EngineConfig;
use crate::dataset::{Dataset, MergePlan};
use lsm_common::Result;
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a stalled writer sleeps between ceiling re-checks. The flush
/// worker notifies the stall condvar on completion, so this is only a
/// safety net against lost wakeups.
const STALL_RECHECK: Duration = Duration::from_millis(20);

/// A unit of background maintenance work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Job {
    /// Seal and flush all of the dataset's memory components.
    Flush,
    /// Run the merge planned for the dataset (the embedded plan is the
    /// dedup key; execution re-plans under the merge lock, so a stale range
    /// is never applied).
    Merge(MergePlan),
}

/// One queued merge with its intra-dataset priority key: ordered by
/// `(est_bytes, seq)` ascending — smallest estimated input first, FIFO
/// within ties.
#[derive(Debug, PartialEq, Eq)]
struct QueuedMerge {
    est_bytes: u64,
    seq: u64,
    plan: MergePlan,
}

impl PartialOrd for QueuedMerge {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedMerge {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.est_bytes, self.seq).cmp(&(other.est_bytes, other.seq))
    }
}

/// Per-dataset bookkeeping inside the runtime: the dataset's own job
/// queues (the cross-dataset order lives in the scheduler's round-robin
/// rings) plus quota and fairness state.
#[derive(Debug)]
struct DatasetEntry {
    ds: Weak<Dataset>,
    /// Dedup: one flush job per dataset.
    flush_queued: bool,
    /// Queued merges, smallest-estimated-input-first within this dataset.
    merges: BinaryHeap<Reverse<QueuedMerge>>,
    /// Dedup: merges keyed by `(target, range)`.
    merges_queued: HashSet<MergePlan>,
    /// This dataset's jobs currently queued (flush + merges).
    queued: usize,
    /// This dataset's jobs popped but not yet finished (all classes).
    in_flight: usize,
    /// The merge-class subset of `in_flight` — compared against
    /// [`EngineConfig::max_jobs_per_dataset`] for the quota check.
    /// Flushes are exempt from the quota: they are what releases stalled
    /// writer memory, so a dataset's flush must never wait out its own
    /// in-flight merge.
    merges_in_flight: usize,
    /// Deficit-round-robin credit (bytes) for the merge class.
    deficit: u64,
}

impl DatasetEntry {
    fn new(ds: Weak<Dataset>) -> Self {
        DatasetEntry {
            ds,
            flush_queued: false,
            merges: BinaryHeap::new(),
            merges_queued: HashSet::new(),
            queued: 0,
            in_flight: 0,
            merges_in_flight: 0,
            deficit: 0,
        }
    }
}

#[derive(Debug, Default)]
struct RuntimeState {
    datasets: HashMap<u64, DatasetEntry>,
    /// Round-robin ring over datasets with a queued flush (each id at most
    /// once — one flush per dataset). Stale ids (deregistered datasets)
    /// are dropped lazily on pop.
    flush_ring: VecDeque<u64>,
    /// Round-robin ring over datasets with queued merges (each id at most
    /// once — inserted on the empty→non-empty transition).
    merge_ring: VecDeque<u64>,
    /// Total queued jobs across all datasets.
    queued_total: usize,
    next_seq: u64,
    next_dataset: u64,
    /// Live worker threads (permanent + transient).
    cur_workers: usize,
    /// High-water mark of `cur_workers` — asserted never to exceed
    /// `max_workers`.
    peak_workers: usize,
    total_in_flight: usize,
    shutdown: bool,
}

#[derive(Debug, Default)]
struct RuntimeCounters {
    jobs_executed: AtomicU64,
    flush_jobs: AtomicU64,
    merge_jobs: AtomicU64,
    workers_spawned: AtomicU64,
    workers_retired: AtomicU64,
    /// Times the quota skipped a dataset that had runnable merges queued.
    quota_deferrals: AtomicU64,
    /// Transient I/O failures retried in place instead of poisoning.
    transient_retries: AtomicU64,
}

/// State shared between the runtime handle, its workers, registered
/// datasets, and stalled writers.
#[derive(Debug)]
pub(crate) struct RuntimeShared {
    cfg: EngineConfig,
    state: Mutex<RuntimeState>,
    /// Permanent workers wait here for jobs.
    work_cv: Condvar,
    /// Per-dataset and whole-runtime quiesce wait here for drains.
    idle_cv: Condvar,
    /// Backpressured writers wait here for a flush to free memory.
    stall_lock: Mutex<()>,
    stall_cv: Condvar,
    /// Read-bandwidth token bucket installed by workers for each job.
    read_throttle: Option<Arc<lsm_storage::IoThrottle>>,
    /// Write-bandwidth token bucket installed by workers for each job
    /// (flush builds, merge outputs; WAL appends are exempt).
    write_throttle: Option<Arc<lsm_storage::IoThrottle>>,
    /// Transient (adaptively spawned) worker handles, joined on shutdown.
    extra: Mutex<Vec<JoinHandle<()>>>,
    counters: RuntimeCounters,
}

impl RuntimeShared {
    fn new(cfg: EngineConfig) -> Self {
        let read_throttle = cfg
            .io_read_bytes_per_sec
            // INVARIANT: effective_burst_bytes() is Some whenever the read
            // rate is Some (it defaults the burst to the rate itself).
            .map(|rate| lsm_storage::IoThrottle::new(rate, cfg.effective_burst_bytes().unwrap()));
        let write_throttle = cfg.io_write_bytes_per_sec.map(|rate| {
            // INVARIANT: effective_write_burst_bytes() is Some whenever the
            // write rate is Some (it defaults the burst to the rate itself).
            lsm_storage::IoThrottle::new(rate, cfg.effective_write_burst_bytes().unwrap())
        });
        RuntimeShared {
            cfg,
            state: Mutex::new(RuntimeState::default()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            stall_lock: Mutex::new(()),
            stall_cv: Condvar::new(),
            read_throttle,
            write_throttle,
            extra: Mutex::new(Vec::new()),
            counters: RuntimeCounters::default(),
        }
    }

    fn register(&self, ds: &Arc<Dataset>) -> u64 {
        let mut s = self.state.lock();
        let id = s.next_dataset;
        s.next_dataset += 1;
        s.datasets.insert(id, DatasetEntry::new(Arc::downgrade(ds)));
        id
    }

    /// Removes a dataset and discards its queued jobs (a dropped dataset
    /// cannot execute them anyway: workers hold only weak references). Its
    /// ids in the round-robin rings are dropped lazily on the next pop.
    fn deregister(&self, id: u64) {
        let mut s = self.state.lock();
        let Some(entry) = s.datasets.remove(&id) else {
            return;
        };
        s.queued_total -= entry.queued;
        drop(s);
        self.idle_cv.notify_all();
    }

    /// True when `entry` has hit the per-dataset *merge* concurrency
    /// quota. Flushes are never quota-checked.
    fn at_quota(&self, entry: &DatasetEntry) -> bool {
        self.cfg
            .max_jobs_per_dataset
            .is_some_and(|q| entry.merges_in_flight >= q)
    }

    /// Enqueues a flush job for `id` unless one is already queued. Returns
    /// `true` if a job was added.
    fn schedule_flush(self: &Arc<Self>, id: u64) -> bool {
        let mut s = self.state.lock();
        if s.shutdown {
            return false;
        }
        let Some(entry) = s.datasets.get_mut(&id) else {
            return false;
        };
        if entry.flush_queued {
            return false;
        }
        entry.flush_queued = true;
        entry.queued += 1;
        s.flush_ring.push_back(id);
        s.queued_total += 1;
        let spawn = self.reserve_worker_locked(&mut s);
        drop(s);
        self.work_cv.notify_one();
        if spawn {
            self.spawn_transient();
        }
        true
    }

    /// Enqueues a merge job for `id` unless an identical `(target, range)`
    /// job is already queued. `est_bytes` (estimated merge input size)
    /// orders merges smallest-first within the dataset and is the cost the
    /// cross-dataset deficit-round-robin charges. Returns `true` if a job
    /// was added.
    fn schedule_merge(self: &Arc<Self>, id: u64, plan: MergePlan, est_bytes: u64) -> bool {
        let mut s = self.state.lock();
        if s.shutdown {
            return false;
        }
        // Take the seq up front (burning one on a deduped call is harmless
        // — seq only breaks FIFO ties) so the entry is looked up once.
        let seq = s.next_seq;
        s.next_seq += 1;
        let Some(entry) = s.datasets.get_mut(&id) else {
            return false;
        };
        if !entry.merges_queued.insert(plan) {
            return false;
        }
        let was_empty = entry.merges.is_empty();
        entry.merges.push(Reverse(QueuedMerge {
            est_bytes,
            seq,
            plan,
        }));
        entry.queued += 1;
        if was_empty {
            s.merge_ring.push_back(id);
        }
        s.queued_total += 1;
        let spawn = self.reserve_worker_locked(&mut s);
        drop(s);
        self.work_cv.notify_one();
        if spawn {
            self.spawn_transient();
        }
        true
    }

    /// Decides (under the lock) whether a transient worker slot should be
    /// claimed: the queue outgrew the live workers and the hard
    /// `max_workers` cap is not reached. Requires the permanent pool to be
    /// live (`cur_workers >= min_workers`) — a bare `RuntimeShared` used
    /// for queue unit tests never spawns. Returns `true` when a slot was
    /// reserved; the caller spawns the thread after releasing the lock
    /// ([`RuntimeShared::spawn_transient`]).
    fn reserve_worker_locked(self: &Arc<Self>, s: &mut RuntimeState) -> bool {
        // Demand counts queued AND in-flight jobs: a lone flush queued
        // behind a long merge must still get a fresh worker, or a stalled
        // writer waits out the whole merge with capacity idle.
        if s.shutdown
            || s.cur_workers < self.cfg.min_workers
            || s.queued_total + s.total_in_flight <= s.cur_workers
            || s.cur_workers >= self.cfg.max_workers
        {
            return false;
        }
        s.cur_workers += 1;
        s.peak_workers = s.peak_workers.max(s.cur_workers);
        true
    }

    /// Spawns the transient worker whose slot `reserve_worker_locked`
    /// reserved. Runs outside the state lock (thread creation is a syscall
    /// every enqueuer would otherwise contend on). Spawn failure — e.g. a
    /// process thread limit — releases the slot and carries on: the
    /// permanent workers still drain the queue, so degraded throughput,
    /// not a panicked writer.
    fn spawn_transient(self: &Arc<Self>) {
        // Defensive: an enqueuer always belongs to a registered dataset
        // whose handle keeps the runtime alive, so shutdown cannot begin
        // between the slot reservation and here — but a released slot is
        // cheaper than reasoning about that forever.
        {
            let mut s = self.state.lock();
            if s.shutdown {
                s.cur_workers -= 1;
                return;
            }
        }
        let n = self
            .counters
            .workers_spawned
            .fetch_add(1, Ordering::Relaxed);
        let shared = self.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("lsm-maint-x{n}"))
            .spawn(move || transient_loop(&shared));
        match spawned {
            Ok(handle) => {
                let mut extra = self.extra.lock();
                // Sweep handles of already-retired transients so the list
                // stays bounded by the live worker count, not by the
                // spawn count over the runtime's lifetime.
                extra.retain(|h| !h.is_finished());
                extra.push(handle);
            }
            Err(_) => {
                self.counters
                    .workers_spawned
                    .fetch_sub(1, Ordering::Relaxed);
                self.state.lock().cur_workers -= 1;
            }
        }
    }

    /// Pops the next runnable job under the fairness rules: the flush ring
    /// first (plain round-robin, never quota-checked), then the merge ring
    /// (deficit round robin, skipping datasets at their merge quota) —
    /// `None` with work still queued means every queued merge belongs to
    /// an at-quota dataset; the worker re-checks when a job finishes
    /// ([`RuntimeShared::finish_job`] notifies `work_cv`).
    fn try_pop_locked(&self, s: &mut RuntimeState) -> Option<(u64, Job, Weak<Dataset>)> {
        // Each dataset's quota deferral is counted at most once per pop —
        // the DRR retry passes below revisit at-quota datasets, and the
        // counter must mean "deferral events", not "ring rotations".
        let mut quota_counted: Vec<u64> = Vec::new();
        let mut count_deferral = |counters: &RuntimeCounters, id: u64| {
            if !quota_counted.contains(&id) {
                quota_counted.push(id);
                counters.quota_deferrals.fetch_add(1, Ordering::Relaxed);
            }
        };
        // Flush class: round-robin across datasets. Flushes are uniform
        // (seal + build what is sealed), so plain rotation is fair.
        for _ in 0..s.flush_ring.len() {
            let Some(&id) = s.flush_ring.front() else {
                break;
            };
            let Some(entry) = s.datasets.get_mut(&id) else {
                s.flush_ring.pop_front(); // deregistered: drop lazily
                continue;
            };
            if !entry.flush_queued {
                s.flush_ring.pop_front(); // stale (defensive)
                continue;
            }
            // No quota check: a flush releases stalled writer memory, so
            // it must never wait out the dataset's own in-flight merge.
            entry.flush_queued = false;
            entry.queued -= 1;
            entry.in_flight += 1;
            let weak = entry.ds.clone();
            s.flush_ring.pop_front();
            s.queued_total -= 1;
            s.total_in_flight += 1;
            return Some((id, Job::Flush, weak));
        }
        // Merge class: deficit round robin. A pass that serves nothing
        // *because of deficits* computes the fewest whole turns after
        // which some dataset can afford its head merge, grants that many
        // quanta to every deficit-blocked dataset at once (preserving
        // their relative credit order), and retries — so a pop costs at
        // most a couple of ring passes under the lock, never
        // max(est)/quantum of them. A pass blocked only by quotas (or an
        // empty ring) returns None.
        loop {
            let quantum = self.cfg.fairness_quantum_bytes;
            // Fewest whole quanta that would cover some deficit-blocked
            // dataset's head merge; None when nothing was deficit-blocked.
            let mut min_turns: Option<u64> = None;
            for _ in 0..s.merge_ring.len() {
                let Some(&id) = s.merge_ring.front() else {
                    break;
                };
                let Some(entry) = s.datasets.get_mut(&id) else {
                    s.merge_ring.pop_front(); // deregistered: drop lazily
                    continue;
                };
                let Some(Reverse(head)) = entry.merges.peek() else {
                    entry.deficit = 0;
                    s.merge_ring.pop_front(); // stale (defensive)
                    continue;
                };
                if self.at_quota(entry) {
                    count_deferral(&self.counters, id);
                    s.merge_ring.rotate_left(1);
                    continue;
                }
                let cost = head.est_bytes;
                if entry.deficit < cost {
                    let turns = (cost - entry.deficit).div_ceil(quantum).max(1);
                    min_turns = Some(min_turns.map_or(turns, |m| m.min(turns)));
                    s.merge_ring.rotate_left(1);
                    continue;
                }
                entry.deficit -= cost;
                // INVARIANT: `merges.peek()` returned `Some(head)` above and
                // the state lock is held; this pop yields that same job.
                let Reverse(job) = entry.merges.pop().expect("peeked job present");
                // Clear the dedup key immediately: work arriving while
                // this job runs must be re-queueable (the job mutexes in
                // `Dataset` serialize actual execution).
                entry.merges_queued.remove(&job.plan);
                entry.queued -= 1;
                entry.in_flight += 1;
                entry.merges_in_flight += 1;
                let weak = entry.ds.clone();
                if entry.merges.is_empty() {
                    entry.deficit = 0;
                    s.merge_ring.pop_front();
                } else {
                    s.merge_ring.rotate_left(1); // others get a turn
                }
                s.queued_total -= 1;
                s.total_in_flight += 1;
                return Some((id, Job::Merge(job.plan), weak));
            }
            let turns = min_turns?;
            let credit = turns.saturating_mul(quantum);
            for &id in s.merge_ring.iter() {
                if let Some(entry) = s.datasets.get_mut(&id) {
                    if !entry.merges.is_empty() && !self.at_quota(entry) {
                        entry.deficit = entry.deficit.saturating_add(credit);
                    }
                }
            }
        }
    }

    fn finish_job(&self, id: u64, was_merge: bool) {
        let mut s = self.state.lock();
        s.total_in_flight -= 1;
        if let Some(entry) = s.datasets.get_mut(&id) {
            entry.in_flight -= 1;
            if was_merge {
                entry.merges_in_flight -= 1;
            }
        }
        drop(s);
        self.idle_cv.notify_all();
        // A finished job may take its dataset back under quota, unblocking
        // queued work a parked worker skipped.
        self.work_cv.notify_all();
    }

    /// Jobs currently queued for dataset `id`.
    fn queue_depth_for(&self, id: u64) -> usize {
        self.state.lock().datasets.get(&id).map_or(0, |e| e.queued)
    }

    /// Blocks until dataset `id` has no queued and no in-flight jobs.
    /// Other datasets' jobs are not waited for (beyond those ahead in the
    /// queue finishing naturally).
    fn wait_idle_for(&self, id: u64) {
        let mut s = self.state.lock();
        loop {
            match s.datasets.get(&id) {
                None => return,
                Some(e) if e.queued == 0 && e.in_flight == 0 => return,
                Some(_) => self.idle_cv.wait(&mut s),
            }
        }
    }

    /// Blocks until the whole queue is empty and no job is in flight.
    fn wait_idle_all(&self) {
        let mut s = self.state.lock();
        while !(s.queued_total == 0 && s.total_in_flight == 0) {
            self.idle_cv.wait(&mut s);
        }
    }

    /// Blocks until `done()` holds, waking on flush completions (plus a
    /// periodic recheck so a dead worker cannot strand the writer).
    fn stall_until(&self, done: impl Fn() -> bool) {
        let mut g = self.stall_lock.lock();
        while !done() {
            self.stall_cv.wait_for(&mut g, STALL_RECHECK);
        }
    }

    /// Wakes every stalled writer (after a flush completed or a dataset
    /// was poisoned). Taking `stall_lock` first means a writer between its
    /// predicate check and its wait cannot miss the signal — the 20ms
    /// recheck in `stall_until` is a true safety net, not the common path.
    fn notify_stalled(&self) {
        let _guard = self.stall_lock.lock();
        self.stall_cv.notify_all();
    }

    /// Signals shutdown and joins all workers, draining queued jobs first.
    /// Safe to call from a worker thread (its own handle is detached
    /// instead of joined — this happens when a job holds the last strong
    /// reference to a dataset holding the last runtime handle).
    fn shutdown_and_join(&self, permanent: Vec<JoinHandle<()>>) {
        {
            let mut s = self.state.lock();
            s.shutdown = true;
        }
        self.work_cv.notify_all();
        self.notify_stalled();
        let extra: Vec<JoinHandle<()>> = self.extra.lock().drain(..).collect();
        let me = std::thread::current().id();
        for handle in permanent.into_iter().chain(extra) {
            if handle.thread().id() == me {
                continue; // drop = detach; the thread is about to exit
            }
            let _ = handle.join();
        }
    }
}

/// An engine-wide maintenance worker pool shared by every dataset
/// registered with it.
///
/// Create one with [`MaintenanceRuntime::start`] and pass it to
/// [`Dataset::open_with_runtime`](crate::Dataset::open_with_runtime); each
/// dataset keeps a handle, so the runtime outlives all of its datasets and
/// shuts down (draining in-flight rebuilds) when the last handle drops.
/// Datasets opened with
/// [`MaintenanceMode::Background`](crate::MaintenanceMode) get a private
/// fixed-size runtime automatically.
#[derive(Debug)]
pub struct MaintenanceRuntime {
    shared: Arc<RuntimeShared>,
    permanent: Mutex<Vec<JoinHandle<()>>>,
    /// Shared query worker pool ([`EngineConfig::query_workers`] > 0):
    /// every registered dataset's parallel queries scatter their partition
    /// tasks here, bounding engine-wide query parallelism.
    query_pool: Option<Arc<crate::query::QueryPool>>,
}

impl MaintenanceRuntime {
    /// Validates `cfg`, spawns the permanent workers (and the query pool
    /// when configured), and returns the runtime handle.
    pub fn start(cfg: EngineConfig) -> Result<Arc<Self>> {
        cfg.validate()?;
        let query_pool =
            (cfg.query_workers > 0).then(|| crate::query::QueryPool::new(cfg.query_workers));
        let shared = Arc::new(RuntimeShared::new(cfg));
        {
            let mut s = shared.state.lock();
            s.cur_workers = shared.cfg.min_workers;
            s.peak_workers = shared.cfg.min_workers;
        }
        let handles = (0..shared.cfg.min_workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("lsm-maint-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| {
                        lsm_common::Error::Storage(format!("spawn maintenance worker: {e}"))
                    })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Arc::new(MaintenanceRuntime {
            shared,
            permanent: Mutex::new(handles),
            query_pool,
        }))
    }

    /// The runtime configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.shared.cfg
    }

    /// The shared query pool, when [`EngineConfig::query_workers`] is
    /// non-zero.
    pub fn query_pool(&self) -> Option<&Arc<crate::query::QueryPool>> {
        self.query_pool.as_ref()
    }

    /// Blocks until every registered dataset's queue is drained and all
    /// in-flight jobs have completed.
    pub fn quiesce(&self) {
        self.shared.wait_idle_all();
    }

    /// Point-in-time runtime statistics: cross-dataset aggregates (queue
    /// depth by class, throttle totals) plus one
    /// [`DatasetRuntimeStats`] row per registered dataset — the operator's
    /// single view over everything the runtime serves.
    pub fn stats(&self) -> RuntimeStatsSnapshot {
        // Collected under the lock, upgraded (and possibly dropped)
        // outside it: dropping a final `Arc<Dataset>` runs `Dataset::drop`,
        // which deregisters — re-entering this lock.
        let (mut snapshot, rows) = {
            let s = self.shared.state.lock();
            let c = &self.shared.counters;
            let flush_queue_depth = s.datasets.values().filter(|e| e.flush_queued).count();
            let snapshot = RuntimeStatsSnapshot {
                datasets: s.datasets.len(),
                queue_depth: s.queued_total,
                flush_queue_depth,
                merge_queue_depth: s.queued_total - flush_queue_depth,
                in_flight: s.total_in_flight,
                cur_workers: s.cur_workers,
                peak_workers: s.peak_workers,
                min_workers: self.shared.cfg.min_workers,
                max_workers: self.shared.cfg.max_workers,
                jobs_executed: c.jobs_executed.load(Ordering::Relaxed),
                flush_jobs: c.flush_jobs.load(Ordering::Relaxed),
                merge_jobs: c.merge_jobs.load(Ordering::Relaxed),
                workers_spawned: c.workers_spawned.load(Ordering::Relaxed),
                workers_retired: c.workers_retired.load(Ordering::Relaxed),
                quota_deferrals: c.quota_deferrals.load(Ordering::Relaxed),
                transient_retries: c.transient_retries.load(Ordering::Relaxed),
                faults_injected: 0,
                torn_writes: 0,
                crash_sites_armed: 0,
                crash_sites_hit: 0,
                throttle_wait_ns: self
                    .shared
                    .read_throttle
                    .as_ref()
                    .map_or(0, |t| t.waited_ns()),
                throttled_bytes: self
                    .shared
                    .read_throttle
                    .as_ref()
                    .map_or(0, |t| t.throttled_bytes()),
                write_throttle_wait_ns: self
                    .shared
                    .write_throttle
                    .as_ref()
                    .map_or(0, |t| t.waited_ns()),
                write_throttled_bytes: self
                    .shared
                    .write_throttle
                    .as_ref()
                    .map_or(0, |t| t.throttled_bytes()),
                per_dataset: Vec::new(),
                poisoned: Vec::new(),
            };
            let rows: Vec<(u64, usize, usize, Weak<Dataset>)> = s
                .datasets
                .iter()
                .map(|(&id, e)| (id, e.queued, e.in_flight, e.ds.clone()))
                .collect();
            (snapshot, rows)
        };
        let mut per_dataset: Vec<DatasetRuntimeStats> = rows
            .into_iter()
            .map(|(id, queued, in_flight, weak)| {
                let mut poisoned = false;
                if let Some(ds) = weak.upgrade() {
                    poisoned = ds.is_poisoned();
                    let io = ds.storage().stats();
                    snapshot.faults_injected += io.faults_injected;
                    snapshot.torn_writes += io.torn_writes;
                    let engine = ds.stats().snapshot();
                    snapshot.crash_sites_armed += engine.crash_sites_armed;
                    snapshot.crash_sites_hit += engine.crash_sites_hit;
                }
                DatasetRuntimeStats {
                    dataset: id,
                    queued,
                    in_flight,
                    poisoned,
                }
            })
            .collect();
        per_dataset.sort_by_key(|d| d.dataset);
        snapshot.poisoned = per_dataset
            .iter()
            .filter(|d| d.poisoned)
            .map(|d| d.dataset)
            .collect();
        snapshot.per_dataset = per_dataset;
        snapshot
    }

    /// The currently-registered datasets that a background job has
    /// poisoned — operators inspect failures here instead of polling every
    /// dataset ([`Dataset::check_poisoned`] yields the cause).
    pub fn poisoned(&self) -> Vec<Arc<Dataset>> {
        let weaks: Vec<Weak<Dataset>> = {
            let s = self.shared.state.lock();
            s.datasets.values().map(|e| e.ds.clone()).collect()
        };
        weaks
            .into_iter()
            .filter_map(|w| w.upgrade())
            .filter(|ds| ds.is_poisoned())
            .collect()
    }

    pub(crate) fn register(&self, ds: &Arc<Dataset>) -> u64 {
        self.shared.register(ds)
    }

    pub(crate) fn deregister(&self, id: u64) {
        self.shared.deregister(id);
    }
}

impl Drop for MaintenanceRuntime {
    /// Graceful shutdown: signal, drain in-flight rebuilds, join. Runs when
    /// the last handle drops — possibly on a worker thread (a job holds a
    /// temporary strong reference to the last dataset, which holds the last
    /// runtime handle), which `shutdown_and_join` handles by detaching
    /// itself.
    fn drop(&mut self) {
        let handles = std::mem::take(&mut *self.permanent.get_mut());
        self.shared.shutdown_and_join(handles);
    }
}

/// One registered dataset's row in a [`RuntimeStatsSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DatasetRuntimeStats {
    /// The dataset's runtime-assigned id (stable for its registration).
    pub dataset: u64,
    /// Jobs queued for this dataset.
    pub queued: usize,
    /// Jobs of this dataset currently executing.
    pub in_flight: usize,
    /// True if a background job has poisoned the dataset.
    pub poisoned: bool,
}

/// Point-in-time statistics of a [`MaintenanceRuntime`]: whole-runtime
/// aggregates plus per-dataset rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeStatsSnapshot {
    /// Registered datasets.
    pub datasets: usize,
    /// Total queued jobs across all datasets.
    pub queue_depth: usize,
    /// Queued flush jobs (the class served first).
    pub flush_queue_depth: usize,
    /// Queued merge jobs.
    pub merge_queue_depth: usize,
    /// Jobs currently executing.
    pub in_flight: usize,
    /// Live worker threads.
    pub cur_workers: usize,
    /// High-water mark of concurrent maintenance threads — never exceeds
    /// `max_workers`.
    pub peak_workers: usize,
    /// Configured permanent worker count.
    pub min_workers: usize,
    /// Configured worker-thread cap.
    pub max_workers: usize,
    /// Total jobs executed.
    pub jobs_executed: u64,
    /// Flush jobs executed.
    pub flush_jobs: u64,
    /// Merge jobs executed.
    pub merge_jobs: u64,
    /// Transient workers spawned by adaptive scaling.
    pub workers_spawned: u64,
    /// Transient workers retired after the queue drained.
    pub workers_retired: u64,
    /// Times the per-dataset quota skipped a dataset with runnable
    /// merges (counted at most once per dataset per scheduling decision).
    pub quota_deferrals: u64,
    /// Transient I/O failures workers retried in place instead of
    /// poisoning the dataset (a retried job may still fail permanently).
    pub transient_retries: u64,
    /// Faults injected by [`FaultPlan`](lsm_storage::FaultPlan)s on the
    /// registered datasets' data devices (summed across datasets; shared
    /// devices are counted once per dataset sharing them).
    pub faults_injected: u64,
    /// Injected torn/short writes on the registered datasets' data devices.
    pub torn_writes: u64,
    /// Armed crash-site passages across the registered datasets.
    pub crash_sites_armed: u64,
    /// Crash-site passages where a fault plan fired.
    pub crash_sites_hit: u64,
    /// Wall-clock nanoseconds jobs spent waiting in the read throttle.
    pub throttle_wait_ns: u64,
    /// Bytes accounted against the read throttle.
    pub throttled_bytes: u64,
    /// Wall-clock nanoseconds jobs spent waiting in the write throttle.
    pub write_throttle_wait_ns: u64,
    /// Bytes accounted against the write throttle.
    pub write_throttled_bytes: u64,
    /// Per-dataset queue/execution rows, sorted by dataset id.
    pub per_dataset: Vec<DatasetRuntimeStats>,
    /// Ids of registered datasets poisoned by a failed background job.
    pub poisoned: Vec<u64>,
}

/// A dataset's registration on a runtime: the shared state plus the
/// dataset's id. Held in the dataset (keeping the runtime alive) and used
/// by the hot write path, so every method is lock-light.
#[derive(Debug, Clone)]
pub(crate) struct RuntimeHandle {
    runtime: Arc<MaintenanceRuntime>,
    id: u64,
}

impl RuntimeHandle {
    pub(crate) fn new(runtime: Arc<MaintenanceRuntime>, id: u64) -> Self {
        RuntimeHandle { runtime, id }
    }

    pub(crate) fn runtime(&self) -> &Arc<MaintenanceRuntime> {
        &self.runtime
    }

    /// The runtime-assigned dataset id (the key of the runtime's stats
    /// rows and poisoned list).
    pub(crate) fn dataset_id(&self) -> u64 {
        self.id
    }

    pub(crate) fn schedule_flush(&self) -> bool {
        self.runtime.shared.schedule_flush(self.id)
    }

    pub(crate) fn schedule_merge(&self, plan: MergePlan, est_bytes: u64) -> bool {
        self.runtime.shared.schedule_merge(self.id, plan, est_bytes)
    }

    /// Jobs queued for this dataset (not the whole runtime).
    pub(crate) fn queue_depth(&self) -> usize {
        self.runtime.shared.queue_depth_for(self.id)
    }

    /// Blocks until this dataset's jobs (queued + in-flight) are drained.
    pub(crate) fn wait_idle(&self) {
        self.runtime.shared.wait_idle_for(self.id);
    }

    pub(crate) fn stall_until(&self, done: impl Fn() -> bool) {
        self.runtime.shared.stall_until(done);
    }

    pub(crate) fn notify_stalled(&self) {
        self.runtime.shared.notify_stalled();
    }

    pub(crate) fn deregister(&self) {
        self.runtime.deregister(self.id);
    }
}

/// Permanent worker: blocks on the queue until shutdown, then drains.
fn worker_loop(shared: &Arc<RuntimeShared>) {
    loop {
        let popped = {
            let mut s = shared.state.lock();
            loop {
                if let Some(p) = shared.try_pop_locked(&mut s) {
                    break Some(p);
                }
                if s.shutdown {
                    break None;
                }
                shared.work_cv.wait(&mut s);
            }
        };
        let Some((id, job, weak)) = popped else {
            return;
        };
        execute_job(shared, id, job, &weak);
    }
}

/// Transient worker: executes while work exists, retires once the queue
/// is truly empty. Work that is queued but quota-blocked does NOT retire
/// the transient — it parks on `work_cv` (a finishing job notifies it) so
/// the pool keeps its capacity for the moment the quota frees up, instead
/// of draining a deep backlog at `min_workers`.
fn transient_loop(shared: &Arc<RuntimeShared>) {
    loop {
        let popped = {
            let mut s = shared.state.lock();
            loop {
                if let Some(p) = shared.try_pop_locked(&mut s) {
                    break Some(p);
                }
                if s.shutdown || s.queued_total == 0 {
                    s.cur_workers -= 1;
                    break None;
                }
                shared.work_cv.wait(&mut s);
            }
        };
        let Some((id, job, weak)) = popped else {
            shared
                .counters
                .workers_retired
                .fetch_add(1, Ordering::Relaxed);
            return;
        };
        execute_job(shared, id, job, &weak);
    }
}

/// Attempts per job before a transient I/O failure is treated as
/// permanent: the first run plus two retries.
const TRANSIENT_ATTEMPTS: u32 = 3;

fn execute_job(shared: &Arc<RuntimeShared>, id: u64, job: Job, weak: &Weak<Dataset>) {
    let dataset = weak.upgrade();
    if let Some(dataset) = &dataset {
        shared
            .counters
            .jobs_executed
            .fetch_add(1, Ordering::Relaxed);
        let mut attempt = 0u32;
        let outcome = loop {
            attempt += 1;
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                lsm_storage::throttle::with_throttles(
                    shared.read_throttle.clone(),
                    shared.write_throttle.clone(),
                    || run_job(dataset, shared, job),
                )
            }));
            let waited = lsm_storage::throttle::take_scope_wait_ns();
            if waited > 0 {
                dataset
                    .stats()
                    .throttle_wait_ns
                    .fetch_add(waited, Ordering::Relaxed);
            }
            let write_waited = lsm_storage::throttle::take_scope_write_wait_ns();
            if write_waited > 0 {
                dataset
                    .stats()
                    .write_throttle_wait_ns
                    .fetch_add(write_waited, Ordering::Relaxed);
            }
            // A transient I/O failure (device hiccup, injected fault) is
            // retried with backoff instead of poisoning the dataset: both
            // job kinds are retry-safe — a flush resumes from its sealed
            // snapshots, a merge re-plans against the current components.
            match &outcome {
                Ok(Err(e)) if e.is_transient() && attempt < TRANSIENT_ATTEMPTS => {
                    shared
                        .counters
                        .transient_retries
                        .fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(1 << attempt));
                }
                _ => break outcome,
            }
        };
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => dataset.poison(e),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".into());
                dataset.poison(lsm_common::Error::invalid(format!(
                    "maintenance worker panicked: {msg}"
                )));
            }
        }
    }
    shared.finish_job(id, matches!(job, Job::Merge(_)));
    // Wake stalled writers after every job: flushes free memory, and a
    // poisoned dataset must fail fast rather than hang its writers.
    shared.notify_stalled();
    // Dropped LAST (after the in-flight bookkeeping): if this is the final
    // strong reference, `Dataset::drop` deregisters on this thread and must
    // see its own job already finished.
    drop(dataset);
}

fn run_job(ds: &Arc<Dataset>, shared: &Arc<RuntimeShared>, job: Job) -> Result<()> {
    // The dataset's own handle points at this runtime — jobs re-arm
    // through it so follow-up work lands on the same shared queue.
    let handle = ds
        .runtime_handle()
        .cloned()
        .ok_or_else(|| lsm_common::Error::invalid("dataset lost its runtime registration"))?;
    match job {
        Job::Flush => {
            shared.counters.flush_jobs.fetch_add(1, Ordering::Relaxed);
            let flushed = ds.flush_all()?;
            ds.stats().record_flush_job();
            shared.notify_stalled();
            // Flushes create merge work; enqueue it (deduped) rather than
            // blocking this worker's next flush on a long merge.
            ds.schedule_planned_merges(&handle);
            // Writers that raced past the budget while we flushed would
            // only re-trigger on their next write — but stalled writers
            // make no writes, so the flush job re-arms itself.
            if flushed
                && ds.mem_total_bytes() > ds.config().memory_budget
                && handle.schedule_flush()
            {
                ds.stats().bump(&ds.stats().jobs_enqueued);
            }
            Ok(())
        }
        Job::Merge(plan) => {
            shared.counters.merge_jobs.fetch_add(1, Ordering::Relaxed);
            ds.stats().record_merge_job();
            // Execute the planned merge (serialized by the dataset's merge
            // lock; a stale plan is skipped), then enqueue whatever the
            // policy calls for next — the queue converges to quiescence
            // one targeted job at a time instead of holding the merge lock
            // for a full cascade.
            ds.execute_merge_plan(&plan)?;
            ds.schedule_planned_merges(&handle);
            Ok(())
        }
    }
}

impl Dataset {
    pub(crate) fn maintenance_stats_refresh(&self) {
        if let Some(handle) = self.runtime_handle() {
            self.stats()
                .queue_depth
                .store(handle.queue_depth() as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetConfig, MaintenanceMode, SecondaryIndexDef, StrategyKind};
    use lsm_common::{FieldType, Record, Schema, Value};
    use lsm_storage::{Storage, StorageOptions};

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", FieldType::Int),
            ("location", FieldType::Str),
            ("time", FieldType::Int),
        ])
        .unwrap()
    }

    fn config(strategy: StrategyKind) -> DatasetConfig {
        let mut cfg = DatasetConfig::new(schema(), 0);
        cfg.strategy = strategy;
        cfg.secondary_indexes = vec![SecondaryIndexDef {
            name: "location".into(),
            field: 1,
        }];
        cfg.memory_budget = 32 * 1024;
        cfg.maintenance = MaintenanceMode::Background { workers: 2 };
        cfg
    }

    fn rec(id: i64, loc: &str, time: i64) -> Record {
        Record::new(vec![
            Value::Int(id),
            Value::Str(loc.into()),
            Value::Int(time),
        ])
    }

    /// A workerless shared state plus a dataset to register under many
    /// ids — the deterministic harness for queue-order tests.
    fn bare_runtime(cfg: EngineConfig) -> (Arc<RuntimeShared>, Arc<Dataset>) {
        let shared = Arc::new(RuntimeShared::new(cfg));
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            DatasetConfig::new(schema(), 0),
        )
        .unwrap();
        (shared, ds)
    }

    fn plan(end: usize) -> MergePlan {
        MergePlan {
            target: crate::dataset::MergeTarget::Primary,
            range: lsm_tree::MergeRange { start: 0, end },
        }
    }

    fn pop(shared: &Arc<RuntimeShared>) -> Option<(u64, Job)> {
        let mut s = shared.state.lock();
        shared.try_pop_locked(&mut s).map(|(id, job, _)| (id, job))
    }

    #[test]
    fn background_mode_flushes_off_the_writer_path() {
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            config(StrategyKind::Validation),
        )
        .unwrap();
        for i in 0..4000 {
            ds.insert(&rec(i, "CA", i)).unwrap();
        }
        ds.maintenance().quiesce().unwrap();
        let snap = ds.stats().snapshot();
        assert!(snap.flushes > 0, "background flushes ran");
        assert!(snap.flush_jobs > 0, "flush jobs recorded");
        assert!(snap.jobs_enqueued > 0, "jobs were enqueued");
        for i in [0, 1999, 3999] {
            assert!(ds.get(&Value::Int(i)).unwrap().is_some(), "id {i}");
        }
    }

    #[test]
    fn private_runtime_is_fixed_size() {
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            config(StrategyKind::Eager),
        )
        .unwrap();
        let rt = ds.runtime_handle().unwrap().runtime().clone();
        assert_eq!(rt.config().min_workers, 2);
        assert_eq!(rt.config().max_workers, 2);
        assert_eq!(rt.config().max_jobs_per_dataset, None);
        assert_eq!(rt.stats().datasets, 1);
    }

    #[test]
    fn priority_queue_orders_flush_first_then_smallest_merge() {
        // Exercise the queue on a workerless shared state: jobs pushed in
        // "worst" order must pop flush-first, then merges smallest-first
        // (one dataset, so DRR reduces to the intra-dataset order).
        let (shared, ds) = bare_runtime(EngineConfig::fixed(1));
        let id = shared.register(&ds);
        assert!(shared.schedule_merge(id, plan(1), 900));
        assert!(shared.schedule_merge(id, plan(2), 100));
        assert!(shared.schedule_flush(id));
        assert!(shared.schedule_merge(id, plan(3), 500));

        let mut order = Vec::new();
        while let Some((_, job)) = pop(&shared) {
            order.push(job);
        }
        assert_eq!(
            order,
            vec![
                Job::Flush,
                Job::Merge(plan(2)),
                Job::Merge(plan(3)),
                Job::Merge(plan(1)),
            ]
        );
    }

    #[test]
    fn dedup_one_flush_job_at_a_time() {
        let (shared, ds) = bare_runtime(EngineConfig::fixed(1));
        let id = shared.register(&ds);
        assert!(shared.schedule_flush(id));
        assert!(!shared.schedule_flush(id), "second flush deduped");
        assert!(shared.schedule_merge(id, plan(1), 10));
        assert!(
            !shared.schedule_merge(id, plan(1), 10),
            "same range deduped"
        );
        assert_eq!(shared.queue_depth_for(id), 2);
    }

    #[test]
    fn deregister_discards_queued_jobs() {
        let (shared, ds) = bare_runtime(EngineConfig::fixed(1));
        let a = shared.register(&ds);
        let b = shared.register(&ds);
        shared.schedule_flush(a);
        shared.schedule_flush(b);
        shared.deregister(a);
        let popped = pop(&shared).unwrap();
        assert_eq!(popped.0, b, "only b's job survives");
        assert!(pop(&shared).is_none());
    }

    #[test]
    fn wait_idle_for_ignores_other_datasets_jobs() {
        // Workerless shared state: dataset b has a queued job forever, yet
        // waiting on a must return immediately (a hang fails the test run).
        let (shared, ds) = bare_runtime(EngineConfig::fixed(1));
        let a = shared.register(&ds);
        let b = shared.register(&ds);
        assert!(shared.schedule_flush(b));
        shared.wait_idle_for(a);
        assert_eq!(shared.queue_depth_for(b), 1, "b's job untouched");
    }

    #[test]
    fn flushes_round_robin_across_datasets() {
        // Three datasets each queue a flush; they must pop in registration
        // ring order regardless of enqueue interleaving, one per dataset.
        let (shared, ds) = bare_runtime(EngineConfig::fixed(1));
        let ids: Vec<u64> = (0..3).map(|_| shared.register(&ds)).collect();
        shared.schedule_flush(ids[1]);
        shared.schedule_flush(ids[0]);
        shared.schedule_flush(ids[2]);
        let order: Vec<u64> = std::iter::from_fn(|| pop(&shared))
            .map(|(id, _)| id)
            .collect();
        assert_eq!(order, vec![ids[1], ids[0], ids[2]], "FIFO across datasets");
    }

    #[test]
    fn merge_drr_interleaves_datasets_instead_of_globally_smallest() {
        // Dataset a floods 3 small merges; dataset b has one large merge.
        // Global smallest-first (the old order) would run ALL of a's
        // merges before b's. DRR must let b accrue credit and run its
        // merge after at most a few of a's turns.
        let quantum = 100;
        let mut cfg = EngineConfig::fixed(1);
        cfg.fairness_quantum_bytes = quantum;
        let (shared, ds) = bare_runtime(cfg);
        let a = shared.register(&ds);
        let b = shared.register(&ds);
        for (i, est) in [(1, 50u64), (2, 50), (3, 50)] {
            assert!(shared.schedule_merge(a, plan(i), est));
        }
        assert!(shared.schedule_merge(b, plan(9), 150));
        let order: Vec<u64> = std::iter::from_fn(|| pop(&shared))
            .map(|(id, _)| id)
            .collect();
        assert_eq!(order.len(), 4);
        let b_pos = order.iter().position(|&id| id == b).unwrap();
        assert!(
            b_pos < order.len() - 1,
            "b's large merge must not be starved to the very end: {order:?}"
        );
    }

    #[test]
    fn quota_caps_concurrent_jobs_per_dataset() {
        let mut cfg = EngineConfig::fixed(4);
        cfg.max_jobs_per_dataset = Some(1);
        let (shared, ds) = bare_runtime(cfg);
        let a = shared.register(&ds);
        for i in 1..=3 {
            assert!(shared.schedule_merge(a, plan(i), 10));
        }
        // First pop runs; the second is quota-blocked even though two more
        // jobs are queued and workers are free.
        let (popped, _) = pop(&shared).unwrap();
        assert_eq!(popped, a);
        assert!(pop(&shared).is_none(), "dataset at quota must be skipped");
        assert_eq!(shared.queue_depth_for(a), 2);
        // Finishing the job releases the quota slot.
        shared.finish_job(a, true);
        assert!(pop(&shared).is_some());
    }

    #[test]
    fn flush_class_is_exempt_from_the_quota() {
        // The priority-inversion regression: with quota 1 and a merge in
        // flight, the dataset's own flush must still run immediately — a
        // stalled writer is waiting on it, and making it queue out a long
        // merge would stall the writer with workers idle.
        let mut cfg = EngineConfig::fixed(4);
        cfg.max_jobs_per_dataset = Some(1);
        let (shared, ds) = bare_runtime(cfg);
        let a = shared.register(&ds);
        assert!(shared.schedule_merge(a, plan(1), 10));
        let (id, job) = pop(&shared).unwrap();
        assert_eq!((id, job), (a, Job::Merge(plan(1)))); // merge in flight
        assert!(shared.schedule_flush(a));
        assert_eq!(
            pop(&shared),
            Some((a, Job::Flush)),
            "flush must bypass the merge quota"
        );
        // Further merges stay quota-blocked until the first finishes.
        assert!(shared.schedule_merge(a, plan(2), 10));
        assert!(pop(&shared).is_none());
        shared.finish_job(a, true);
        assert_eq!(pop(&shared), Some((a, Job::Merge(plan(2)))));
    }

    #[test]
    fn quiet_datasets_flushes_complete_while_flood_still_queued() {
        // The ISSUE's deterministic fairness scenario at the queue level:
        // one flooding dataset enqueues 100 merges (and keeps a flush
        // queued); 9 quiet datasets each need a single flush. Simulate a
        // 4-worker pool popping with a quota of 1: every quiet dataset's
        // flush must be served while the flood still has ≥ 90 merges
        // queued.
        let mut cfg = EngineConfig::fixed(4);
        cfg.max_jobs_per_dataset = Some(1);
        let (shared, ds) = bare_runtime(cfg);
        let flood = shared.register(&ds);
        for i in 1..=100 {
            assert!(shared.schedule_merge(flood, plan(i), 1024));
        }
        assert!(shared.schedule_flush(flood));
        let quiet: Vec<u64> = (0..9).map(|_| shared.register(&ds)).collect();
        for &q in &quiet {
            assert!(shared.schedule_flush(q));
        }

        // Drive 4 simulated workers: pop up to 4 concurrent jobs, finish
        // them, repeat. Record the order datasets were served in.
        let mut served: Vec<(u64, Job)> = Vec::new();
        let mut rounds = 0;
        while served.iter().filter(|(id, _)| quiet.contains(id)).count() < quiet.len() {
            rounds += 1;
            assert!(rounds < 100, "fairness livelock: served {served:?}");
            let mut batch = Vec::new();
            for _ in 0..4 {
                if let Some((id, job)) = pop(&shared) {
                    batch.push((id, job));
                }
            }
            for (id, job) in &batch {
                shared.finish_job(*id, matches!(job, Job::Merge(_)));
            }
            served.extend(batch);
        }
        // Every quiet flush done; the flood has burned at most one job per
        // round (quota 1), so ≥ 90 of its merges are still queued.
        for &q in &quiet {
            assert!(
                served
                    .iter()
                    .any(|(id, job)| *id == q && *job == Job::Flush),
                "quiet dataset {q} never flushed"
            );
        }
        assert!(
            shared.queue_depth_for(flood) >= 90,
            "flood drained too fast: {} left",
            shared.queue_depth_for(flood)
        );
    }

    #[test]
    fn quiesce_waits_for_queue_drain() {
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            config(StrategyKind::Eager),
        )
        .unwrap();
        for i in 0..3000 {
            ds.insert(&rec(i, "NY", i)).unwrap();
        }
        ds.maintenance().quiesce().unwrap();
        let handle = ds.runtime_handle().unwrap();
        assert_eq!(handle.queue_depth(), 0);
    }

    #[test]
    fn drop_shuts_down_workers() {
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            config(StrategyKind::Validation),
        )
        .unwrap();
        for i in 0..2000 {
            ds.insert(&rec(i, "CA", i)).unwrap();
        }
        drop(ds); // must not hang or leak panicking workers
    }

    #[test]
    fn poisoned_dataset_fails_next_write_and_is_listed() {
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            config(StrategyKind::Validation),
        )
        .unwrap();
        let rt = ds.runtime_handle().unwrap().runtime().clone();
        assert!(rt.poisoned().is_empty());
        ds.poison(lsm_common::Error::invalid("simulated worker failure"));
        let err = ds.insert(&rec(1, "CA", 1)).unwrap_err();
        assert!(
            err.to_string().contains("simulated worker failure"),
            "{err}"
        );
        // Runtime-level aggregation: the poisoned dataset is listed both
        // in the accessor and in the stats snapshot.
        let poisoned = rt.poisoned();
        assert_eq!(poisoned.len(), 1);
        assert!(poisoned[0].is_poisoned());
        let stats = rt.stats();
        // The listed id maps back to the handle via runtime_dataset_id().
        assert_eq!(stats.poisoned, vec![ds.runtime_dataset_id().unwrap()]);
        assert!(
            stats
                .per_dataset
                .iter()
                .any(|d| d.dataset == stats.poisoned[0] && d.poisoned),
            "{stats:?}"
        );
    }

    #[test]
    fn stats_split_queue_depth_by_class_and_dataset() {
        let (shared, ds) = bare_runtime(EngineConfig::fixed(1));
        let rt = Arc::new(MaintenanceRuntime {
            shared: shared.clone(),
            permanent: Mutex::new(Vec::new()),
            query_pool: None,
        });
        let a = shared.register(&ds);
        let b = shared.register(&ds);
        shared.schedule_flush(a);
        shared.schedule_merge(a, plan(1), 10);
        shared.schedule_merge(b, plan(2), 10);
        let stats = rt.stats();
        assert_eq!(stats.queue_depth, 3);
        assert_eq!(stats.flush_queue_depth, 1);
        assert_eq!(stats.merge_queue_depth, 2);
        let row_a = stats.per_dataset.iter().find(|d| d.dataset == a).unwrap();
        let row_b = stats.per_dataset.iter().find(|d| d.dataset == b).unwrap();
        assert_eq!((row_a.queued, row_a.in_flight), (2, 0));
        assert_eq!((row_b.queued, row_b.in_flight), (1, 0));
        // Popping moves a job from queued to in-flight.
        let (id, _) = pop(&shared).unwrap();
        assert_eq!(id, a, "flush class first");
        let stats = rt.stats();
        assert_eq!(stats.in_flight, 1);
        let row_a = stats.per_dataset.iter().find(|d| d.dataset == a).unwrap();
        assert_eq!((row_a.queued, row_a.in_flight), (1, 1));
    }

    /// Regression (transient faults poisoning datasets): a single
    /// transient I/O failure in a background flush used to poison the
    /// dataset permanently. Workers now retry transient failures in place
    /// — the flush is retry-safe (it resumes from its sealed snapshots) —
    /// and only poison on repeated or permanent errors.
    #[test]
    fn transient_flush_failure_is_retried_not_poisoned() {
        use lsm_storage::{FaultAction, FaultOp, FaultPlan, FaultSpec, FaultTrigger};
        let storage = Storage::new(StorageOptions::test());
        let plan = FaultPlan::new(vec![FaultSpec {
            trigger: FaultTrigger::OpIndex {
                op: FaultOp::Append,
                index: 0,
            },
            action: FaultAction::TransientError,
        }]);
        storage.install_fault_plan(plan.clone());
        plan.arm();
        let ds = Dataset::open(storage, None, config(StrategyKind::Validation)).unwrap();
        // Trip the memory budget: the background flush's first append to
        // the data device fails transiently, once.
        for i in 0..4000 {
            ds.insert(&rec(i, "CA", i)).unwrap();
        }
        // quiesce() fails fast on a poisoned dataset.
        ds.maintenance().quiesce().unwrap();
        assert_eq!(plan.faults_injected(), 1, "the fault fired exactly once");
        let snap = ds.stats().snapshot();
        assert!(snap.flushes > 0, "the retried flush completed");
        let rt = ds.runtime_handle().unwrap().runtime().clone();
        let stats = rt.stats();
        assert!(stats.transient_retries >= 1, "{stats:?}");
        assert!(stats.faults_injected >= 1, "{stats:?}");
        assert!(rt.poisoned().is_empty());
        for i in [0, 1999, 3999] {
            assert!(ds.get(&Value::Int(i)).unwrap().is_some(), "id {i}");
        }
    }
}
